//! # dpde-protocols — case-study protocols derived from differential equations
//!
//! Protocols built with the `dpde-core` framework, reproducing the case
//! studies of *"On the Design of Distributed Protocols from Differential
//! Equations"* (Gupta, PODC 2004):
//!
//! * [`epidemic`] — the canonical pull epidemic (the paper's motivating
//!   example), plus push and push–pull variants;
//! * [`endemic`] — Case study I: the endemic protocol for probabilistic
//!   responsibility migration, its analysis (equilibria, Theorem 3 stability,
//!   convergence regimes, replica longevity, bandwidth model) and the
//!   migratory-replication application with untraceability and fairness
//!   metrics;
//! * [`lv`] — Case study II: the Lotka–Volterra protocol for probabilistic
//!   majority selection, its analysis (Theorem 4) and the majority-selection
//!   application;
//! * [`small_count`] — the "near-tie takeover" scenario family: LV majority
//!   from 50.5/49.5 splits and endemic runs driven to near-extinction, the
//!   small-count regime served by the hybrid runtime fidelity.
//!
//! # Example
//!
//! ```
//! use dpde_protocols::endemic::EndemicParams;
//!
//! // Figure 2 parameters: β = 4, γ = 1, α = 0.01.
//! let params = EndemicParams::new(4.0, 1.0, 0.01)?;
//! // Theorem 3: the endemic equilibrium is stable — in fact a stable spiral.
//! assert!(params.endemic_equilibrium_is_stable());
//! assert!(params.is_stable_spiral()?);
//! // At N = 1000 it sustains ≈ 7.4 replicas.
//! assert!(params.expected_stashers(1000.0) > 7.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod endemic;
pub mod epidemic;
pub mod lv;
pub mod small_count;

pub use endemic::EndemicParams;
pub use epidemic::{Epidemic, EpidemicStyle};
pub use lv::LvParams;
pub use small_count::{NearExtinction, NearTieTakeover};
