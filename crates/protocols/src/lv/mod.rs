//! Case study II: the Lotka–Volterra (LV) protocol for probabilistic
//! majority selection (Section 4.2 of the paper).
//!
//! The competition equations the paper introduces (eq. 6),
//!
//! ```text
//! ẋ = 3x(1 − x − 2y)
//! ẏ = 3y(1 − y − 2x)
//! ```
//!
//! are completed with `z = 1 − x − y` and rewritten (eq. 7) into the
//! completely partitionable, restricted polynomial form
//!
//! ```text
//! ẋ = +3xz − 3xy
//! ẏ = +3yz − 3xy
//! ż = −3xz − 3yz + 3xy + 3xy
//! ```
//!
//! which the compiler maps to the state machine of Figure 3 (four
//! One-Time-Sampling actions, all with coin probability `3p`). States `x`
//! and `y` are the two competing proposals; `z` is "undecided".

pub mod analysis;
pub mod majority;
pub mod multi;

use dpde_core::{CoreError, Protocol, ProtocolCompiler};
use odekit::rewrite::complete;
use odekit::{EquationSystem, EquationSystemBuilder};

/// Name of the state backing proposal 0.
pub const STATE_X: &str = "x";
/// Name of the state backing proposal 1.
pub const STATE_Y: &str = "y";
/// Name of the undecided state.
pub const STATE_Z: &str = "z";

/// Configuration of the LV protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LvParams {
    /// The competition rate constant (3 in the paper's equations).
    pub rate: f64,
    /// The normalizing constant `p` (0.01 in the paper's experiments).
    pub normalizing_constant: f64,
}

impl Default for LvParams {
    fn default() -> Self {
        LvParams {
            rate: 3.0,
            normalizing_constant: 0.01,
        }
    }
}

impl LvParams {
    /// Creates the paper's configuration (`rate = 3`, `p = 0.01`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the normalizing constant `p`.
    ///
    /// # Errors
    ///
    /// Returns an error unless `0 < p ≤ 1` and `rate·p ≤ 1`.
    pub fn with_normalizing_constant(mut self, p: f64) -> Result<Self, CoreError> {
        if !(p.is_finite() && p > 0.0 && p <= 1.0 && self.rate * p <= 1.0) {
            return Err(CoreError::InvalidConfig {
                name: "normalizing_constant",
                reason: format!("p must lie in (0, 1] with rate·p ≤ 1, got {p}"),
            });
        }
        self.normalizing_constant = p;
        Ok(self)
    }

    /// The original two-variable competition equations (eq. 6).
    pub fn original_equations(&self) -> EquationSystem {
        let r = self.rate;
        EquationSystemBuilder::new()
            .vars([STATE_X, STATE_Y])
            .term(STATE_X, r, &[(STATE_X, 1)])
            .term(STATE_X, -r, &[(STATE_X, 2)])
            .term(STATE_X, -2.0 * r, &[(STATE_X, 1), (STATE_Y, 1)])
            .term(STATE_Y, r, &[(STATE_Y, 1)])
            .term(STATE_Y, -r, &[(STATE_Y, 2)])
            .term(STATE_Y, -2.0 * r, &[(STATE_X, 1), (STATE_Y, 1)])
            .build()
            .expect("LV equations are well-formed")
    }

    /// The completed three-variable system (original equations plus
    /// `ż = −ẋ − ẏ`), produced with the generic completion rewrite.
    pub fn completed_equations(&self) -> EquationSystem {
        complete(&self.original_equations(), STATE_Z).expect("completion cannot fail")
    }

    /// The rewritten, mappable form (eq. 7): every term contains its own
    /// variable and pairs with an equal opposite term.
    pub fn rewritten_equations(&self) -> EquationSystem {
        let r = self.rate;
        EquationSystemBuilder::new()
            .vars([STATE_X, STATE_Y, STATE_Z])
            .term(STATE_X, r, &[(STATE_X, 1), (STATE_Z, 1)])
            .term(STATE_X, -r, &[(STATE_X, 1), (STATE_Y, 1)])
            .term(STATE_Y, r, &[(STATE_Y, 1), (STATE_Z, 1)])
            .term(STATE_Y, -r, &[(STATE_X, 1), (STATE_Y, 1)])
            .term(STATE_Z, -r, &[(STATE_X, 1), (STATE_Z, 1)])
            .term(STATE_Z, -r, &[(STATE_Y, 1), (STATE_Z, 1)])
            .term(STATE_Z, r, &[(STATE_X, 1), (STATE_Y, 1)])
            .term(STATE_Z, r, &[(STATE_X, 1), (STATE_Y, 1)])
            .build()
            .expect("rewritten LV equations are well-formed")
    }

    /// The LV protocol of Figure 3, compiled from the rewritten equations with
    /// the configured normalizing constant.
    ///
    /// # Errors
    ///
    /// Propagates compiler errors (cannot occur for a valid configuration).
    pub fn protocol(&self) -> Result<Protocol, CoreError> {
        ProtocolCompiler::new("lotka-volterra")
            .with_normalizing_constant(self.normalizing_constant)
            .compile(&self.rewritten_equations())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odekit::taxonomy;

    #[test]
    fn original_equations_are_not_mappable_directly() {
        let params = LvParams::new();
        let orig = params.original_equations();
        assert!(!taxonomy::is_complete(&orig));
        // On the simplex both forms agree.
        let completed = params.completed_equations();
        let rewritten = params.rewritten_equations();
        for state in [[0.3, 0.3, 0.4], [0.6, 0.4, 0.0], [0.1, 0.7, 0.2]] {
            let a = completed.eval_rhs(&state);
            let b = rewritten.eval_rhs(&state);
            for (ai, bi) in a.iter().zip(&b) {
                assert!((ai - bi).abs() < 1e-9, "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn rewritten_equations_are_mappable_without_tokens() {
        let report = taxonomy::classify(&LvParams::new().rewritten_equations());
        assert!(report.mappable_without_tokens());
    }

    #[test]
    fn protocol_matches_figure3() {
        let protocol = LvParams::new().protocol().unwrap();
        assert_eq!(protocol.num_states(), 3);
        assert_eq!(protocol.num_actions(), 4);
        assert!((protocol.time_scale() - 0.01).abs() < 1e-12);
        // Every action's coin probability is 3p = 0.03.
        for s in protocol.state_ids() {
            for a in protocol.actions(s) {
                assert!((a.prob() - 0.03).abs() < 1e-12);
            }
        }
        // x and y each have one action (towards z); z has two (towards x and y).
        let x = protocol.require_state(STATE_X).unwrap();
        let y = protocol.require_state(STATE_Y).unwrap();
        let z = protocol.require_state(STATE_Z).unwrap();
        assert_eq!(protocol.actions(x).len(), 1);
        assert_eq!(protocol.actions(y).len(), 1);
        assert_eq!(protocol.actions(z).len(), 2);
        assert_eq!(protocol.actions(x)[0].destination(), z);
        assert_eq!(protocol.actions(y)[0].destination(), z);
    }

    #[test]
    fn normalizing_constant_validation() {
        assert!(LvParams::new().with_normalizing_constant(0.2).is_ok());
        assert!(
            LvParams::new().with_normalizing_constant(0.5).is_err(),
            "3·0.5 > 1"
        );
        assert!(LvParams::new().with_normalizing_constant(0.0).is_err());
        assert!(LvParams::new().with_normalizing_constant(f64::NAN).is_err());
    }
}
