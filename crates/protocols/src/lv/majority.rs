//! Probabilistic majority selection on top of the LV protocol.
//!
//! Each process initially proposes 0 or 1; proposers of 0 start in state `x`,
//! proposers of 1 in state `y`. The protocol runs forever and each process
//! maintains a running decision variable — its current state, or *undecided*
//! while in `z`. With high probability all processes eventually agree on the
//! initial majority value (Theorem 4 plus the finite-group argument of
//! Section 4.2.2).

use super::{LvParams, STATE_X, STATE_Y, STATE_Z};
use dpde_core::runtime::{
    CountsRecorder, InitialStates, RunResult, Simulation, TransitionRecorder,
};
use dpde_core::CoreError;
use netsim::Scenario;

/// The running decision value of a process or of the whole group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Decision {
    /// Deciding on proposal 0 (state `x`).
    Zero,
    /// Deciding on proposal 1 (state `y`).
    One,
    /// Undecided (state `z`, or no quorum yet).
    Undecided,
}

/// Outcome of one majority-selection run.
#[derive(Debug, Clone)]
pub struct MajorityOutcome {
    /// The full simulation output.
    pub run: RunResult,
    /// The group-wide decision at the end of the run (the value backed by at
    /// least [`MajoritySelection::quorum`] of the non-crashed processes).
    pub decision: Decision,
    /// The initial majority value (ties report `Undecided`).
    pub initial_majority: Decision,
    /// `true` if the final decision matches the initial majority.
    pub correct: bool,
    /// First period at which the eventual decision value was backed by the
    /// quorum fraction (`None` if that never happened).
    pub convergence_period: Option<u64>,
}

/// Driver for probabilistic majority selection over the LV protocol.
#[derive(Debug, Clone)]
pub struct MajoritySelection {
    params: LvParams,
    quorum: f64,
}

impl MajoritySelection {
    /// Creates a driver with the paper's LV parameters and a 99 % quorum
    /// threshold for declaring convergence.
    pub fn new(params: LvParams) -> Self {
        MajoritySelection {
            params,
            quorum: 0.99,
        }
    }

    /// Sets the fraction of (alive) processes that must back a value before
    /// the group is considered converged.
    ///
    /// # Errors
    ///
    /// Returns an error unless the quorum lies in `(0.5, 1]`.
    pub fn with_quorum(mut self, quorum: f64) -> Result<Self, CoreError> {
        if !(quorum > 0.5 && quorum <= 1.0) {
            return Err(CoreError::InvalidConfig {
                name: "quorum",
                reason: format!("quorum must lie in (0.5, 1], got {quorum}"),
            });
        }
        self.quorum = quorum;
        Ok(self)
    }

    /// The convergence quorum fraction.
    pub fn quorum(&self) -> f64 {
        self.quorum
    }

    /// The LV parameters in use.
    pub fn params(&self) -> &LvParams {
        &self.params
    }

    /// Runs majority selection: `zeros` processes initially propose 0 and
    /// `ones` propose 1 (they must sum to the scenario's group size; nobody
    /// starts undecided, as in the paper's experiments).
    ///
    /// # Errors
    ///
    /// Propagates protocol and runtime errors.
    pub fn run(
        &self,
        scenario: &Scenario,
        zeros: u64,
        ones: u64,
    ) -> Result<MajorityOutcome, CoreError> {
        let protocol = self.params.protocol()?;
        let initial = InitialStates::counts(&[zeros, ones, 0]);
        // Decisions are evaluated over the non-crashed processes only, so the
        // quorum refers to the surviving population (the paper's Figure 12).
        // Nothing here needs host identity, so run_auto serves exchangeable
        // scenarios (including Figure 12's massive failures) on the
        // count-batched runtime — majority selection at N in the millions
        // stays interactive — and falls back to the agent runtime for
        // per-id schedules and churn traces.
        let run = Simulation::of(protocol)
            .scenario(scenario.clone())
            .initial(initial)
            .observe(CountsRecorder::alive_only())
            .observe(TransitionRecorder::new())
            .run_auto()?;

        let initial_majority = if zeros > ones {
            Decision::Zero
        } else if ones > zeros {
            Decision::One
        } else {
            Decision::Undecided
        };

        let xs = run.state_series(STATE_X)?;
        let ys = run.state_series(STATE_Y)?;
        let zs = run.state_series(STATE_Z)?;
        let decision_at = |i: usize| -> Decision {
            let alive = xs[i] + ys[i] + zs[i];
            if alive == 0.0 {
                return Decision::Undecided;
            }
            if xs[i] / alive >= self.quorum {
                Decision::Zero
            } else if ys[i] / alive >= self.quorum {
                Decision::One
            } else {
                Decision::Undecided
            }
        };
        let final_decision = decision_at(xs.len() - 1);
        let convergence_period = if final_decision == Decision::Undecided {
            None
        } else {
            // First period from which the group stays at the final decision.
            let mut first = None;
            for i in (0..xs.len()).rev() {
                if decision_at(i) == final_decision {
                    first = Some(i as u64);
                } else {
                    break;
                }
            }
            first
        };

        Ok(MajorityOutcome {
            run,
            decision: final_decision,
            initial_majority,
            correct: final_decision == initial_majority,
            convergence_period,
        })
    }

    /// Runs `repetitions` independent majority selections (varying the seed)
    /// and returns the fraction that decided the initial majority value —
    /// an empirical estimate of the "w.h.p." guarantee.
    ///
    /// # Errors
    ///
    /// Propagates protocol and runtime errors.
    pub fn success_rate(
        &self,
        n: usize,
        periods: u64,
        zeros: u64,
        ones: u64,
        repetitions: u32,
    ) -> Result<f64, CoreError> {
        let mut successes = 0u32;
        for rep in 0..repetitions {
            let scenario = Scenario::new(n, periods)?.with_seed(1000 + u64::from(rep));
            if self.run(&scenario, zeros, ones)?.correct {
                successes += 1;
            }
        }
        Ok(f64::from(successes) / f64::from(repetitions.max(1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorum_validation_and_accessors() {
        let m = MajoritySelection::new(LvParams::new());
        assert_eq!(m.quorum(), 0.99);
        assert_eq!(m.params().rate, 3.0);
        assert!(m.clone().with_quorum(0.4).is_err());
        assert!(m.clone().with_quorum(1.5).is_err());
        assert_eq!(m.with_quorum(0.9).unwrap().quorum(), 0.9);
    }

    #[test]
    fn clear_majority_is_selected_correctly() {
        // 60/40 split in a 2000-process group (Figure 11, scaled down).
        let m = MajoritySelection::new(LvParams::new());
        let scenario = Scenario::new(2000, 700).unwrap().with_seed(21);
        let outcome = m.run(&scenario, 1200, 800).unwrap();
        assert_eq!(outcome.initial_majority, Decision::Zero);
        assert_eq!(outcome.decision, Decision::Zero);
        assert!(outcome.correct);
        let converged = outcome.convergence_period.expect("should converge");
        assert!(converged < 600, "converged at {converged}");
        // Conservation of processes.
        for (_, s) in outcome.run.counts.iter() {
            assert_eq!(s.iter().sum::<f64>(), 2000.0);
        }
    }

    #[test]
    fn reversed_majority_selects_the_other_value() {
        let m = MajoritySelection::new(LvParams::new());
        let scenario = Scenario::new(2000, 700).unwrap().with_seed(22);
        let outcome = m.run(&scenario, 800, 1200).unwrap();
        assert_eq!(outcome.decision, Decision::One);
        assert!(outcome.correct);
    }

    #[test]
    fn tie_still_converges_to_some_value() {
        // With an exact tie the deterministic system sits on the saddle, but
        // randomization pushes a finite group to one of the stable points
        // (Section 4.2.2). The outcome is then "incorrect" by definition
        // (there is no majority) but the group still agrees.
        let m = MajoritySelection::new(LvParams::new());
        let scenario = Scenario::new(1000, 1500).unwrap().with_seed(23);
        let outcome = m.run(&scenario, 500, 500).unwrap();
        assert_eq!(outcome.initial_majority, Decision::Undecided);
        assert!(matches!(outcome.decision, Decision::Zero | Decision::One));
        assert!(!outcome.correct);
    }

    #[test]
    fn short_run_reports_no_convergence() {
        let m = MajoritySelection::new(LvParams::new());
        let scenario = Scenario::new(500, 3).unwrap().with_seed(24);
        let outcome = m.run(&scenario, 300, 200).unwrap();
        assert_eq!(outcome.decision, Decision::Undecided);
        assert_eq!(outcome.convergence_period, None);
        assert!(!outcome.correct);
    }

    #[test]
    fn success_rate_is_high_for_clear_majorities() {
        let m = MajoritySelection::new(LvParams::new());
        let rate = m.success_rate(600, 700, 390, 210, 5).unwrap();
        assert!(rate >= 0.8, "success rate {rate}");
    }
}
