//! Analysis of the LV protocol (Section 4.2.2, Theorem 4): equilibria, their
//! stability, the basin structure, and the convergence complexity.

use super::LvParams;
use odekit::analysis::{analyze_equilibrium, EquilibriumFinder, Stability};
use odekit::OdeError;

/// The four equilibria of the LV system in the `(x, y)` plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LvEquilibria {
    /// `(0, 0)` — unstable.
    pub origin: (f64, f64),
    /// `(1, 0)` — stable: proposal `x` wins.
    pub x_wins: (f64, f64),
    /// `(0, 1)` — stable: proposal `y` wins.
    pub y_wins: (f64, f64),
    /// `(1/3, 1/3)` — saddle on the diagonal.
    pub tie: (f64, f64),
}

impl LvParams {
    /// The four equilibria named by Theorem 4.
    pub fn equilibria(&self) -> LvEquilibria {
        LvEquilibria {
            origin: (0.0, 0.0),
            x_wins: (1.0, 0.0),
            y_wins: (0.0, 1.0),
            tie: (1.0 / 3.0, 1.0 / 3.0),
        }
    }

    /// Verifies Theorem 4's stability classification using the generic
    /// eigenvalue machinery on the original two-variable system. Returns the
    /// classifications of `(0,0)`, `(1,0)`, `(0,1)` and `(1/3,1/3)` in that
    /// order.
    ///
    /// # Errors
    ///
    /// Propagates eigenvalue-computation failures.
    pub fn classify_equilibria(&self) -> Result<[Stability; 4], OdeError> {
        let sys = self.original_equations();
        let eq = self.equilibria();
        let points = [eq.origin, eq.x_wins, eq.y_wins, eq.tie];
        let mut out = [Stability::Marginal; 4];
        for (i, (x, y)) in points.iter().enumerate() {
            out[i] = analyze_equilibrium(&sys, &[*x, *y])?.classification;
        }
        Ok(out)
    }

    /// Confirms numerically (via multi-start Newton search over the unit box)
    /// that the system has exactly the four equilibria of Theorem 4.
    pub fn equilibria_found_by_search(&self) -> Vec<Vec<f64>> {
        EquilibriumFinder::new()
            .search_box(&self.original_equations(), &[(0.0, 1.0), (0.0, 1.0)], 6)
            .unwrap_or_default()
    }

    /// Theorem 4's basin structure: which stable point an initial condition
    /// `(x₀, y₀)` (with `x₀ + y₀ ≤ 1`) converges to under the deterministic
    /// dynamics.
    pub fn predicted_winner(&self, x0: f64, y0: f64) -> PredictedOutcome {
        if x0 > y0 {
            PredictedOutcome::XWins
        } else if y0 > x0 {
            PredictedOutcome::YWins
        } else {
            PredictedOutcome::Tie
        }
    }

    /// The convergence complexity of Section 4.2.2: near the stable point
    /// `(0, 1)` the minority fraction decays as `x(t) = u₀·e^{−rate·t}`
    /// (and symmetrically near `(1, 0)`), so reaching `O(1)` minority
    /// processes from a constant-fraction split takes `O(log N)` time units,
    /// i.e. `O(log N / (rate·p))` protocol periods.
    pub fn expected_convergence_periods(&self, n: u64) -> f64 {
        let n = n.max(2) as f64;
        n.ln() / (self.rate * self.normalizing_constant)
    }

    /// The closed-form linearized trajectory near `(0, 1)`:
    /// `x(t) = u₀ e^{−rate·t}`, `y(t) = 1 − (2·rate·u₀·t + v₀)·e^{−rate·t}`
    /// for an initial perturbation `(u₀, v₀)`.
    pub fn convergence_trajectory(&self, u0: f64, v0: f64, t: f64) -> (f64, f64) {
        let r = self.rate;
        let x = u0 * (-r * t).exp();
        let y = 1.0 - (2.0 * r * u0 * t + v0) * (-r * t).exp();
        (x, y)
    }
}

/// The outcome Theorem 4 predicts for a given initial split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PredictedOutcome {
    /// The `x` camp wins (`x₀ > y₀`).
    XWins,
    /// The `y` camp wins (`y₀ > x₀`).
    YWins,
    /// Exact tie: the deterministic system heads to `(1/3, 1/3)`; a finite
    /// group is pushed off the diagonal by randomness and picks a winner
    /// arbitrarily.
    Tie,
}

#[cfg(test)]
mod tests {
    use super::*;
    use odekit::integrate::{Integrator, Rk4};

    #[test]
    fn theorem4_classifications() {
        let params = LvParams::new();
        let [origin, x_wins, y_wins, tie] = params.classify_equilibria().unwrap();
        assert_eq!(origin, Stability::UnstableNode);
        assert_eq!(x_wins, Stability::StableNode);
        assert_eq!(y_wins, Stability::StableNode);
        assert_eq!(tie, Stability::Saddle);
    }

    #[test]
    fn exactly_four_equilibria_in_the_unit_box() {
        let found = LvParams::new().equilibria_found_by_search();
        assert_eq!(found.len(), 4, "{found:?}");
        let expected = [(0.0, 0.0), (1.0, 0.0), (0.0, 1.0), (1.0 / 3.0, 1.0 / 3.0)];
        for (ex, ey) in expected {
            assert!(
                found
                    .iter()
                    .any(|p| (p[0] - ex).abs() < 1e-6 && (p[1] - ey).abs() < 1e-6),
                "missing ({ex}, {ey})"
            );
        }
    }

    #[test]
    fn basins_of_attraction_follow_the_diagonal() {
        // Integrate the completed system from both sides of the diagonal and
        // check Theorem 4's items 1–3.
        let params = LvParams::new();
        let sys = params.completed_equations();
        let rk = Rk4::new(0.01);
        let right = rk.integrate(&sys, 0.0, &[0.4, 0.3, 0.3], 20.0).unwrap();
        assert!(
            right.last_state()[0] > 0.99,
            "x should win: {:?}",
            right.last_state()
        );
        assert_eq!(params.predicted_winner(0.4, 0.3), PredictedOutcome::XWins);

        let left = rk.integrate(&sys, 0.0, &[0.2, 0.5, 0.3], 20.0).unwrap();
        assert!(
            left.last_state()[1] > 0.99,
            "y should win: {:?}",
            left.last_state()
        );
        assert_eq!(params.predicted_winner(0.2, 0.5), PredictedOutcome::YWins);

        // On the diagonal the system heads to (1/3, 1/3).
        let tie = rk.integrate(&sys, 0.0, &[0.2, 0.2, 0.6], 20.0).unwrap();
        let last = tie.last_state();
        assert!((last[0] - 1.0 / 3.0).abs() < 1e-3 && (last[1] - 1.0 / 3.0).abs() < 1e-3);
        assert_eq!(params.predicted_winner(0.2, 0.2), PredictedOutcome::Tie);
    }

    #[test]
    fn convergence_complexity_is_logarithmic() {
        let params = LvParams::new();
        // The paper's Figure 11 observation: with p = 0.01, a 100 000-process
        // group converges in < 500 periods.
        let periods = params.expected_convergence_periods(100_000);
        assert!(periods < 500.0, "predicted {periods}");
        // Doubling N adds a constant, not a factor.
        let delta = params.expected_convergence_periods(200_000) - periods;
        assert!(delta < 30.0);
        // The closed-form trajectory decays towards (0, 1).
        let (x0, y0) = params.convergence_trajectory(0.05, 0.05, 0.0);
        assert!((x0 - 0.05).abs() < 1e-12 && (y0 - 0.95).abs() < 1e-12);
        let (x, y) = params.convergence_trajectory(0.05, 0.05, 5.0);
        assert!(x < 1e-6);
        assert!((y - 1.0).abs() < 1e-4);
    }
}
