//! Extension: plurality selection among more than two proposals.
//!
//! The Principle of Competitive Exclusion that motivates the paper's LV
//! protocol is not limited to two species. This module generalizes the
//! construction to `k ≥ 2` competing proposals: whenever supporters of two
//! *different* proposals meet they both become undecided, and undecided
//! processes adopt the proposal of supporters they meet. For `k = 2` the
//! equations reduce exactly to the paper's rewritten system (eq. 7); for
//! larger `k` the group converges, with high probability, on the proposal
//! with the largest initial support (plurality selection).
//!
//! This is a faithful application of the paper's framework to a system it
//! does not explicitly evaluate — the generalized equations are restricted
//! polynomial and completely partitionable, so the compiler of Section 3
//! applies unchanged.

use super::LvParams;
use dpde_core::runtime::{AgentRuntime, CountsRecorder, InitialStates, RunResult, Simulation};
use dpde_core::{CoreError, Protocol, ProtocolCompiler};
use netsim::Scenario;
use odekit::{EquationSystem, EquationSystemBuilder};

/// Name of the undecided state in the generalized protocol.
pub const UNDECIDED: &str = "z";

/// A `k`-proposal competitive-exclusion protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiLvParams {
    /// Number of competing proposals (`k ≥ 2`).
    pub choices: usize,
    /// Competition rate constant (3 in the paper's two-choice system).
    pub rate: f64,
    /// Normalizing constant `p`.
    pub normalizing_constant: f64,
}

impl MultiLvParams {
    /// Creates a `k`-proposal configuration with the paper's rate (3) and
    /// normalizing constant (0.01).
    ///
    /// # Errors
    ///
    /// Returns an error if `choices < 2`.
    pub fn new(choices: usize) -> Result<Self, CoreError> {
        if choices < 2 {
            return Err(CoreError::InvalidConfig {
                name: "choices",
                reason: format!("plurality selection needs at least 2 proposals, got {choices}"),
            });
        }
        Ok(MultiLvParams {
            choices,
            rate: 3.0,
            normalizing_constant: 0.01,
        })
    }

    /// Derives the two-choice parameters this generalizes.
    pub fn as_pairwise(&self) -> LvParams {
        LvParams {
            rate: self.rate,
            normalizing_constant: self.normalizing_constant,
        }
    }

    /// The name of the state backing proposal `i` (0-based).
    pub fn choice_state(&self, i: usize) -> String {
        format!("x{i}")
    }

    /// The generalized competition equations over `k` proposal states plus the
    /// undecided state:
    ///
    /// ```text
    /// ẋᵢ = r·xᵢ·z − r·xᵢ·Σ_{j≠i} xⱼ
    /// ż  = −r·z·Σᵢ xᵢ + r·Σ_{i≠j} xᵢ·xⱼ
    /// ```
    pub fn equations(&self) -> EquationSystem {
        let k = self.choices;
        let r = self.rate;
        let names: Vec<String> = (0..k)
            .map(|i| self.choice_state(i))
            .chain([UNDECIDED.to_string()])
            .collect();
        let mut builder = EquationSystemBuilder::new().vars(names.clone());
        for i in 0..k {
            let xi = names[i].as_str();
            // Recruitment of undecided processes.
            builder = builder.term(xi, r, &[(xi, 1), (UNDECIDED, 1)]);
            builder = builder.term(UNDECIDED, -r, &[(xi, 1), (UNDECIDED, 1)]);
            // Competition with every other proposal.
            for (j, xj) in names.iter().take(k).enumerate() {
                if j == i {
                    continue;
                }
                let xj = xj.as_str();
                builder = builder.term(xi, -r, &[(xi, 1), (xj, 1)]);
                builder = builder.term(UNDECIDED, r, &[(xi, 1), (xj, 1)]);
            }
        }
        builder
            .build()
            .expect("generalized LV equations are well-formed")
    }

    /// The compiled protocol (one state per proposal plus undecided).
    ///
    /// # Errors
    ///
    /// Propagates compiler errors (only possible for an invalid normalizing
    /// constant).
    pub fn protocol(&self) -> Result<Protocol, CoreError> {
        ProtocolCompiler::new(format!("lv-{}-choices", self.choices))
            .with_normalizing_constant(self.normalizing_constant)
            .compile(&self.equations())
    }
}

/// Outcome of a plurality-selection run.
#[derive(Debug, Clone)]
pub struct PluralityOutcome {
    /// The full simulation output.
    pub run: RunResult,
    /// Index of the proposal the group converged on (`None` if no proposal
    /// reached the quorum by the end of the run).
    pub winner: Option<usize>,
    /// Index of the proposal with the largest initial support (`None` for a
    /// tie at the top).
    pub initial_plurality: Option<usize>,
    /// `true` if the winner matches the initial plurality.
    pub correct: bool,
}

/// Driver for plurality selection over the generalized LV protocol.
#[derive(Debug, Clone)]
pub struct PluralitySelection {
    params: MultiLvParams,
    quorum: f64,
}

impl PluralitySelection {
    /// Creates a driver with a 95 % quorum.
    pub fn new(params: MultiLvParams) -> Self {
        PluralitySelection {
            params,
            quorum: 0.95,
        }
    }

    /// The parameters in use.
    pub fn params(&self) -> &MultiLvParams {
        &self.params
    }

    /// Runs plurality selection from the given per-proposal initial support
    /// (must sum to the scenario's group size).
    ///
    /// # Errors
    ///
    /// Propagates protocol and runtime errors (including a mismatched vote
    /// vector).
    pub fn run(&self, scenario: &Scenario, votes: &[u64]) -> Result<PluralityOutcome, CoreError> {
        if votes.len() != self.params.choices {
            return Err(CoreError::InvalidConfig {
                name: "votes",
                reason: format!(
                    "expected {} vote counts, got {}",
                    self.params.choices,
                    votes.len()
                ),
            });
        }
        let protocol = self.params.protocol()?;
        let mut counts = votes.to_vec();
        counts.push(0); // undecided
        let run = Simulation::of(protocol)
            .scenario(scenario.clone())
            .initial(InitialStates::counts(&counts))
            .observe(CountsRecorder::alive_only())
            .run::<AgentRuntime>()?;

        let initial_plurality = unique_argmax(votes);
        let finals: Vec<f64> = (0..self.params.choices)
            .map(|i| {
                run.state_series(&self.params.choice_state(i))
                    .map(|s| *s.last().unwrap_or(&0.0))
                    .unwrap_or(0.0)
            })
            .collect();
        let alive: f64 = run
            .final_counts()
            .map(|last| last.iter().sum())
            .unwrap_or(0.0);
        let winner = finals
            .iter()
            .position(|&c| alive > 0.0 && c / alive >= self.quorum);
        let correct = match (winner, initial_plurality) {
            (Some(w), Some(p)) => w == p,
            _ => false,
        };
        Ok(PluralityOutcome {
            run,
            winner,
            initial_plurality,
            correct,
        })
    }
}

/// Index of the strictly largest entry, or `None` if the maximum is tied.
fn unique_argmax(values: &[u64]) -> Option<usize> {
    let max = *values.iter().max()?;
    let mut winners = values.iter().enumerate().filter(|(_, &v)| v == max);
    let first = winners.next()?.0;
    if winners.next().is_some() {
        None
    } else {
        Some(first)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odekit::taxonomy;

    #[test]
    fn parameter_validation_and_accessors() {
        assert!(MultiLvParams::new(1).is_err());
        let p = MultiLvParams::new(4).unwrap();
        assert_eq!(p.choices, 4);
        assert_eq!(p.choice_state(2), "x2");
        assert_eq!(p.as_pairwise().rate, 3.0);
    }

    #[test]
    fn two_choice_case_matches_the_paper_system() {
        let multi = MultiLvParams::new(2).unwrap();
        let pairwise = multi.as_pairwise().rewritten_equations();
        let generalized = multi.equations();
        // Same dimension and same right-hand sides on the simplex (modulo
        // variable naming: x0, x1, z vs x, y, z).
        assert_eq!(generalized.dim(), pairwise.dim());
        for state in [[0.5, 0.3, 0.2], [0.2, 0.2, 0.6], [0.1, 0.7, 0.2]] {
            let a = generalized.eval_rhs(&state);
            let b = pairwise.eval_rhs(&state);
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn generalized_equations_are_mappable_for_many_choices() {
        for k in [2usize, 3, 5] {
            let p = MultiLvParams::new(k).unwrap();
            let report = taxonomy::classify(&p.equations());
            assert!(report.mappable_without_tokens(), "k = {k}");
            let protocol = p.protocol().unwrap();
            assert_eq!(protocol.num_states(), k + 1);
            // Every proposal state has k actions (one per competitor plus the
            // recruitment edge is hosted by the undecided state): specifically
            // x_i carries k-1 competition actions; z carries k recruitment
            // actions.
            let z = protocol.require_state(UNDECIDED).unwrap();
            assert_eq!(protocol.actions(z).len(), k);
            for i in 0..k {
                let xi = protocol.require_state(&p.choice_state(i)).unwrap();
                assert_eq!(protocol.actions(xi).len(), k - 1);
            }
        }
    }

    #[test]
    fn three_way_plurality_selects_the_largest_camp() {
        let params = MultiLvParams::new(3).unwrap();
        let selector = PluralitySelection::new(params);
        let scenario = Scenario::new(2_000, 1_000).unwrap().with_seed(33);
        let outcome = selector.run(&scenario, &[900, 650, 450]).unwrap();
        assert_eq!(outcome.initial_plurality, Some(0));
        assert_eq!(outcome.winner, Some(0), "largest camp should win");
        assert!(outcome.correct);
        // Conservation.
        for (_, s) in outcome.run.counts.iter() {
            assert_eq!(s.iter().sum::<f64>(), 2_000.0);
        }
    }

    #[test]
    fn vote_vector_must_match_choice_count() {
        let params = MultiLvParams::new(3).unwrap();
        let selector = PluralitySelection::new(params);
        let scenario = Scenario::new(100, 10).unwrap();
        assert!(selector.run(&scenario, &[50, 50]).is_err());
        assert_eq!(selector.params().choices, 3);
    }

    #[test]
    fn unique_argmax_handles_ties() {
        assert_eq!(unique_argmax(&[1, 5, 3]), Some(1));
        assert_eq!(unique_argmax(&[5, 5, 3]), None);
        assert_eq!(unique_argmax(&[]), None);
    }
}
