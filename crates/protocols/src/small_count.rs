//! The "near-tie takeover" scenario family: runs engineered to live in the
//! small-count regime that mean-field batching cannot serve.
//!
//! The paper's most interesting finite-N phenomena happen exactly where some
//! state's population is *small*:
//!
//! * **LV majority tie-breaking** (Figure 11): started from a near-tie
//!   (e.g. a 50.5 / 49.5 split), the deterministic competition equations sit
//!   close to the saddle and stochastic fluctuations of a few hundred
//!   processes decide which proposal takes over — occasionally the initial
//!   *minority*.
//! * **Endemic extinction**: at the endemic equilibrium only a handful of
//!   processes stash the replica (≈ 7 at N = 1000 for the Figure 2
//!   parameters), so a random fluctuation can drive the stash count into the
//!   absorbing zero — the probabilistic-safety event the longevity analysis
//!   bounds.
//!
//! Both families resolve through
//! [`Simulation::run_auto`](dpde_core::runtime::Simulation::run_auto) to the
//! [`HybridRuntime`](dpde_core::runtime::HybridRuntime) tier: count-batched
//! while every population is large, per-process when the deciding counts run
//! small.

use crate::endemic::{EndemicParams, STASH};
use crate::lv::majority::{Decision, MajorityOutcome, MajoritySelection};
use crate::lv::LvParams;
use dpde_core::CoreError;
use netsim::Scenario;

/// LV majority selection started from a near-tie split — the takeover
/// scenario family.
///
/// With `imbalance` ε, a group of `n` processes starts with `⌈(0.5 + ε)·n⌉`
/// proposers of 0 and the rest proposing 1. For small ε the margin is only
/// `2εn` processes, so the race between the two proposals is decided by
/// small-count fluctuations around the saddle of the competition equations —
/// the initial minority takes over in a non-negligible fraction of runs.
///
/// # Examples
///
/// ```
/// use dpde_protocols::small_count::NearTieTakeover;
///
/// // 50.5 / 49.5 split of 2000 processes.
/// let family = NearTieTakeover::new().with_imbalance(0.005)?;
/// assert_eq!(family.split(2_000), (1_010, 990));
/// # Ok::<(), dpde_core::CoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct NearTieTakeover {
    selection: MajoritySelection,
    imbalance: f64,
}

/// Outcome of one near-tie run.
#[derive(Debug, Clone)]
pub struct TakeoverOutcome {
    /// The underlying majority-selection outcome.
    pub outcome: MajorityOutcome,
    /// `true` if the group converged on the initial *minority* value — the
    /// takeover event this family exists to measure.
    pub minority_takeover: bool,
}

impl Default for NearTieTakeover {
    fn default() -> Self {
        Self::new()
    }
}

impl NearTieTakeover {
    /// Creates the family with the paper's LV parameters and a 0.5 %
    /// imbalance (a 50.5 / 49.5 split).
    pub fn new() -> Self {
        NearTieTakeover {
            selection: MajoritySelection::new(LvParams::new()),
            imbalance: 0.005,
        }
    }

    /// Replaces the majority-selection driver (LV parameters, quorum).
    #[must_use]
    pub fn with_selection(mut self, selection: MajoritySelection) -> Self {
        self.selection = selection;
        self
    }

    /// Sets the imbalance ε: proposal 0 starts with a `0.5 + ε` fraction.
    ///
    /// # Errors
    ///
    /// Returns an error unless `ε ∈ [0, 0.5)`.
    pub fn with_imbalance(mut self, imbalance: f64) -> Result<Self, CoreError> {
        if !(imbalance.is_finite() && (0.0..0.5).contains(&imbalance)) {
            return Err(CoreError::InvalidConfig {
                name: "imbalance",
                reason: format!("imbalance must lie in [0, 0.5), got {imbalance}"),
            });
        }
        self.imbalance = imbalance;
        Ok(self)
    }

    /// The configured imbalance ε.
    pub fn imbalance(&self) -> f64 {
        self.imbalance
    }

    /// The `(zeros, ones)` split for a group of `n` processes.
    pub fn split(&self, n: u64) -> (u64, u64) {
        let zeros = ((0.5 + self.imbalance) * n as f64).ceil().min(n as f64) as u64;
        (zeros, n - zeros)
    }

    /// Runs one near-tie selection under the given scenario.
    ///
    /// # Errors
    ///
    /// Propagates protocol and runtime errors.
    pub fn run(&self, scenario: &Scenario) -> Result<TakeoverOutcome, CoreError> {
        let (zeros, ones) = self.split(scenario.group_size() as u64);
        let outcome = self.selection.run(scenario, zeros, ones)?;
        let minority_takeover = match outcome.initial_majority {
            Decision::Zero => outcome.decision == Decision::One,
            Decision::One => outcome.decision == Decision::Zero,
            // An exact tie has no minority to take over.
            Decision::Undecided => false,
        };
        Ok(TakeoverOutcome {
            outcome,
            minority_takeover,
        })
    }

    /// Runs `repetitions` independent near-tie selections (varying the seed)
    /// and returns `(decided, takeovers)`: how many runs reached a quorum
    /// decision at all, and how many of those were won by the initial
    /// minority.
    ///
    /// # Errors
    ///
    /// Propagates protocol and runtime errors.
    pub fn takeover_count(
        &self,
        n: usize,
        periods: u64,
        repetitions: u32,
        seed_base: u64,
    ) -> Result<(u32, u32), CoreError> {
        let mut decided = 0;
        let mut takeovers = 0;
        for rep in 0..repetitions {
            let scenario = Scenario::new(n, periods)?.with_seed(seed_base + u64::from(rep));
            let run = self.run(&scenario)?;
            if run.outcome.decision != Decision::Undecided {
                decided += 1;
                if run.minority_takeover {
                    takeovers += 1;
                }
            }
        }
        Ok((decided, takeovers))
    }
}

/// Endemic runs driven to near-extinction — the absorbing-boundary half of
/// the scenario family.
///
/// The group size is chosen so the endemic equilibrium sustains only
/// `target_stashers` replica holders; from there, stochastic fluctuations of
/// the handful of stashers can hit the absorbing zero (every replica lost),
/// the probabilistic-safety event of the paper's longevity analysis. Runs
/// start *at* the equilibrium so every period probes the small-count regime.
///
/// # Examples
///
/// ```
/// use dpde_protocols::small_count::NearExtinction;
///
/// let family = NearExtinction::new(8.0)?;
/// assert!((family.expected_stashers() - 8.0).abs() < 0.5);
/// # Ok::<(), dpde_core::CoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct NearExtinction {
    params: EndemicParams,
    n: u64,
}

/// Outcome of one near-extinction run.
#[derive(Debug, Clone)]
pub struct ExtinctionOutcome {
    /// The full simulation output (counts per period).
    pub run: dpde_core::runtime::RunResult,
    /// First period at which the stash count hit zero, if it did. Extinction
    /// is absorbing: no receptive process can ever stash again.
    pub extinction_period: Option<u64>,
}

impl NearExtinction {
    /// Creates the family with replication-style parameters (β = 4 via
    /// b = 2 contacts, γ = 0.1 and a small α = 6.25·10⁻⁴, so the endemic
    /// stash fraction is ≈ 0.6 %), sized so the equilibrium sustains about
    /// `target_stashers` replica holders.
    ///
    /// # Errors
    ///
    /// Returns an error unless `target_stashers` is positive and finite.
    pub fn new(target_stashers: f64) -> Result<Self, CoreError> {
        let params = EndemicParams::from_contact_count(2, 0.1, 6.25e-4)?;
        Self::with_params(params, target_stashers)
    }

    /// Creates the family with explicit endemic parameters.
    ///
    /// # Errors
    ///
    /// Returns an error unless `target_stashers` is positive and finite.
    pub fn with_params(params: EndemicParams, target_stashers: f64) -> Result<Self, CoreError> {
        if !(target_stashers.is_finite() && target_stashers > 0.0) {
            return Err(CoreError::InvalidConfig {
                name: "target_stashers",
                reason: format!("target must be positive and finite, got {target_stashers}"),
            });
        }
        // expected_stashers is linear in n, so invert it at n = 1. A
        // non-positive fraction means the parameters admit no endemic
        // equilibrium (γ ≥ β — constructible by mutating the public fields),
        // and the family would be degenerate: reject loudly.
        let per_process = params.expected_stashers(1.0);
        if !(per_process.is_finite() && per_process > 0.0) {
            return Err(CoreError::InvalidConfig {
                name: "params",
                reason: format!(
                    "parameters admit no endemic equilibrium \
                     (stash fraction {per_process}); need β > γ > 0"
                ),
            });
        }
        let n = (target_stashers / per_process).round().max(4.0) as u64;
        Ok(NearExtinction { params, n })
    }

    /// The endemic parameters in use.
    pub fn params(&self) -> &EndemicParams {
        &self.params
    }

    /// The derived group size.
    pub fn group_size(&self) -> u64 {
        self.n
    }

    /// The expected stash population at the endemic equilibrium for the
    /// derived group size.
    pub fn expected_stashers(&self) -> f64 {
        self.params.expected_stashers(self.n as f64)
    }

    /// The equilibrium initial counts (receptive truncated, stash rounded
    /// with a floor of one process, remainder to averse — see
    /// [`EndemicParams::equilibrium_counts`]).
    pub fn initial_counts(&self) -> [u64; 3] {
        self.params.equilibrium_counts(self.n)
    }

    /// Runs one near-extinction trajectory for `periods` periods under the
    /// given seed and reports when (if ever) the stash population hit the
    /// absorbing zero.
    ///
    /// # Errors
    ///
    /// Propagates protocol and runtime errors.
    pub fn run(&self, periods: u64, seed: u64) -> Result<ExtinctionOutcome, CoreError> {
        use dpde_core::runtime::{CountsRecorder, InitialStates, Simulation};
        let protocol = self.params.figure1_protocol()?;
        let scenario = Scenario::new(self.n as usize, periods)?.with_seed(seed);
        let counts = self.initial_counts();
        let run = Simulation::of(protocol)
            .scenario(scenario)
            .initial(InitialStates::counts(&counts))
            .observe(CountsRecorder::new())
            .run_auto()?;
        let stash = run.state_series(STASH)?;
        let extinction_period = stash.iter().position(|&y| y == 0.0).map(|p| p as u64);
        Ok(ExtinctionOutcome {
            run,
            extinction_period,
        })
    }

    /// Runs `repetitions` independent trajectories and returns the fraction
    /// in which the replica went extinct within `periods` periods.
    ///
    /// # Errors
    ///
    /// Propagates protocol and runtime errors.
    pub fn extinction_rate(
        &self,
        periods: u64,
        repetitions: u32,
        seed_base: u64,
    ) -> Result<f64, CoreError> {
        let mut extinct = 0u32;
        for rep in 0..repetitions {
            if self
                .run(periods, seed_base + u64::from(rep))?
                .extinction_period
                .is_some()
            {
                extinct += 1;
            }
        }
        Ok(f64::from(extinct) / f64::from(repetitions.max(1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_and_validation() {
        let family = NearTieTakeover::new();
        assert_eq!(family.imbalance(), 0.005);
        assert_eq!(family.split(2_000), (1_010, 990));
        assert_eq!(family.split(100_000), (50_500, 49_500));
        // ε = 0 is an exact tie; ε ≥ 0.5 is rejected.
        assert_eq!(
            NearTieTakeover::new()
                .with_imbalance(0.0)
                .unwrap()
                .split(100),
            (50, 50)
        );
        assert!(NearTieTakeover::new().with_imbalance(0.5).is_err());
        assert!(NearTieTakeover::new().with_imbalance(-0.1).is_err());
    }

    #[test]
    fn near_tie_runs_resolve_to_a_takeover_or_a_majority_win() {
        // A 51/49 split of 1000 processes: the saddle is close, so the run
        // decides for one of the proposals (which one varies by seed); the
        // outcome bookkeeping must be consistent either way.
        let family = NearTieTakeover::new().with_imbalance(0.01).unwrap();
        let scenario = Scenario::new(1_000, 1_500).unwrap().with_seed(31);
        let run = family.run(&scenario).unwrap();
        assert!(matches!(
            run.outcome.decision,
            Decision::Zero | Decision::One
        ));
        assert_eq!(
            run.minority_takeover,
            run.outcome.decision == Decision::One,
            "zeros start as the majority"
        );
        // Counting over seeds: every decided run is either a majority win or
        // a takeover.
        let (decided, takeovers) = family.takeover_count(600, 1_200, 4, 500).unwrap();
        assert!(decided >= 3, "near-tie runs should mostly decide");
        assert!(takeovers <= decided);
    }

    #[test]
    fn near_extinction_family_is_sized_from_the_target() {
        let family = NearExtinction::new(8.0).unwrap();
        assert!((family.expected_stashers() - 8.0).abs() < 0.5);
        let counts = family.initial_counts();
        assert_eq!(counts.iter().sum::<u64>(), family.group_size());
        // The stash population starts small — the whole point of the family.
        assert!(counts[1] < dpde_core::runtime::SMALL_COUNT_THRESHOLD);
        assert!(NearExtinction::new(0.0).is_err());
        assert!(NearExtinction::new(f64::NAN).is_err());
        // Parameters without an endemic equilibrium (γ ≥ β via direct field
        // mutation) are rejected instead of producing a degenerate family.
        let mut subcritical = EndemicParams::from_contact_count(2, 0.1, 6.25e-4).unwrap();
        subcritical.gamma = 1.0;
        subcritical.beta = 0.5;
        assert!(NearExtinction::with_params(subcritical, 6.0).is_err());
    }

    #[test]
    fn near_extinction_runs_report_the_absorbing_event() {
        // With only ~5 stashers, extinction within 4000 periods is common;
        // across a few seeds at least one run must hit the absorbing zero,
        // and the report must match the recorded series.
        let family = NearExtinction::new(5.0).unwrap();
        let mut saw_extinction = false;
        for seed in 0..6 {
            let outcome = family.run(4_000, seed).unwrap();
            let stash = outcome.run.state_series(STASH).unwrap();
            match outcome.extinction_period {
                Some(p) => {
                    saw_extinction = true;
                    assert_eq!(stash[p as usize], 0.0);
                    // Absorbing: once extinct, extinct forever.
                    assert!(stash[p as usize..].iter().all(|&y| y == 0.0));
                }
                None => assert!(stash.iter().all(|&y| y > 0.0)),
            }
        }
        assert!(saw_extinction, "no extinction in 6 seeds × 4000 periods");
    }
}
