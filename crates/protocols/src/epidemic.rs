//! The canonical epidemic (anti-entropy) dissemination protocol — the paper's
//! motivating example (Section 1).
//!
//! The equations `ẋ = −xy, ẏ = xy` over the fractions of susceptible (`x`)
//! and infected (`y`) processes compile directly into the canonical *pull*
//! epidemic: every susceptible process periodically contacts one uniformly
//! random member and becomes infected if that member is infected. A *push*
//! variant (infected processes push to random members) and a *push–pull*
//! combination are also provided for comparison experiments.

use dpde_core::runtime::{AgentRuntime, InitialStates, RunResult, Simulation};
use dpde_core::{Action, Protocol, ProtocolCompiler};
use netsim::Scenario;
use odekit::{EquationSystem, EquationSystemBuilder};

/// Which direction(s) infection travels on a contact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EpidemicStyle {
    /// Susceptible processes pull from random members (the canonical protocol
    /// the compiler produces from the epidemic equations).
    #[default]
    Pull,
    /// Infected processes push to random members.
    Push,
    /// Both directions on every period.
    PushPull,
}

/// The epidemic dissemination protocol and its source equations.
#[derive(Debug, Clone)]
pub struct Epidemic {
    style: EpidemicStyle,
    fanout: u32,
}

impl Default for Epidemic {
    fn default() -> Self {
        Epidemic {
            style: EpidemicStyle::Pull,
            fanout: 1,
        }
    }
}

impl Epidemic {
    /// Creates the canonical pull epidemic with fan-out 1.
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the contact style.
    #[must_use]
    pub fn with_style(mut self, style: EpidemicStyle) -> Self {
        self.style = style;
        self
    }

    /// Sets the per-period fan-out (number of contacts per process).
    #[must_use]
    pub fn with_fanout(mut self, fanout: u32) -> Self {
        self.fanout = fanout.max(1);
        self
    }

    /// The configured style.
    pub fn style(&self) -> EpidemicStyle {
        self.style
    }

    /// The source differential equations (equation (0) of the paper), over
    /// fractions: `ẋ = −xy, ẏ = xy`.
    pub fn equations(&self) -> EquationSystem {
        EquationSystemBuilder::new()
            .vars(["x", "y"])
            .term("x", -1.0, &[("x", 1), ("y", 1)])
            .term("y", 1.0, &[("x", 1), ("y", 1)])
            .build()
            .expect("epidemic equations are well-formed")
    }

    /// Builds the protocol state machine.
    ///
    /// The pull variant is compiled straight from the equations; push and
    /// push–pull are the paper-style variants built from
    /// [`Action::SampleAny`] / [`Action::PushSample`].
    pub fn protocol(&self) -> Protocol {
        match self.style {
            EpidemicStyle::Pull if self.fanout == 1 => ProtocolCompiler::new("epidemic-pull")
                .compile(&self.equations())
                .expect("epidemic equations are mappable"),
            _ => {
                let mut protocol =
                    Protocol::new("epidemic", vec!["x".to_string(), "y".to_string()])
                        .expect("two distinct states");
                let x = protocol.require_state("x").expect("state x");
                let y = protocol.require_state("y").expect("state y");
                if matches!(self.style, EpidemicStyle::Pull | EpidemicStyle::PushPull) {
                    protocol
                        .add_action(
                            x,
                            Action::SampleAny {
                                target_state: y,
                                samples: self.fanout,
                                prob: 1.0,
                                to: y,
                            },
                        )
                        .expect("valid pull action");
                }
                if matches!(self.style, EpidemicStyle::Push | EpidemicStyle::PushPull) {
                    protocol
                        .add_action(
                            y,
                            Action::PushSample {
                                target_state: x,
                                samples: self.fanout,
                                prob: 1.0,
                                to: y,
                            },
                        )
                        .expect("valid push action");
                }
                protocol
            }
        }
    }

    /// Runs a multicast dissemination: `initial_infected` processes start with
    /// the payload; returns the full run result.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors (invalid scenario / initial distribution).
    pub fn disseminate(
        &self,
        scenario: &Scenario,
        initial_infected: u64,
    ) -> dpde_core::Result<RunResult> {
        let n = scenario.group_size() as u64;
        let initial = InitialStates::counts(&[n - initial_infected, initial_infected]);
        Simulation::of(self.protocol())
            .scenario(scenario.clone())
            .initial(initial)
            .record_defaults()
            .run::<AgentRuntime>()
    }

    /// The number of periods after which the number of susceptibles first
    /// drops to at most `threshold`, if it ever does.
    pub fn rounds_to_reach(result: &RunResult, threshold: f64) -> Option<u64> {
        let xs = result.state_series("x").ok()?;
        xs.iter().position(|&v| v <= threshold).map(|p| p as u64)
    }

    /// The paper's analytical prediction: dissemination completes (down to
    /// `O(1)` susceptibles) in `O(log N)` protocol periods. This returns the
    /// constant-free estimate `log2(N) + ln(N)` commonly used for pull
    /// epidemics, useful as a sanity bound in tests and benchmarks.
    pub fn expected_rounds(n: u64) -> f64 {
        let n = n.max(2) as f64;
        n.log2() + n.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odekit::taxonomy;

    #[test]
    fn equations_are_mappable_and_complete() {
        let eq = Epidemic::new().equations();
        assert!(taxonomy::is_completely_partitionable(&eq));
        assert!(taxonomy::is_restricted_polynomial(&eq));
    }

    #[test]
    fn pull_protocol_matches_compiler_output() {
        let e = Epidemic::new();
        let p = e.protocol();
        assert_eq!(p.num_states(), 2);
        assert_eq!(p.num_actions(), 1);
        assert_eq!(e.style(), EpidemicStyle::Pull);
    }

    #[test]
    fn push_pull_protocol_has_two_actions() {
        let p = Epidemic::new()
            .with_style(EpidemicStyle::PushPull)
            .with_fanout(2)
            .protocol();
        assert_eq!(p.num_actions(), 2);
        let push_only = Epidemic::new().with_style(EpidemicStyle::Push).protocol();
        assert_eq!(push_only.num_actions(), 1);
        // Fan-out is clamped to at least 1.
        let e = Epidemic::new().with_fanout(0);
        assert_eq!(e.protocol().num_actions(), 1);
    }

    #[test]
    fn dissemination_reaches_everyone_in_logarithmic_rounds() {
        let n = 2048usize;
        let scenario = Scenario::new(n, 60).unwrap().with_seed(3);
        let result = Epidemic::new().disseminate(&scenario, 1).unwrap();
        assert!(result.final_counts().unwrap()[1] as usize > n - 5);
        let rounds = Epidemic::rounds_to_reach(&result, 5.0).expect("should saturate");
        assert!(
            (rounds as f64) < 2.5 * Epidemic::expected_rounds(n as u64),
            "rounds {rounds} vs expected {}",
            Epidemic::expected_rounds(n as u64)
        );
    }

    #[test]
    fn push_pull_is_at_least_as_fast_as_pull() {
        let n = 2048usize;
        let pull_scenario = Scenario::new(n, 60).unwrap().with_seed(5);
        let pull = Epidemic::new().disseminate(&pull_scenario, 1).unwrap();
        let pp_scenario = Scenario::new(n, 60).unwrap().with_seed(5);
        let pp = Epidemic::new()
            .with_style(EpidemicStyle::PushPull)
            .disseminate(&pp_scenario, 1)
            .unwrap();
        let pull_rounds = Epidemic::rounds_to_reach(&pull, 5.0).unwrap();
        let pp_rounds = Epidemic::rounds_to_reach(&pp, 5.0).unwrap();
        assert!(
            pp_rounds <= pull_rounds,
            "push-pull {pp_rounds} vs pull {pull_rounds}"
        );
    }

    #[test]
    fn rounds_to_reach_handles_missing_threshold() {
        let n = 64usize;
        let scenario = Scenario::new(n, 2).unwrap().with_seed(1);
        let result = Epidemic::new().disseminate(&scenario, 1).unwrap();
        // Too few rounds to empty the susceptibles entirely.
        assert_eq!(Epidemic::rounds_to_reach(&result, 0.0), None);
    }
}
