//! Analysis of the endemic protocol (Section 4.1.3 of the paper): equilibria,
//! stability, convergence complexity, probabilistic safety (replica
//! longevity) and the Section 5.1 "reality check" bandwidth model.

use super::EndemicParams;
use odekit::analysis::{analyze_equilibrium, Stability, StabilityReport};
use odekit::OdeError;

/// The two equilibria of the endemic equations (eq. 2), expressed in process
/// counts for a group of size `n`.
#[derive(Debug, Clone, PartialEq)]
pub struct EndemicEquilibria {
    /// The trivial equilibrium `(N, 0, 0)`: every replica has disappeared.
    pub trivial: [f64; 3],
    /// The endemic (desirable) equilibrium
    /// `(γ/β·N, (N − γN/β)/(1 + γ/α), (N − γN/β)/(1 + α/γ))`.
    pub endemic: [f64; 3],
}

impl EndemicParams {
    /// The equilibria of the endemic equations for a group of `n` processes
    /// (the paper's eq. 2, with the errata's count normalization).
    pub fn equilibria(&self, n: f64) -> EndemicEquilibria {
        let x = self.gamma / self.beta * n;
        let rest = n - x;
        let y = rest / (1.0 + self.gamma / self.alpha);
        let z = rest / (1.0 + self.alpha / self.gamma);
        EndemicEquilibria {
            trivial: [n, 0.0, 0.0],
            endemic: [x, y, z],
        }
    }

    /// The expected number of stashers (replicas) at the endemic equilibrium.
    pub fn expected_stashers(&self, n: f64) -> f64 {
        self.equilibria(n).endemic[1]
    }

    /// The endemic equilibrium as integer initial counts for a group of `n`
    /// processes: receptive truncated, stash rounded with a floor of one
    /// process (so the replica exists), and the remainder assigned to
    /// averse. The canonical way to start a simulation *at* the equilibrium
    /// (benchmarks, the near-extinction scenario family).
    pub fn equilibrium_counts(&self, n: u64) -> [u64; 3] {
        let eq = self.equilibria(n as f64).endemic;
        let receptive = (eq[0] as u64).min(n);
        let stash = (eq[1].round().max(1.0) as u64).min(n - receptive);
        [receptive, stash, n - receptive - stash]
    }

    /// The paper's reduced 2×2 perturbation matrix `A` (eq. 4):
    /// `σ = (βN − γ)/(1 + γ/α)` and
    /// `A = [[−(σ+α), −σ(γ+α)], [1, 0]]`, with `N = 1` over fractions.
    pub fn perturbation_matrix(&self) -> [[f64; 2]; 2] {
        let sigma = (self.beta - self.gamma) / (1.0 + self.gamma / self.alpha);
        [
            [-(sigma + self.alpha), -sigma * (self.gamma + self.alpha)],
            [1.0, 0.0],
        ]
    }

    /// Trace `τ` and determinant `∆` of the perturbation matrix (eq. 5).
    pub fn trace_det(&self) -> (f64, f64) {
        let a = self.perturbation_matrix();
        (a[0][0] + a[1][1], a[0][0] * a[1][1] - a[0][1] * a[1][0])
    }

    /// Theorem 3: the endemic equilibrium is always stable when `α, γ > 0` and
    /// `β > γ` (i.e. `τ < 0 < ∆`).
    pub fn endemic_equilibrium_is_stable(&self) -> bool {
        let (tau, delta) = self.trace_det();
        tau < 0.0 && delta > 0.0
    }

    /// Which of the three convergence regimes of Section 4.1.3 applies,
    /// together with the discriminant `τ² − 4∆`.
    pub fn convergence_case(&self) -> (ConvergenceCase, f64) {
        let (tau, delta) = self.trace_det();
        let disc = tau * tau - 4.0 * delta;
        let case = if disc < 0.0 {
            ConvergenceCase::DampedOscillation
        } else if disc > 0.0 {
            ConvergenceCase::RealDistinct
        } else {
            ConvergenceCase::RealEqual
        };
        (case, disc)
    }

    /// The closed-form perturbation envelope of case 1 (stable spiral):
    /// `u(t) = u₀·e^{−t(σ+α)/2}·cos(t·√(σγ − (σ−α)²/4))`.
    ///
    /// Only meaningful when [`convergence_case`](Self::convergence_case)
    /// returns [`ConvergenceCase::DampedOscillation`].
    pub fn spiral_perturbation(&self, u0: f64, t: f64) -> f64 {
        let sigma = (self.beta - self.gamma) / (1.0 + self.gamma / self.alpha);
        let decay = (sigma + self.alpha) / 2.0;
        let freq_sq = sigma * self.gamma - (sigma - self.alpha).powi(2) / 4.0;
        let freq = freq_sq.max(0.0).sqrt();
        u0 * (-t * decay).exp() * (t * freq).cos()
    }

    /// Full numerical stability report at the endemic equilibrium (fractions),
    /// using the generic non-linear-dynamics toolbox. The reduced
    /// classification matches Theorem 3 (stable spiral for the Figure 2
    /// parameters).
    ///
    /// # Errors
    ///
    /// Propagates eigenvalue-computation failures (does not occur for valid
    /// parameters).
    pub fn stability_report(&self) -> Result<StabilityReport, OdeError> {
        let eq = self.equilibria(1.0).endemic;
        analyze_equilibrium(&self.equations(), &eq)
    }

    /// `true` if the generic analysis classifies the endemic equilibrium as a
    /// stable spiral (the paper's Figure 2 case).
    ///
    /// # Errors
    ///
    /// Propagates eigenvalue-computation failures.
    pub fn is_stable_spiral(&self) -> Result<bool, OdeError> {
        Ok(self.stability_report()?.classification_reduced == Stability::StableSpiral)
    }
}

/// The three convergence regimes of Section 4.1.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConvergenceCase {
    /// `τ² − 4∆ < 0`: complex eigenvalues, damped oscillation (stable spiral).
    DampedOscillation,
    /// `τ² − 4∆ > 0`: distinct real eigenvalues.
    RealDistinct,
    /// `τ² − 4∆ = 0`: equal real eigenvalues.
    RealEqual,
}

/// Probabilistic safety (replica longevity) estimates — the paper's
/// "back of the envelope" calculation at the end of Section 4.1.3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Longevity {
    /// Number of stashers at equilibrium (`y∞`).
    pub stashers: f64,
    /// Probability that all stashers die before creating a new one: `(1/2)^y∞`.
    pub extinction_probability: f64,
    /// Expected object lifetime in protocol periods: `2^y∞`.
    pub expected_periods: f64,
    /// Expected object lifetime in years, given the protocol period length.
    pub expected_years: f64,
}

/// Computes the longevity estimate for `stashers` equilibrium replicas and a
/// protocol period of `period_secs` seconds.
pub fn longevity(stashers: f64, period_secs: f64) -> Longevity {
    let extinction_probability = 0.5_f64.powf(stashers);
    let expected_periods = 2.0_f64.powf(stashers);
    let seconds_per_year = 365.25 * 24.0 * 3600.0;
    Longevity {
        stashers,
        extinction_probability,
        expected_periods,
        expected_years: expected_periods * period_secs / seconds_per_year,
    }
}

/// Number of equilibrium replicas needed so that the extinction probability is
/// `1/N^c` — the paper's rule `y∞ = c·log₂(N)`.
pub fn replicas_for_extinction_exponent(c: f64, n: f64) -> f64 {
    c * n.log2()
}

/// The Section 5.1 "reality check": per-host storage duty cycle and bandwidth
/// for a single replicated file.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RealityCheck {
    /// Fraction of time a given host stores the file (`y∞ / N`).
    pub storage_duty_cycle: f64,
    /// Average number of protocol periods a host keeps the file once it
    /// becomes a stasher (`1/γ`).
    pub storage_duration_periods: f64,
    /// Average storage duration in hours.
    pub storage_duration_hours: f64,
    /// Expected file transfers per protocol period across the whole system
    /// (`y∞·γ` at equilibrium).
    pub transfers_per_period: f64,
    /// Bandwidth per file per host in bits per second, counting both the
    /// sending and the receiving endpoint of each transfer (which is how the
    /// paper's 3.92×10⁻³ bps figure is obtained).
    pub bandwidth_bps_per_host: f64,
}

/// Computes the reality-check figures for a group of `n` hosts, `stashers`
/// equilibrium replicas, recovery rate `gamma`, a protocol period of
/// `period_secs` seconds and a file of `file_bytes` bytes.
pub fn reality_check(
    n: f64,
    stashers: f64,
    gamma: f64,
    period_secs: f64,
    file_bytes: f64,
) -> RealityCheck {
    let storage_duty_cycle = stashers / n;
    let storage_duration_periods = 1.0 / gamma;
    let transfers_per_period = stashers * gamma;
    let bits_per_transfer = file_bytes * 8.0;
    // Each transfer consumes bandwidth at both endpoints.
    let system_bps = 2.0 * transfers_per_period * bits_per_transfer / period_secs;
    RealityCheck {
        storage_duty_cycle,
        storage_duration_periods,
        storage_duration_hours: storage_duration_periods * period_secs / 3600.0,
        transfers_per_period,
        bandwidth_bps_per_host: system_bps / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure2_params() -> EndemicParams {
        EndemicParams::new(4.0, 1.0, 0.01).unwrap()
    }

    #[test]
    fn equilibria_match_closed_form() {
        // Figure 2 parameters, N = 1000.
        let p = figure2_params();
        let eq = p.equilibria(1000.0);
        assert_eq!(eq.trivial, [1000.0, 0.0, 0.0]);
        // x∞ = γ/β·N = 250.
        assert!((eq.endemic[0] - 250.0).abs() < 1e-9);
        // y∞ = (N - γN/β)/(1 + γ/α) = 750/101.
        assert!((eq.endemic[1] - 750.0 / 101.0).abs() < 1e-9);
        // z∞ = 750/(1 + 0.01).
        assert!((eq.endemic[2] - 750.0 / 1.01).abs() < 1e-9);
        // The three components sum to N.
        let sum: f64 = eq.endemic.iter().sum();
        assert!((sum - 1000.0).abs() < 1e-9);
        assert!((p.expected_stashers(1000.0) - eq.endemic[1]).abs() < 1e-12);
        // Integer equilibrium counts cover the whole group, track the real
        // equilibrium, and always include at least one stasher.
        let counts = p.equilibrium_counts(1000);
        assert_eq!(counts.iter().sum::<u64>(), 1000);
        assert!(counts[1] >= 1);
        for (c, e) in counts.iter().zip(&eq.endemic) {
            assert!((*c as f64 - e).abs() <= 1.0, "{c} vs {e}");
        }
        // It really is an equilibrium of the equations (fractions).
        let frac_eq = p.equilibria(1.0).endemic;
        let rhs = p.equations().eval_rhs(&frac_eq);
        assert!(rhs.iter().all(|v| v.abs() < 1e-12), "rhs {rhs:?}");
    }

    #[test]
    fn figure7_equilibrium_stasher_counts() {
        // Figure 7 parameters: b = 2 (β = 4), γ = 0.1, α = 0.001.
        let p = EndemicParams::from_contact_count(2, 0.1, 0.001).unwrap();
        // Receptives: x∞ = γ/β·N = 2500 at N = 100 000; stashers ≈ 988.
        let eq = p.equilibria(100_000.0).endemic;
        assert!((eq[0] - 2_500.0).abs() < 1e-9);
        assert!((eq[1] - 97_500.0 / 101.0).abs() < 1e-6);
        // Scaling with N is (almost exactly) linear in the stasher count.
        let ratio = p.expected_stashers(100_000.0) / p.expected_stashers(12_500.0);
        assert!((ratio - 8.0).abs() < 0.1, "ratio {ratio}");

        // Figure 8's caption quotes 88.63 stashers at N = 1000; that number
        // corresponds to γ/α = 10 (α = 0.01 with γ = 0.1): (1000 − 25)/11.
        let p8 = EndemicParams::from_contact_count(2, 0.1, 0.01).unwrap();
        let y = p8.expected_stashers(1000.0);
        assert!((y - 88.63).abs() < 0.05, "y∞ = {y}");
        // ...and one new stasher is then created every γ·y∞ per 6-minute
        // period ≈ every 40.6 seconds, as the paper states.
        let seconds_between_stashers = 360.0 / (0.1 * y);
        assert!((seconds_between_stashers - 40.6).abs() < 0.2);
    }

    #[test]
    fn theorem3_stability_holds_for_valid_parameters() {
        for (beta, gamma, alpha) in [
            (4.0, 1.0, 0.01),
            (4.0, 0.1, 0.001),
            (64.0, 0.1, 0.005),
            (2.0, 0.5, 1.0),
        ] {
            let p = EndemicParams::new(beta, gamma, alpha).unwrap();
            assert!(
                p.endemic_equilibrium_is_stable(),
                "β={beta}, γ={gamma}, α={alpha}"
            );
            let (tau, delta) = p.trace_det();
            assert!(tau < 0.0 && delta > 0.0);
        }
    }

    #[test]
    fn figure2_parameters_give_a_stable_spiral() {
        let p = figure2_params();
        let (case, disc) = p.convergence_case();
        assert_eq!(case, ConvergenceCase::DampedOscillation);
        assert!(disc < 0.0);
        assert!(p.is_stable_spiral().unwrap());
        // The spiral envelope decays.
        let early = p.spiral_perturbation(1.0, 0.0);
        let late = p.spiral_perturbation(1.0, 200.0).abs();
        assert_eq!(early, 1.0);
        assert!(late < 0.05);
        // The trivial equilibrium is a saddle (paper's corollary).
        let report = analyze_equilibrium(&p.equations(), &[1.0, 0.0, 0.0]).unwrap();
        assert_eq!(report.classification_reduced, Stability::Saddle);
    }

    #[test]
    fn real_eigenvalue_regime_exists() {
        // Large α relative to σ gives distinct real eigenvalues.
        let p = EndemicParams::new(1.1, 1.0, 1.0).unwrap();
        let (case, disc) = p.convergence_case();
        assert_eq!(case, ConvergenceCase::RealDistinct);
        assert!(disc > 0.0);
        assert!(p.endemic_equilibrium_is_stable());
    }

    #[test]
    fn longevity_matches_paper_examples() {
        // N = 1024, 50 replicas, 6-minute period → ≈ 1.28e10 years.
        let l = longevity(50.0, 360.0);
        assert!(
            (l.expected_years / 1.28e10 - 1.0).abs() < 0.05,
            "{}",
            l.expected_years
        );
        assert!((l.extinction_probability - 0.5_f64.powi(50)).abs() < 1e-30);
        // The paper's rule y∞ = c·log2(N) gives extinction probability N^-c.
        assert!((replicas_for_extinction_exponent(5.0, 1024.0) - 50.0).abs() < 1e-9);
        // N = 2^20, 100 replicas: astronomically long (the paper quotes
        // 1.45e25 years; the direct 2^100 computation gives the same order of
        // magnitude band — ≥ 1e24 years).
        let l2 = longevity(100.0, 360.0);
        assert!(l2.expected_years > 1e24);
        assert!((replicas_for_extinction_exponent(5.0, (1u64 << 20) as f64) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn reality_check_matches_paper_numbers() {
        // 100 000 hosts, ~100 stashers, γ = 1e-3, 6-minute period, 88.2 KB file.
        let rc = reality_check(100_000.0, 100.0, 1e-3, 360.0, 88.2 * 1024.0);
        // Each host stores the file ~0.1 % of the time.
        assert!((rc.storage_duty_cycle - 0.001).abs() < 1e-12);
        // Storage duration ≈ 1000 periods = 100 hours.
        assert!((rc.storage_duration_hours - 100.0).abs() < 1e-9);
        // Bandwidth ≈ 3.92e-3 bps per file per host (within 10 %: the paper
        // does not state whether KB means 1000 or 1024 bytes).
        assert!(
            (rc.bandwidth_bps_per_host / 3.92e-3 - 1.0).abs() < 0.1,
            "bps {}",
            rc.bandwidth_bps_per_host
        );
        assert!((rc.transfers_per_period - 0.1).abs() < 1e-12);
    }
}
