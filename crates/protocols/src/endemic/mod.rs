//! Case study I: the endemic protocol for probabilistic responsibility
//! migration (Section 4.1 of the paper).
//!
//! The endemic equations (eq. 1)
//!
//! ```text
//! ẋ = −βxy + αz      (receptive)
//! ẏ =  βxy − γy      (stash — holds a replica)
//! ż =  γy  − αz      (averse)
//! ```
//!
//! are restricted polynomial and completely partitionable, so the framework of
//! Section 3 maps them to a three-state protocol. Two constructions are
//! provided:
//!
//! * [`EndemicParams::canonical_protocol`] — the literal compiler output
//!   (One-Time-Sampling for the `βxy` term, Flipping for `γy` and `αz`);
//! * [`EndemicParams::figure1_protocol`] — the variant the paper actually
//!   evaluates (Figure 1 plus optimization (iv) of Section 4.1.2): receptive
//!   processes contact `b` random targets per period and turn stash if *any*
//!   target is a stasher, and (optionally) stashers push the object onto
//!   receptive targets, with `b = β/2` so the modelled equations are
//!   unchanged (contact rate `β = N(1 − (1 − b/N)²) ≈ 2b`).

pub mod analysis;
pub mod multifile;
pub mod replication;

use dpde_core::{Action, CoreError, Protocol, ProtocolCompiler};
use odekit::{EquationSystem, EquationSystemBuilder};

/// Canonical state names used by every endemic protocol construction.
pub const RECEPTIVE: &str = "receptive";
/// Name of the stash (responsible / replica-holding) state.
pub const STASH: &str = "stash";
/// Name of the averse (refractory) state.
pub const AVERSE: &str = "averse";

/// Parameters of the endemic protocol.
///
/// `beta` is the contact rate of the equations; the Figure 1 construction
/// contacts `b = β/2` targets per period when the push optimization is on and
/// `b = β` when it is off. `gamma` and `alpha` are per-period probabilities in
/// `(0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EndemicParams {
    /// Infection (contact) rate β.
    pub beta: f64,
    /// Recovery rate γ (stash → averse), in `(0, 1]`.
    pub gamma: f64,
    /// Susceptibility rate α (averse → receptive), in `(0, 1]`.
    pub alpha: f64,
    /// Whether to add the paper's optimization (iv): stashers push the object
    /// onto receptive targets, halving the contact parameter `b`.
    pub push_enabled: bool,
}

impl EndemicParams {
    /// Creates a parameter set with the push optimization enabled.
    ///
    /// # Errors
    ///
    /// Returns an error unless `β > γ`, `γ ∈ (0, 1]` and `α ∈ (0, 1]`.
    pub fn new(beta: f64, gamma: f64, alpha: f64) -> Result<Self, CoreError> {
        if !(gamma > 0.0 && gamma <= 1.0) {
            return Err(CoreError::InvalidConfig {
                name: "gamma",
                reason: format!("γ must lie in (0, 1], got {gamma}"),
            });
        }
        if !(alpha > 0.0 && alpha <= 1.0) {
            return Err(CoreError::InvalidConfig {
                name: "alpha",
                reason: format!("α must lie in (0, 1], got {alpha}"),
            });
        }
        if !(beta.is_finite() && beta > gamma) {
            return Err(CoreError::InvalidConfig {
                name: "beta",
                reason: format!("β must be finite and exceed γ, got β={beta}, γ={gamma}"),
            });
        }
        Ok(EndemicParams {
            beta,
            gamma,
            alpha,
            push_enabled: true,
        })
    }

    /// Convenience constructor from the contact parameter `b` (number of
    /// targets contacted per period): `β = 2b` with the push optimization,
    /// matching the experiments of Section 5.1.
    ///
    /// # Errors
    ///
    /// Same as [`new`](Self::new).
    pub fn from_contact_count(b: u32, gamma: f64, alpha: f64) -> Result<Self, CoreError> {
        Self::new(2.0 * f64::from(b.max(1)), gamma, alpha)
    }

    /// Disables the push optimization (receptive processes then contact
    /// `b = β` targets themselves).
    #[must_use]
    pub fn without_push(mut self) -> Self {
        self.push_enabled = false;
        self
    }

    /// The contact parameter `b` used by the Figure 1 construction:
    /// `β/2` with the push optimization, `β` without.
    pub fn contact_count(&self) -> u32 {
        let b = if self.push_enabled {
            self.beta / 2.0
        } else {
            self.beta
        };
        b.round().max(1.0) as u32
    }

    /// The endemic differential equations (eq. 1), over fractions.
    pub fn equations(&self) -> EquationSystem {
        EquationSystemBuilder::new()
            .vars([RECEPTIVE, STASH, AVERSE])
            .term(RECEPTIVE, -self.beta, &[(RECEPTIVE, 1), (STASH, 1)])
            .term(RECEPTIVE, self.alpha, &[(AVERSE, 1)])
            .term(STASH, self.beta, &[(RECEPTIVE, 1), (STASH, 1)])
            .term(STASH, -self.gamma, &[(STASH, 1)])
            .term(AVERSE, self.gamma, &[(STASH, 1)])
            .term(AVERSE, -self.alpha, &[(AVERSE, 1)])
            .build()
            .expect("endemic equations are well-formed")
    }

    /// The literal compiler output for the endemic equations (One-Time-
    /// Sampling + Flipping). The normalizing constant is chosen automatically
    /// (p = 1/β when β > 1).
    ///
    /// # Errors
    ///
    /// Propagates compiler errors (cannot occur for valid parameters).
    pub fn canonical_protocol(&self) -> Result<Protocol, CoreError> {
        ProtocolCompiler::new("endemic-canonical").compile(&self.equations())
    }

    /// The protocol of Figure 1 (with the optional push action (iv)): one
    /// protocol period advances the equations by one time unit, so the paper's
    /// plots (time in periods) compare directly.
    ///
    /// # Errors
    ///
    /// Returns an error if γ or α cannot be used as coin probabilities (they
    /// are validated at construction, so this does not occur for parameters
    /// built through [`new`](Self::new)).
    pub fn figure1_protocol(&self) -> Result<Protocol, CoreError> {
        let mut protocol = Protocol::new(
            "endemic-figure1",
            vec![RECEPTIVE.to_string(), STASH.to_string(), AVERSE.to_string()],
        )?;
        let receptive = protocol.require_state(RECEPTIVE)?;
        let stash = protocol.require_state(STASH)?;
        let averse = protocol.require_state(AVERSE)?;
        let b = self.contact_count();

        // (i) γy: a stasher periodically turns averse with probability γ,
        // deleting its replica.
        protocol.add_action(
            stash,
            Action::Flip {
                prob: self.gamma,
                to: averse,
            },
        )?;
        // (ii) αz: an averse process periodically turns receptive with
        // probability α.
        protocol.add_action(
            averse,
            Action::Flip {
                prob: self.alpha,
                to: receptive,
            },
        )?;
        // (iii) βxy: a receptive process contacts b targets; if any is a
        // stasher it fetches the object and turns stash.
        protocol.add_action(
            receptive,
            Action::SampleAny {
                target_state: stash,
                samples: b,
                prob: 1.0,
                to: stash,
            },
        )?;
        // (iv) βxy, optimized: a stasher pushes the object onto receptive
        // targets (does not change the modelled equations; allows b = β/2).
        if self.push_enabled {
            protocol.add_action(
                stash,
                Action::PushSample {
                    target_state: receptive,
                    samples: b,
                    prob: 1.0,
                    to: stash,
                },
            )?;
        }
        Ok(protocol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpde_core::MessageComplexity;
    use odekit::taxonomy;

    #[test]
    fn parameter_validation() {
        assert!(EndemicParams::new(4.0, 1.0, 0.01).is_ok());
        assert!(EndemicParams::new(4.0, 0.0, 0.01).is_err());
        assert!(EndemicParams::new(4.0, 1.0, 1.5).is_err());
        assert!(
            EndemicParams::new(0.5, 1.0, 0.1).is_err(),
            "β must exceed γ"
        );
        assert!(EndemicParams::new(f64::NAN, 0.5, 0.1).is_err());
        let p = EndemicParams::from_contact_count(2, 0.1, 0.001).unwrap();
        assert_eq!(p.beta, 4.0);
        assert_eq!(p.contact_count(), 2);
        assert_eq!(p.without_push().contact_count(), 4);
        assert_eq!(
            EndemicParams::from_contact_count(0, 0.1, 0.001)
                .unwrap()
                .beta,
            2.0
        );
    }

    #[test]
    fn equations_are_restricted_and_partitionable() {
        let params = EndemicParams::new(4.0, 1.0, 0.01).unwrap();
        let report = taxonomy::classify(&params.equations());
        assert!(report.mappable_without_tokens());
    }

    #[test]
    fn canonical_protocol_compiles() {
        let params = EndemicParams::new(4.0, 1.0, 0.01).unwrap();
        let protocol = params.canonical_protocol().unwrap();
        assert_eq!(protocol.num_states(), 3);
        assert_eq!(protocol.num_actions(), 3);
        assert!((protocol.time_scale() - 0.25).abs() < 1e-12);
        // Receptive processes send one sampling message per period.
        let mc = MessageComplexity::of(&protocol);
        let receptive = protocol.require_state(RECEPTIVE).unwrap();
        assert_eq!(mc.messages_for(receptive), 1);
    }

    #[test]
    fn figure1_protocol_structure() {
        let params = EndemicParams::from_contact_count(2, 0.1, 0.001).unwrap();
        let protocol = params.figure1_protocol().unwrap();
        assert_eq!(protocol.num_states(), 3);
        // stash: flip + push; averse: flip; receptive: sample-any.
        let stash = protocol.require_state(STASH).unwrap();
        let averse = protocol.require_state(AVERSE).unwrap();
        let receptive = protocol.require_state(RECEPTIVE).unwrap();
        assert_eq!(protocol.actions(stash).len(), 2);
        assert_eq!(protocol.actions(averse).len(), 1);
        assert_eq!(protocol.actions(receptive).len(), 1);
        assert_eq!(protocol.time_scale(), 1.0);
        // Without push: only three actions, receptive contacts β targets.
        let no_push = params.without_push().figure1_protocol().unwrap();
        assert_eq!(no_push.num_actions(), 3);
        match &no_push.actions(receptive)[0] {
            Action::SampleAny { samples, .. } => assert_eq!(*samples, 4),
            other => panic!("unexpected action {other:?}"),
        }
        // Message overhead per process per period is constant (≤ 2b = β).
        let mc = MessageComplexity::of(&protocol);
        assert!(mc.worst_case() <= 4);
    }
}
