//! Multiple objects, one endemic protocol instance each.
//!
//! The paper's persistent-store application runs *one responsibility-migration
//! protocol per file* (Section 4.1): protocol instances are independent, so a
//! host's storage and bandwidth load is the sum over the files it currently
//! stashes. This module runs `m` independent instances over the same host
//! population and aggregates the per-host load — the quantity behind the
//! Section 5.1 "reality check" (per-file cost × number of files) and the
//! natural scalability question a deployment would ask.

use super::analysis::reality_check;
use super::{EndemicParams, STASH};
use dpde_core::runtime::{
    AgentRuntime, CountsRecorder, InitialStates, MembershipTracker, Simulation,
};
use dpde_core::CoreError;
use netsim::{Scenario, SummaryStats};

/// Configuration for a multi-file store simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiFileConfig {
    /// Number of independently replicated objects.
    pub files: usize,
    /// Protocol parameters shared by all instances.
    pub params: EndemicParams,
    /// Size of each object in bytes (for the bandwidth model).
    pub file_bytes: f64,
    /// Protocol period length in seconds (for the bandwidth model).
    pub period_secs: f64,
}

/// Aggregated results of a multi-file run.
#[derive(Debug, Clone)]
pub struct MultiFileReport {
    /// Number of files that still had at least one replica at every period.
    pub files_survived: usize,
    /// Total number of files simulated.
    pub files_total: usize,
    /// Statistics of the number of files a host stashes simultaneously,
    /// sampled at the final period over all hosts.
    pub files_per_host: SummaryStats,
    /// Mean total replicas per file over the second half of the run.
    pub mean_replicas_per_file: f64,
    /// Estimated steady-state bandwidth per host in bits per second, summing
    /// the per-file reality-check model over all files.
    pub bandwidth_bps_per_host: f64,
}

/// Runs `config.files` independent endemic protocol instances over the same
/// `n`-host population described by `scenario` (each instance gets its own
/// PRNG stream derived from the scenario seed) and aggregates per-host load.
///
/// # Errors
///
/// Propagates protocol and runtime errors.
pub fn run_multi_file(
    config: &MultiFileConfig,
    scenario: &Scenario,
) -> Result<MultiFileReport, CoreError> {
    if config.files == 0 {
        return Err(CoreError::InvalidConfig {
            name: "files",
            reason: "simulate at least one file".into(),
        });
    }
    let n = scenario.group_size();
    let protocol = config.params.figure1_protocol()?;
    let receptive = protocol.require_state(super::RECEPTIVE)?;
    let stash = protocol.require_state(STASH)?;
    let eq = config.params.equilibria(n as f64).endemic;
    let counts = {
        let x = eq[0].round() as u64;
        let y = (eq[1].round() as u64).max(1);
        [x, y, n as u64 - x - y]
    };

    let mut files_survived = 0usize;
    let mut stash_periods_per_host = vec![0u64; n];
    let mut final_stash_per_host = vec![0u64; n];
    let mut replica_means = Vec::new();

    for file in 0..config.files {
        // Each file runs under the same failure/churn environment but with an
        // independent protocol-level random stream.
        let file_scenario = scenario
            .clone()
            .with_seed(scenario.seed().wrapping_add(file as u64 * 7919));
        // Per-file loads come from the stasher-set snapshots, so only counts
        // (alive-only) and membership are recorded — transitions and message
        // counts would be dead weight across `files` runs.
        let run = Simulation::of(protocol.clone())
            .scenario(file_scenario)
            .initial(InitialStates::counts(&counts))
            .rejoin_state(receptive)
            .observe(CountsRecorder::alive_only())
            .observe(MembershipTracker::of(stash))
            .run::<AgentRuntime>()?;

        let stashers = run.state_series(STASH)?;
        if stashers.iter().all(|&c| c > 0.0) {
            files_survived += 1;
        }
        let half = stashers.len() / 2;
        replica_means.push(stashers[half..].iter().sum::<f64>() / (stashers.len() - half) as f64);

        for (period, members) in &run.tracked_members {
            for id in members {
                stash_periods_per_host[id.index()] += 1;
                if *period == scenario.periods() {
                    final_stash_per_host[id.index()] += 1;
                }
            }
        }
    }

    let files_per_host = SummaryStats::of(
        &final_stash_per_host
            .iter()
            .map(|&c| c as f64)
            .collect::<Vec<_>>(),
    )
    .expect("group is non-empty");
    let mean_replicas_per_file = replica_means.iter().sum::<f64>() / replica_means.len() as f64;
    let per_file = reality_check(
        n as f64,
        mean_replicas_per_file,
        config.params.gamma,
        config.period_secs,
        config.file_bytes,
    );

    Ok(MultiFileReport {
        files_survived,
        files_total: config.files,
        files_per_host,
        mean_replicas_per_file,
        bandwidth_bps_per_host: per_file.bandwidth_bps_per_host * config.files as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(files: usize) -> MultiFileConfig {
        MultiFileConfig {
            files,
            params: EndemicParams::from_contact_count(2, 0.1, 0.01).unwrap(),
            file_bytes: 88.2 * 1000.0,
            period_secs: 360.0,
        }
    }

    #[test]
    fn zero_files_is_rejected() {
        let scenario = Scenario::new(100, 10).unwrap();
        assert!(run_multi_file(&config(0), &scenario).is_err());
    }

    #[test]
    fn all_files_survive_and_load_is_shared() {
        let scenario = Scenario::new(500, 250).unwrap().with_seed(17);
        let report = run_multi_file(&config(5), &scenario).unwrap();
        assert_eq!(report.files_total, 5);
        assert_eq!(report.files_survived, 5);
        // Each file sustains roughly its analytical replica count.
        let expected = config(5).params.expected_stashers(500.0);
        assert!(
            (report.mean_replicas_per_file - expected).abs() < 0.35 * expected,
            "replicas {} vs analysis {expected}",
            report.mean_replicas_per_file
        );
        // The per-host concurrent-stash distribution is spread out: with 5
        // files and ~9% of hosts stashing each, the mean is ≈ 0.45 files per
        // host and nobody holds anywhere near all of them.
        assert!(report.files_per_host.mean > 0.1);
        assert!(report.files_per_host.max <= 5.0);
        // Aggregate bandwidth scales linearly in the number of files.
        let single = run_multi_file(&config(1), &scenario).unwrap();
        let ratio = report.bandwidth_bps_per_host / single.bandwidth_bps_per_host.max(1e-12);
        assert!((ratio - 5.0).abs() < 1.5, "bandwidth ratio {ratio}");
    }

    #[test]
    fn independent_streams_give_different_placements() {
        let scenario = Scenario::new(300, 120).unwrap().with_seed(3);
        let report = run_multi_file(&config(2), &scenario).unwrap();
        // If both files used the same stream every host would hold either both
        // or neither; the spread of the per-host final count being non-zero
        // witnesses independent placement.
        assert!(report.files_per_host.std_dev > 0.0);
    }
}
