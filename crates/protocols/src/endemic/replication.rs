//! Migratory replication for a persistent distributed file store.
//!
//! This is the application the paper builds the endemic protocol for
//! (Section 4.1): each stored object runs one instance of the endemic
//! protocol on its behalf; the processes currently in the stash state are the
//! only ones holding replicas. [`MigratoryStore`] drives the protocol through
//! the agent runtime and exposes the quantities the paper's evaluation
//! plots: stasher counts, file-flux rate, per-host replica placement over
//! time (untraceability, Figure 8), and load-balancing / fairness statistics.

use super::{EndemicParams, RECEPTIVE, STASH};
use dpde_core::runtime::{
    AgentRuntime, AliveTracker, CountsRecorder, InitialStates, MembershipTracker, MessageCounter,
    RunResult, Simulation, TransitionRecorder,
};
use dpde_core::{CoreError, Protocol};
use netsim::{ProcessId, Scenario};

/// One run of the migratory replication protocol for a single object.
#[derive(Debug, Clone)]
pub struct MigratoryStore {
    params: EndemicParams,
    protocol: Protocol,
    track_stashers: bool,
}

/// Summary of a migratory replication run.
#[derive(Debug, Clone)]
pub struct ReplicationReport {
    /// The full simulation output.
    pub run: RunResult,
    /// `true` if at least one replica existed at every recorded period
    /// (probabilistic safety held throughout the run).
    pub object_survived: bool,
    /// Mean number of stashers over the second half of the run.
    pub mean_stashers: f64,
    /// Mean number of receptive→stash transfers (file transmissions) per
    /// period over the second half of the run — the paper's "file flux rate".
    pub mean_flux: f64,
    /// Jaccard similarity between consecutive stasher sets, averaged over the
    /// run (low values = replicas migrate quickly = hard to trace), if
    /// stasher tracking was enabled.
    pub mean_consecutive_jaccard: Option<f64>,
    /// Coefficient of variation of the per-host total stash time (low values =
    /// good load balancing / fairness), if stasher tracking was enabled.
    pub load_balance_cv: Option<f64>,
}

impl MigratoryStore {
    /// Creates a store driven by the Figure 1 endemic protocol with the given
    /// parameters.
    ///
    /// # Errors
    ///
    /// Propagates protocol-construction errors.
    pub fn new(params: EndemicParams) -> Result<Self, CoreError> {
        let protocol = params.figure1_protocol()?;
        Ok(MigratoryStore {
            params,
            protocol,
            track_stashers: false,
        })
    }

    /// Enables per-period tracking of the stasher set (needed for the
    /// untraceability and fairness metrics; costs memory proportional to
    /// `periods × stashers`).
    #[must_use]
    pub fn with_stasher_tracking(mut self) -> Self {
        self.track_stashers = true;
        self
    }

    /// The protocol parameters.
    pub fn params(&self) -> &EndemicParams {
        &self.params
    }

    /// The protocol being run.
    pub fn protocol(&self) -> &Protocol {
        &self.protocol
    }

    /// Runs the protocol with `initial_replicas` seed replicas (all other
    /// processes receptive) under the given scenario, producing a
    /// [`ReplicationReport`].
    ///
    /// A host that fails loses its replica; when it rejoins it is receptive
    /// (the runtime's rejoin rule), matching the paper's churn experiments.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    pub fn run(
        &self,
        scenario: &Scenario,
        initial_replicas: u64,
    ) -> Result<ReplicationReport, CoreError> {
        let n = scenario.group_size() as u64;
        let initial = InitialStates::counts(&[n - initial_replicas, initial_replicas, 0]);
        self.run_from(scenario, &initial)
    }

    /// Runs the protocol starting at its analytical equilibrium (the setup of
    /// the paper's Figures 5–7).
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    pub fn run_from_equilibrium(
        &self,
        scenario: &Scenario,
    ) -> Result<ReplicationReport, CoreError> {
        let n = scenario.group_size() as f64;
        let eq = self.params.equilibria(n).endemic;
        let mut counts = [eq[0].round() as u64, eq[1].round() as u64, 0u64];
        counts[2] = scenario.group_size() as u64 - counts[0] - counts[1];
        self.run_from(scenario, &InitialStates::counts(&counts))
    }

    /// Runs the protocol from an arbitrary initial distribution over
    /// `[receptive, stash, averse]`.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    pub fn run_from(
        &self,
        scenario: &Scenario,
        initial: &InitialStates,
    ) -> Result<ReplicationReport, CoreError> {
        let receptive = self.protocol.require_state(RECEPTIVE)?;
        let stash = self.protocol.require_state(STASH)?;
        // The paper's figures plot alive populations, so counts are recorded
        // alive-only; stasher-set snapshots are only paid for when tracking
        // was requested.
        let mut sim = Simulation::of(self.protocol.clone())
            .scenario(scenario.clone())
            .initial(initial.clone())
            .rejoin_state(receptive)
            .observe(CountsRecorder::alive_only())
            .observe(TransitionRecorder::new())
            .observe(AliveTracker::new())
            .observe(MessageCounter::new());
        if self.track_stashers {
            sim = sim.observe(MembershipTracker::of(stash));
        }
        let run = sim.run::<AgentRuntime>()?;
        Ok(self.report(run, scenario.group_size()))
    }

    fn report(&self, run: RunResult, n: usize) -> ReplicationReport {
        let stashers = run.state_series(STASH).unwrap_or_default();
        let object_survived = stashers.iter().all(|&c| c > 0.0);
        let half = stashers.len() / 2;
        let mean_stashers = mean(&stashers[half..]);

        let flux_edge = format!("{RECEPTIVE}->{STASH}");
        let flux: Vec<f64> = run
            .transitions
            .series(&flux_edge)
            .map(|s| s.iter().map(|(_, v)| *v).collect())
            .unwrap_or_default();
        let flux_half = flux.len() / 2;
        let mean_flux = mean(&flux[flux_half..]);

        let (mean_consecutive_jaccard, load_balance_cv) = if self.track_stashers {
            (
                Some(mean_consecutive_jaccard(&run.tracked_members)),
                Some(load_balance_cv(&run.tracked_members, n)),
            )
        } else {
            (None, None)
        };

        ReplicationReport {
            run,
            object_survived,
            mean_stashers,
            mean_flux,
            mean_consecutive_jaccard,
            load_balance_cv,
        }
    }
}

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Average Jaccard similarity between consecutive snapshots of a member set.
/// Values near 1 mean the set barely changes (easy to trace); values near 0
/// mean it turns over completely between snapshots.
pub fn mean_consecutive_jaccard(snapshots: &[(u64, Vec<ProcessId>)]) -> f64 {
    if snapshots.len() < 2 {
        return 1.0;
    }
    let mut total = 0.0;
    let mut count = 0usize;
    for window in snapshots.windows(2) {
        let a: std::collections::HashSet<_> = window[0].1.iter().collect();
        let b: std::collections::HashSet<_> = window[1].1.iter().collect();
        let intersection = a.intersection(&b).count();
        let union = a.union(&b).count();
        if union > 0 {
            total += intersection as f64 / union as f64;
            count += 1;
        }
    }
    if count == 0 {
        1.0
    } else {
        total / count as f64
    }
}

/// Coefficient of variation (standard deviation / mean) of the total time each
/// host spent in the tracked set. Zero means perfectly even load; the paper's
/// Fairness property asks for this to stay small over long runs.
pub fn load_balance_cv(snapshots: &[(u64, Vec<ProcessId>)], n: usize) -> f64 {
    if snapshots.is_empty() || n == 0 {
        return 0.0;
    }
    let mut per_host = vec![0.0_f64; n];
    for (_, members) in snapshots {
        for id in members {
            if id.index() < n {
                per_host[id.index()] += 1.0;
            }
        }
    }
    let m = mean(&per_host);
    if m == 0.0 {
        return 0.0;
    }
    let var = per_host.iter().map(|x| (x - m).powi(2)).sum::<f64>() / n as f64;
    var.sqrt() / m
}

/// Fraction of hosts that ever appear in the tracked set — 1.0 means every
/// host eventually bears responsibility (the paper's Fairness property,
/// observed over a long enough run).
pub fn coverage(snapshots: &[(u64, Vec<ProcessId>)], n: usize) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let mut seen = vec![false; n];
    for (_, members) in snapshots {
        for id in members {
            if id.index() < n {
                seen[id.index()] = true;
            }
        }
    }
    seen.iter().filter(|&&s| s).count() as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> EndemicParams {
        // Figure 8 setting: b = 2, γ = 0.1, and γ/α = 10, which reproduces the
        // caption's stable stasher count of 88.63 at N = 1000.
        EndemicParams::from_contact_count(2, 0.1, 0.01).unwrap()
    }

    #[test]
    fn object_survives_and_stasher_count_matches_analysis() {
        let p = params();
        let store = MigratoryStore::new(p).unwrap();
        let scenario = Scenario::new(1000, 400).unwrap().with_seed(8);
        let report = store.run_from_equilibrium(&scenario).unwrap();
        assert!(report.object_survived);
        // The paper quotes ≈ 88.6 stashers at N = 1000 for these parameters.
        let expected = p.expected_stashers(1000.0);
        assert!(
            (report.mean_stashers - expected).abs() < 0.25 * expected,
            "measured {} vs analysis {expected}",
            report.mean_stashers
        );
        // Flux at equilibrium ≈ γ·y∞ ≈ 8.9 transfers per period.
        assert!(
            (report.mean_flux - 0.1 * expected).abs() < 0.5 * 0.1 * expected,
            "flux {}",
            report.mean_flux
        );
        assert!(report.mean_consecutive_jaccard.is_none());
    }

    #[test]
    fn replicas_migrate_and_load_is_balanced() {
        let store = MigratoryStore::new(params())
            .unwrap()
            .with_stasher_tracking();
        let scenario = Scenario::new(500, 600).unwrap().with_seed(9);
        let report = store.run_from_equilibrium(&scenario).unwrap();
        let jaccard = report.mean_consecutive_jaccard.unwrap();
        // With γ = 0.1 roughly 10 % of stashers turn over per period, so the
        // consecutive overlap sits well below 1 but above ~0.5.
        assert!(
            jaccard < 0.98,
            "stasher set must migrate, jaccard {jaccard}"
        );
        assert!(
            jaccard > 0.3,
            "stasher set should not vanish every period, jaccard {jaccard}"
        );
        // Over 600 periods most hosts bear responsibility at least once.
        let cov = coverage(&report.run.tracked_members, 500);
        assert!(cov > 0.8, "coverage {cov}");
        // Load balancing: no host hoards the file (CV stays moderate).
        let cv = report.load_balance_cv.unwrap();
        assert!(cv < 1.5, "load-balance coefficient of variation {cv}");
    }

    #[test]
    fn simple_handoff_loses_objects_but_endemic_does_not() {
        // Section 4.1.1: a hand-off protocol (equivalent to γ ≈ 1 with no
        // averse dwell and a single replica) loses the object quickly under
        // failures, while the endemic protocol with a healthy equilibrium
        // keeps it alive. Here we emulate the contrast by starting the endemic
        // protocol with a single replica and letting it grow to equilibrium.
        let p = params();
        let store = MigratoryStore::new(p).unwrap();
        let scenario = Scenario::new(1000, 300).unwrap().with_seed(10);
        let report = store.run(&scenario, 1).unwrap();
        assert!(
            report.object_survived,
            "a single seed replica multiplies before it can vanish"
        );
        assert!(report.mean_stashers > 10.0);
    }

    #[test]
    fn massive_failure_halves_stashers_but_object_survives() {
        // Figure 5, scaled down: 50 % of hosts crash mid-run.
        let p = EndemicParams::from_contact_count(2, 0.05, 0.002).unwrap();
        let store = MigratoryStore::new(p).unwrap();
        let scenario = Scenario::new(2000, 600)
            .unwrap()
            .with_massive_failure(300, 0.5)
            .unwrap()
            .with_seed(11);
        let report = store.run_from_equilibrium(&scenario).unwrap();
        assert!(report.object_survived);
        let stashers = report.run.state_series(STASH).unwrap();
        let before = mean(&stashers[250..300]);
        let after = mean(&stashers[550..]);
        let ratio = after / before;
        assert!(
            (0.3..0.8).contains(&ratio),
            "stashers should drop by roughly half: before {before}, after {after}"
        );
    }

    #[test]
    fn metric_helpers_handle_edge_cases() {
        assert_eq!(mean_consecutive_jaccard(&[]), 1.0);
        assert_eq!(mean_consecutive_jaccard(&[(0, vec![ProcessId(1)])]), 1.0);
        let snaps = vec![
            (0, vec![ProcessId(0), ProcessId(1)]),
            (1, vec![ProcessId(1), ProcessId(2)]),
        ];
        assert!((mean_consecutive_jaccard(&snaps) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(load_balance_cv(&[], 10), 0.0);
        assert_eq!(load_balance_cv(&snaps, 0), 0.0);
        assert!(load_balance_cv(&snaps, 3) > 0.0);
        assert_eq!(coverage(&snaps, 4), 0.75);
        assert_eq!(coverage(&[], 0), 0.0);
        // Empty-union snapshots do not blow up.
        let empty = vec![(0, vec![]), (1, vec![])];
        assert_eq!(mean_consecutive_jaccard(&empty), 1.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn accessors() {
        let p = params();
        let store = MigratoryStore::new(p).unwrap();
        assert_eq!(store.params().beta, 4.0);
        assert_eq!(store.protocol().num_states(), 3);
    }
}
