//! Basin-of-attraction estimation by forward integration from a grid of
//! initial conditions.
//!
//! The paper's Theorem 4 describes the basin structure of the LV system (the
//! diagonal `x = y` separates the two stable outcomes). This module provides
//! a generic, numerical version of that analysis: integrate the system from a
//! grid of starting points, decide which known attractor each trajectory
//! approaches, and report the relative basin sizes.

use super::equilibrium::EquilibriumFinder;
use super::stability::{analyze_equilibrium, Stability};
use crate::error::OdeError;
use crate::integrate::{Integrator, Rk4};
use crate::system::EquationSystem;
use crate::Result;

/// The attractor (if any) a trajectory converged to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BasinOutcome {
    /// Converged to the attractor with the given index (into
    /// [`BasinMap::attractors`]).
    Attractor(usize),
    /// Did not get within tolerance of any known attractor before the horizon.
    Undecided,
}

/// The result of a basin-of-attraction sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct BasinMap {
    /// The attractors used for classification.
    pub attractors: Vec<Vec<f64>>,
    /// One `(initial point, outcome)` entry per grid point.
    pub samples: Vec<(Vec<f64>, BasinOutcome)>,
}

impl BasinMap {
    /// Fraction of sampled initial conditions that converged to attractor `i`.
    pub fn basin_fraction(&self, i: usize) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let hits = self
            .samples
            .iter()
            .filter(|(_, o)| matches!(o, BasinOutcome::Attractor(j) if *j == i))
            .count();
        hits as f64 / self.samples.len() as f64
    }

    /// Fraction of sampled initial conditions that did not converge to any
    /// known attractor.
    pub fn undecided_fraction(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let hits = self
            .samples
            .iter()
            .filter(|(_, o)| matches!(o, BasinOutcome::Undecided))
            .count();
        hits as f64 / self.samples.len() as f64
    }

    /// The outcome for the sampled initial point closest to `point`.
    pub fn outcome_near(&self, point: &[f64]) -> Option<BasinOutcome> {
        self.samples
            .iter()
            .min_by(|(a, _), (b, _)| {
                let da: f64 = a.iter().zip(point).map(|(x, y)| (x - y).powi(2)).sum();
                let db: f64 = b.iter().zip(point).map(|(x, y)| (x - y).powi(2)).sum();
                da.partial_cmp(&db).unwrap()
            })
            .map(|(_, o)| *o)
    }
}

/// Configuration for a basin sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BasinSweep {
    /// Integration horizon.
    pub t_end: f64,
    /// Integration step.
    pub step: f64,
    /// A trajectory is assigned to an attractor when its final state lies
    /// within this Euclidean distance of it.
    pub tolerance: f64,
    /// Number of grid points per simplex axis.
    pub resolution: usize,
}

impl Default for BasinSweep {
    fn default() -> Self {
        BasinSweep {
            t_end: 50.0,
            step: 0.05,
            tolerance: 1e-2,
            resolution: 8,
        }
    }
}

impl BasinSweep {
    /// Sweeps the probability simplex `Σx = 1, x ≥ 0` of `sys`, classifying
    /// each grid point against the given attractors.
    ///
    /// # Errors
    ///
    /// Propagates integration errors.
    pub fn run(&self, sys: &EquationSystem, attractors: &[Vec<f64>]) -> Result<BasinMap> {
        for a in attractors {
            if a.len() != sys.dim() {
                return Err(OdeError::DimensionMismatch {
                    expected: sys.dim(),
                    actual: a.len(),
                });
            }
        }
        let integrator = Rk4::new(self.step);
        let mut samples = Vec::new();
        let mut seed = vec![0usize; sys.dim()];
        enumerate_simplex(
            0,
            self.resolution,
            &mut seed,
            &mut |grid| {
                let point: Vec<f64> = grid
                    .iter()
                    .map(|&g| g as f64 / self.resolution.max(1) as f64)
                    .collect();
                let outcome = match integrator.integrate(sys, 0.0, &point, self.t_end) {
                    Ok(traj) => classify_final(traj.last_state(), attractors, self.tolerance),
                    Err(_) => BasinOutcome::Undecided,
                };
                samples.push((point, outcome));
            },
            sys.dim(),
        );
        Ok(BasinMap {
            attractors: attractors.to_vec(),
            samples,
        })
    }

    /// Convenience wrapper: finds the stable equilibria of `sys` automatically
    /// (via multi-start Newton search over the simplex) and sweeps against
    /// them.
    ///
    /// # Errors
    ///
    /// Propagates equilibrium-search and integration errors.
    pub fn run_auto(&self, sys: &EquationSystem) -> Result<BasinMap> {
        let mut attractors = Vec::new();
        for eq in EquilibriumFinder::new().search_simplex(sys, self.resolution.max(4)) {
            if let Ok(report) = analyze_equilibrium(sys, &eq) {
                let class = report.classification_reduced;
                if class == Stability::StableNode || class == Stability::StableSpiral {
                    attractors.push(eq);
                }
            }
        }
        self.run(sys, &attractors)
    }
}

fn classify_final(state: &[f64], attractors: &[Vec<f64>], tol: f64) -> BasinOutcome {
    for (i, a) in attractors.iter().enumerate() {
        let dist: f64 = state
            .iter()
            .zip(a)
            .map(|(x, y)| (x - y).powi(2))
            .sum::<f64>()
            .sqrt();
        if dist <= tol {
            return BasinOutcome::Attractor(i);
        }
    }
    BasinOutcome::Undecided
}

fn enumerate_simplex(
    index: usize,
    remaining: usize,
    seed: &mut Vec<usize>,
    visit: &mut impl FnMut(&[usize]),
    dim: usize,
) {
    if index == dim - 1 {
        seed[index] = remaining;
        visit(seed);
        return;
    }
    for k in 0..=remaining {
        seed[index] = k;
        enumerate_simplex(index + 1, remaining - k, seed, visit, dim);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::EquationSystemBuilder;

    /// The completed LV system (rate 3), whose basins are split by x = y.
    fn lv() -> EquationSystem {
        EquationSystemBuilder::new()
            .vars(["x", "y", "z"])
            .term("x", 3.0, &[("x", 1), ("z", 1)])
            .term("x", -3.0, &[("x", 1), ("y", 1)])
            .term("y", 3.0, &[("y", 1), ("z", 1)])
            .term("y", -3.0, &[("x", 1), ("y", 1)])
            .term("z", -3.0, &[("x", 1), ("z", 1)])
            .term("z", -3.0, &[("y", 1), ("z", 1)])
            .term("z", 3.0, &[("x", 1), ("y", 1)])
            .term("z", 3.0, &[("x", 1), ("y", 1)])
            .build()
            .unwrap()
    }

    #[test]
    fn lv_basins_are_split_by_the_diagonal() {
        let sys = lv();
        let attractors = vec![vec![1.0, 0.0, 0.0], vec![0.0, 1.0, 0.0]];
        let map = BasinSweep {
            resolution: 8,
            ..Default::default()
        }
        .run(&sys, &attractors)
        .unwrap();
        // Every sampled point off the diagonal converges to the attractor on
        // its own side.
        for (point, outcome) in &map.samples {
            if point[0] > point[1] {
                assert_eq!(*outcome, BasinOutcome::Attractor(0), "point {point:?}");
            } else if point[1] > point[0] {
                assert_eq!(*outcome, BasinOutcome::Attractor(1), "point {point:?}");
            }
        }
        // The two basins are the same size by symmetry; the diagonal itself is
        // undecided (it heads to the saddle).
        let f0 = map.basin_fraction(0);
        let f1 = map.basin_fraction(1);
        assert!((f0 - f1).abs() < 1e-9);
        assert!(f0 > 0.35);
        assert!(map.undecided_fraction() > 0.0);
        assert_eq!(
            map.outcome_near(&[0.6, 0.2, 0.2]),
            Some(BasinOutcome::Attractor(0))
        );
    }

    #[test]
    fn auto_sweep_discovers_the_stable_attractors() {
        // The original two-variable LV system has isolated equilibria, so the
        // automatic attractor discovery finds exactly the two stable corners.
        // (The completed three-variable form has whole axes of degenerate
        // equilibria outside the simplex; pass attractors explicitly there, as
        // `lv_basins_are_split_by_the_diagonal` does.)
        let sys = EquationSystemBuilder::new()
            .vars(["x", "y"])
            .term("x", 3.0, &[("x", 1)])
            .term("x", -3.0, &[("x", 2)])
            .term("x", -6.0, &[("x", 1), ("y", 1)])
            .term("y", 3.0, &[("y", 1)])
            .term("y", -3.0, &[("y", 2)])
            .term("y", -6.0, &[("x", 1), ("y", 1)])
            .build()
            .unwrap();
        let map = BasinSweep {
            resolution: 6,
            ..Default::default()
        }
        .run_auto(&sys)
        .unwrap();
        assert_eq!(
            map.attractors.len(),
            2,
            "the two winning corners are the only stable points"
        );
        assert!(map.basin_fraction(0) > 0.3);
        assert!(map.basin_fraction(1) > 0.3);
        assert!(map.undecided_fraction() < 0.35);
    }

    #[test]
    fn dimension_mismatch_is_rejected_and_empty_map_is_safe() {
        let sys = lv();
        assert!(BasinSweep::default().run(&sys, &[vec![1.0, 0.0]]).is_err());
        let empty = BasinMap {
            attractors: vec![],
            samples: vec![],
        };
        assert_eq!(empty.basin_fraction(0), 0.0);
        assert_eq!(empty.undecided_fraction(), 0.0);
        assert_eq!(empty.outcome_near(&[0.0]), None);
    }

    #[test]
    fn epidemic_has_a_single_global_attractor() {
        let sys = EquationSystemBuilder::new()
            .vars(["x", "y"])
            .term("x", -1.0, &[("x", 1), ("y", 1)])
            .term("y", 1.0, &[("x", 1), ("y", 1)])
            .build()
            .unwrap();
        let map = BasinSweep {
            t_end: 100.0,
            resolution: 10,
            ..Default::default()
        }
        .run(&sys, &[vec![0.0, 1.0]])
        .unwrap();
        // Every point with at least one infected process converges to (0, 1);
        // the single undecided point is the disease-free corner (1, 0).
        assert!(map.basin_fraction(0) > 0.9);
        assert!(map.undecided_fraction() < 0.1);
    }
}
