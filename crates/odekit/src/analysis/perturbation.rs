//! Perturbation analysis around an equilibrium (the paper's Section 4.1.3
//! "Are the Equilibria Self-Correcting?").

use super::linalg::Matrix;
use crate::error::OdeError;
use crate::integrate::{Integrator, OdeSystem, Rk4, Trajectory};
use crate::system::EquationSystem;
use crate::Result;

/// The linearization `δ̇ = J·δ` of a system around an equilibrium point.
///
/// This is the object the paper analyses in equations (3)–(5): start the
/// system at `X₀ = X∞·(1 + u)` and study how the relative perturbation `u`
/// evolves under the Jacobian at `X∞`.
#[derive(Debug, Clone, PartialEq)]
pub struct Linearization {
    equilibrium: Vec<f64>,
    jacobian: Matrix,
}

impl Linearization {
    /// Linearizes `sys` at `equilibrium`.
    ///
    /// # Errors
    ///
    /// Returns [`OdeError::DimensionMismatch`] if the point has the wrong
    /// dimension.
    pub fn at(sys: &EquationSystem, equilibrium: &[f64]) -> Result<Self> {
        if equilibrium.len() != sys.dim() {
            return Err(OdeError::DimensionMismatch {
                expected: sys.dim(),
                actual: equilibrium.len(),
            });
        }
        let jacobian = Matrix::from_rows(&sys.jacobian_at(equilibrium))?;
        Ok(Linearization {
            equilibrium: equilibrium.to_vec(),
            jacobian,
        })
    }

    /// The equilibrium point.
    pub fn equilibrium(&self) -> &[f64] {
        &self.equilibrium
    }

    /// The Jacobian at the equilibrium.
    pub fn jacobian(&self) -> &Matrix {
        &self.jacobian
    }

    /// Evolves an initial *absolute* perturbation `δ₀` under the linear
    /// dynamics `δ̇ = J δ` for `t_end` time units, sampled with step `step`.
    ///
    /// # Errors
    ///
    /// Propagates integration errors.
    pub fn evolve(&self, delta0: &[f64], t_end: f64, step: f64) -> Result<Trajectory> {
        if delta0.len() != self.equilibrium.len() {
            return Err(OdeError::DimensionMismatch {
                expected: self.equilibrium.len(),
                actual: delta0.len(),
            });
        }
        let jac = self.jacobian.clone();
        let sys = LinearSystem { jacobian: jac };
        Rk4::new(step).integrate(&sys, 0.0, delta0, t_end)
    }
}

/// `δ̇ = J δ` as an [`OdeSystem`].
#[derive(Debug, Clone)]
struct LinearSystem {
    jacobian: Matrix,
}

impl OdeSystem for LinearSystem {
    fn dim(&self) -> usize {
        self.jacobian.rows()
    }

    fn rhs(&self, _t: f64, state: &[f64], out: &mut [f64]) {
        for (r, slot) in out.iter_mut().enumerate().take(self.jacobian.rows()) {
            *slot = state
                .iter()
                .enumerate()
                .take(self.jacobian.cols())
                .map(|(c, x)| self.jacobian.get(r, c) * x)
                .sum();
        }
    }
}

/// Builds the perturbed initial state `X₀ = X∞ ⊙ (1 + u)` used by the paper's
/// perturbation argument (component-wise relative perturbation `u`).
///
/// # Errors
///
/// Returns [`OdeError::DimensionMismatch`] if the vectors have different
/// lengths.
pub fn perturbed_state(equilibrium: &[f64], relative: &[f64]) -> Result<Vec<f64>> {
    if equilibrium.len() != relative.len() {
        return Err(OdeError::DimensionMismatch {
            expected: equilibrium.len(),
            actual: relative.len(),
        });
    }
    Ok(equilibrium
        .iter()
        .zip(relative)
        .map(|(x, u)| x * (1.0 + u))
        .collect())
}

/// Result of comparing the non-linear evolution of a perturbation with the
/// prediction of the linearization.
#[derive(Debug, Clone, PartialEq)]
pub struct PerturbationDecay {
    /// Times at which the deviation was sampled.
    pub times: Vec<f64>,
    /// Euclidean norm of the deviation from the equilibrium at each time
    /// under the full non-linear dynamics.
    pub nonlinear_deviation: Vec<f64>,
    /// Euclidean norm of the deviation predicted by the linearization.
    pub linear_deviation: Vec<f64>,
}

impl PerturbationDecay {
    /// `true` if the non-linear deviation at the final time is smaller than
    /// `fraction` of the initial deviation (i.e. the perturbation died out).
    pub fn decayed_below(&self, fraction: f64) -> bool {
        match (
            self.nonlinear_deviation.first(),
            self.nonlinear_deviation.last(),
        ) {
            (Some(first), Some(last)) if *first > 0.0 => last / first < fraction,
            _ => false,
        }
    }
}

/// Starts `sys` from a relatively perturbed equilibrium and records how the
/// deviation decays, both under the full non-linear dynamics and under the
/// linearization (the paper's "perturbations die out" argument, Theorem 3).
///
/// # Errors
///
/// Propagates dimension and integration errors.
pub fn perturbation_decay(
    sys: &EquationSystem,
    equilibrium: &[f64],
    relative: &[f64],
    t_end: f64,
    step: f64,
) -> Result<PerturbationDecay> {
    let x0 = perturbed_state(equilibrium, relative)?;
    let nonlinear = Rk4::new(step).integrate(sys, 0.0, &x0, t_end)?;
    let lin = Linearization::at(sys, equilibrium)?;
    let delta0: Vec<f64> = x0.iter().zip(equilibrium).map(|(a, b)| a - b).collect();
    let linear = lin.evolve(&delta0, t_end, step)?;

    let norm = |v: &[f64]| v.iter().map(|x| x * x).sum::<f64>().sqrt();
    let times: Vec<f64> = nonlinear.times().to_vec();
    let nonlinear_deviation: Vec<f64> = nonlinear
        .states()
        .iter()
        .map(|s| {
            norm(
                &s.iter()
                    .zip(equilibrium)
                    .map(|(a, b)| a - b)
                    .collect::<Vec<f64>>(),
            )
        })
        .collect();
    let linear_deviation: Vec<f64> = times
        .iter()
        .map(|t| linear.state_at(*t).map_or(f64::NAN, |s| norm(&s)))
        .collect();
    Ok(PerturbationDecay {
        times,
        nonlinear_deviation,
        linear_deviation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::EquationSystemBuilder;

    fn endemic(beta: f64, gamma: f64, alpha: f64) -> EquationSystem {
        EquationSystemBuilder::new()
            .vars(["x", "y", "z"])
            .term("x", -beta, &[("x", 1), ("y", 1)])
            .term("x", alpha, &[("z", 1)])
            .term("y", beta, &[("x", 1), ("y", 1)])
            .term("y", -gamma, &[("y", 1)])
            .term("z", gamma, &[("y", 1)])
            .term("z", -alpha, &[("z", 1)])
            .build()
            .unwrap()
    }

    fn endemic_equilibrium(beta: f64, gamma: f64, alpha: f64) -> Vec<f64> {
        vec![
            gamma / beta,
            (1.0 - gamma / beta) / (1.0 + gamma / alpha),
            (1.0 - gamma / beta) / (1.0 + alpha / gamma),
        ]
    }

    #[test]
    fn perturbed_state_composition() {
        let x = perturbed_state(&[0.5, 0.25, 0.25], &[0.1, 0.0, -0.1]).unwrap();
        assert!((x[0] - 0.55).abs() < 1e-12);
        assert!((x[1] - 0.25).abs() < 1e-12);
        assert!((x[2] - 0.225).abs() < 1e-12);
        assert!(perturbed_state(&[1.0], &[0.1, 0.1]).is_err());
    }

    #[test]
    fn endemic_perturbation_dies_out() {
        // Theorem 3: the second equilibrium is always stable (α, γ > 0, N > γ/β).
        let (beta, gamma, alpha) = (4.0, 1.0, 0.1);
        let sys = endemic(beta, gamma, alpha);
        let eq = endemic_equilibrium(beta, gamma, alpha);
        // Pick a relative perturbation that conserves Σx = 1 (the protocol can
        // only redistribute processes among states, not create them), so the
        // trajectory returns to the *same* equilibrium.
        let (u, v) = (0.05, 0.05);
        let w = -(eq[0] * u + eq[1] * v) / eq[2];
        let decay = perturbation_decay(&sys, &eq, &[u, v, w], 200.0, 0.05).unwrap();
        assert!(
            decay.decayed_below(0.05),
            "perturbation should decay to <5%"
        );
        // The linear prediction also decays.
        let first = decay.linear_deviation[0];
        let last = *decay.linear_deviation.last().unwrap();
        assert!(last < first * 0.05);
    }

    #[test]
    fn linear_and_nonlinear_agree_for_small_perturbations() {
        let (beta, gamma, alpha) = (4.0, 1.0, 0.1);
        let sys = endemic(beta, gamma, alpha);
        let eq = endemic_equilibrium(beta, gamma, alpha);
        let decay = perturbation_decay(&sys, &eq, &[0.01, 0.01, -0.01], 20.0, 0.02).unwrap();
        // At every sampled time the two deviations stay within a factor ~2.
        for (nl, l) in decay
            .nonlinear_deviation
            .iter()
            .zip(&decay.linear_deviation)
        {
            if *nl > 1e-9 && l.is_finite() {
                let ratio = nl / l;
                assert!(ratio > 0.5 && ratio < 2.0, "ratio {ratio}");
            }
        }
    }

    #[test]
    fn linearization_accessors_and_errors() {
        let sys = endemic(4.0, 1.0, 0.1);
        let eq = endemic_equilibrium(4.0, 1.0, 0.1);
        let lin = Linearization::at(&sys, &eq).unwrap();
        assert_eq!(lin.equilibrium().len(), 3);
        assert_eq!(lin.jacobian().rows(), 3);
        assert!(Linearization::at(&sys, &[0.0]).is_err());
        assert!(lin.evolve(&[0.1], 1.0, 0.1).is_err());
    }

    #[test]
    fn unstable_equilibrium_perturbation_grows() {
        // x' = x - xy ... simpler: saddle at origin for x' = x, y' = -y (complete? not needed).
        let sys = EquationSystemBuilder::new()
            .vars(["x", "y"])
            .term("x", 1.0, &[("x", 1)])
            .term("y", -1.0, &[("y", 1)])
            .build()
            .unwrap();
        let decay = perturbation_decay(&sys, &[0.0, 0.0], &[0.0, 0.0], 1.0, 0.01).unwrap();
        // Zero perturbation of a zero equilibrium: nothing to decay.
        assert!(!decay.decayed_below(0.5));
        // Absolute perturbation along the unstable direction grows.
        let lin = Linearization::at(&sys, &[0.0, 0.0]).unwrap();
        let traj = lin.evolve(&[1e-3, 0.0], 3.0, 0.01).unwrap();
        assert!(traj.last_state()[0] > 1e-2);
    }
}
