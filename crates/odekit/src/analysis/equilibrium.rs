//! Equilibrium (fixed-point) finding for polynomial ODE systems.

use super::linalg::Matrix;
use crate::error::OdeError;
use crate::system::EquationSystem;
use crate::Result;

/// Newton-based equilibrium finder with multi-start search helpers.
///
/// An equilibrium of `Ẋ = f(X)` is a point where `f(X) = 0`. The finder runs
/// damped Newton iteration using the system's symbolic Jacobian; the
/// [`search_simplex`](Self::search_simplex) helper seeds Newton from a grid
/// over the probability simplex `Σx = 1, x ≥ 0` (where the paper's fraction
/// variables live) and de-duplicates the results.
///
/// # Examples
///
/// ```
/// use odekit::EquationSystemBuilder;
/// use odekit::analysis::EquilibriumFinder;
///
/// // Endemic system (eq. 1), fractions, β=4, γ=1, α=0.01.
/// let sys = EquationSystemBuilder::new()
///     .vars(["x", "y", "z"])
///     .term("x", -4.0, &[("x", 1), ("y", 1)])
///     .term("x", 0.01, &[("z", 1)])
///     .term("y", 4.0, &[("x", 1), ("y", 1)])
///     .term("y", -1.0, &[("y", 1)])
///     .term("z", 1.0, &[("y", 1)])
///     .term("z", -0.01, &[("z", 1)])
///     .build()?;
/// let eqs = EquilibriumFinder::new().search_simplex(&sys, 6);
/// // Both the trivial (1,0,0) and the endemic equilibrium are found.
/// assert!(eqs.iter().any(|p| (p[0] - 1.0).abs() < 1e-6));
/// assert!(eqs.iter().any(|p| (p[0] - 0.25).abs() < 1e-6));
/// # Ok::<(), odekit::OdeError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EquilibriumFinder {
    max_iter: usize,
    tol: f64,
    dedup_tol: f64,
}

impl Default for EquilibriumFinder {
    fn default() -> Self {
        EquilibriumFinder {
            max_iter: 200,
            tol: 1e-12,
            dedup_tol: 1e-6,
        }
    }
}

impl EquilibriumFinder {
    /// Creates a finder with default settings (200 iterations, residual
    /// tolerance 1e-12).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the maximum number of Newton iterations.
    #[must_use]
    pub fn with_max_iter(mut self, max_iter: usize) -> Self {
        self.max_iter = max_iter;
        self
    }

    /// Sets the residual tolerance `‖f(X)‖∞ ≤ tol` for convergence.
    #[must_use]
    pub fn with_tol(mut self, tol: f64) -> Self {
        self.tol = tol;
        self
    }

    /// Sets the distance below which two equilibria are considered the same
    /// during de-duplication.
    #[must_use]
    pub fn with_dedup_tol(mut self, tol: f64) -> Self {
        self.dedup_tol = tol;
        self
    }

    /// Runs damped Newton iteration from `guess`.
    ///
    /// # Errors
    ///
    /// Returns [`OdeError::DimensionMismatch`] if the guess has the wrong
    /// length, [`OdeError::NoConvergence`] if the residual tolerance is not
    /// met, and [`OdeError::Linalg`] if the Jacobian is singular at some
    /// iterate and no damping helps.
    pub fn from_guess(&self, sys: &EquationSystem, guess: &[f64]) -> Result<Vec<f64>> {
        if guess.len() != sys.dim() {
            return Err(OdeError::DimensionMismatch {
                expected: sys.dim(),
                actual: guess.len(),
            });
        }
        let mut x = guess.to_vec();
        for _ in 0..self.max_iter {
            let f = sys.eval_rhs(&x);
            let residual = f.iter().fold(0.0_f64, |a, v| a.max(v.abs()));
            if residual <= self.tol {
                return Ok(x);
            }
            let j = Matrix::from_rows(&sys.jacobian_at(&x))?;
            // Solve J δ = -f; regularize slightly if singular.
            let rhs: Vec<f64> = f.iter().map(|v| -v).collect();
            let delta = match j.solve(&rhs) {
                Ok(d) => d,
                Err(_) => {
                    // Tikhonov-style fallback: (J + εI) δ = -f
                    let n = sys.dim();
                    let reg = j.add(&Matrix::identity(n).scaled(1e-8))?;
                    reg.solve(&rhs)?
                }
            };
            // Damped update to avoid overshooting on strongly curved systems.
            let mut step = 1.0;
            let mut improved = false;
            for _ in 0..30 {
                let candidate: Vec<f64> = x
                    .iter()
                    .zip(&delta)
                    .map(|(xi, di)| xi + step * di)
                    .collect();
                let f_new = sys.eval_rhs(&candidate);
                let new_res = f_new.iter().fold(0.0_f64, |a, v| a.max(v.abs()));
                if new_res < residual || new_res <= self.tol {
                    x = candidate;
                    improved = true;
                    break;
                }
                step *= 0.5;
            }
            if !improved {
                // Take the full step anyway; Newton sometimes needs to pass
                // through a worse residual.
                for (xi, di) in x.iter_mut().zip(&delta) {
                    *xi += di;
                }
            }
        }
        Err(OdeError::NoConvergence {
            context: "Newton equilibrium search",
            iterations: self.max_iter,
        })
    }

    /// Searches for equilibria by seeding Newton from a regular grid over the
    /// probability simplex `Σx = 1, x ≥ 0` with `resolution + 1` points per
    /// axis. Non-converging seeds are skipped; results are de-duplicated.
    pub fn search_simplex(&self, sys: &EquationSystem, resolution: usize) -> Vec<Vec<f64>> {
        let dim = sys.dim();
        let mut found: Vec<Vec<f64>> = Vec::new();
        let mut seed = vec![0usize; dim];
        // Enumerate compositions of `resolution` into `dim` parts.
        self.enumerate_simplex(sys, resolution, 0, resolution, &mut seed, &mut found);
        found
    }

    fn enumerate_simplex(
        &self,
        sys: &EquationSystem,
        resolution: usize,
        index: usize,
        remaining: usize,
        seed: &mut Vec<usize>,
        found: &mut Vec<Vec<f64>>,
    ) {
        let dim = sys.dim();
        if index == dim - 1 {
            seed[index] = remaining;
            let guess: Vec<f64> = seed
                .iter()
                .map(|&k| k as f64 / resolution.max(1) as f64)
                .collect();
            if let Ok(eq) = self.from_guess(sys, &guess) {
                if eq.iter().all(|v| v.is_finite()) && !self.is_duplicate(found, &eq) {
                    found.push(eq);
                }
            }
            return;
        }
        for k in 0..=remaining {
            seed[index] = k;
            self.enumerate_simplex(sys, resolution, index + 1, remaining - k, seed, found);
        }
    }

    /// Searches for equilibria by seeding Newton from a regular grid over an
    /// axis-aligned box. `bounds` gives `(low, high)` per dimension.
    ///
    /// # Errors
    ///
    /// Returns [`OdeError::DimensionMismatch`] if `bounds.len() != sys.dim()`.
    pub fn search_box(
        &self,
        sys: &EquationSystem,
        bounds: &[(f64, f64)],
        resolution: usize,
    ) -> Result<Vec<Vec<f64>>> {
        if bounds.len() != sys.dim() {
            return Err(OdeError::DimensionMismatch {
                expected: sys.dim(),
                actual: bounds.len(),
            });
        }
        let dim = sys.dim();
        let steps = resolution.max(1);
        let total = (steps + 1).pow(dim as u32);
        let mut found: Vec<Vec<f64>> = Vec::new();
        for idx in 0..total {
            let mut guess = vec![0.0; dim];
            let mut rem = idx;
            for d in 0..dim {
                let k = rem % (steps + 1);
                rem /= steps + 1;
                let (lo, hi) = bounds[d];
                guess[d] = lo + (hi - lo) * k as f64 / steps as f64;
            }
            if let Ok(eq) = self.from_guess(sys, &guess) {
                if eq.iter().all(|v| v.is_finite()) && !self.is_duplicate(&found, &eq) {
                    found.push(eq);
                }
            }
        }
        Ok(found)
    }

    fn is_duplicate(&self, found: &[Vec<f64>], candidate: &[f64]) -> bool {
        found.iter().any(|p| {
            p.iter()
                .zip(candidate)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0_f64, f64::max)
                < self.dedup_tol
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::EquationSystemBuilder;

    fn endemic(beta: f64, gamma: f64, alpha: f64) -> EquationSystem {
        EquationSystemBuilder::new()
            .vars(["x", "y", "z"])
            .term("x", -beta, &[("x", 1), ("y", 1)])
            .term("x", alpha, &[("z", 1)])
            .term("y", beta, &[("x", 1), ("y", 1)])
            .term("y", -gamma, &[("y", 1)])
            .term("z", gamma, &[("y", 1)])
            .term("z", -alpha, &[("z", 1)])
            .build()
            .unwrap()
    }

    #[test]
    fn newton_from_good_guess_converges_to_endemic_equilibrium() {
        let (beta, gamma, alpha) = (4.0, 1.0, 0.01);
        let sys = endemic(beta, gamma, alpha);
        let finder = EquilibriumFinder::new();
        let eq = finder.from_guess(&sys, &[0.3, 0.01, 0.69]).unwrap();
        // Closed form (eq. 2 of the paper, in fractions with N = 1):
        let x_star = gamma / beta;
        let y_star = (1.0 - gamma / beta) / (1.0 + gamma / alpha);
        let z_star = (1.0 - gamma / beta) / (1.0 + alpha / gamma);
        assert!((eq[0] - x_star).abs() < 1e-8, "x {}", eq[0]);
        assert!((eq[1] - y_star).abs() < 1e-8, "y {}", eq[1]);
        assert!((eq[2] - z_star).abs() < 1e-8, "z {}", eq[2]);
    }

    #[test]
    fn simplex_search_finds_both_endemic_equilibria() {
        let sys = endemic(4.0, 1.0, 0.01);
        let eqs = EquilibriumFinder::new().search_simplex(&sys, 8);
        assert!(eqs
            .iter()
            .any(|p| (p[0] - 1.0).abs() < 1e-6 && p[1].abs() < 1e-6));
        assert!(eqs.iter().any(|p| (p[0] - 0.25).abs() < 1e-6));
    }

    #[test]
    fn lv_equilibria_found_in_box() {
        // LV original 2-variable form: x' = 3x(1-x-2y), y' = 3y(1-y-2x)
        let sys = EquationSystemBuilder::new()
            .vars(["x", "y"])
            .term("x", 3.0, &[("x", 1)])
            .term("x", -3.0, &[("x", 2)])
            .term("x", -6.0, &[("x", 1), ("y", 1)])
            .term("y", 3.0, &[("y", 1)])
            .term("y", -3.0, &[("y", 2)])
            .term("y", -6.0, &[("x", 1), ("y", 1)])
            .build()
            .unwrap();
        let eqs = EquilibriumFinder::new()
            .search_box(&sys, &[(0.0, 1.0), (0.0, 1.0)], 6)
            .unwrap();
        let expect = [(0.0, 0.0), (1.0, 0.0), (0.0, 1.0), (1.0 / 3.0, 1.0 / 3.0)];
        for (ex, ey) in expect {
            assert!(
                eqs.iter()
                    .any(|p| (p[0] - ex).abs() < 1e-6 && (p[1] - ey).abs() < 1e-6),
                "missing equilibrium ({ex}, {ey}) in {eqs:?}"
            );
        }
        assert_eq!(eqs.len(), 4, "exactly the four LV equilibria: {eqs:?}");
    }

    #[test]
    fn wrong_guess_dimension_rejected() {
        let sys = endemic(4.0, 1.0, 0.01);
        assert!(EquilibriumFinder::new().from_guess(&sys, &[0.1]).is_err());
        assert!(EquilibriumFinder::new()
            .search_box(&sys, &[(0.0, 1.0)], 2)
            .is_err());
    }

    #[test]
    fn builder_configuration() {
        let f = EquilibriumFinder::new()
            .with_max_iter(10)
            .with_tol(1e-6)
            .with_dedup_tol(1e-3);
        let sys = endemic(4.0, 1.0, 0.01);
        // Even with few iterations a good guess converges.
        assert!(f.from_guess(&sys, &[0.25, 0.007, 0.74]).is_ok());
    }

    #[test]
    fn linear_system_origin_found() {
        // x' = -x + y, y' = x - y : line of equilibria x = y; Newton finds one.
        let sys = EquationSystemBuilder::new()
            .vars(["x", "y"])
            .term("x", -1.0, &[("x", 1)])
            .term("x", 1.0, &[("y", 1)])
            .term("y", 1.0, &[("x", 1)])
            .term("y", -1.0, &[("y", 1)])
            .build()
            .unwrap();
        let eq = EquilibriumFinder::new()
            .from_guess(&sys, &[0.4, 0.41])
            .unwrap();
        assert!((eq[0] - eq[1]).abs() < 1e-9);
    }
}
