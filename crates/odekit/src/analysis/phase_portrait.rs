//! Phase portraits: trajectories from many initial points, projected to 2-d.
//!
//! The paper's Figures 2 and 4 are phase portraits of the endemic and LV
//! systems; the same structure is reused by the experiment harness to plot
//! the *protocol* runs, so [`PhasePortrait`] only depends on
//! [`Trajectory`], not on where the points came
//! from.

use crate::error::OdeError;
use crate::integrate::{Integrator, OdeSystem, Trajectory};
use crate::Result;

/// A labelled trajectory inside a phase portrait.
#[derive(Debug, Clone, PartialEq)]
pub struct PortraitTrajectory {
    /// Human-readable label, typically the initial point.
    pub label: String,
    /// The initial state.
    pub initial: Vec<f64>,
    /// The recorded trajectory.
    pub trajectory: Trajectory,
}

/// A collection of trajectories of the same system started from different
/// initial points.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PhasePortrait {
    trajectories: Vec<PortraitTrajectory>,
}

impl PhasePortrait {
    /// Creates an empty phase portrait.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a labelled trajectory.
    pub fn push(&mut self, label: impl Into<String>, initial: Vec<f64>, trajectory: Trajectory) {
        self.trajectories.push(PortraitTrajectory {
            label: label.into(),
            initial,
            trajectory,
        });
    }

    /// The contained trajectories.
    pub fn trajectories(&self) -> &[PortraitTrajectory] {
        &self.trajectories
    }

    /// Number of trajectories.
    pub fn len(&self) -> usize {
        self.trajectories.len()
    }

    /// `true` if no trajectories have been added.
    pub fn is_empty(&self) -> bool {
        self.trajectories.is_empty()
    }

    /// Projects every trajectory onto components `(a, b)`, producing one
    /// series of `(x_a, x_b)` points per trajectory (the format of the
    /// paper's Figures 2 and 4).
    pub fn projection(&self, a: usize, b: usize) -> Vec<(String, Vec<(f64, f64)>)> {
        self.trajectories
            .iter()
            .map(|t| (t.label.clone(), t.trajectory.projection(a, b)))
            .collect()
    }

    /// Final state of each trajectory, for convergence summaries.
    pub fn final_states(&self) -> Vec<(String, Vec<f64>)> {
        self.trajectories
            .iter()
            .map(|t| (t.label.clone(), t.trajectory.last_state().to_vec()))
            .collect()
    }

    /// Renders the `(a, b)` projection as CSV: `label,step,xa,xb` rows.
    pub fn to_csv(&self, a: usize, b: usize) -> String {
        let mut out = String::from("label,step,u,v\n");
        for (label, series) in self.projection(a, b) {
            for (i, (u, v)) in series.iter().enumerate() {
                out.push_str(&format!("{label},{i},{u},{v}\n"));
            }
        }
        out
    }
}

/// Integrates `sys` from each of `initial_points` and assembles a phase
/// portrait. Labels are generated from the initial points.
///
/// # Errors
///
/// Propagates integration errors; all points must have the system dimension.
pub fn phase_portrait<S, I>(
    sys: &S,
    integrator: &I,
    initial_points: &[Vec<f64>],
    t_end: f64,
) -> Result<PhasePortrait>
where
    S: OdeSystem,
    I: Integrator,
{
    let mut portrait = PhasePortrait::new();
    for point in initial_points {
        if point.len() != sys.dim() {
            return Err(OdeError::DimensionMismatch {
                expected: sys.dim(),
                actual: point.len(),
            });
        }
        let traj = integrator.integrate(sys, 0.0, point, t_end)?;
        let label = format!(
            "({})",
            point
                .iter()
                .map(|v| format!("{v:.3}"))
                .collect::<Vec<_>>()
                .join(",")
        );
        portrait.push(label, point.clone(), traj);
    }
    Ok(portrait)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrate::Rk4;
    use crate::system::EquationSystemBuilder;

    fn epidemic() -> EquationSystemBuilder {
        EquationSystemBuilder::new()
            .vars(["x", "y"])
            .term("x", -1.0, &[("x", 1), ("y", 1)])
            .term("y", 1.0, &[("x", 1), ("y", 1)])
    }

    #[test]
    fn portrait_from_multiple_initial_points() {
        let sys = epidemic().build().unwrap();
        let points = vec![vec![0.99, 0.01], vec![0.5, 0.5], vec![0.1, 0.9]];
        let portrait = phase_portrait(&sys, &Rk4::new(0.05), &points, 20.0).unwrap();
        assert_eq!(portrait.len(), 3);
        assert!(!portrait.is_empty());
        // All trajectories converge to y ≈ 1.
        for (_, last) in portrait.final_states() {
            assert!(last[1] > 0.95);
        }
        let proj = portrait.projection(0, 1);
        assert_eq!(proj.len(), 3);
        assert!(proj[0].1.len() > 10);
        let csv = portrait.to_csv(0, 1);
        assert!(csv.starts_with("label,step,u,v"));
        assert!(csv.lines().count() > 10);
    }

    #[test]
    fn wrong_dimension_rejected() {
        let sys = epidemic().build().unwrap();
        let err = phase_portrait(&sys, &Rk4::new(0.05), &[vec![0.5]], 1.0);
        assert!(err.is_err());
    }

    #[test]
    fn manual_push_and_accessors() {
        let mut p = PhasePortrait::new();
        let mut t = Trajectory::new();
        t.push(0.0, vec![1.0, 0.0]);
        t.push(1.0, vec![0.5, 0.5]);
        p.push("start", vec![1.0, 0.0], t);
        assert_eq!(p.trajectories()[0].label, "start");
        assert_eq!(p.trajectories()[0].initial, vec![1.0, 0.0]);
        assert_eq!(p.final_states()[0].1, vec![0.5, 0.5]);
    }
}
