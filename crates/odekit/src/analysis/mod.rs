//! Non-linear dynamics analysis toolbox.
//!
//! This module packages the analytical techniques the paper uses to study the
//! protocols it derives (Sections 4.1.3 and 4.2.2):
//!
//! * [`linalg`] — small dense matrices, determinants, linear solves and
//!   eigenvalues (closed form for 2×2, characteristic polynomial +
//!   Durand–Kerner for larger Jacobians);
//! * [`EquilibriumFinder`] — Newton iteration with multi-start search over
//!   the probability simplex or a box;
//! * [`Stability`] / [`analyze_equilibrium`] — trace/determinant and
//!   eigenvalue-based classification of equilibria (stable node, stable
//!   spiral, saddle, …);
//! * [`Linearization`] / [`perturbation_decay`] — the paper's perturbation
//!   analysis: start at `X∞(1+u)` and check that `u` dies out;
//! * [`PhasePortrait`] — multi-trajectory phase portraits (Figures 2 and 4).

pub mod basin;
pub mod equilibrium;
pub mod linalg;
pub mod perturbation;
pub mod phase_portrait;
pub mod stability;

pub use basin::{BasinMap, BasinOutcome, BasinSweep};
pub use equilibrium::EquilibriumFinder;
pub use linalg::{durand_kerner, Complex, Matrix};
pub use perturbation::{perturbation_decay, perturbed_state, Linearization, PerturbationDecay};
pub use phase_portrait::{phase_portrait, PhasePortrait, PortraitTrajectory};
pub use stability::{
    analyze_equilibrium, classify_eigenvalues, classify_trace_det, Stability, StabilityReport,
};
