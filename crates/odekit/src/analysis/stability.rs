//! Stability classification of equilibrium points.
//!
//! Follows the paper's style of analysis (Section 4.1.3): linearize at the
//! equilibrium, look at trace/determinant (2-d) or the eigenvalue spectrum
//! (general), and classify the local behaviour — stable node, stable spiral,
//! saddle, and so on.

use super::linalg::{Complex, Matrix};
use crate::system::EquationSystem;
use crate::Result;

/// Qualitative type of an equilibrium point of a dynamical system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Stability {
    /// All eigenvalues have negative real part and are real: trajectories
    /// converge monotonically.
    StableNode,
    /// All eigenvalues have negative real part and some are complex:
    /// trajectories converge through damped oscillation (the paper's
    /// "stable spiral", Figure 2).
    StableSpiral,
    /// All eigenvalues have positive real part and are real.
    UnstableNode,
    /// All eigenvalues have positive real part and some are complex.
    UnstableSpiral,
    /// Some eigenvalues have positive and some negative real part: stable in
    /// some directions, unstable in others (the paper's first endemic
    /// equilibrium, and the LV point (1/3, 1/3)).
    Saddle,
    /// All eigenvalues are purely imaginary and non-zero: neutrally stable
    /// rotation.
    Center,
    /// At least one eigenvalue is (numerically) zero and no eigenvalue has
    /// positive real part: stability is not determined by the linearization.
    Marginal,
}

impl Stability {
    /// `true` for the two asymptotically stable classifications.
    pub fn is_stable(self) -> bool {
        matches!(self, Stability::StableNode | Stability::StableSpiral)
    }

    /// `true` if at least one direction diverges (unstable or saddle).
    pub fn is_unstable(self) -> bool {
        matches!(
            self,
            Stability::UnstableNode | Stability::UnstableSpiral | Stability::Saddle
        )
    }
}

impl std::fmt::Display for Stability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Stability::StableNode => "stable node",
            Stability::StableSpiral => "stable spiral",
            Stability::UnstableNode => "unstable node",
            Stability::UnstableSpiral => "unstable spiral",
            Stability::Saddle => "saddle point",
            Stability::Center => "center",
            Stability::Marginal => "marginal (zero eigenvalue)",
        };
        write!(f, "{s}")
    }
}

/// The full result of analysing one equilibrium point.
#[derive(Debug, Clone, PartialEq)]
pub struct StabilityReport {
    /// The equilibrium point that was analysed.
    pub equilibrium: Vec<f64>,
    /// The Jacobian evaluated at the equilibrium.
    pub jacobian: Matrix,
    /// Trace of the Jacobian (the paper's `τ`).
    pub trace: f64,
    /// Determinant of the Jacobian (the paper's `∆`).
    pub determinant: f64,
    /// Eigenvalues of the Jacobian.
    pub eigenvalues: Vec<Complex>,
    /// Classification using all eigenvalues.
    pub classification: Stability,
    /// Classification after dropping (numerically) zero eigenvalues — the
    /// right notion for *complete* systems, whose conservation law `Σx = const`
    /// always contributes one zero eigenvalue.
    pub classification_reduced: Stability,
}

impl StabilityReport {
    /// Characteristic time scale `1/|Re λ_slow|` of the slowest decaying /
    /// growing mode (ignoring zero modes). Returns `None` if every eigenvalue
    /// is (numerically) zero.
    pub fn slowest_timescale(&self) -> Option<f64> {
        self.eigenvalues
            .iter()
            .map(|e| e.re.abs())
            .filter(|r| *r > ZERO_TOL)
            .fold(None, |acc: Option<f64>, r| {
                Some(acc.map_or(r, |a| a.min(r)))
            })
            .map(|r| 1.0 / r)
    }
}

/// Tolerance below which an eigenvalue (real part and modulus) is treated as
/// zero when classifying.
pub const ZERO_TOL: f64 = 1e-9;

/// Classifies an equilibrium from its eigenvalue spectrum.
///
/// Eigenvalues with `|λ| < zero_tol` are treated as zero modes: if any remain
/// after filtering and none of the remaining eigenvalues has positive real
/// part, the classification is [`Stability::Marginal`] only when *no*
/// eigenvalues remain; otherwise the non-zero eigenvalues decide.
pub fn classify_eigenvalues(eigenvalues: &[Complex], zero_tol: f64) -> Stability {
    let significant: Vec<&Complex> = eigenvalues.iter().filter(|e| e.abs() > zero_tol).collect();
    if significant.is_empty() {
        return Stability::Marginal;
    }
    let any_pos = significant.iter().any(|e| e.re > zero_tol);
    let any_neg = significant.iter().any(|e| e.re < -zero_tol);
    let any_zero_re = significant.iter().any(|e| e.re.abs() <= zero_tol);
    let any_complex = significant.iter().any(|e| e.im.abs() > zero_tol);

    match (any_pos, any_neg) {
        (true, true) => Stability::Saddle,
        (true, false) => {
            if any_complex {
                Stability::UnstableSpiral
            } else {
                Stability::UnstableNode
            }
        }
        (false, true) => {
            if any_zero_re {
                Stability::Marginal
            } else if any_complex {
                Stability::StableSpiral
            } else {
                Stability::StableNode
            }
        }
        (false, false) => {
            if any_complex {
                Stability::Center
            } else {
                Stability::Marginal
            }
        }
    }
}

/// Classifies a two-dimensional linearization from its trace `τ` and
/// determinant `∆`, exactly as in the paper's proof of Theorem 3:
///
/// * `∆ < 0` → saddle,
/// * `∆ > 0, τ < 0` → stable (spiral if `τ² < 4∆`, node otherwise),
/// * `∆ > 0, τ > 0` → unstable (spiral if `τ² < 4∆`, node otherwise),
/// * `∆ > 0, τ = 0` → center,
/// * `∆ = 0` → marginal.
pub fn classify_trace_det(trace: f64, det: f64) -> Stability {
    if det < -ZERO_TOL {
        return Stability::Saddle;
    }
    if det.abs() <= ZERO_TOL {
        return Stability::Marginal;
    }
    let disc = trace * trace - 4.0 * det;
    if trace < -ZERO_TOL {
        if disc < 0.0 {
            Stability::StableSpiral
        } else {
            Stability::StableNode
        }
    } else if trace > ZERO_TOL {
        if disc < 0.0 {
            Stability::UnstableSpiral
        } else {
            Stability::UnstableNode
        }
    } else {
        Stability::Center
    }
}

/// Analyses an equilibrium point of `sys`: evaluates the Jacobian, computes
/// trace, determinant and eigenvalues, and classifies the point both with the
/// full spectrum and with zero modes removed.
///
/// # Errors
///
/// Returns an error if the point has the wrong dimension or the eigenvalue
/// computation fails.
pub fn analyze_equilibrium(sys: &EquationSystem, point: &[f64]) -> Result<StabilityReport> {
    if point.len() != sys.dim() {
        return Err(crate::error::OdeError::DimensionMismatch {
            expected: sys.dim(),
            actual: point.len(),
        });
    }
    let jacobian = Matrix::from_rows(&sys.jacobian_at(point))?;
    let trace = jacobian.trace();
    let determinant = jacobian.determinant()?;
    let eigenvalues = jacobian.eigenvalues()?;
    let classification = classify_eigenvalues(&eigenvalues, ZERO_TOL);
    // For the reduced classification, drop the eigenvalues closest to zero
    // one at a time while they are numerically zero.
    let reduced: Vec<Complex> = eigenvalues
        .iter()
        .copied()
        .filter(|e| e.abs() > 1e-7)
        .collect();
    let classification_reduced = classify_eigenvalues(&reduced, ZERO_TOL);
    Ok(StabilityReport {
        equilibrium: point.to_vec(),
        jacobian,
        trace,
        determinant,
        eigenvalues,
        classification,
        classification_reduced,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::EquationSystemBuilder;

    #[test]
    fn classify_by_trace_det_matches_paper_rules() {
        assert_eq!(classify_trace_det(-1.0, 2.0), Stability::StableSpiral); // τ²<4∆
        assert_eq!(classify_trace_det(-3.0, 2.0), Stability::StableNode); // τ²>4∆
        assert_eq!(classify_trace_det(1.0, 2.0), Stability::UnstableSpiral);
        assert_eq!(classify_trace_det(3.0, 2.0), Stability::UnstableNode);
        assert_eq!(classify_trace_det(0.5, -1.0), Stability::Saddle);
        assert_eq!(classify_trace_det(0.0, 1.0), Stability::Center);
        assert_eq!(classify_trace_det(1.0, 0.0), Stability::Marginal);
    }

    #[test]
    fn classify_eigenvalue_spectra() {
        let re = Complex::real;
        assert_eq!(
            classify_eigenvalues(&[re(-1.0), re(-2.0)], ZERO_TOL),
            Stability::StableNode
        );
        assert_eq!(
            classify_eigenvalues(
                &[Complex::new(-1.0, 2.0), Complex::new(-1.0, -2.0)],
                ZERO_TOL
            ),
            Stability::StableSpiral
        );
        assert_eq!(
            classify_eigenvalues(&[re(1.0), re(-2.0)], ZERO_TOL),
            Stability::Saddle
        );
        assert_eq!(
            classify_eigenvalues(&[re(1.0), re(2.0)], ZERO_TOL),
            Stability::UnstableNode
        );
        assert_eq!(
            classify_eigenvalues(&[Complex::new(1.0, 1.0), Complex::new(1.0, -1.0)], ZERO_TOL),
            Stability::UnstableSpiral
        );
        assert_eq!(
            classify_eigenvalues(&[Complex::new(0.0, 1.0), Complex::new(0.0, -1.0)], ZERO_TOL),
            Stability::Center
        );
        assert_eq!(
            classify_eigenvalues(&[re(0.0), re(0.0)], ZERO_TOL),
            Stability::Marginal
        );
        // A zero mode (|λ| ≈ 0) is filtered out; the remaining stable
        // direction decides the classification.
        assert_eq!(
            classify_eigenvalues(&[re(0.0), re(-1.0)], ZERO_TOL),
            Stability::StableNode
        );
        // A purely imaginary pair alongside a stable direction, however, keeps
        // the outcome marginal (the linearization cannot decide).
        assert_eq!(
            classify_eigenvalues(
                &[Complex::new(0.0, 2.0), Complex::new(0.0, -2.0), re(-1.0)],
                ZERO_TOL
            ),
            Stability::Marginal
        );
    }

    #[test]
    fn stability_helpers() {
        assert!(Stability::StableSpiral.is_stable());
        assert!(!Stability::Saddle.is_stable());
        assert!(Stability::Saddle.is_unstable());
        assert!(!Stability::Marginal.is_unstable());
        assert!(Stability::StableNode.to_string().contains("stable"));
    }

    #[test]
    fn endemic_equilibrium_is_stable_spiral_for_figure2_parameters() {
        // Figure 2 parameters: N=1000, α=0.01, β=4, γ=1.0 (fractions here, N=1).
        let (beta, gamma, alpha) = (4.0, 1.0, 0.01);
        let sys = EquationSystemBuilder::new()
            .vars(["x", "y", "z"])
            .term("x", -beta, &[("x", 1), ("y", 1)])
            .term("x", alpha, &[("z", 1)])
            .term("y", beta, &[("x", 1), ("y", 1)])
            .term("y", -gamma, &[("y", 1)])
            .term("z", gamma, &[("y", 1)])
            .term("z", -alpha, &[("z", 1)])
            .build()
            .unwrap();
        let x_star = gamma / beta;
        let y_star = (1.0 - gamma / beta) / (1.0 + gamma / alpha);
        let z_star = (1.0 - gamma / beta) / (1.0 + alpha / gamma);
        let report = analyze_equilibrium(&sys, &[x_star, y_star, z_star]).unwrap();
        // The conservation law gives one zero eigenvalue → full classification
        // is marginal, reduced classification is the paper's stable spiral.
        assert_eq!(report.classification_reduced, Stability::StableSpiral);
        assert!(report.slowest_timescale().unwrap() > 0.0);

        // The trivial equilibrium (1, 0, 0) is a saddle (paper's corollary).
        let report0 = analyze_equilibrium(&sys, &[1.0, 0.0, 0.0]).unwrap();
        assert_eq!(report0.classification_reduced, Stability::Saddle);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let sys = EquationSystemBuilder::new()
            .vars(["x", "y"])
            .term("x", -1.0, &[("x", 1)])
            .term("y", 1.0, &[("x", 1)])
            .build()
            .unwrap();
        assert!(analyze_equilibrium(&sys, &[0.0]).is_err());
    }

    #[test]
    fn report_fields_are_consistent() {
        // Linear stable node: x' = -x, y' = -2y.
        let sys = EquationSystemBuilder::new()
            .vars(["x", "y"])
            .term("x", -1.0, &[("x", 1)])
            .term("y", -2.0, &[("y", 1)])
            .build()
            .unwrap();
        let r = analyze_equilibrium(&sys, &[0.0, 0.0]).unwrap();
        assert_eq!(r.classification, Stability::StableNode);
        assert!((r.trace + 3.0).abs() < 1e-12);
        assert!((r.determinant - 2.0).abs() < 1e-12);
        assert!((r.slowest_timescale().unwrap() - 1.0).abs() < 1e-9);
    }
}
