//! Small dense linear algebra: matrices, linear solves, determinants and
//! eigenvalues of the (small) Jacobians that protocol analysis produces.
//!
//! The systems in the paper have 2–4 states, so the eigenvalue machinery is
//! optimised for clarity and robustness at small dimension rather than for
//! large-scale performance: characteristic polynomial coefficients via the
//! Faddeev–LeVerrier recursion, roots via Durand–Kerner iteration, plus the
//! closed form for 2×2 matrices.

use crate::error::OdeError;
use crate::Result;
use std::fmt;

/// A complex number (used for eigenvalues).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number from real and imaginary parts.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// A purely real complex number.
    pub fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// The modulus `|z|`.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// `true` if the imaginary part is negligible relative to the modulus.
    pub fn is_real(self, tol: f64) -> bool {
        self.im.abs() <= tol * self.abs().max(1.0)
    }

    /// Principal square root.
    pub fn sqrt(self) -> Complex {
        let r = self.abs();
        let re = ((r + self.re) / 2.0).max(0.0).sqrt();
        let im_mag = ((r - self.re) / 2.0).max(0.0).sqrt();
        Complex::new(re, if self.im < 0.0 { -im_mag } else { im_mag })
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;

    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }
}

impl std::ops::Sub for Complex {
    type Output = Complex;

    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;

    fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

impl std::ops::Div for Complex {
    type Output = Complex;

    fn div(self, o: Complex) -> Complex {
        let d = o.re * o.re + o.im * o.im;
        Complex::new(
            (self.re * o.re + self.im * o.im) / d,
            (self.im * o.re - self.re * o.im) / d,
        )
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from nested rows.
    ///
    /// # Errors
    ///
    /// Returns [`OdeError::Linalg`] if the rows have inconsistent lengths or
    /// the input is empty.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        let r = rows.len();
        if r == 0 {
            return Err(OdeError::Linalg("matrix must have at least one row".into()));
        }
        let c = rows[0].len();
        if c == 0 || rows.iter().any(|row| row.len() != c) {
            return Err(OdeError::Linalg(
                "matrix rows have inconsistent lengths".into(),
            ));
        }
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            data.extend_from_slice(row);
        }
        Ok(Matrix {
            rows: r,
            cols: c,
            data,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of range");
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "matrix index out of range");
        self.data[r * self.cols + c] = v;
    }

    /// The trace (sum of diagonal elements).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> f64 {
        assert!(self.is_square(), "trace requires a square matrix");
        (0..self.rows).map(|i| self.get(i, i)).sum()
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.set(c, r, self.get(r, c));
            }
        }
        t
    }

    /// Matrix product `self · other`.
    ///
    /// # Errors
    ///
    /// Returns [`OdeError::Linalg`] if the shapes are incompatible.
    pub fn multiply(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(OdeError::Linalg(format!(
                "cannot multiply {}x{} by {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(r, k);
                if a == 0.0 {
                    continue;
                }
                for c in 0..other.cols {
                    out.data[r * out.cols + c] += a * other.get(k, c);
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product.
    ///
    /// # Errors
    ///
    /// Returns [`OdeError::Linalg`] if the vector length does not match.
    pub fn mul_vec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.cols {
            return Err(OdeError::Linalg(format!(
                "cannot multiply {}x{} by vector of length {}",
                self.rows,
                self.cols,
                v.len()
            )));
        }
        Ok((0..self.rows)
            .map(|r| (0..self.cols).map(|c| self.get(r, c) * v[c]).sum())
            .collect())
    }

    /// Sum `self + other`.
    ///
    /// # Errors
    ///
    /// Returns [`OdeError::Linalg`] if the shapes differ.
    pub fn add(&self, other: &Matrix) -> Result<Matrix> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(OdeError::Linalg("matrix shapes differ".into()));
        }
        let mut out = self.clone();
        for (a, b) in out.data.iter_mut().zip(&other.data) {
            *a += b;
        }
        Ok(out)
    }

    /// Scalar multiple.
    pub fn scaled(&self, factor: f64) -> Matrix {
        let mut out = self.clone();
        for a in &mut out.data {
            *a *= factor;
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Determinant via LU decomposition with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`OdeError::Linalg`] if the matrix is not square.
    pub fn determinant(&self) -> Result<f64> {
        if !self.is_square() {
            return Err(OdeError::Linalg(
                "determinant requires a square matrix".into(),
            ));
        }
        let n = self.rows;
        let mut a = self.data.clone();
        let mut det = 1.0;
        for col in 0..n {
            // Pivot.
            let mut pivot = col;
            let mut max = a[col * n + col].abs();
            for r in (col + 1)..n {
                if a[r * n + col].abs() > max {
                    max = a[r * n + col].abs();
                    pivot = r;
                }
            }
            if max == 0.0 {
                return Ok(0.0);
            }
            if pivot != col {
                for c in 0..n {
                    a.swap(col * n + c, pivot * n + c);
                }
                det = -det;
            }
            det *= a[col * n + col];
            for r in (col + 1)..n {
                let f = a[r * n + col] / a[col * n + col];
                for c in col..n {
                    a[r * n + c] -= f * a[col * n + c];
                }
            }
        }
        Ok(det)
    }

    /// Solves `self · x = b` by Gaussian elimination with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`OdeError::Linalg`] if the matrix is not square, the vector
    /// length does not match, or the matrix is (numerically) singular.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        if !self.is_square() {
            return Err(OdeError::Linalg("solve requires a square matrix".into()));
        }
        let n = self.rows;
        if b.len() != n {
            return Err(OdeError::Linalg("right-hand side has wrong length".into()));
        }
        let mut a = self.data.clone();
        let mut rhs = b.to_vec();
        for col in 0..n {
            let mut pivot = col;
            let mut max = a[col * n + col].abs();
            for r in (col + 1)..n {
                if a[r * n + col].abs() > max {
                    max = a[r * n + col].abs();
                    pivot = r;
                }
            }
            if max < 1e-300 {
                return Err(OdeError::Linalg("matrix is singular".into()));
            }
            if pivot != col {
                for c in 0..n {
                    a.swap(col * n + c, pivot * n + c);
                }
                rhs.swap(col, pivot);
            }
            for r in (col + 1)..n {
                let f = a[r * n + col] / a[col * n + col];
                if f == 0.0 {
                    continue;
                }
                for c in col..n {
                    a[r * n + c] -= f * a[col * n + c];
                }
                rhs[r] -= f * rhs[col];
            }
        }
        // Back substitution.
        let mut x = vec![0.0; n];
        for row in (0..n).rev() {
            let mut acc = rhs[row];
            for c in (row + 1)..n {
                acc -= a[row * n + c] * x[c];
            }
            x[row] = acc / a[row * n + row];
        }
        Ok(x)
    }

    /// Coefficients `c_0 + c_1 λ + … + c_n λ^n` of the characteristic
    /// polynomial `det(λI − A)`, computed with the Faddeev–LeVerrier
    /// recursion. `c_n` is always 1.
    ///
    /// # Errors
    ///
    /// Returns [`OdeError::Linalg`] if the matrix is not square.
    pub fn characteristic_polynomial(&self) -> Result<Vec<f64>> {
        if !self.is_square() {
            return Err(OdeError::Linalg(
                "characteristic polynomial requires a square matrix".into(),
            ));
        }
        let n = self.rows;
        // Faddeev–LeVerrier: M_0 = 0, c_n = 1;
        // M_k = A·M_{k-1} + c_{n-k+1} I ;  c_{n-k} = -trace(A·M_k)/k
        let mut coeffs = vec![0.0; n + 1];
        coeffs[n] = 1.0;
        let mut m = Matrix::zeros(n, n);
        for k in 1..=n {
            // M_k = A*M_{k-1} + c_{n-k+1} * I
            let am = self.multiply(&m)?;
            m = am.add(&Matrix::identity(n).scaled(coeffs[n - k + 1]))?;
            let am_next = self.multiply(&m)?;
            coeffs[n - k] = -am_next.trace() / k as f64;
        }
        Ok(coeffs)
    }

    /// All eigenvalues of a square matrix (with multiplicity), as complex
    /// numbers.
    ///
    /// Uses the closed form for 1×1 and 2×2 matrices and Durand–Kerner
    /// iteration on the characteristic polynomial for larger matrices. This is
    /// accurate and robust for the small (≤ ~8×8) Jacobians produced by
    /// protocol analysis.
    ///
    /// # Errors
    ///
    /// Returns [`OdeError::Linalg`] if the matrix is not square and
    /// [`OdeError::NoConvergence`] if root finding fails.
    pub fn eigenvalues(&self) -> Result<Vec<Complex>> {
        if !self.is_square() {
            return Err(OdeError::Linalg(
                "eigenvalues require a square matrix".into(),
            ));
        }
        match self.rows {
            0 => Ok(Vec::new()),
            1 => Ok(vec![Complex::real(self.get(0, 0))]),
            2 => Ok(self.eigenvalues_2x2()),
            _ => {
                let coeffs = self.characteristic_polynomial()?;
                durand_kerner(&coeffs)
            }
        }
    }

    /// Closed-form eigenvalues of a 2×2 matrix via trace and determinant.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not 2×2.
    pub fn eigenvalues_2x2(&self) -> Vec<Complex> {
        assert!(
            self.rows == 2 && self.cols == 2,
            "eigenvalues_2x2 requires a 2x2 matrix"
        );
        let tau = self.trace();
        let delta = self.get(0, 0) * self.get(1, 1) - self.get(0, 1) * self.get(1, 0);
        let disc = tau * tau - 4.0 * delta;
        if disc >= 0.0 {
            let s = disc.sqrt();
            vec![
                Complex::real((tau + s) / 2.0),
                Complex::real((tau - s) / 2.0),
            ]
        } else {
            let s = (-disc).sqrt();
            vec![
                Complex::new(tau / 2.0, s / 2.0),
                Complex::new(tau / 2.0, -s / 2.0),
            ]
        }
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            write!(f, "[")?;
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:10.4}", self.get(r, c))?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

/// Finds all (complex) roots of the polynomial
/// `c_0 + c_1 x + … + c_n x^n` using Durand–Kerner iteration.
///
/// # Errors
///
/// Returns [`OdeError::Linalg`] if the leading coefficient is zero and
/// [`OdeError::NoConvergence`] if the iteration does not converge.
pub fn durand_kerner(coeffs: &[f64]) -> Result<Vec<Complex>> {
    let n = coeffs.len().saturating_sub(1);
    if n == 0 {
        return Ok(Vec::new());
    }
    let lead = coeffs[n];
    if lead == 0.0 {
        return Err(OdeError::Linalg("leading coefficient is zero".into()));
    }
    // Normalize to a monic polynomial.
    let monic: Vec<f64> = coeffs.iter().map(|c| c / lead).collect();
    let eval = |z: Complex| -> Complex {
        // Horner evaluation from the highest coefficient down.
        let mut acc = Complex::real(monic[n]);
        for k in (0..n).rev() {
            acc = acc * z + Complex::real(monic[k]);
        }
        acc
    };

    // Initial guesses on a circle of radius related to the coefficient bound,
    // using an irrational angle to avoid symmetry traps.
    let radius = 1.0 + monic[..n].iter().map(|c| c.abs()).fold(0.0_f64, f64::max);
    let mut roots: Vec<Complex> = (0..n)
        .map(|k| {
            let angle = 0.4 + 2.0 * std::f64::consts::PI * k as f64 / n as f64;
            Complex::new(radius * 0.5 * angle.cos(), radius * 0.5 * angle.sin())
        })
        .collect();

    let max_iter = 500;
    for _ in 0..max_iter {
        let mut max_delta = 0.0_f64;
        for i in 0..n {
            let mut denom = Complex::real(1.0);
            for j in 0..n {
                if i != j {
                    denom = denom * (roots[i] - roots[j]);
                }
            }
            if denom.abs() < 1e-300 {
                // Perturb coincident estimates slightly.
                roots[i] = roots[i] + Complex::new(1e-8, 1e-8);
                continue;
            }
            let delta = eval(roots[i]) / denom;
            roots[i] = roots[i] - delta;
            max_delta = max_delta.max(delta.abs());
        }
        if max_delta < 1e-13 * radius.max(1.0) {
            // Clean tiny imaginary parts produced by rounding.
            for r in &mut roots {
                if r.im.abs() < 1e-9 * r.abs().max(1.0) {
                    r.im = 0.0;
                }
            }
            return Ok(roots);
        }
    }
    Err(OdeError::NoConvergence {
        context: "Durand-Kerner root finding",
        iterations: max_iter,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted_re(mut v: Vec<Complex>) -> Vec<Complex> {
        v.sort_by(|a, b| {
            a.re.partial_cmp(&b.re)
                .unwrap()
                .then(a.im.partial_cmp(&b.im).unwrap())
        });
        v
    }

    #[test]
    fn complex_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        let q = a / b;
        let back = q * b;
        assert!((back.re - a.re).abs() < 1e-12 && (back.im - a.im).abs() < 1e-12);
        let sq = Complex::new(0.0, 2.0).sqrt() * Complex::new(0.0, 2.0).sqrt();
        assert!((sq.im - 2.0).abs() < 1e-12);
        assert!(Complex::real(3.0).is_real(1e-12));
        assert!(!Complex::new(1.0, 1.0).is_real(1e-12));
        assert!(Complex::new(3.0, 4.0).abs() - 5.0 < 1e-12);
        assert!(format!("{}", Complex::new(1.0, -2.0)).contains('i'));
    }

    #[test]
    fn matrix_construction_and_accessors() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.trace(), 5.0);
        assert!(m.is_square());
        assert!(Matrix::from_rows(&[]).is_err());
        assert!(Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(!format!("{m}").is_empty());
    }

    #[test]
    fn multiply_identity_and_vec() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let i = Matrix::identity(2);
        assert_eq!(m.multiply(&i).unwrap(), m);
        assert_eq!(m.mul_vec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert!(m.mul_vec(&[1.0]).is_err());
        assert!(m.multiply(&Matrix::zeros(3, 3)).is_err());
        let t = m.transpose();
        assert_eq!(t.get(0, 1), 3.0);
        let s = m.add(&m).unwrap().scaled(0.5);
        assert_eq!(s, m);
    }

    #[test]
    fn determinant_and_solve() {
        let m = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]).unwrap();
        assert!((m.determinant().unwrap() - 5.0).abs() < 1e-12);
        let x = m.solve(&[3.0, 5.0]).unwrap();
        // 2a + b = 3 ; a + 3b = 5 → a = 4/5, b = 7/5
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);

        let singular = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert_eq!(singular.determinant().unwrap(), 0.0);
        assert!(singular.solve(&[1.0, 1.0]).is_err());

        // 3x3 with known determinant.
        let m3 = Matrix::from_rows(&[
            vec![6.0, 1.0, 1.0],
            vec![4.0, -2.0, 5.0],
            vec![2.0, 8.0, 7.0],
        ])
        .unwrap();
        assert!((m3.determinant().unwrap() + 306.0).abs() < 1e-9);
    }

    #[test]
    fn characteristic_polynomial_of_2x2() {
        // det(λI - A) = λ² - tr λ + det
        let m = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]).unwrap();
        let c = m.characteristic_polynomial().unwrap();
        assert!((c[2] - 1.0).abs() < 1e-12);
        assert!((c[1] + 5.0).abs() < 1e-12);
        assert!((c[0] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn eigenvalues_2x2_real_and_complex() {
        // Real: diag(1, 4) rotated is symmetric [[2, -1],[-1, 3]] has eigs (5±√5)/2
        let m = Matrix::from_rows(&[vec![2.0, -1.0], vec![-1.0, 3.0]]).unwrap();
        let eig = sorted_re(m.eigenvalues().unwrap());
        assert!((eig[0].re - (5.0 - 5.0_f64.sqrt()) / 2.0).abs() < 1e-10);
        assert!((eig[1].re - (5.0 + 5.0_f64.sqrt()) / 2.0).abs() < 1e-10);

        // Complex: rotation-like matrix [[0, -1], [1, 0]] has eigs ±i
        let r = Matrix::from_rows(&[vec![0.0, -1.0], vec![1.0, 0.0]]).unwrap();
        let eig = r.eigenvalues().unwrap();
        assert!(eig
            .iter()
            .all(|e| e.re.abs() < 1e-12 && (e.im.abs() - 1.0).abs() < 1e-12));
    }

    #[test]
    fn eigenvalues_3x3_real() {
        // Upper triangular: eigenvalues are the diagonal.
        let m = Matrix::from_rows(&[
            vec![1.0, 5.0, -3.0],
            vec![0.0, 2.0, 7.0],
            vec![0.0, 0.0, -4.0],
        ])
        .unwrap();
        let eig = sorted_re(m.eigenvalues().unwrap());
        let expected = [-4.0, 1.0, 2.0];
        for (e, x) in eig.iter().zip(expected) {
            assert!((e.re - x).abs() < 1e-7, "eig {e} vs {x}");
            assert!(e.im.abs() < 1e-7);
        }
    }

    #[test]
    fn eigenvalues_3x3_complex_pair() {
        // Block diag: rotation block (eigs ±2i scaled) + real eigenvalue 3.
        let m = Matrix::from_rows(&[
            vec![0.0, -2.0, 0.0],
            vec![2.0, 0.0, 0.0],
            vec![0.0, 0.0, 3.0],
        ])
        .unwrap();
        let eig = m.eigenvalues().unwrap();
        let mut real_count = 0;
        let mut complex_count = 0;
        for e in &eig {
            if e.im.abs() < 1e-7 {
                real_count += 1;
                assert!((e.re - 3.0).abs() < 1e-6);
            } else {
                complex_count += 1;
                assert!(e.re.abs() < 1e-6);
                assert!((e.im.abs() - 2.0).abs() < 1e-6);
            }
        }
        assert_eq!(real_count, 1);
        assert_eq!(complex_count, 2);
    }

    #[test]
    fn eigenvalues_4x4() {
        // diag(1, 2, 3, 4) permuted by a similarity transform keeps eigenvalues.
        // Use an upper-triangular with those diagonal values.
        let m = Matrix::from_rows(&[
            vec![1.0, 1.0, 0.0, 2.0],
            vec![0.0, 2.0, 5.0, 1.0],
            vec![0.0, 0.0, 3.0, -1.0],
            vec![0.0, 0.0, 0.0, 4.0],
        ])
        .unwrap();
        let eig = sorted_re(m.eigenvalues().unwrap());
        for (e, x) in eig.iter().zip([1.0, 2.0, 3.0, 4.0]) {
            assert!((e.re - x).abs() < 1e-6);
        }
    }

    #[test]
    fn durand_kerner_simple_roots() {
        // (x-1)(x-2)(x-3) = x³ -6x² + 11x - 6
        let roots = sorted_re(durand_kerner(&[-6.0, 11.0, -6.0, 1.0]).unwrap());
        for (r, x) in roots.iter().zip([1.0, 2.0, 3.0]) {
            assert!((r.re - x).abs() < 1e-8);
        }
        assert!(durand_kerner(&[1.0, 0.0]).is_err());
        assert!(durand_kerner(&[5.0]).unwrap().is_empty());
    }

    #[test]
    fn frobenius_norm() {
        let m = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 4.0]]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }
}
