//! A small text front-end for writing equation systems the way the paper does.
//!
//! The grammar accepts one line per variable:
//!
//! ```text
//! x' = -beta*x*y + alpha*z
//! y' = beta*x*y - gamma*y
//! z' = gamma*y - alpha*z
//! ```
//!
//! Identifiers on the left-hand side (before `'`) become the system variables
//! (in order of appearance); identifiers on the right-hand side are either
//! variables or named parameters supplied to [`parse_system`]. Each term is a
//! product of numbers, parameters and variables (optionally raised to a
//! positive integer power with `^`), and terms are combined with `+` and `-`.
//! Lines that are empty or start with `#` are ignored.

use crate::error::OdeError;
use crate::poly::Polynomial;
use crate::system::EquationSystem;
use crate::term::Term;
use crate::Result;
use std::collections::HashMap;

/// Parses a multi-line equation system description.
///
/// `params` supplies values for named constants (e.g. `beta`, `gamma`)
/// appearing in the text.
///
/// # Errors
///
/// Returns [`OdeError::Parse`] for syntax errors, unknown identifiers, or
/// missing equations, with a byte position relative to the offending line.
///
/// # Examples
///
/// ```
/// use odekit::parse::parse_system;
/// use odekit::taxonomy;
///
/// let sys = parse_system(
///     "x' = -beta*x*y + alpha*z\n\
///      y' = beta*x*y - gamma*y\n\
///      z' = gamma*y - alpha*z",
///     &[("beta", 4.0), ("gamma", 1.0), ("alpha", 0.01)],
/// )?;
/// assert_eq!(sys.dim(), 3);
/// assert!(taxonomy::is_completely_partitionable(&sys));
/// # Ok::<(), odekit::OdeError>(())
/// ```
pub fn parse_system(text: &str, params: &[(&str, f64)]) -> Result<EquationSystem> {
    let params: HashMap<&str, f64> = params.iter().copied().collect();

    // First pass: collect variable names from the left-hand sides.
    let mut lines = Vec::new();
    let mut names: Vec<String> = Vec::new();
    for raw in text.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (lhs, rhs) = line.split_once('=').ok_or(OdeError::Parse {
            position: 0,
            message: format!("expected `var' = expression`, got `{line}`"),
        })?;
        let lhs = lhs.trim();
        let var = lhs
            .strip_suffix('\'')
            .map(str::trim)
            .ok_or(OdeError::Parse {
                position: 0,
                message: format!("left-hand side `{lhs}` must end with ' (prime)"),
            })?;
        if var.is_empty() || !is_ident(var) {
            return Err(OdeError::Parse {
                position: 0,
                message: format!("invalid variable name `{var}`"),
            });
        }
        if names.iter().any(|n| n == var) {
            return Err(OdeError::DuplicateVariable(var.to_string()));
        }
        names.push(var.to_string());
        lines.push((var.to_string(), rhs.trim().to_string()));
    }
    if names.is_empty() {
        return Err(OdeError::EmptySystem);
    }

    // Second pass: parse each right-hand side into a polynomial.
    let dim = names.len();
    let var_index: HashMap<&str, usize> = names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.as_str(), i))
        .collect();
    let mut equations = vec![Polynomial::zero(); dim];
    for (var, rhs) in &lines {
        let idx = var_index[var.as_str()];
        equations[idx] = parse_expression(rhs, &var_index, &params, dim)?;
    }
    EquationSystem::new(names, equations)
}

fn is_ident(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Number(f64),
    Plus,
    Minus,
    Star,
    Caret,
}

fn tokenize(src: &str) -> Result<Vec<(usize, Token)>> {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' => i += 1,
            '+' => {
                tokens.push((i, Token::Plus));
                i += 1;
            }
            '-' => {
                tokens.push((i, Token::Minus));
                i += 1;
            }
            '*' => {
                tokens.push((i, Token::Star));
                i += 1;
            }
            '^' => {
                tokens.push((i, Token::Caret));
                i += 1;
            }
            c if c.is_ascii_digit() || c == '.' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_digit()
                        || bytes[i] == b'.'
                        || bytes[i] == b'e'
                        || bytes[i] == b'E'
                        || ((bytes[i] == b'-' || bytes[i] == b'+')
                            && i > start
                            && (bytes[i - 1] == b'e' || bytes[i - 1] == b'E')))
                {
                    i += 1;
                }
                let text = &src[start..i];
                let value = text.parse::<f64>().map_err(|_| OdeError::Parse {
                    position: start,
                    message: format!("invalid number `{text}`"),
                })?;
                tokens.push((start, Token::Number(value)));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push((start, Token::Ident(src[start..i].to_string())));
            }
            other => {
                return Err(OdeError::Parse {
                    position: i,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(tokens)
}

fn parse_expression(
    src: &str,
    vars: &HashMap<&str, usize>,
    params: &HashMap<&str, f64>,
    dim: usize,
) -> Result<Polynomial> {
    let tokens = tokenize(src)?;
    if tokens.is_empty() {
        return Err(OdeError::Parse {
            position: 0,
            message: "empty expression".to_string(),
        });
    }
    let mut poly = Polynomial::zero();
    let mut pos = 0usize;

    loop {
        // Optional sign(s).
        let mut sign = 1.0;
        while pos < tokens.len() {
            match tokens[pos].1 {
                Token::Plus => pos += 1,
                Token::Minus => {
                    sign = -sign;
                    pos += 1;
                }
                _ => break,
            }
        }
        if pos >= tokens.len() {
            return Err(OdeError::Parse {
                position: tokens.last().map_or(0, |t| t.0),
                message: "expression ends with a dangling sign".to_string(),
            });
        }
        // One term: factors separated by '*'.
        let mut coeff = sign;
        let mut exponents = vec![0u32; dim];
        loop {
            let (tpos, tok) = &tokens[pos];
            match tok {
                Token::Number(v) => {
                    coeff *= v;
                    pos += 1;
                }
                Token::Ident(name) => {
                    pos += 1;
                    // Optional ^integer exponent.
                    let mut exp = 1u32;
                    if pos + 1 < tokens.len() && tokens[pos].1 == Token::Caret {
                        match tokens[pos + 1].1 {
                            Token::Number(v) if v.fract() == 0.0 && v >= 1.0 => {
                                exp = v as u32;
                                pos += 2;
                            }
                            _ => {
                                return Err(OdeError::Parse {
                                    position: tokens[pos + 1].0,
                                    message: "exponent must be a positive integer".to_string(),
                                })
                            }
                        }
                    } else if pos < tokens.len() && tokens[pos].1 == Token::Caret {
                        return Err(OdeError::Parse {
                            position: tokens[pos].0,
                            message: "missing exponent after ^".to_string(),
                        });
                    }
                    if let Some(&vi) = vars.get(name.as_str()) {
                        exponents[vi] += exp;
                    } else if let Some(&value) = params.get(name.as_str()) {
                        coeff *= value.powi(exp as i32);
                    } else {
                        return Err(OdeError::Parse {
                            position: *tpos,
                            message: format!(
                                "unknown identifier `{name}` (not a variable or parameter)"
                            ),
                        });
                    }
                }
                other => {
                    return Err(OdeError::Parse {
                        position: *tpos,
                        message: format!("expected a factor, found {other:?}"),
                    })
                }
            }
            // Continue this term only on '*'.
            if pos < tokens.len() && tokens[pos].1 == Token::Star {
                pos += 1;
                continue;
            }
            break;
        }
        poly.push(Term::new(coeff, exponents));
        if pos >= tokens.len() {
            break;
        }
        // Next token must start a new term with + or -.
        match tokens[pos].1 {
            Token::Plus | Token::Minus => continue,
            _ => {
                return Err(OdeError::Parse {
                    position: tokens[pos].0,
                    message: "expected + or - between terms".to_string(),
                })
            }
        }
    }
    Ok(poly)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxonomy;

    #[test]
    fn parses_the_endemic_system() {
        let sys = parse_system(
            "# endemic equations (1)\n\
             x' = -beta*x*y + alpha*z\n\
             y' = beta*x*y - gamma*y\n\
             z' = gamma*y - alpha*z",
            &[("beta", 4.0), ("gamma", 1.0), ("alpha", 0.01)],
        )
        .unwrap();
        assert_eq!(sys.dim(), 3);
        assert!(taxonomy::is_completely_partitionable(&sys));
        assert!(taxonomy::is_restricted_polynomial(&sys));
        let rhs = sys.eval_rhs(&[0.25, 0.5, 0.25]);
        assert!((rhs[0] - (-4.0 * 0.25 * 0.5 + 0.01 * 0.25)).abs() < 1e-12);
    }

    #[test]
    fn parses_powers_and_scientific_notation() {
        let sys = parse_system("x' = -3*x^2 + 1.5e-2*y\ny' = 3*x^2 - 1.5e-2*y", &[]).unwrap();
        let rhs = sys.eval_rhs(&[2.0, 1.0]);
        assert!((rhs[0] - (-12.0 + 0.015)).abs() < 1e-12);
        assert!((rhs[0] + rhs[1]).abs() < 1e-12);
    }

    #[test]
    fn parses_lv_rewritten_form() {
        let sys = parse_system(
            "x' = 3*x*z - 3*x*y\n\
             y' = 3*y*z - 3*x*y\n\
             z' = -3*x*z - 3*y*z + 3*x*y + 3*x*y",
            &[],
        )
        .unwrap();
        assert!(taxonomy::is_completely_partitionable(&sys));
        // z' keeps its two separate +3xy terms.
        let z = sys.var("z").unwrap();
        assert_eq!(sys.equation(z).len(), 4);
    }

    #[test]
    fn unknown_identifier_is_an_error() {
        let err = parse_system("x' = -q*x\ny' = q*x", &[]).unwrap_err();
        assert!(matches!(err, OdeError::Parse { .. }));
        assert!(err.to_string().contains('q'));
    }

    #[test]
    fn missing_prime_is_an_error() {
        let err = parse_system("x = -x", &[]).unwrap_err();
        assert!(matches!(err, OdeError::Parse { .. }));
    }

    #[test]
    fn missing_equals_is_an_error() {
        let err = parse_system("x' -x", &[]).unwrap_err();
        assert!(matches!(err, OdeError::Parse { .. }));
    }

    #[test]
    fn duplicate_lhs_is_an_error() {
        let err = parse_system("x' = -x\nx' = x", &[]).unwrap_err();
        assert!(matches!(err, OdeError::DuplicateVariable(_)));
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(matches!(parse_system("", &[]), Err(OdeError::EmptySystem)));
        assert!(matches!(
            parse_system("# only a comment", &[]),
            Err(OdeError::EmptySystem)
        ));
    }

    #[test]
    fn dangling_sign_and_bad_exponent_are_errors() {
        assert!(parse_system("x' = -", &[]).is_err());
        assert!(parse_system("x' = x^", &[]).is_err());
        assert!(parse_system("x' = x^0.5", &[]).is_err());
        assert!(parse_system("x' = x x", &[]).is_err());
        assert!(parse_system("x' = x ? y", &[]).is_err());
    }

    #[test]
    fn parameter_powers_are_folded_into_coefficient() {
        let sys = parse_system("x' = -k^2*x\ny' = k^2*x", &[("k", 3.0)]).unwrap();
        let rhs = sys.eval_rhs(&[1.0, 0.0]);
        assert!((rhs[0] + 9.0).abs() < 1e-12);
    }

    #[test]
    fn double_negative_signs() {
        let sys = parse_system("x' = - -x\ny' = -x", &[]).unwrap();
        assert!((sys.eval_rhs(&[2.0, 0.0])[0] - 2.0).abs() < 1e-12);
    }
}
