//! Classic fixed-step fourth-order Runge–Kutta.

use super::{check_initial, check_step, Integrator, OdeSystem, Trajectory};
use crate::error::OdeError;
use crate::Result;

/// The classic fourth-order Runge–Kutta method with a fixed step size.
///
/// Global error is `O(h⁴)`. This is the integrator used throughout the
/// experiment harness to produce the ODE ("analysis") curves that protocol
/// simulations are compared against.
///
/// # Examples
///
/// ```
/// use odekit::integrate::{FnSystem, Integrator, Rk4};
///
/// // Simple harmonic oscillator: x'' = -x as a 2-d system.
/// let sys = FnSystem::new(2, |_t, y: &[f64], out: &mut [f64]| {
///     out[0] = y[1];
///     out[1] = -y[0];
/// });
/// let traj = Rk4::new(1e-3).integrate(&sys, 0.0, &[1.0, 0.0], std::f64::consts::PI)?;
/// // After half a period x ≈ -1.
/// assert!((traj.last_state()[0] + 1.0).abs() < 1e-8);
/// # Ok::<(), odekit::OdeError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rk4 {
    step: f64,
}

impl Rk4 {
    /// Creates an RK4 integrator with the given step size.
    pub fn new(step: f64) -> Self {
        Rk4 { step }
    }

    /// The configured step size.
    pub fn step(&self) -> f64 {
        self.step
    }

    /// Performs a single RK4 step in place, using the provided scratch buffers.
    fn step_once<S: OdeSystem>(sys: &S, t: f64, h: f64, y: &mut [f64], scratch: &mut Scratch) {
        let Scratch {
            k1,
            k2,
            k3,
            k4,
            tmp,
        } = scratch;
        sys.rhs(t, y, k1);
        for i in 0..y.len() {
            tmp[i] = y[i] + 0.5 * h * k1[i];
        }
        sys.rhs(t + 0.5 * h, tmp, k2);
        for i in 0..y.len() {
            tmp[i] = y[i] + 0.5 * h * k2[i];
        }
        sys.rhs(t + 0.5 * h, tmp, k3);
        for i in 0..y.len() {
            tmp[i] = y[i] + h * k3[i];
        }
        sys.rhs(t + h, tmp, k4);
        for i in 0..y.len() {
            y[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
    }
}

/// Scratch buffers for one RK4 step, allocated once per integration.
struct Scratch {
    k1: Vec<f64>,
    k2: Vec<f64>,
    k3: Vec<f64>,
    k4: Vec<f64>,
    tmp: Vec<f64>,
}

impl Scratch {
    fn new(dim: usize) -> Self {
        Scratch {
            k1: vec![0.0; dim],
            k2: vec![0.0; dim],
            k3: vec![0.0; dim],
            k4: vec![0.0; dim],
            tmp: vec![0.0; dim],
        }
    }
}

impl Integrator for Rk4 {
    fn integrate<S: OdeSystem>(
        &self,
        sys: &S,
        t0: f64,
        y0: &[f64],
        t_end: f64,
    ) -> Result<Trajectory> {
        check_step("step", self.step)?;
        check_initial(sys, y0, t0, t_end)?;

        let dim = sys.dim();
        let mut traj = Trajectory::with_capacity(((t_end - t0) / self.step) as usize + 2);
        let mut y = y0.to_vec();
        let mut t = t0;
        let mut scratch = Scratch::new(dim);
        traj.push(t, y.clone());

        while t < t_end {
            let h = self.step.min(t_end - t);
            Self::step_once(sys, t, h, &mut y, &mut scratch);
            t += h;
            if !y.iter().all(|v| v.is_finite()) {
                return Err(OdeError::NonFiniteState { time: t });
            }
            traj.push(t, y.clone());
        }
        Ok(traj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrate::FnSystem;
    use crate::system::EquationSystemBuilder;

    fn decay() -> FnSystem<impl Fn(f64, &[f64], &mut [f64])> {
        FnSystem::new(1, |_t, y: &[f64], out: &mut [f64]| out[0] = -y[0])
    }

    #[test]
    fn fourth_order_accuracy() {
        let exact = (-1.0_f64).exp();
        let coarse = Rk4::new(0.1).integrate(&decay(), 0.0, &[1.0], 1.0).unwrap();
        let fine = Rk4::new(0.05)
            .integrate(&decay(), 0.0, &[1.0], 1.0)
            .unwrap();
        let e_coarse = (coarse.last_state()[0] - exact).abs();
        let e_fine = (fine.last_state()[0] - exact).abs();
        // Halving h should reduce the error by ~16x (order 4).
        let ratio = e_coarse / e_fine;
        assert!(
            ratio > 10.0 && ratio < 25.0,
            "error ratio {ratio} not consistent with order 4"
        );
    }

    #[test]
    fn time_dependent_rhs() {
        // ẏ = t → y(t) = t²/2
        let sys = FnSystem::new(1, |t, _y: &[f64], out: &mut [f64]| out[0] = t);
        let traj = Rk4::new(1e-3).integrate(&sys, 0.0, &[0.0], 2.0).unwrap();
        assert!((traj.last_state()[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn epidemic_reaches_saturation() {
        let sys = EquationSystemBuilder::new()
            .vars(["x", "y"])
            .term("x", -1.0, &[("x", 1), ("y", 1)])
            .term("y", 1.0, &[("x", 1), ("y", 1)])
            .build()
            .unwrap();
        let traj = Rk4::new(0.01)
            .integrate(&sys, 0.0, &[0.999, 0.001], 40.0)
            .unwrap();
        let last = traj.last_state();
        assert!(last[1] > 0.99);
        // Conservation: x + y = 1 throughout.
        for (_, s) in traj.iter() {
            assert!((s[0] + s[1] - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let res = Rk4::new(0.1).integrate(&decay(), 0.0, &[1.0, 2.0], 1.0);
        assert!(matches!(res, Err(OdeError::DimensionMismatch { .. })));
    }

    #[test]
    fn step_accessor_and_clone() {
        let i = Rk4::new(0.25);
        assert_eq!(i.step(), 0.25);
        assert_eq!(i, i.clone());
    }
}
