//! Time series produced by integrators (and reused by the protocol runtimes).

use std::fmt;

/// A discretely sampled trajectory: a sequence of `(time, state)` points.
///
/// Trajectories are produced by the [`Integrator`](super::Integrator)
/// implementations and also by the protocol runtimes in `dpde-core`, which
/// lets the equivalence checker compare the two directly.
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Trajectory {
    times: Vec<f64>,
    states: Vec<Vec<f64>>,
}

impl Trajectory {
    /// Creates an empty trajectory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty trajectory with room for `capacity` points.
    pub fn with_capacity(capacity: usize) -> Self {
        Trajectory {
            times: Vec::with_capacity(capacity),
            states: Vec::with_capacity(capacity),
        }
    }

    /// Appends a sample point.
    ///
    /// # Panics
    ///
    /// Panics if `state` has a different length than previously pushed states.
    pub fn push(&mut self, time: f64, state: Vec<f64>) {
        if let Some(first) = self.states.first() {
            assert_eq!(
                first.len(),
                state.len(),
                "state dimension changed mid-trajectory"
            );
        }
        self.times.push(time);
        self.states.push(state);
    }

    /// Number of sample points.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` if no points have been recorded.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Dimension of the state vectors (0 if the trajectory is empty).
    pub fn dim(&self) -> usize {
        self.states.first().map_or(0, Vec::len)
    }

    /// The recorded sample times.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// The recorded states, one per sample time.
    pub fn states(&self) -> &[Vec<f64>] {
        &self.states
    }

    /// The final recorded state.
    ///
    /// # Panics
    ///
    /// Panics if the trajectory is empty.
    pub fn last_state(&self) -> &[f64] {
        self.states.last().expect("trajectory is empty")
    }

    /// The final recorded time.
    ///
    /// # Panics
    ///
    /// Panics if the trajectory is empty.
    pub fn last_time(&self) -> f64 {
        *self.times.last().expect("trajectory is empty")
    }

    /// Iterates over `(time, state)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, &[f64])> {
        self.times
            .iter()
            .copied()
            .zip(self.states.iter().map(Vec::as_slice))
    }

    /// The time series of a single state component.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range for a non-empty trajectory.
    pub fn component(&self, var: usize) -> Vec<f64> {
        self.states.iter().map(|s| s[var]).collect()
    }

    /// Projects the trajectory onto two components, e.g. for a phase portrait.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range for a non-empty trajectory.
    pub fn projection(&self, a: usize, b: usize) -> Vec<(f64, f64)> {
        self.states.iter().map(|s| (s[a], s[b])).collect()
    }

    /// Linearly interpolates the state at time `t`.
    ///
    /// Returns `None` if the trajectory is empty or `t` lies outside the
    /// recorded time range.
    pub fn state_at(&self, t: f64) -> Option<Vec<f64>> {
        if self.is_empty() {
            return None;
        }
        let first = self.times[0];
        let last = *self.times.last().unwrap();
        if t < first || t > last {
            return None;
        }
        // Find the bracketing segment (times are non-decreasing).
        let idx = match self
            .times
            .binary_search_by(|probe| probe.partial_cmp(&t).unwrap())
        {
            Ok(i) => return Some(self.states[i].clone()),
            Err(i) => i,
        };
        let (i0, i1) = (idx - 1, idx);
        let (t0, t1) = (self.times[i0], self.times[i1]);
        let w = if t1 > t0 { (t - t0) / (t1 - t0) } else { 0.0 };
        Some(
            self.states[i0]
                .iter()
                .zip(&self.states[i1])
                .map(|(a, b)| a + w * (b - a))
                .collect(),
        )
    }

    /// Keeps only every `stride`-th point (always keeping the last point).
    /// Useful for thinning dense adaptive-integrator output before plotting.
    pub fn thinned(&self, stride: usize) -> Trajectory {
        let stride = stride.max(1);
        let mut out = Trajectory::new();
        for (i, (t, s)) in self.iter().enumerate() {
            if i % stride == 0 || i + 1 == self.len() {
                out.push(t, s.to_vec());
            }
        }
        out
    }

    /// Renders the trajectory as CSV with the given column names.
    ///
    /// The first column is `time`; one column per state component follows.
    pub fn to_csv(&self, names: &[String]) -> String {
        let mut out = String::from("time");
        for n in names {
            out.push(',');
            out.push_str(n);
        }
        out.push('\n');
        for (t, s) in self.iter() {
            out.push_str(&format!("{t}"));
            for v in s {
                out.push_str(&format!(",{v}"));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Trajectory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Trajectory({} points, dim {})", self.len(), self.dim())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trajectory {
        let mut t = Trajectory::new();
        t.push(0.0, vec![0.0, 10.0]);
        t.push(1.0, vec![1.0, 9.0]);
        t.push(2.0, vec![2.0, 8.0]);
        t
    }

    #[test]
    fn push_and_accessors() {
        let t = sample();
        assert_eq!(t.len(), 3);
        assert_eq!(t.dim(), 2);
        assert_eq!(t.last_time(), 2.0);
        assert_eq!(t.last_state(), &[2.0, 8.0]);
        assert_eq!(t.component(1), vec![10.0, 9.0, 8.0]);
        assert_eq!(t.projection(0, 1)[1], (1.0, 9.0));
        assert!(!t.is_empty());
        assert_eq!(t.iter().count(), 3);
    }

    #[test]
    fn interpolation() {
        let t = sample();
        assert_eq!(t.state_at(1.0), Some(vec![1.0, 9.0]));
        assert_eq!(t.state_at(0.5), Some(vec![0.5, 9.5]));
        assert_eq!(t.state_at(-1.0), None);
        assert_eq!(t.state_at(3.0), None);
        assert_eq!(Trajectory::new().state_at(0.0), None);
    }

    #[test]
    fn thinning_keeps_last() {
        let mut t = Trajectory::new();
        for i in 0..10 {
            t.push(i as f64, vec![i as f64]);
        }
        let thin = t.thinned(4);
        assert_eq!(thin.times(), &[0.0, 4.0, 8.0, 9.0]);
        // stride 0 is clamped to 1
        assert_eq!(t.thinned(0).len(), t.len());
    }

    #[test]
    fn csv_rendering() {
        let t = sample();
        let csv = t.to_csv(&["x".to_string(), "y".to_string()]);
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("time,x,y"));
        assert_eq!(lines.next(), Some("0,0,10"));
    }

    #[test]
    #[should_panic(expected = "dimension changed")]
    fn dimension_change_panics() {
        let mut t = sample();
        t.push(3.0, vec![1.0]);
    }

    #[test]
    fn display_and_default() {
        let t = Trajectory::default();
        assert!(t.is_empty());
        assert!(format!("{}", sample()).contains("3 points"));
        let _ = Trajectory::with_capacity(16);
    }
}
