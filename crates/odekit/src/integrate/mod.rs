//! Numerical integration of ODE systems.
//!
//! Three explicit integrators are provided:
//!
//! * [`Euler`] — first-order explicit Euler; cheap, useful as a baseline and
//!   in property tests of convergence order,
//! * [`Rk4`] — the classic fixed-step fourth-order Runge–Kutta method, the
//!   workhorse used to produce the paper's "analysis" curves,
//! * [`Rkf45`] — adaptive Runge–Kutta–Fehlberg 4(5) with per-step error
//!   control, for stiff parameter regimes (e.g. the endemic system with
//!   `α = 10⁻⁶`).
//!
//! All integrators consume anything implementing [`OdeSystem`] — in
//! particular [`EquationSystem`] and ad-hoc closures
//! wrapped in [`FnSystem`] — and produce a [`Trajectory`].

mod euler;
mod rk4;
mod rkf45;
mod trajectory;

pub use euler::Euler;
pub use rk4::Rk4;
pub use rkf45::Rkf45;
pub use trajectory::Trajectory;

use crate::error::OdeError;
use crate::system::EquationSystem;
use crate::Result;

/// A first-order ODE system `ẏ = f(t, y)` that integrators can drive.
///
/// Implemented by [`EquationSystem`] (autonomous polynomial systems) and by
/// [`FnSystem`] (arbitrary closures).
pub trait OdeSystem {
    /// Number of state components.
    fn dim(&self) -> usize;

    /// Writes `f(t, state)` into `out`.
    ///
    /// Implementations may assume `state.len() == out.len() == self.dim()`.
    fn rhs(&self, t: f64, state: &[f64], out: &mut [f64]);
}

impl OdeSystem for EquationSystem {
    fn dim(&self) -> usize {
        EquationSystem::dim(self)
    }

    fn rhs(&self, _t: f64, state: &[f64], out: &mut [f64]) {
        self.eval_rhs_into(state, out);
    }
}

impl<S: OdeSystem + ?Sized> OdeSystem for &S {
    fn dim(&self) -> usize {
        (**self).dim()
    }

    fn rhs(&self, t: f64, state: &[f64], out: &mut [f64]) {
        (**self).rhs(t, state, out);
    }
}

/// Adapter turning a closure `f(t, y, out)` into an [`OdeSystem`].
///
/// # Examples
///
/// ```
/// use odekit::integrate::{FnSystem, Integrator, Rk4};
///
/// // ẏ = -y, y(0) = 1  →  y(t) = e^{-t}
/// let sys = FnSystem::new(1, |_t, y: &[f64], out: &mut [f64]| out[0] = -y[0]);
/// let traj = Rk4::new(1e-3).integrate(&sys, 0.0, &[1.0], 1.0)?;
/// assert!((traj.last_state()[0] - (-1.0_f64).exp()).abs() < 1e-8);
/// # Ok::<(), odekit::OdeError>(())
/// ```
pub struct FnSystem<F> {
    dim: usize,
    f: F,
}

impl<F> std::fmt::Debug for FnSystem<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnSystem").field("dim", &self.dim).finish()
    }
}

impl<F> FnSystem<F>
where
    F: Fn(f64, &[f64], &mut [f64]),
{
    /// Wraps the closure `f(t, state, out)` as a `dim`-dimensional system.
    pub fn new(dim: usize, f: F) -> Self {
        FnSystem { dim, f }
    }
}

impl<F> OdeSystem for FnSystem<F>
where
    F: Fn(f64, &[f64], &mut [f64]),
{
    fn dim(&self) -> usize {
        self.dim
    }

    fn rhs(&self, t: f64, state: &[f64], out: &mut [f64]) {
        (self.f)(t, state, out);
    }
}

/// A numerical integration scheme.
pub trait Integrator {
    /// Integrates `sys` from `(t0, y0)` until `t_end`, returning the full
    /// trajectory including the initial point.
    ///
    /// # Errors
    ///
    /// Returns [`OdeError::DimensionMismatch`] if `y0.len() != sys.dim()`,
    /// [`OdeError::NonFiniteState`] if the state diverges, and (for adaptive
    /// methods) [`OdeError::StepSizeUnderflow`] if the tolerance cannot be met.
    fn integrate<S: OdeSystem>(
        &self,
        sys: &S,
        t0: f64,
        y0: &[f64],
        t_end: f64,
    ) -> Result<Trajectory>;
}

/// Validates initial conditions shared by all integrators.
pub(crate) fn check_initial<S: OdeSystem>(sys: &S, y0: &[f64], t0: f64, t_end: f64) -> Result<()> {
    if y0.len() != sys.dim() {
        return Err(OdeError::DimensionMismatch {
            expected: sys.dim(),
            actual: y0.len(),
        });
    }
    if !y0.iter().all(|v| v.is_finite()) {
        return Err(OdeError::NonFiniteState { time: t0 });
    }
    if !t0.is_finite() || !t_end.is_finite() || t_end < t0 {
        return Err(OdeError::InvalidParameter {
            name: "t_end",
            reason: format!("integration interval [{t0}, {t_end}] is invalid"),
        });
    }
    Ok(())
}

/// Validates a step size parameter.
pub(crate) fn check_step(name: &'static str, h: f64) -> Result<()> {
    if !h.is_finite() || h <= 0.0 {
        return Err(OdeError::InvalidParameter {
            name,
            reason: format!("step size must be finite and positive, got {h}"),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::EquationSystemBuilder;

    #[test]
    fn equation_system_implements_ode_system() {
        let sys = EquationSystemBuilder::new()
            .vars(["x", "y"])
            .term("x", -1.0, &[("x", 1), ("y", 1)])
            .term("y", 1.0, &[("x", 1), ("y", 1)])
            .build()
            .unwrap();
        let mut out = vec![0.0; 2];
        OdeSystem::rhs(&sys, 0.0, &[0.5, 0.5], &mut out);
        assert!((out[0] + 0.25).abs() < 1e-12);
        assert_eq!(OdeSystem::dim(&sys), 2);
        // Blanket impl for references:
        assert_eq!(OdeSystem::dim(&&sys), 2);
    }

    #[test]
    fn fn_system_debug_and_dim() {
        let f = FnSystem::new(3, |_t, _y: &[f64], out: &mut [f64]| out.fill(0.0));
        assert_eq!(f.dim(), 3);
        assert!(format!("{f:?}").contains("FnSystem"));
    }

    #[test]
    fn initial_condition_validation() {
        let sys = FnSystem::new(2, |_t, _y: &[f64], out: &mut [f64]| out.fill(0.0));
        assert!(check_initial(&sys, &[1.0], 0.0, 1.0).is_err());
        assert!(check_initial(&sys, &[1.0, f64::NAN], 0.0, 1.0).is_err());
        assert!(check_initial(&sys, &[1.0, 1.0], 0.0, -1.0).is_err());
        assert!(check_initial(&sys, &[1.0, 1.0], 0.0, 1.0).is_ok());
        assert!(check_step("h", 0.0).is_err());
        assert!(check_step("h", 0.1).is_ok());
    }
}
