//! Adaptive Runge–Kutta–Fehlberg 4(5) integration.

use super::{check_initial, check_step, Integrator, OdeSystem, Trajectory};
use crate::error::OdeError;
use crate::Result;

/// Adaptive Runge–Kutta–Fehlberg 4(5) integrator.
///
/// The step size is adjusted so the estimated local error stays below
/// `abs_tol + rel_tol · |y|` per component. Useful when the paper's parameter
/// regimes span several orders of magnitude (e.g. the endemic system with
/// `α = 10⁻⁶`, `γ = 10⁻³`), where a fixed step is either wasteful or unstable.
///
/// # Examples
///
/// ```
/// use odekit::integrate::{FnSystem, Integrator, Rkf45};
///
/// let sys = FnSystem::new(1, |_t, y: &[f64], out: &mut [f64]| out[0] = -y[0]);
/// let traj = Rkf45::default().integrate(&sys, 0.0, &[1.0], 5.0)?;
/// assert!((traj.last_state()[0] - (-5.0_f64).exp()).abs() < 1e-6);
/// # Ok::<(), odekit::OdeError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rkf45 {
    abs_tol: f64,
    rel_tol: f64,
    initial_step: f64,
    min_step: f64,
    max_step: f64,
}

impl Default for Rkf45 {
    fn default() -> Self {
        Rkf45 {
            abs_tol: 1e-9,
            rel_tol: 1e-9,
            initial_step: 1e-3,
            min_step: 1e-12,
            max_step: 1.0,
        }
    }
}

impl Rkf45 {
    /// Creates an adaptive integrator with the given absolute and relative
    /// error tolerances (per step, per component).
    pub fn new(abs_tol: f64, rel_tol: f64) -> Self {
        Rkf45 {
            abs_tol,
            rel_tol,
            ..Self::default()
        }
    }

    /// Sets the initial trial step size.
    #[must_use]
    pub fn with_initial_step(mut self, h: f64) -> Self {
        self.initial_step = h;
        self
    }

    /// Sets the maximum step size.
    #[must_use]
    pub fn with_max_step(mut self, h: f64) -> Self {
        self.max_step = h;
        self
    }

    /// Sets the minimum step size (below which integration fails).
    #[must_use]
    pub fn with_min_step(mut self, h: f64) -> Self {
        self.min_step = h;
        self
    }

    /// The configured absolute tolerance.
    pub fn abs_tol(&self) -> f64 {
        self.abs_tol
    }

    /// The configured relative tolerance.
    pub fn rel_tol(&self) -> f64 {
        self.rel_tol
    }
}

// Fehlberg coefficients.
const A: [[f64; 5]; 5] = [
    [1.0 / 4.0, 0.0, 0.0, 0.0, 0.0],
    [3.0 / 32.0, 9.0 / 32.0, 0.0, 0.0, 0.0],
    [1932.0 / 2197.0, -7200.0 / 2197.0, 7296.0 / 2197.0, 0.0, 0.0],
    [439.0 / 216.0, -8.0, 3680.0 / 513.0, -845.0 / 4104.0, 0.0],
    [
        -8.0 / 27.0,
        2.0,
        -3544.0 / 2565.0,
        1859.0 / 4104.0,
        -11.0 / 40.0,
    ],
];
const C: [f64; 6] = [0.0, 1.0 / 4.0, 3.0 / 8.0, 12.0 / 13.0, 1.0, 1.0 / 2.0];
const B4: [f64; 6] = [
    25.0 / 216.0,
    0.0,
    1408.0 / 2565.0,
    2197.0 / 4104.0,
    -1.0 / 5.0,
    0.0,
];
const B5: [f64; 6] = [
    16.0 / 135.0,
    0.0,
    6656.0 / 12825.0,
    28561.0 / 56430.0,
    -9.0 / 50.0,
    2.0 / 55.0,
];

impl Integrator for Rkf45 {
    fn integrate<S: OdeSystem>(
        &self,
        sys: &S,
        t0: f64,
        y0: &[f64],
        t_end: f64,
    ) -> Result<Trajectory> {
        check_step("initial_step", self.initial_step)?;
        check_step("max_step", self.max_step)?;
        check_initial(sys, y0, t0, t_end)?;
        // Written positively so NaN tolerances also fail the check.
        let tolerances_valid = self.abs_tol > 0.0 && self.rel_tol >= 0.0;
        if !tolerances_valid {
            return Err(OdeError::InvalidParameter {
                name: "tolerance",
                reason: format!(
                    "abs_tol {} / rel_tol {} invalid",
                    self.abs_tol, self.rel_tol
                ),
            });
        }

        let dim = sys.dim();
        let mut traj = Trajectory::new();
        let mut y = y0.to_vec();
        let mut t = t0;
        let mut h = self
            .initial_step
            .min(self.max_step)
            .min((t_end - t0).max(self.min_step));
        traj.push(t, y.clone());

        let mut k = vec![vec![0.0; dim]; 6];
        let mut tmp = vec![0.0; dim];

        while t < t_end {
            h = h.min(t_end - t);
            // Compute the six stages.
            sys.rhs(t, &y, &mut k[0]);
            for stage in 1..6 {
                for i in 0..dim {
                    let mut acc = 0.0;
                    for (j, kj) in k.iter().enumerate().take(stage) {
                        acc += A[stage - 1][j] * kj[i];
                    }
                    tmp[i] = y[i] + h * acc;
                }
                let (head, tail) = k.split_at_mut(stage);
                let _ = head;
                sys.rhs(t + C[stage] * h, &tmp, &mut tail[0]);
            }

            // 4th- and 5th-order solutions and the error estimate.
            let mut err_norm = 0.0_f64;
            let mut y5 = vec![0.0; dim];
            for i in 0..dim {
                let mut acc4 = 0.0;
                let mut acc5 = 0.0;
                for j in 0..6 {
                    acc4 += B4[j] * k[j][i];
                    acc5 += B5[j] * k[j][i];
                }
                let y4i = y[i] + h * acc4;
                let y5i = y[i] + h * acc5;
                y5[i] = y5i;
                let scale = self.abs_tol + self.rel_tol * y[i].abs().max(y5i.abs());
                err_norm = err_norm.max(((y5i - y4i) / scale).abs());
            }

            if err_norm <= 1.0 || h <= self.min_step {
                // Accept the (higher-order) solution.
                t += h;
                y = y5;
                if !y.iter().all(|v| v.is_finite()) {
                    return Err(OdeError::NonFiniteState { time: t });
                }
                traj.push(t, y.clone());
            }

            // Step-size update (standard safety-factor controller).
            let factor = if err_norm > 0.0 {
                (0.9 * err_norm.powf(-0.2)).clamp(0.2, 5.0)
            } else {
                5.0
            };
            h = (h * factor).clamp(self.min_step, self.max_step);
            if h <= self.min_step && err_norm > 1.0 {
                return Err(OdeError::StepSizeUnderflow { time: t });
            }
        }
        Ok(traj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrate::{FnSystem, Rk4};
    use crate::system::EquationSystemBuilder;

    fn decay() -> FnSystem<impl Fn(f64, &[f64], &mut [f64])> {
        FnSystem::new(1, |_t, y: &[f64], out: &mut [f64]| out[0] = -y[0])
    }

    #[test]
    fn meets_tolerance_on_decay() {
        let traj = Rkf45::new(1e-10, 1e-10)
            .integrate(&decay(), 0.0, &[1.0], 3.0)
            .unwrap();
        assert!((traj.last_state()[0] - (-3.0_f64).exp()).abs() < 1e-8);
    }

    #[test]
    fn adaptive_uses_fewer_points_than_fixed_step_for_same_accuracy() {
        let adaptive = Rkf45::new(1e-8, 1e-8)
            .with_max_step(10.0)
            .integrate(&decay(), 0.0, &[1.0], 10.0)
            .unwrap();
        let fixed = Rk4::new(1e-3)
            .integrate(&decay(), 0.0, &[1.0], 10.0)
            .unwrap();
        assert!(adaptive.len() < fixed.len() / 10);
    }

    #[test]
    fn harmonic_oscillator_energy_preserved() {
        let sys = FnSystem::new(2, |_t, y: &[f64], out: &mut [f64]| {
            out[0] = y[1];
            out[1] = -y[0];
        });
        let traj = Rkf45::new(1e-10, 1e-10)
            .integrate(&sys, 0.0, &[1.0, 0.0], 20.0)
            .unwrap();
        let s = traj.last_state();
        let energy = s[0] * s[0] + s[1] * s[1];
        assert!((energy - 1.0).abs() < 1e-6);
    }

    #[test]
    fn stiffish_endemic_parameters() {
        // Endemic system with the Figure 5 parameters (α=1e-6, γ=1e-3, β≈2b/N·N=4... here fractions):
        let (beta, gamma, alpha) = (4.0, 1e-3, 1e-6);
        let sys = EquationSystemBuilder::new()
            .vars(["x", "y", "z"])
            .term("x", -beta, &[("x", 1), ("y", 1)])
            .term("x", alpha, &[("z", 1)])
            .term("y", beta, &[("x", 1), ("y", 1)])
            .term("y", -gamma, &[("y", 1)])
            .term("z", gamma, &[("y", 1)])
            .term("z", -alpha, &[("z", 1)])
            .build()
            .unwrap();
        let traj = Rkf45::new(1e-9, 1e-9)
            .with_max_step(50.0)
            .integrate(&sys, 0.0, &[0.999, 0.001, 0.0], 2000.0)
            .unwrap();
        // Mass conservation.
        let s = traj.last_state();
        assert!((s[0] + s[1] + s[2] - 1.0).abs() < 1e-6);
        assert!(s.iter().all(|v| *v >= -1e-6));
    }

    #[test]
    fn invalid_tolerances_rejected() {
        let res = Rkf45::new(0.0, -1.0).integrate(&decay(), 0.0, &[1.0], 1.0);
        assert!(res.is_err());
    }

    #[test]
    fn builder_style_configuration() {
        let i = Rkf45::new(1e-6, 1e-6)
            .with_initial_step(0.5)
            .with_max_step(2.0)
            .with_min_step(1e-10);
        assert_eq!(i.abs_tol(), 1e-6);
        assert_eq!(i.rel_tol(), 1e-6);
        let traj = i.integrate(&decay(), 0.0, &[1.0], 1.0).unwrap();
        assert!((traj.last_state()[0] - (-1.0_f64).exp()).abs() < 1e-5);
    }
}
