//! Explicit (forward) Euler integration.

use super::{check_initial, check_step, Integrator, OdeSystem, Trajectory};
use crate::error::OdeError;
use crate::Result;

/// First-order explicit Euler integrator with a fixed step size.
///
/// Mainly useful as a baseline (its global error is `O(h)`, which the test
/// suite exploits to verify convergence orders) and for quick-and-dirty
/// integration of well-behaved systems.
///
/// # Examples
///
/// ```
/// use odekit::integrate::{Euler, FnSystem, Integrator};
///
/// let sys = FnSystem::new(1, |_t, y: &[f64], out: &mut [f64]| out[0] = -y[0]);
/// let traj = Euler::new(1e-4).integrate(&sys, 0.0, &[1.0], 1.0)?;
/// assert!((traj.last_state()[0] - (-1.0_f64).exp()).abs() < 1e-3);
/// # Ok::<(), odekit::OdeError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Euler {
    step: f64,
}

impl Euler {
    /// Creates an Euler integrator with the given step size.
    pub fn new(step: f64) -> Self {
        Euler { step }
    }

    /// The configured step size.
    pub fn step(&self) -> f64 {
        self.step
    }
}

impl Integrator for Euler {
    fn integrate<S: OdeSystem>(
        &self,
        sys: &S,
        t0: f64,
        y0: &[f64],
        t_end: f64,
    ) -> Result<Trajectory> {
        check_step("step", self.step)?;
        check_initial(sys, y0, t0, t_end)?;

        let dim = sys.dim();
        let mut traj = Trajectory::with_capacity(((t_end - t0) / self.step) as usize + 2);
        let mut y = y0.to_vec();
        let mut t = t0;
        let mut dydt = vec![0.0; dim];
        traj.push(t, y.clone());

        while t < t_end {
            let h = self.step.min(t_end - t);
            sys.rhs(t, &y, &mut dydt);
            for (yi, di) in y.iter_mut().zip(&dydt) {
                *yi += h * di;
            }
            t += h;
            if !y.iter().all(|v| v.is_finite()) {
                return Err(OdeError::NonFiniteState { time: t });
            }
            traj.push(t, y.clone());
        }
        Ok(traj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrate::FnSystem;

    fn decay() -> FnSystem<impl Fn(f64, &[f64], &mut [f64])> {
        FnSystem::new(1, |_t, y: &[f64], out: &mut [f64]| out[0] = -y[0])
    }

    #[test]
    fn exponential_decay_is_first_order_accurate() {
        let exact = (-1.0_f64).exp();
        let coarse = Euler::new(1e-2)
            .integrate(&decay(), 0.0, &[1.0], 1.0)
            .unwrap();
        let fine = Euler::new(1e-3)
            .integrate(&decay(), 0.0, &[1.0], 1.0)
            .unwrap();
        let e_coarse = (coarse.last_state()[0] - exact).abs();
        let e_fine = (fine.last_state()[0] - exact).abs();
        // Halving... reducing h by 10x should reduce error by ~10x (order 1).
        let ratio = e_coarse / e_fine;
        assert!(
            ratio > 5.0 && ratio < 20.0,
            "error ratio {ratio} not consistent with order 1"
        );
    }

    #[test]
    fn trajectory_endpoints_match_request() {
        let traj = Euler::new(0.3)
            .integrate(&decay(), 1.0, &[2.0], 2.0)
            .unwrap();
        assert_eq!(traj.times()[0], 1.0);
        assert!((traj.last_time() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_length_interval_returns_initial_point() {
        let traj = Euler::new(0.1)
            .integrate(&decay(), 0.0, &[5.0], 0.0)
            .unwrap();
        assert_eq!(traj.len(), 1);
        assert_eq!(traj.last_state(), &[5.0]);
    }

    #[test]
    fn invalid_step_rejected() {
        assert!(Euler::new(-0.1)
            .integrate(&decay(), 0.0, &[1.0], 1.0)
            .is_err());
        assert!(Euler::new(f64::NAN)
            .integrate(&decay(), 0.0, &[1.0], 1.0)
            .is_err());
    }

    #[test]
    fn divergence_is_reported() {
        // ẏ = y² blows up in finite time from y(0)=1 at t=1.
        let sys = FnSystem::new(1, |_t, y: &[f64], out: &mut [f64]| out[0] = y[0] * y[0]);
        let res = Euler::new(0.01).integrate(&sys, 0.0, &[1e6], 10.0);
        assert!(matches!(res, Err(OdeError::NonFiniteState { .. })));
    }

    #[test]
    fn accessor() {
        assert_eq!(Euler::new(0.5).step(), 0.5);
    }
}
