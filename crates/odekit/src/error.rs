//! Error types for the `odekit` crate.

use std::fmt;

/// The error type returned by fallible `odekit` operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum OdeError {
    /// A variable name was referenced that is not part of the system.
    UnknownVariable(String),
    /// A variable was declared twice while building a system.
    DuplicateVariable(String),
    /// The system (or an operation on it) requires at least one variable.
    EmptySystem,
    /// A state or initial-condition vector had the wrong length.
    DimensionMismatch {
        /// Number of entries expected (the system dimension).
        expected: usize,
        /// Number of entries actually supplied.
        actual: usize,
    },
    /// A numeric parameter was invalid (non-finite, non-positive, ...).
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the constraint that was violated.
        reason: String,
    },
    /// The adaptive integrator could not meet the error tolerance.
    StepSizeUnderflow {
        /// Simulation time at which the failure occurred.
        time: f64,
    },
    /// The integration produced a non-finite state component.
    NonFiniteState {
        /// Simulation time at which the failure occurred.
        time: f64,
    },
    /// Newton iteration (equilibrium search, implicit solves) failed to converge.
    NoConvergence {
        /// What was being solved for.
        context: &'static str,
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// A matrix operation failed (singular matrix, shape mismatch, ...).
    Linalg(String),
    /// The equation text could not be parsed.
    Parse {
        /// Byte offset into the source line where the error was detected.
        position: usize,
        /// Description of what went wrong.
        message: String,
    },
    /// The system does not belong to the taxonomy class required by an operation.
    NotInClass {
        /// The class that was required (e.g. "completely partitionable").
        required: &'static str,
        /// Explanation of which requirement failed.
        detail: String,
    },
}

impl fmt::Display for OdeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OdeError::UnknownVariable(name) => write!(f, "unknown variable `{name}`"),
            OdeError::DuplicateVariable(name) => write!(f, "variable `{name}` declared twice"),
            OdeError::EmptySystem => write!(f, "equation system has no variables"),
            OdeError::DimensionMismatch { expected, actual } => {
                write!(
                    f,
                    "dimension mismatch: expected {expected} entries, got {actual}"
                )
            }
            OdeError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            OdeError::StepSizeUnderflow { time } => {
                write!(f, "adaptive step size underflow at t = {time}")
            }
            OdeError::NonFiniteState { time } => {
                write!(f, "integration produced a non-finite state at t = {time}")
            }
            OdeError::NoConvergence {
                context,
                iterations,
            } => {
                write!(
                    f,
                    "{context} did not converge after {iterations} iterations"
                )
            }
            OdeError::Linalg(msg) => write!(f, "linear algebra error: {msg}"),
            OdeError::Parse { position, message } => {
                write!(f, "parse error at byte {position}: {message}")
            }
            OdeError::NotInClass { required, detail } => {
                write!(f, "equation system is not {required}: {detail}")
            }
        }
    }
}

impl std::error::Error for OdeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = OdeError::UnknownVariable("foo".into());
        assert_eq!(e.to_string(), "unknown variable `foo`");
        let e = OdeError::DimensionMismatch {
            expected: 3,
            actual: 2,
        };
        assert!(e.to_string().contains("expected 3"));
        let e = OdeError::NotInClass {
            required: "completely partitionable",
            detail: "term -x in x' has no matching +x".into(),
        };
        assert!(e.to_string().contains("completely partitionable"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<OdeError>();
    }
}
