//! Multivariate polynomials as sums of signed [`Term`]s.

use crate::term::Term;
use std::fmt;

/// A polynomial in the system variables, stored as a list of signed terms.
///
/// The representation deliberately keeps terms **unsimplified by default**:
/// the paper's mapping rules operate on the individual terms as written (e.g.
/// the LV system writes `+3xy + 3xy` rather than `+6xy`, producing two
/// distinct tokenized actions), so simplification is an explicit operation
/// ([`Polynomial::simplified`]) rather than an invariant.
///
/// # Examples
///
/// ```
/// use odekit::{Polynomial, Term};
///
/// // f(x, y) = -x*y + 0.5*y
/// let f = Polynomial::from_terms(vec![
///     Term::new(-1.0, vec![1, 1]),
///     Term::new(0.5, vec![0, 1]),
/// ]);
/// assert_eq!(f.eval(&[2.0, 4.0]), -8.0 + 2.0);
/// assert_eq!(f.terms().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Polynomial {
    terms: Vec<Term>,
}

impl Polynomial {
    /// The zero polynomial (no terms).
    pub fn zero() -> Self {
        Polynomial { terms: Vec::new() }
    }

    /// Builds a polynomial from a list of terms.
    ///
    /// Zero-coefficient terms are dropped; everything else is kept verbatim
    /// (no like-term combination).
    pub fn from_terms(terms: Vec<Term>) -> Self {
        Polynomial {
            terms: terms.into_iter().filter(|t| !t.is_zero()).collect(),
        }
    }

    /// The terms of the polynomial in insertion order.
    pub fn terms(&self) -> &[Term] {
        &self.terms
    }

    /// `true` if the polynomial has no terms.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// Number of terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// `true` if there are no terms (alias of [`is_zero`](Self::is_zero) for
    /// collection-style call sites).
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// The dimension (number of variables) the polynomial is defined over, or
    /// `None` if it has no terms.
    pub fn dim(&self) -> Option<usize> {
        self.terms.first().map(Term::dim)
    }

    /// Appends a term (zero-coefficient terms are ignored).
    pub fn push(&mut self, term: Term) {
        if !term.is_zero() {
            self.terms.push(term);
        }
    }

    /// Evaluates the polynomial at the given state vector.
    ///
    /// # Panics
    ///
    /// Panics if any term's dimension differs from `state.len()`.
    pub fn eval(&self, state: &[f64]) -> f64 {
        self.terms.iter().map(|t| t.eval(state)).sum()
    }

    /// Returns the sum of this polynomial and `other`.
    pub fn add(&self, other: &Polynomial) -> Polynomial {
        let mut terms = self.terms.clone();
        terms.extend(other.terms.iter().cloned());
        Polynomial::from_terms(terms)
    }

    /// Returns this polynomial with every term negated.
    pub fn negated(&self) -> Polynomial {
        Polynomial {
            terms: self.terms.iter().map(Term::negated).collect(),
        }
    }

    /// Returns this polynomial with every coefficient multiplied by `factor`.
    pub fn scaled(&self, factor: f64) -> Polynomial {
        Polynomial::from_terms(self.terms.iter().map(|t| t.scaled(factor)).collect())
    }

    /// Returns the product of this polynomial and `other`.
    pub fn product(&self, other: &Polynomial) -> Polynomial {
        let mut terms = Vec::with_capacity(self.terms.len() * other.terms.len());
        for a in &self.terms {
            for b in &other.terms {
                terms.push(a.product(b));
            }
        }
        Polynomial::from_terms(terms)
    }

    /// The partial derivative with respect to variable `var`.
    pub fn differentiate(&self, var: usize) -> Polynomial {
        Polynomial::from_terms(self.terms.iter().map(|t| t.differentiate(var)).collect())
    }

    /// Returns an equivalent polynomial with like terms combined and
    /// (numerically) cancelled terms removed.
    ///
    /// Terms whose combined coefficient has magnitude below `tol` (relative to
    /// the largest coefficient magnitude among the combined terms, or
    /// absolute if all are tiny) are dropped.
    pub fn simplified(&self, tol: f64) -> Polynomial {
        let mut combined: Vec<Term> = Vec::new();
        for t in &self.terms {
            if let Some(existing) = combined.iter_mut().find(|c| c.same_monomial(t)) {
                *existing = Term::new(existing.coeff() + t.coeff(), t.exponents().to_vec());
            } else {
                combined.push(t.clone());
            }
        }
        let max_mag = self
            .terms
            .iter()
            .map(Term::magnitude)
            .fold(0.0_f64, f64::max)
            .max(1.0);
        Polynomial {
            terms: combined
                .into_iter()
                .filter(|t| t.magnitude() > tol * max_mag)
                .collect(),
        }
    }

    /// The maximum total degree over all terms (0 for the zero polynomial).
    pub fn degree(&self) -> u32 {
        self.terms.iter().map(Term::total_degree).max().unwrap_or(0)
    }

    /// Terms with strictly negative coefficients.
    pub fn negative_terms(&self) -> impl Iterator<Item = &Term> {
        self.terms.iter().filter(|t| t.is_negative())
    }

    /// Terms with positive coefficients.
    pub fn positive_terms(&self) -> impl Iterator<Item = &Term> {
        self.terms
            .iter()
            .filter(|t| !t.is_negative() && !t.is_zero())
    }

    /// Renders the polynomial using the given variable names.
    pub fn render(&self, names: &[String]) -> String {
        if self.terms.is_empty() {
            return "0".to_string();
        }
        let mut out = String::new();
        for (i, t) in self.terms.iter().enumerate() {
            let rendered = t.render(names);
            if i == 0 {
                out.push_str(&rendered);
            } else if rendered.starts_with('-') {
                out.push_str(" - ");
                out.push_str(rendered.trim_start_matches('-'));
            } else {
                out.push_str(" + ");
                out.push_str(&rendered);
            }
        }
        out
    }
}

impl fmt::Display for Polynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let dim = self.dim().unwrap_or(0);
        let names: Vec<String> = (0..dim).map(|i| format!("x{i}")).collect();
        write!(f, "{}", self.render(&names))
    }
}

impl FromIterator<Term> for Polynomial {
    fn from_iter<I: IntoIterator<Item = Term>>(iter: I) -> Self {
        Polynomial::from_terms(iter.into_iter().collect())
    }
}

impl Extend<Term> for Polynomial {
    fn extend<I: IntoIterator<Item = Term>>(&mut self, iter: I) {
        for t in iter {
            self.push(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xy(coeff: f64) -> Term {
        Term::new(coeff, vec![1, 1])
    }

    #[test]
    fn zero_polynomial() {
        let p = Polynomial::zero();
        assert!(p.is_zero());
        assert_eq!(p.eval(&[1.0, 2.0]), 0.0);
        assert_eq!(p.degree(), 0);
        assert_eq!(p.to_string(), "0");
    }

    #[test]
    fn from_terms_drops_zero_coefficients() {
        let p = Polynomial::from_terms(vec![xy(0.0), xy(2.0)]);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn eval_sums_terms() {
        let p = Polynomial::from_terms(vec![xy(-1.0), Term::new(0.5, vec![0, 1])]);
        assert_eq!(p.eval(&[2.0, 4.0]), -8.0 + 2.0);
    }

    #[test]
    fn add_and_negate() {
        let p = Polynomial::from_terms(vec![xy(1.0)]);
        let q = p.negated();
        let sum = p.add(&q);
        assert!(sum.simplified(1e-12).is_zero());
    }

    #[test]
    fn product_multiplies_out() {
        // (x)(x + y) = x^2 + xy
        let x = Polynomial::from_terms(vec![Term::new(1.0, vec![1, 0])]);
        let xpy =
            Polynomial::from_terms(vec![Term::new(1.0, vec![1, 0]), Term::new(1.0, vec![0, 1])]);
        let prod = x.product(&xpy);
        assert_eq!(prod.len(), 2);
        assert_eq!(prod.eval(&[2.0, 3.0]), 4.0 + 6.0);
        assert_eq!(prod.degree(), 2);
    }

    #[test]
    fn differentiate_is_linear() {
        // d/dy (-x*y + 0.5*y) = -x + 0.5
        let p = Polynomial::from_terms(vec![xy(-1.0), Term::new(0.5, vec![0, 1])]);
        let d = p.differentiate(1);
        assert_eq!(d.eval(&[3.0, 99.0]), -3.0 + 0.5);
    }

    #[test]
    fn simplified_combines_like_terms() {
        let p = Polynomial::from_terms(vec![xy(3.0), xy(3.0), Term::new(1.0, vec![2, 0])]);
        let s = p.simplified(1e-12);
        assert_eq!(s.len(), 2);
        assert_eq!(s.eval(&[1.0, 1.0]), 7.0);
        // The unsimplified polynomial keeps both 3xy terms, as the paper's
        // LV rewrite requires.
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn negative_positive_term_split() {
        let p = Polynomial::from_terms(vec![xy(-2.0), xy(2.0), Term::constant(1.0, 2)]);
        assert_eq!(p.negative_terms().count(), 1);
        assert_eq!(p.positive_terms().count(), 2);
    }

    #[test]
    fn render_with_names() {
        let names: Vec<String> = ["x", "y"].iter().map(|s| s.to_string()).collect();
        let p = Polynomial::from_terms(vec![xy(-1.0), Term::new(0.5, vec![0, 1])]);
        assert_eq!(p.render(&names), "-1*x*y + 0.5*y");
    }

    #[test]
    fn collect_from_iterator() {
        let p: Polynomial = (0..3).map(|i| Term::linear(1.0, i, 3)).collect();
        assert_eq!(p.len(), 3);
        let mut q = Polynomial::zero();
        q.extend(vec![Term::constant(1.0, 3)]);
        assert_eq!(q.len(), 1);
    }
}
