//! # odekit — polynomial ODE systems for protocol design
//!
//! This crate implements the differential-equation side of the framework from
//! *"On the Design of Distributed Protocols from Differential Equations"*
//! (Gupta, PODC 2004):
//!
//! * a symbolic representation of systems of first-order ODEs with
//!   **polynomial** right-hand sides ([`Term`], [`Polynomial`],
//!   [`EquationSystem`]),
//! * the paper's **taxonomy** of equation systems (*complete*, *completely
//!   partitionable*, *polynomial*, *restricted polynomial*) in [`taxonomy`],
//! * **rewriting** techniques that bring an arbitrary system into mappable
//!   form (completion, normalization, higher-order reduction) in [`rewrite`],
//! * **numerical integrators** (explicit Euler, classic RK4 and adaptive
//!   RKF45) in [`integrate`], used to produce the "analysis" curves that the
//!   paper compares protocol simulations against, and
//! * a **non-linear dynamics toolbox** in [`analysis`]: Jacobians, equilibria,
//!   eigenvalues, stability classification, perturbation evolution and phase
//!   portraits — the analytical machinery used in Sections 4.1.3 and 4.2.2 of
//!   the paper.
//!
//! A small text [`parse`] front-end turns strings such as
//! `"x' = -beta*x*y + alpha*z"` into [`EquationSystem`]s.
//!
//! # Quick example
//!
//! Build the epidemic system `ẋ = -xy, ẏ = xy`, verify that it is completely
//! partitionable, and integrate it:
//!
//! ```
//! use odekit::{EquationSystemBuilder, taxonomy};
//! use odekit::integrate::{Rk4, Integrator};
//!
//! # fn main() -> Result<(), odekit::OdeError> {
//! let sys = EquationSystemBuilder::new()
//!     .var("x")
//!     .var("y")
//!     .term("x", -1.0, &[("x", 1), ("y", 1)])
//!     .term("y", 1.0, &[("x", 1), ("y", 1)])
//!     .build()?;
//!
//! assert!(taxonomy::is_complete(&sys));
//! assert!(taxonomy::is_completely_partitionable(&sys));
//!
//! let traj = Rk4::new(0.01).integrate(&sys, 0.0, &[0.99, 0.01], 20.0)?;
//! let last = traj.last_state();
//! assert!(last[1] > 0.95, "almost everyone ends up infected");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod error;
pub mod integrate;
pub mod parse;
pub mod poly;
pub mod rewrite;
pub mod system;
pub mod taxonomy;
pub mod term;

pub use error::OdeError;
pub use poly::Polynomial;
pub use system::{EquationSystem, EquationSystemBuilder, VarId};
pub use term::Term;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, OdeError>;
