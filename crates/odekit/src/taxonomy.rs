//! The paper's taxonomy of equation systems (Section 2).
//!
//! Four properties are defined over a system `Ẋ = f(X)` with polynomial
//! right-hand sides:
//!
//! * **polynomial** — every `f_x` is a sum of terms `±c_T Π y^{i_y}` with
//!   non-negative integer exponents (guaranteed by construction here, but the
//!   check also verifies coefficients are finite and non-zero);
//! * **complete** — `Σ_x f_x(X) ≡ 0`;
//! * **completely partitionable** — complete, *and* all terms can be grouped
//!   into pairs that each sum to zero;
//! * **restricted polynomial** — polynomial, and every negative term
//!   `-c_T Π y^{i_y}` occurring in `f_x` has `i_x ≥ 1` (the variable losing
//!   mass appears in the term, so the *process in state x* can execute the
//!   action locally).
//!
//! The [`partition`] function computes the actual pairing of terms; the
//! ODE→protocol compiler in `dpde-core` consumes this pairing to decide, for
//! every negative term, which state the corresponding transition enters.

use crate::system::{EquationSystem, VarId};
use crate::term::Term;

/// Default relative tolerance used when matching term coefficients.
pub const DEFAULT_TOL: f64 = 1e-9;

/// A reference to one term inside an equation system: variable (equation) and
/// position of the term within that equation's polynomial.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TermRef {
    /// The variable whose equation contains the term.
    pub var: VarId,
    /// Index of the term within that equation's term list.
    pub index: usize,
}

impl TermRef {
    /// Resolves the reference against a system.
    ///
    /// # Panics
    ///
    /// Panics if the reference does not point into `sys`.
    pub fn resolve<'a>(&self, sys: &'a EquationSystem) -> &'a Term {
        &sys.equation(self.var).terms()[self.index]
    }
}

/// A matched pair of terms that sum to zero: one negative, one positive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TermPair {
    /// The negative term (outflow from `negative.var`).
    pub negative: TermRef,
    /// The matching positive term (inflow into `positive.var`).
    pub positive: TermRef,
}

/// The result of attempting to pair up all terms of a system.
#[derive(Debug, Clone, PartialEq)]
pub struct Partition {
    /// Pairs of terms that cancel exactly.
    pub pairs: Vec<TermPair>,
    /// Terms that could not be matched with an opposite-signed partner.
    pub unpaired: Vec<TermRef>,
}

impl Partition {
    /// `true` if every term found a partner.
    pub fn is_total(&self) -> bool {
        self.unpaired.is_empty()
    }

    /// For a given negative term, the variable its mass flows into (the
    /// destination state of the compiled transition), if the term was paired.
    pub fn destination_of(&self, negative: TermRef) -> Option<VarId> {
        self.pairs
            .iter()
            .find(|p| p.negative == negative)
            .map(|p| p.positive.var)
    }
}

/// A full classification report for an equation system.
#[derive(Debug, Clone, PartialEq)]
pub struct TaxonomyReport {
    /// Every right-hand side is a finite-coefficient polynomial.
    pub polynomial: bool,
    /// The right-hand sides sum to zero.
    pub complete: bool,
    /// Complete and all terms pair up.
    pub completely_partitionable: bool,
    /// Every negative term in `f_x` contains `x`.
    pub restricted_polynomial: bool,
    /// Terms violating the restricted-polynomial condition.
    pub restricted_violations: Vec<TermRef>,
    /// Terms left unpaired by the partition attempt.
    pub unpaired_terms: Vec<TermRef>,
}

impl TaxonomyReport {
    /// `true` if the system can be mapped with Flipping + One-Time-Sampling
    /// alone (Theorem 1): restricted polynomial and completely partitionable.
    pub fn mappable_without_tokens(&self) -> bool {
        self.restricted_polynomial && self.completely_partitionable
    }

    /// `true` if the system can be mapped at all by the paper's framework
    /// (Theorem 5, as corrected by the errata): polynomial and completely
    /// partitionable, possibly requiring Tokenizing.
    pub fn mappable(&self) -> bool {
        self.polynomial && self.completely_partitionable
    }
}

/// Checks that every right-hand side is a polynomial with finite coefficients.
///
/// The representation already guarantees non-negative integer exponents, so
/// this only rejects non-finite coefficients.
pub fn is_polynomial(sys: &EquationSystem) -> bool {
    sys.equations()
        .iter()
        .flat_map(|p| p.terms())
        .all(|t| t.coeff().is_finite())
}

/// Checks the *complete* property: `Σ_x f_x(X) ≡ 0` (after combining like
/// terms, with relative tolerance [`DEFAULT_TOL`]).
pub fn is_complete(sys: &EquationSystem) -> bool {
    is_complete_with_tol(sys, DEFAULT_TOL)
}

/// [`is_complete`] with an explicit coefficient tolerance.
pub fn is_complete_with_tol(sys: &EquationSystem, tol: f64) -> bool {
    sys.rhs_sum().simplified(tol).is_zero()
}

/// Checks the *restricted polynomial* property: every negative term in `f_x`
/// has `i_x ≥ 1`.
pub fn is_restricted_polynomial(sys: &EquationSystem) -> bool {
    restricted_violations(sys).is_empty()
}

/// Returns references to every negative term that violates the restricted-
/// polynomial condition (i.e. does not contain its own equation's variable).
pub fn restricted_violations(sys: &EquationSystem) -> Vec<TermRef> {
    let mut out = Vec::new();
    for var in sys.var_ids() {
        for (index, term) in sys.equation(var).terms().iter().enumerate() {
            if term.is_negative() && term.exponent(var.index()) == 0 {
                out.push(TermRef { var, index });
            }
        }
    }
    out
}

/// Attempts to group all terms of the system into cancelling pairs.
///
/// Each negative term is matched greedily with an unused positive term that
/// has the same monomial and a coefficient of equal magnitude (within relative
/// tolerance `tol`). Partners in a *different* equation are preferred — those
/// are the pairs the compiler can turn into state transitions — but a partner
/// in the same equation is accepted as a last resort (it represents a no-op
/// flow and is dropped by the compiler).
pub fn partition_with_tol(sys: &EquationSystem, tol: f64) -> Partition {
    // Collect references to all positive and negative terms.
    let mut positives: Vec<(TermRef, bool)> = Vec::new(); // (ref, used)
    let mut negatives: Vec<TermRef> = Vec::new();
    let mut zero_or_unsigned: Vec<TermRef> = Vec::new();
    for var in sys.var_ids() {
        for (index, term) in sys.equation(var).terms().iter().enumerate() {
            let r = TermRef { var, index };
            if term.is_zero() {
                zero_or_unsigned.push(r);
            } else if term.is_negative() {
                negatives.push(r);
            } else {
                positives.push((r, false));
            }
        }
    }

    let mut pairs = Vec::new();
    let mut unpaired = Vec::new();

    for neg_ref in negatives {
        let neg = neg_ref.resolve(sys);
        // First pass: prefer a partner in a different equation.
        let mut chosen: Option<usize> = None;
        for (i, (pos_ref, used)) in positives.iter().enumerate() {
            if *used || pos_ref.var == neg_ref.var {
                continue;
            }
            if neg.cancels_with(pos_ref.resolve(sys), tol) {
                chosen = Some(i);
                break;
            }
        }
        // Second pass: accept a same-equation partner.
        if chosen.is_none() {
            for (i, (pos_ref, used)) in positives.iter().enumerate() {
                if *used {
                    continue;
                }
                if neg.cancels_with(pos_ref.resolve(sys), tol) {
                    chosen = Some(i);
                    break;
                }
            }
        }
        match chosen {
            Some(i) => {
                positives[i].1 = true;
                pairs.push(TermPair {
                    negative: neg_ref,
                    positive: positives[i].0,
                });
            }
            None => unpaired.push(neg_ref),
        }
    }

    // Positive terms never matched are unpaired too.
    unpaired.extend(positives.iter().filter(|(_, used)| !used).map(|(r, _)| *r));
    unpaired.extend(zero_or_unsigned);
    Partition { pairs, unpaired }
}

/// [`partition_with_tol`] with the default tolerance.
pub fn partition(sys: &EquationSystem) -> Partition {
    partition_with_tol(sys, DEFAULT_TOL)
}

/// Checks the *completely partitionable* property: complete, and all terms
/// pair up into cancelling pairs.
pub fn is_completely_partitionable(sys: &EquationSystem) -> bool {
    is_complete(sys) && partition(sys).is_total()
}

/// Produces a full [`TaxonomyReport`] for the system.
pub fn classify(sys: &EquationSystem) -> TaxonomyReport {
    let polynomial = is_polynomial(sys);
    let complete = is_complete(sys);
    let part = partition(sys);
    let restricted_violations_list = restricted_violations(sys);
    TaxonomyReport {
        polynomial,
        complete,
        completely_partitionable: complete && part.is_total(),
        restricted_polynomial: restricted_violations_list.is_empty(),
        restricted_violations: restricted_violations_list,
        unpaired_terms: part.unpaired,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::EquationSystemBuilder;

    fn epidemic() -> EquationSystem {
        EquationSystemBuilder::new()
            .vars(["x", "y"])
            .term("x", -1.0, &[("x", 1), ("y", 1)])
            .term("y", 1.0, &[("x", 1), ("y", 1)])
            .build()
            .unwrap()
    }

    fn endemic() -> EquationSystem {
        // x' = -βxy + αz ; y' = βxy - γy ; z' = γy - αz
        let (beta, gamma, alpha) = (4.0, 1.0, 0.01);
        EquationSystemBuilder::new()
            .vars(["x", "y", "z"])
            .term("x", -beta, &[("x", 1), ("y", 1)])
            .term("x", alpha, &[("z", 1)])
            .term("y", beta, &[("x", 1), ("y", 1)])
            .term("y", -gamma, &[("y", 1)])
            .term("z", gamma, &[("y", 1)])
            .term("z", -alpha, &[("z", 1)])
            .build()
            .unwrap()
    }

    /// The LV system in the rewritten form of eq. (7).
    fn lv_rewritten() -> EquationSystem {
        EquationSystemBuilder::new()
            .vars(["x", "y", "z"])
            .term("x", 3.0, &[("x", 1), ("z", 1)])
            .term("x", -3.0, &[("x", 1), ("y", 1)])
            .term("y", 3.0, &[("y", 1), ("z", 1)])
            .term("y", -3.0, &[("x", 1), ("y", 1)])
            .term("z", -3.0, &[("x", 1), ("z", 1)])
            .term("z", -3.0, &[("y", 1), ("z", 1)])
            .term("z", 3.0, &[("x", 1), ("y", 1)])
            .term("z", 3.0, &[("x", 1), ("y", 1)])
            .build()
            .unwrap()
    }

    #[test]
    fn epidemic_is_fully_mappable() {
        let sys = epidemic();
        let report = classify(&sys);
        assert!(report.polynomial);
        assert!(report.complete);
        assert!(report.completely_partitionable);
        assert!(report.restricted_polynomial);
        assert!(report.mappable_without_tokens());
        assert!(report.mappable());
    }

    #[test]
    fn endemic_is_fully_mappable() {
        let report = classify(&endemic());
        assert!(report.mappable_without_tokens());
        assert!(report.unpaired_terms.is_empty());
        assert!(report.restricted_violations.is_empty());
    }

    #[test]
    fn lv_rewritten_is_fully_mappable() {
        let sys = lv_rewritten();
        assert!(is_complete(&sys));
        assert!(is_restricted_polynomial(&sys));
        let p = partition(&sys);
        assert!(p.is_total());
        // 8 terms → 4 pairs.
        assert_eq!(p.pairs.len(), 4);
    }

    #[test]
    fn lv_original_form_is_not_partitionable() {
        // x' = 3x(1 - x - 2y) = 3x - 3x² - 6xy ;  y' symmetric (no z)
        let sys = EquationSystemBuilder::new()
            .vars(["x", "y"])
            .term("x", 3.0, &[("x", 1)])
            .term("x", -3.0, &[("x", 2)])
            .term("x", -6.0, &[("x", 1), ("y", 1)])
            .term("y", 3.0, &[("y", 1)])
            .term("y", -3.0, &[("y", 2)])
            .term("y", -6.0, &[("x", 1), ("y", 1)])
            .build()
            .unwrap();
        assert!(!is_complete(&sys));
        assert!(!is_completely_partitionable(&sys));
    }

    #[test]
    fn partition_prefers_cross_equation_partner() {
        let sys = endemic();
        let part = partition(&sys);
        assert!(part.is_total());
        for pair in &part.pairs {
            assert_ne!(
                pair.negative.var, pair.positive.var,
                "pairs should cross equations"
            );
        }
        // destination lookup: -βxy in x' flows into y.
        let x = sys.var("x").unwrap();
        let y = sys.var("y").unwrap();
        let neg_ref = TermRef { var: x, index: 0 };
        assert_eq!(part.destination_of(neg_ref), Some(y));
    }

    #[test]
    fn destination_of_unknown_term_is_none() {
        let sys = epidemic();
        let part = partition(&sys);
        let bogus = TermRef {
            var: sys.var("y").unwrap(),
            index: 0,
        };
        assert_eq!(part.destination_of(bogus), None);
    }

    #[test]
    fn restricted_violation_detected() {
        // x' = -y (x loses mass through a term not containing x), y' = +y... not complete;
        // make it complete: x' = -y, y' = y is complete? sum = 0? -y + y = 0 yes.
        let sys = EquationSystemBuilder::new()
            .vars(["x", "y"])
            .term("x", -1.0, &[("y", 1)])
            .term("y", 1.0, &[("y", 1)])
            .build()
            .unwrap();
        assert!(is_complete(&sys));
        assert!(!is_restricted_polynomial(&sys));
        let v = restricted_violations(&sys);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].var, sys.var("x").unwrap());
        let report = classify(&sys);
        assert!(report.mappable());
        assert!(!report.mappable_without_tokens());
    }

    #[test]
    fn constant_negative_term_is_a_violation() {
        let sys = EquationSystemBuilder::new()
            .vars(["x", "y"])
            .constant("x", -0.5)
            .constant("y", 0.5)
            .build()
            .unwrap();
        assert!(is_complete(&sys));
        assert!(!is_restricted_polynomial(&sys));
        assert!(is_completely_partitionable(&sys));
    }

    #[test]
    fn incomplete_system_detected() {
        let sys = EquationSystemBuilder::new()
            .vars(["x", "y"])
            .term("x", -1.0, &[("x", 1)])
            .term("y", 0.5, &[("x", 1)])
            .build()
            .unwrap();
        assert!(!is_complete(&sys));
        let part = partition(&sys);
        assert!(!part.is_total());
        assert_eq!(part.unpaired.len(), 2);
    }

    #[test]
    fn non_finite_coefficient_is_not_polynomial() {
        // Construct via Polynomial directly (builder rejects NaN).
        use crate::poly::Polynomial;
        use crate::term::Term;
        let p = Polynomial::from_terms(vec![Term::new(f64::INFINITY, vec![1])]);
        let sys = EquationSystem::new(vec!["x".into()], vec![p]).unwrap();
        assert!(!is_polynomial(&sys));
    }

    #[test]
    fn duplicate_identical_terms_pair_independently() {
        // z' has two +3xy terms (as in the LV rewrite); each must find its own partner.
        let sys = lv_rewritten();
        let part = partition(&sys);
        let z = sys.var("z").unwrap();
        let pos_into_z: Vec<_> = part.pairs.iter().filter(|p| p.positive.var == z).collect();
        assert_eq!(pos_into_z.len(), 2, "both +3xy copies in z' are matched");
        // They must be matched to *different* negative terms.
        assert_ne!(pos_into_z[0].negative, pos_into_z[1].negative);
    }

    #[test]
    fn term_ref_resolve() {
        let sys = epidemic();
        let r = TermRef {
            var: sys.var("x").unwrap(),
            index: 0,
        };
        assert_eq!(r.resolve(&sys).coeff(), -1.0);
    }
}
