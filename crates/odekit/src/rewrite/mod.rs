//! Equation rewriting techniques (Section 7 of the paper).
//!
//! These transformations bring an equation system into *mappable* form —
//! complete, and polynomial or restricted polynomial — so that the compiler
//! in `dpde-core` can translate it:
//!
//! * [`complete`] — add a slack variable `z = 1 − Σx` so the right-hand sides
//!   sum to zero (used by the paper to rewrite the Lotka–Volterra system).
//! * [`to_fractions`] / [`to_counts`] — the paper's *Normalizing* rewrite
//!   between absolute process counts (summing to `N`) and fractions (summing
//!   to 1).
//! * [`reduce_order`] — rewrite a single higher-order ODE of degree one into
//!   an equivalent first-order system by introducing derivative variables.
//! * [`expand_constant_terms`] — replace a constant term `±c` by
//!   `±c·(Σ_v v)`, which is valid when `Σ_v v = 1` and makes the term
//!   mappable via Tokenizing.

mod complete;
mod higher_order;
mod normalize;

pub use complete::{complete, extend_with_var};
pub use higher_order::{reduce_order, HigherOrderEquation};
pub use normalize::{to_counts, to_fractions};

use crate::poly::Polynomial;
use crate::system::EquationSystem;
use crate::term::Term;
use crate::Result;

/// Replaces every constant term `±c` by the expansion `±c·(Σ_v v)`.
///
/// The paper uses this rewrite (Section 6, *Tokenizing*) for systems where a
/// constant inflow/outflow appears: because the variables are fractions
/// summing to one, `c = c·(Σ_v v)`, and the expanded form consists of terms
/// that each contain a variable and can therefore be mapped to actions.
///
/// # Errors
///
/// Propagates construction errors from [`EquationSystem::new`] (these cannot
/// occur for a well-formed input system).
///
/// # Examples
///
/// ```
/// use odekit::EquationSystemBuilder;
/// use odekit::rewrite::expand_constant_terms;
///
/// let sys = EquationSystemBuilder::new()
///     .vars(["x", "y"])
///     .constant("x", -0.5)
///     .constant("y", 0.5)
///     .build()?;
/// let expanded = expand_constant_terms(&sys)?;
/// // -0.5 becomes -0.5x - 0.5y ; +0.5 becomes +0.5x + 0.5y
/// assert_eq!(expanded.term_count(), 4);
/// assert!(odekit::taxonomy::is_complete(&expanded));
/// # Ok::<(), odekit::OdeError>(())
/// ```
pub fn expand_constant_terms(sys: &EquationSystem) -> Result<EquationSystem> {
    let dim = sys.dim();
    let mut equations = Vec::with_capacity(dim);
    for var in sys.var_ids() {
        let mut poly = Polynomial::zero();
        for term in sys.equation(var).terms() {
            if term.is_constant() {
                for v in 0..dim {
                    poly.push(Term::linear(term.coeff(), v, dim));
                }
            } else {
                poly.push(term.clone());
            }
        }
        equations.push(poly);
    }
    EquationSystem::new(sys.var_names().to_vec(), equations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::EquationSystemBuilder;
    use crate::taxonomy;

    #[test]
    fn expansion_preserves_rhs_on_simplex() {
        let sys = EquationSystemBuilder::new()
            .vars(["x", "y", "z"])
            .constant("x", -0.25)
            .term("x", 1.0, &[("y", 1)])
            .term("y", -1.0, &[("y", 1)])
            .constant("y", 0.25)
            .build()
            .unwrap();
        let expanded = expand_constant_terms(&sys).unwrap();
        // On the simplex (x + y + z = 1) the two systems agree.
        let state = [0.2, 0.3, 0.5];
        let a = sys.eval_rhs(&state);
        let b = expanded.eval_rhs(&state);
        for (ai, bi) in a.iter().zip(&b) {
            assert!((ai - bi).abs() < 1e-12);
        }
        // And no constant terms remain.
        assert!(expanded
            .equations()
            .iter()
            .flat_map(|p| p.terms())
            .all(|t| !t.is_constant()));
    }

    #[test]
    fn expansion_makes_constant_system_restricted_capable_of_pairing() {
        let sys = EquationSystemBuilder::new()
            .vars(["x", "y"])
            .constant("x", -0.5)
            .constant("y", 0.5)
            .build()
            .unwrap();
        let expanded = expand_constant_terms(&sys).unwrap();
        assert!(taxonomy::is_complete(&expanded));
        assert!(taxonomy::partition(&expanded).is_total());
    }

    #[test]
    fn expansion_is_identity_without_constants() {
        let sys = EquationSystemBuilder::new()
            .vars(["x", "y"])
            .term("x", -1.0, &[("x", 1), ("y", 1)])
            .term("y", 1.0, &[("x", 1), ("y", 1)])
            .build()
            .unwrap();
        let expanded = expand_constant_terms(&sys).unwrap();
        assert_eq!(expanded, sys);
    }
}
