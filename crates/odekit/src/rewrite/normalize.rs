//! The *Normalizing* rewrite: switch between absolute counts and fractions.

use crate::error::OdeError;
use crate::poly::Polynomial;
use crate::system::EquationSystem;
use crate::Result;

/// Rewrites a system expressed in absolute process counts (variables summing
/// to the constant group size `n`) into the equivalent system over fractions
/// (variables summing to 1).
///
/// If `X` are counts with `Ẋ = f(X)` and `x̂ = X/n`, then
/// `x̂' = f(n·x̂)/n`, so a term of total degree `d` keeps its monomial and has
/// its coefficient multiplied by `n^(d−1)`.
///
/// This is the paper's Section 7 *Normalizing* example: the epidemic system in
/// counts, `Ẋ = −XY/N, Ẏ = XY/N`, becomes `ẋ = −xy, ẏ = xy` over fractions.
///
/// # Errors
///
/// Returns [`OdeError::InvalidParameter`] if `n` is not finite and positive.
pub fn to_fractions(sys: &EquationSystem, n: f64) -> Result<EquationSystem> {
    rescale(sys, n, true)
}

/// The inverse of [`to_fractions`]: rewrites a system over fractions into the
/// equivalent system over absolute counts summing to `n`.
///
/// A term of total degree `d` has its coefficient multiplied by `n^(1−d)`.
///
/// # Errors
///
/// Returns [`OdeError::InvalidParameter`] if `n` is not finite and positive.
pub fn to_counts(sys: &EquationSystem, n: f64) -> Result<EquationSystem> {
    rescale(sys, n, false)
}

fn rescale(sys: &EquationSystem, n: f64, to_fractions: bool) -> Result<EquationSystem> {
    if !n.is_finite() || n <= 0.0 {
        return Err(OdeError::InvalidParameter {
            name: "n",
            reason: format!("group size must be finite and positive, got {n}"),
        });
    }
    let equations = sys
        .equations()
        .iter()
        .map(|poly| {
            Polynomial::from_terms(
                poly.terms()
                    .iter()
                    .map(|t| {
                        let d = i32::try_from(t.total_degree()).unwrap_or(i32::MAX);
                        let exp = if to_fractions { d - 1 } else { 1 - d };
                        t.scaled(n.powi(exp))
                    })
                    .collect(),
            )
        })
        .collect();
    EquationSystem::new(sys.var_names().to_vec(), equations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::EquationSystemBuilder;

    /// The epidemic system in counts: Ẋ = −XY/N, Ẏ = XY/N.
    fn epidemic_counts(n: f64) -> EquationSystem {
        EquationSystemBuilder::new()
            .vars(["x", "y"])
            .term("x", -1.0 / n, &[("x", 1), ("y", 1)])
            .term("y", 1.0 / n, &[("x", 1), ("y", 1)])
            .build()
            .unwrap()
    }

    #[test]
    fn paper_normalizing_example() {
        let n = 1000.0;
        let counts = epidemic_counts(n);
        let fractions = to_fractions(&counts, n).unwrap();
        // ẋ = -xy exactly.
        let t = &fractions.equation(fractions.var("x").unwrap()).terms()[0];
        assert!((t.coeff() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn round_trip_is_identity() {
        let n = 250.0;
        let counts = epidemic_counts(n);
        let back = to_counts(&to_fractions(&counts, n).unwrap(), n).unwrap();
        for (a, b) in counts.equations().iter().zip(back.equations()) {
            for (ta, tb) in a.terms().iter().zip(b.terms()) {
                assert!((ta.coeff() - tb.coeff()).abs() < 1e-15);
                assert_eq!(ta.exponents(), tb.exponents());
            }
        }
    }

    #[test]
    fn linear_terms_are_unchanged() {
        // degree-1 terms have n^0 = 1 scaling in both directions.
        let sys = EquationSystemBuilder::new()
            .vars(["x", "y"])
            .term("x", -0.3, &[("x", 1)])
            .term("y", 0.3, &[("x", 1)])
            .build()
            .unwrap();
        let f = to_fractions(&sys, 1e6).unwrap();
        assert_eq!(f, sys);
    }

    #[test]
    fn constant_terms_scale_inversely() {
        // A constant inflow of c processes/period becomes c/n in fractions.
        let sys = EquationSystemBuilder::new()
            .vars(["x"])
            .constant("x", 10.0)
            .build()
            .unwrap();
        let f = to_fractions(&sys, 100.0).unwrap();
        assert!((f.equation(f.var("x").unwrap()).terms()[0].coeff() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn trajectories_correspond_under_scaling() {
        // d/dt of counts at X = n * x̂ equals n * d/dt of fractions at x̂.
        let n = 500.0;
        let counts = epidemic_counts(n);
        let fracs = to_fractions(&counts, n).unwrap();
        let frac_state = [0.8, 0.2];
        let count_state = [0.8 * n, 0.2 * n];
        let dc = counts.eval_rhs(&count_state);
        let df = fracs.eval_rhs(&frac_state);
        for (c, f) in dc.iter().zip(&df) {
            assert!((c - f * n).abs() < 1e-9);
        }
    }

    #[test]
    fn invalid_group_size_rejected() {
        let sys = epidemic_counts(10.0);
        assert!(to_fractions(&sys, 0.0).is_err());
        assert!(to_fractions(&sys, f64::NAN).is_err());
        assert!(to_counts(&sys, -5.0).is_err());
    }
}
