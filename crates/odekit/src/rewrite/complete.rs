//! The *completion* rewrite: add a slack variable so right-hand sides sum to zero.

use crate::error::OdeError;
use crate::poly::Polynomial;
use crate::system::EquationSystem;
use crate::term::Term;
use crate::Result;

/// Extends every term of `sys` with one extra (zero-exponent) trailing
/// variable, returning the new equations. Used when a variable is appended to
/// a system.
pub fn extend_with_var(sys: &EquationSystem) -> Vec<Polynomial> {
    sys.equations()
        .iter()
        .map(|poly| {
            Polynomial::from_terms(
                poly.terms()
                    .iter()
                    .map(|t| {
                        let mut exps = t.exponents().to_vec();
                        exps.push(0);
                        Term::new(t.coeff(), exps)
                    })
                    .collect(),
            )
        })
        .collect()
}

/// Rewrites `sys` into an equivalent *complete* system by appending a new
/// variable `new_var` with equation `new_var' = −Σ_x f_x(X)`.
///
/// This is the paper's Section 7 "Rewriting an equation into a Complete form";
/// the Lotka–Volterra case study (Section 4.2.1) applies exactly this rewrite
/// with `new_var = "z"`.
///
/// The new variable does not appear in any existing term; under the intended
/// interpretation it is the slack `new_var = 1 − Σ_x x`.
///
/// # Errors
///
/// Returns [`OdeError::DuplicateVariable`] if `new_var` is already a variable
/// of the system.
///
/// # Examples
///
/// ```
/// use odekit::EquationSystemBuilder;
/// use odekit::rewrite::complete;
/// use odekit::taxonomy;
///
/// // x' = 3x(1 - x - 2y), y' = 3y(1 - y - 2x)  — not complete on its own.
/// let lv = EquationSystemBuilder::new()
///     .vars(["x", "y"])
///     .term("x", 3.0, &[("x", 1)])
///     .term("x", -3.0, &[("x", 2)])
///     .term("x", -6.0, &[("x", 1), ("y", 1)])
///     .term("y", 3.0, &[("y", 1)])
///     .term("y", -3.0, &[("y", 2)])
///     .term("y", -6.0, &[("x", 1), ("y", 1)])
///     .build()?;
/// assert!(!taxonomy::is_complete(&lv));
///
/// let completed = complete(&lv, "z")?;
/// assert_eq!(completed.dim(), 3);
/// assert!(taxonomy::is_complete(&completed));
/// # Ok::<(), odekit::OdeError>(())
/// ```
pub fn complete(sys: &EquationSystem, new_var: &str) -> Result<EquationSystem> {
    if sys.var(new_var).is_some() {
        return Err(OdeError::DuplicateVariable(new_var.to_string()));
    }
    let mut names = sys.var_names().to_vec();
    names.push(new_var.to_string());

    let mut equations = extend_with_var(sys);

    // z' = -Σ f_x, with terms extended to the new dimension.
    let mut z_eq = Polynomial::zero();
    for poly in &equations {
        z_eq = z_eq.add(&poly.negated());
    }
    equations.push(z_eq);

    EquationSystem::new(names, equations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::EquationSystemBuilder;
    use crate::taxonomy;

    fn lv_original() -> EquationSystem {
        EquationSystemBuilder::new()
            .vars(["x", "y"])
            .term("x", 3.0, &[("x", 1)])
            .term("x", -3.0, &[("x", 2)])
            .term("x", -6.0, &[("x", 1), ("y", 1)])
            .term("y", 3.0, &[("y", 1)])
            .term("y", -3.0, &[("y", 2)])
            .term("y", -6.0, &[("x", 1), ("y", 1)])
            .build()
            .unwrap()
    }

    #[test]
    fn completion_adds_one_var_and_is_complete() {
        let sys = lv_original();
        let completed = complete(&sys, "z").unwrap();
        assert_eq!(completed.dim(), 3);
        assert_eq!(completed.var_names()[2], "z");
        assert!(taxonomy::is_complete(&completed));
    }

    #[test]
    fn completion_preserves_original_rhs() {
        let sys = lv_original();
        let completed = complete(&sys, "z").unwrap();
        let state2 = [0.3, 0.4];
        let state3 = [0.3, 0.4, 0.3];
        let orig = sys.eval_rhs(&state2);
        let comp = completed.eval_rhs(&state3);
        assert!((orig[0] - comp[0]).abs() < 1e-12);
        assert!((orig[1] - comp[1]).abs() < 1e-12);
        // z' = -(x' + y')
        assert!((comp[2] + orig[0] + orig[1]).abs() < 1e-12);
    }

    #[test]
    fn completing_an_already_complete_system_adds_inert_var() {
        let sys = EquationSystemBuilder::new()
            .vars(["x", "y"])
            .term("x", -1.0, &[("x", 1), ("y", 1)])
            .term("y", 1.0, &[("x", 1), ("y", 1)])
            .build()
            .unwrap();
        let completed = complete(&sys, "w").unwrap();
        assert!(taxonomy::is_complete(&completed));
        // w' simplifies to zero.
        let w = completed.var("w").unwrap();
        assert!(completed.equation(w).simplified(1e-12).is_zero());
    }

    #[test]
    fn duplicate_new_var_rejected() {
        let sys = lv_original();
        assert!(matches!(
            complete(&sys, "x"),
            Err(OdeError::DuplicateVariable(_))
        ));
    }

    #[test]
    fn extend_with_var_preserves_coefficients() {
        let sys = lv_original();
        let extended = extend_with_var(&sys);
        assert_eq!(extended.len(), 2);
        for (orig, ext) in sys.equations().iter().zip(&extended) {
            assert_eq!(orig.len(), ext.len());
            for (a, b) in orig.terms().iter().zip(ext.terms()) {
                assert_eq!(a.coeff(), b.coeff());
                assert_eq!(b.dim(), a.dim() + 1);
                assert_eq!(b.exponent(a.dim()), 0);
            }
        }
    }
}
