//! Reduction of a higher-order ODE to an equivalent first-order system.

use crate::error::OdeError;
use crate::poly::Polynomial;
use crate::system::EquationSystem;
use crate::term::Term;
use crate::Result;

/// A single ODE of arbitrary order `k ≥ 1` and degree 1 in one dependent
/// variable:
///
/// ```text
/// x⁽ᵏ⁾ = g(x, x′, x″, …, x⁽ᵏ⁻¹⁾)
/// ```
///
/// where `g` is a polynomial over the `k` "derivative slots"
/// `[x, x′, …, x⁽ᵏ⁻¹⁾]` (slot `i` is the `i`-th derivative). The paper's
/// Section 7 example `ẍ + ẋ = x` is `order = 2` with `g = x − x′`.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct HigherOrderEquation {
    order: usize,
    rhs: Polynomial,
}

impl HigherOrderEquation {
    /// Creates a higher-order equation of the given order.
    ///
    /// `rhs` must be a polynomial over exactly `order` variables; variable `i`
    /// of the polynomial stands for the `i`-th derivative of the dependent
    /// variable (variable 0 is the function itself).
    ///
    /// # Errors
    ///
    /// Returns [`OdeError::InvalidParameter`] if `order` is zero, and
    /// [`OdeError::DimensionMismatch`] if a term of `rhs` is not over `order`
    /// variables.
    pub fn new(order: usize, rhs: Polynomial) -> Result<Self> {
        if order == 0 {
            return Err(OdeError::InvalidParameter {
                name: "order",
                reason: "order must be at least 1".to_string(),
            });
        }
        for t in rhs.terms() {
            if t.dim() != order {
                return Err(OdeError::DimensionMismatch {
                    expected: order,
                    actual: t.dim(),
                });
            }
        }
        Ok(HigherOrderEquation { order, rhs })
    }

    /// The order `k` of the equation.
    pub fn order(&self) -> usize {
        self.order
    }

    /// The right-hand side polynomial over `[x, x′, …, x⁽ᵏ⁻¹⁾]`.
    pub fn rhs(&self) -> &Polynomial {
        &self.rhs
    }
}

/// Rewrites a higher-order equation as an equivalent first-order system by
/// introducing one new variable per derivative:
///
/// ```text
/// x′      = x_d1
/// x_d1′   = x_d2
///   …
/// x_d(k-1)′ = g(x, x_d1, …, x_d(k-1))
/// ```
///
/// Variable names are `base`, `base_d1`, `base_d2`, …; the resulting system
/// has exactly `k` variables. (Completion — adding a slack variable so the
/// right-hand sides sum to zero — is a separate step; see
/// [`complete`](crate::rewrite::complete).)
///
/// # Errors
///
/// Propagates construction errors from [`EquationSystem::new`].
///
/// # Examples
///
/// The paper's example `ẍ + ẋ = x`, i.e. `ẍ = x − ẋ`:
///
/// ```
/// use odekit::{Polynomial, Term};
/// use odekit::rewrite::{reduce_order, HigherOrderEquation};
///
/// let g = Polynomial::from_terms(vec![
///     Term::new(1.0, vec![1, 0]),   // +x
///     Term::new(-1.0, vec![0, 1]),  // -x'
/// ]);
/// let eq = HigherOrderEquation::new(2, g)?;
/// let sys = reduce_order(&eq, "x")?;
/// assert_eq!(sys.var_names(), &["x".to_string(), "x_d1".to_string()]);
/// // x' = x_d1 ; x_d1' = x - x_d1
/// let rhs = sys.eval_rhs(&[2.0, 5.0]);
/// assert_eq!(rhs, vec![5.0, -3.0]);
/// # Ok::<(), odekit::OdeError>(())
/// ```
pub fn reduce_order(eq: &HigherOrderEquation, base: &str) -> Result<EquationSystem> {
    let k = eq.order();
    let mut names = Vec::with_capacity(k);
    names.push(base.to_string());
    for i in 1..k {
        names.push(format!("{base}_d{i}"));
    }

    let mut equations = Vec::with_capacity(k);
    // x_di' = x_d(i+1) for i = 0..k-2
    for i in 0..k.saturating_sub(1) {
        equations.push(Polynomial::from_terms(vec![Term::linear(1.0, i + 1, k)]));
    }
    // Highest derivative: x_d(k-1)' = g(...). The polynomial is already over
    // the k derivative slots, which are exactly our k variables in order.
    equations.push(eq.rhs().clone());

    EquationSystem::new(names, equations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrate::{Integrator, Rk4};
    use crate::rewrite::complete;
    use crate::taxonomy;

    fn paper_example() -> HigherOrderEquation {
        // ẍ = x − ẋ
        let g = Polynomial::from_terms(vec![
            Term::new(1.0, vec![1, 0]),
            Term::new(-1.0, vec![0, 1]),
        ]);
        HigherOrderEquation::new(2, g).unwrap()
    }

    #[test]
    fn order_zero_rejected() {
        assert!(HigherOrderEquation::new(0, Polynomial::zero()).is_err());
    }

    #[test]
    fn wrong_rhs_dimension_rejected() {
        let g = Polynomial::from_terms(vec![Term::new(1.0, vec![1, 0, 0])]);
        assert!(HigherOrderEquation::new(2, g).is_err());
    }

    #[test]
    fn first_order_is_passthrough() {
        // x' = -x  (order 1, rhs over [x])
        let g = Polynomial::from_terms(vec![Term::new(-1.0, vec![1])]);
        let eq = HigherOrderEquation::new(1, g).unwrap();
        let sys = reduce_order(&eq, "x").unwrap();
        assert_eq!(sys.dim(), 1);
        assert_eq!(sys.eval_rhs(&[3.0]), vec![-3.0]);
    }

    #[test]
    fn paper_example_reduces_and_completes() {
        let sys = reduce_order(&paper_example(), "x").unwrap();
        assert_eq!(sys.dim(), 2);
        // The paper then completes it with a z variable: x' = u; u' = x - u; z' = -x.
        let completed = complete(&sys, "z").unwrap();
        assert!(taxonomy::is_complete(&completed));
        let z = completed.var("z").unwrap();
        // z' = -(x_d1) - (x - x_d1) = -x
        let rhs = completed.eval_rhs(&[0.7, 0.2, 0.1]);
        let _ = z;
        assert!((rhs[2] + 0.7).abs() < 1e-12);
    }

    #[test]
    fn third_order_chain() {
        // x''' = -x   (rhs over [x, x', x''])
        let g = Polynomial::from_terms(vec![Term::new(-1.0, vec![1, 0, 0])]);
        let eq = HigherOrderEquation::new(3, g).unwrap();
        let sys = reduce_order(&eq, "q").unwrap();
        assert_eq!(
            sys.var_names(),
            &["q".to_string(), "q_d1".to_string(), "q_d2".to_string()]
        );
        let rhs = sys.eval_rhs(&[1.0, 2.0, 3.0]);
        assert_eq!(rhs, vec![2.0, 3.0, -1.0]);
    }

    #[test]
    fn reduced_system_reproduces_analytic_solution() {
        // ẍ = -x with x(0)=1, ẋ(0)=0 has solution cos(t).
        let g = Polynomial::from_terms(vec![Term::new(-1.0, vec![1, 0])]);
        let eq = HigherOrderEquation::new(2, g).unwrap();
        let sys = reduce_order(&eq, "x").unwrap();
        let traj = Rk4::new(1e-3)
            .integrate(&sys, 0.0, &[1.0, 0.0], 3.0)
            .unwrap();
        let x_end = traj.last_state()[0];
        assert!((x_end - 3.0_f64.cos()).abs() < 1e-6, "got {x_end}");
    }

    #[test]
    fn accessors() {
        let eq = paper_example();
        assert_eq!(eq.order(), 2);
        assert_eq!(eq.rhs().len(), 2);
    }
}
