//! Signed polynomial terms `±c · Π yᵢ^{eᵢ}`.
//!
//! A [`Term`] is the atomic building block of the paper's polynomial
//! right-hand sides: a signed coefficient together with one non-negative
//! integer exponent per system variable. The sign of the coefficient carries
//! the `±` of the paper's `±c_T Π y^{i_y}` notation; the paper's `c_T` is the
//! coefficient's magnitude.

use std::fmt;

/// A single signed polynomial term over a fixed, ordered set of variables.
///
/// The term stores one exponent per variable of the enclosing
/// [`EquationSystem`](crate::EquationSystem); variable identity is positional
/// (index `i` is the system's `i`-th variable). Construct terms through
/// [`Term::new`] or, more conveniently, through
/// [`EquationSystemBuilder::term`](crate::EquationSystemBuilder::term).
///
/// # Examples
///
/// ```
/// use odekit::Term;
///
/// // -2.5 * x0 * x1^2 over a 3-variable system
/// let t = Term::new(-2.5, vec![1, 2, 0]);
/// assert_eq!(t.total_degree(), 3);
/// assert!(t.is_negative());
/// assert_eq!(t.eval(&[2.0, 3.0, 7.0]), -2.5 * 2.0 * 9.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Term {
    coeff: f64,
    exponents: Vec<u32>,
}

impl Term {
    /// Creates a term with the given signed coefficient and per-variable exponents.
    pub fn new(coeff: f64, exponents: Vec<u32>) -> Self {
        Term { coeff, exponents }
    }

    /// Creates a constant term (all exponents zero) over `dim` variables.
    pub fn constant(coeff: f64, dim: usize) -> Self {
        Term {
            coeff,
            exponents: vec![0; dim],
        }
    }

    /// Creates the term `coeff * x_var` over `dim` variables.
    pub fn linear(coeff: f64, var: usize, dim: usize) -> Self {
        let mut exps = vec![0; dim];
        exps[var] = 1;
        Term {
            coeff,
            exponents: exps,
        }
    }

    /// The signed coefficient of the term.
    pub fn coeff(&self) -> f64 {
        self.coeff
    }

    /// The magnitude `c_T` of the coefficient (the paper's positive constant).
    pub fn magnitude(&self) -> f64 {
        self.coeff.abs()
    }

    /// `true` if the coefficient is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.coeff < 0.0
    }

    /// `true` if the coefficient is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.coeff == 0.0
    }

    /// `true` if every exponent is zero, i.e. the term is a constant.
    pub fn is_constant(&self) -> bool {
        self.exponents.iter().all(|&e| e == 0)
    }

    /// The number of variables this term is defined over.
    pub fn dim(&self) -> usize {
        self.exponents.len()
    }

    /// The exponent of variable `var` in this term.
    ///
    /// # Panics
    ///
    /// Panics if `var >= self.dim()`.
    pub fn exponent(&self, var: usize) -> u32 {
        self.exponents[var]
    }

    /// The full exponent vector (the monomial), one entry per variable.
    pub fn exponents(&self) -> &[u32] {
        &self.exponents
    }

    /// Sum of all exponents (the total degree of the monomial).
    pub fn total_degree(&self) -> u32 {
        self.exponents.iter().sum()
    }

    /// Total number of variable *occurrences* in the term — the paper's `|T|`.
    ///
    /// This is the same as [`total_degree`](Self::total_degree); it is exposed
    /// under the paper's name because the failure-compensation factor of
    /// Section 3 is expressed as `(1/(1-f))^(|T|-1)`.
    pub fn occurrences(&self) -> u32 {
        self.total_degree()
    }

    /// Indices of the variables that appear (exponent ≥ 1) in this term.
    pub fn variables(&self) -> Vec<usize> {
        self.exponents
            .iter()
            .enumerate()
            .filter(|(_, &e)| e > 0)
            .map(|(i, _)| i)
            .collect()
    }

    /// Evaluates the term at the given state vector.
    ///
    /// # Panics
    ///
    /// Panics if `state.len() != self.dim()`.
    pub fn eval(&self, state: &[f64]) -> f64 {
        assert_eq!(state.len(), self.dim(), "state vector has wrong dimension");
        let mut v = self.coeff;
        for (x, &e) in state.iter().zip(&self.exponents) {
            if e > 0 {
                v *= x.powi(e as i32);
            }
        }
        v
    }

    /// Returns the term with its coefficient negated.
    pub fn negated(&self) -> Term {
        Term {
            coeff: -self.coeff,
            exponents: self.exponents.clone(),
        }
    }

    /// Returns the term with its coefficient scaled by `factor`.
    pub fn scaled(&self, factor: f64) -> Term {
        Term {
            coeff: self.coeff * factor,
            exponents: self.exponents.clone(),
        }
    }

    /// The partial derivative of this term with respect to variable `var`.
    ///
    /// Returns a term over the same variable set; if the variable does not
    /// occur, the result is the zero constant term.
    pub fn differentiate(&self, var: usize) -> Term {
        let e = self.exponents[var];
        if e == 0 {
            return Term::constant(0.0, self.dim());
        }
        let mut exps = self.exponents.clone();
        exps[var] = e - 1;
        Term {
            coeff: self.coeff * f64::from(e),
            exponents: exps,
        }
    }

    /// Product of two terms over the same variable set.
    ///
    /// # Panics
    ///
    /// Panics if the terms have different dimensions.
    pub fn product(&self, other: &Term) -> Term {
        assert_eq!(
            self.dim(),
            other.dim(),
            "terms over different variable sets"
        );
        let exps = self
            .exponents
            .iter()
            .zip(&other.exponents)
            .map(|(a, b)| a + b)
            .collect();
        Term {
            coeff: self.coeff * other.coeff,
            exponents: exps,
        }
    }

    /// `true` if the two terms have the same monomial (identical exponent vectors).
    pub fn same_monomial(&self, other: &Term) -> bool {
        self.exponents == other.exponents
    }

    /// `true` if `other` is the exact opposite of this term (same monomial,
    /// coefficients of equal magnitude and opposite sign) within a relative
    /// tolerance `tol`.
    pub fn cancels_with(&self, other: &Term, tol: f64) -> bool {
        if !self.same_monomial(other) {
            return false;
        }
        let sum = self.coeff + other.coeff;
        let scale = self.magnitude().max(other.magnitude()).max(1e-300);
        sum.abs() <= tol * scale
    }

    /// Renders the term using the given variable names.
    ///
    /// # Panics
    ///
    /// Panics if `names.len() != self.dim()`.
    pub fn render(&self, names: &[String]) -> String {
        assert_eq!(names.len(), self.dim(), "name list has wrong dimension");
        let mut parts = Vec::new();
        let c = self.coeff;
        if self.is_constant() || (c - 1.0).abs() > 1e-12 && (c + 1.0).abs() > 1e-12 {
            parts.push(format!("{c}"));
        } else if c < 0.0 {
            parts.push("-1".to_string());
        }
        for (name, &e) in names.iter().zip(&self.exponents) {
            match e {
                0 => {}
                1 => parts.push(name.clone()),
                _ => parts.push(format!("{name}^{e}")),
            }
        }
        if parts.is_empty() {
            parts.push(format!("{c}"));
        }
        parts.join("*")
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<String> = (0..self.dim()).map(|i| format!("x{i}")).collect();
        write!(f, "{}", self.render(&names))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_term_has_zero_degree() {
        let t = Term::constant(4.0, 3);
        assert!(t.is_constant());
        assert_eq!(t.total_degree(), 0);
        assert_eq!(t.eval(&[10.0, 20.0, 30.0]), 4.0);
    }

    #[test]
    fn linear_term_evaluates() {
        let t = Term::linear(-0.5, 1, 3);
        assert_eq!(t.eval(&[1.0, 6.0, 2.0]), -3.0);
        assert_eq!(t.exponent(1), 1);
        assert_eq!(t.variables(), vec![1]);
    }

    #[test]
    fn eval_respects_powers() {
        let t = Term::new(2.0, vec![2, 0, 3]);
        assert_eq!(t.eval(&[3.0, 100.0, 2.0]), 2.0 * 9.0 * 8.0);
        assert_eq!(t.total_degree(), 5);
        assert_eq!(t.occurrences(), 5);
    }

    #[test]
    #[should_panic(expected = "wrong dimension")]
    fn eval_panics_on_dim_mismatch() {
        Term::new(1.0, vec![1, 1]).eval(&[1.0]);
    }

    #[test]
    fn differentiate_power_rule() {
        // d/dx0 (5 x0^3 x1) = 15 x0^2 x1
        let t = Term::new(5.0, vec![3, 1]);
        let d = t.differentiate(0);
        assert_eq!(d.coeff(), 15.0);
        assert_eq!(d.exponents(), &[2, 1]);
        // derivative w.r.t. a missing variable is zero
        let t2 = Term::new(5.0, vec![0, 1]);
        assert!(t2.differentiate(0).is_zero());
    }

    #[test]
    fn product_adds_exponents() {
        let a = Term::new(2.0, vec![1, 0]);
        let b = Term::new(-3.0, vec![1, 2]);
        let p = a.product(&b);
        assert_eq!(p.coeff(), -6.0);
        assert_eq!(p.exponents(), &[2, 2]);
    }

    #[test]
    fn cancellation_detection() {
        let a = Term::new(0.3, vec![1, 1]);
        let b = Term::new(-0.3, vec![1, 1]);
        let c = Term::new(-0.3, vec![1, 0]);
        assert!(a.cancels_with(&b, 1e-12));
        assert!(!a.cancels_with(&c, 1e-12));
        assert!(!a.cancels_with(&a, 1e-12));
    }

    #[test]
    fn negated_and_scaled() {
        let t = Term::new(2.0, vec![1]);
        assert_eq!(t.negated().coeff(), -2.0);
        assert_eq!(t.scaled(0.5).coeff(), 1.0);
        assert!(t.negated().same_monomial(&t));
    }

    #[test]
    fn render_uses_names() {
        let t = Term::new(-4.0, vec![1, 1, 0]);
        let names: Vec<String> = ["x", "y", "z"].iter().map(|s| s.to_string()).collect();
        assert_eq!(t.render(&names), "-4*x*y");
        let one = Term::new(1.0, vec![0, 1, 0]);
        assert_eq!(one.render(&names), "y");
    }

    #[test]
    fn display_is_nonempty() {
        let t = Term::constant(0.0, 2);
        assert!(!format!("{t}").is_empty());
        assert!(!format!("{t:?}").is_empty());
    }
}
