//! Systems of first-order polynomial ODEs `Ẋ = f(X)`.

use crate::error::OdeError;
use crate::poly::Polynomial;
use crate::term::Term;
use crate::Result;
use std::fmt;

/// Identifier of a variable within an [`EquationSystem`].
///
/// Variables are identified positionally; a `VarId` is only meaningful with
/// respect to the system that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct VarId(usize);

impl VarId {
    /// Creates a `VarId` from a raw index.
    pub fn new(index: usize) -> Self {
        VarId(index)
    }

    /// The positional index of the variable within its system.
    pub fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for VarId {
    fn from(index: usize) -> Self {
        VarId(index)
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A system of first-order, degree-one ODEs with polynomial right-hand sides.
///
/// This is the paper's `Ẋ = f̄(X̄)`: an ordered set of variables together with
/// one [`Polynomial`] right-hand side per variable. Variable order matters —
/// the paper's One-Time-Sampling rule orders sampled targets lexicographically,
/// and this crate preserves whatever order the caller declares (the
/// [`EquationSystemBuilder`] declares variables in call order; use
/// [`EquationSystemBuilder::sorted_vars`] to sort them lexicographically
/// first).
///
/// # Examples
///
/// ```
/// use odekit::EquationSystemBuilder;
///
/// // The endemic system of the paper (eq. 1), with β=4, γ=1, α=0.01:
/// let sys = EquationSystemBuilder::new()
///     .vars(["x", "y", "z"])
///     .term("x", -4.0, &[("x", 1), ("y", 1)])
///     .term("x", 0.01, &[("z", 1)])
///     .term("y", 4.0, &[("x", 1), ("y", 1)])
///     .term("y", -1.0, &[("y", 1)])
///     .term("z", 1.0, &[("y", 1)])
///     .term("z", -0.01, &[("z", 1)])
///     .build()?;
/// assert_eq!(sys.dim(), 3);
/// let rhs = sys.eval_rhs(&[0.25, 0.5, 0.25]);
/// assert!((rhs[0] - (-4.0 * 0.25 * 0.5 + 0.01 * 0.25)).abs() < 1e-12);
/// # Ok::<(), odekit::OdeError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EquationSystem {
    names: Vec<String>,
    equations: Vec<Polynomial>,
}

impl EquationSystem {
    /// Creates a system directly from variable names and equations.
    ///
    /// # Errors
    ///
    /// Returns [`OdeError::EmptySystem`] if `names` is empty,
    /// [`OdeError::DuplicateVariable`] if a name repeats, and
    /// [`OdeError::DimensionMismatch`] if `equations.len() != names.len()` or
    /// any term's dimension differs from the number of variables.
    pub fn new(names: Vec<String>, equations: Vec<Polynomial>) -> Result<Self> {
        if names.is_empty() {
            return Err(OdeError::EmptySystem);
        }
        for (i, n) in names.iter().enumerate() {
            if names[..i].contains(n) {
                return Err(OdeError::DuplicateVariable(n.clone()));
            }
        }
        if equations.len() != names.len() {
            return Err(OdeError::DimensionMismatch {
                expected: names.len(),
                actual: equations.len(),
            });
        }
        for eq in &equations {
            for t in eq.terms() {
                if t.dim() != names.len() {
                    return Err(OdeError::DimensionMismatch {
                        expected: names.len(),
                        actual: t.dim(),
                    });
                }
            }
        }
        Ok(EquationSystem { names, equations })
    }

    /// Number of variables (= number of equations).
    pub fn dim(&self) -> usize {
        self.names.len()
    }

    /// The variable names, in declaration order.
    pub fn var_names(&self) -> &[String] {
        &self.names
    }

    /// The name of variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn var_name(&self, var: VarId) -> &str {
        &self.names[var.index()]
    }

    /// Looks up a variable by name.
    pub fn var(&self, name: &str) -> Option<VarId> {
        self.names.iter().position(|n| n == name).map(VarId)
    }

    /// Looks up a variable by name, returning an error if it does not exist.
    ///
    /// # Errors
    ///
    /// Returns [`OdeError::UnknownVariable`] if no variable has that name.
    pub fn require_var(&self, name: &str) -> Result<VarId> {
        self.var(name)
            .ok_or_else(|| OdeError::UnknownVariable(name.to_string()))
    }

    /// All variable ids in order.
    pub fn var_ids(&self) -> impl Iterator<Item = VarId> + '_ {
        (0..self.names.len()).map(VarId)
    }

    /// The right-hand side polynomial `f_x` for variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn equation(&self, var: VarId) -> &Polynomial {
        &self.equations[var.index()]
    }

    /// All right-hand sides, in variable order.
    pub fn equations(&self) -> &[Polynomial] {
        &self.equations
    }

    /// Evaluates the full right-hand side vector `f(state)`.
    ///
    /// # Panics
    ///
    /// Panics if `state.len() != self.dim()`.
    pub fn eval_rhs(&self, state: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.dim()];
        self.eval_rhs_into(state, &mut out);
        out
    }

    /// Evaluates the right-hand side into a caller-provided buffer (for use in
    /// tight integration loops).
    ///
    /// # Panics
    ///
    /// Panics if `state.len() != self.dim()` or `out.len() != self.dim()`.
    pub fn eval_rhs_into(&self, state: &[f64], out: &mut [f64]) {
        assert_eq!(state.len(), self.dim(), "state vector has wrong dimension");
        assert_eq!(out.len(), self.dim(), "output vector has wrong dimension");
        for (o, eq) in out.iter_mut().zip(&self.equations) {
            *o = eq.eval(state);
        }
    }

    /// The polynomial `Σ_x f_x(X)` — zero for *complete* systems.
    pub fn rhs_sum(&self) -> Polynomial {
        let mut sum = Polynomial::zero();
        for eq in &self.equations {
            sum = sum.add(eq);
        }
        sum
    }

    /// The symbolic Jacobian matrix `J[i][j] = ∂f_i/∂x_j`.
    pub fn jacobian(&self) -> Vec<Vec<Polynomial>> {
        self.equations
            .iter()
            .map(|eq| (0..self.dim()).map(|j| eq.differentiate(j)).collect())
            .collect()
    }

    /// Evaluates the Jacobian at a state, row-major.
    ///
    /// # Panics
    ///
    /// Panics if `state.len() != self.dim()`.
    pub fn jacobian_at(&self, state: &[f64]) -> Vec<Vec<f64>> {
        self.jacobian()
            .iter()
            .map(|row| row.iter().map(|p| p.eval(state)).collect())
            .collect()
    }

    /// Returns a copy of the system with every equation simplified
    /// (like terms combined, cancelled terms dropped).
    pub fn simplified(&self, tol: f64) -> EquationSystem {
        EquationSystem {
            names: self.names.clone(),
            equations: self.equations.iter().map(|e| e.simplified(tol)).collect(),
        }
    }

    /// Total number of terms across all equations.
    pub fn term_count(&self) -> usize {
        self.equations.iter().map(Polynomial::len).sum()
    }

    /// The maximum total degree over all terms in the system.
    pub fn degree(&self) -> u32 {
        self.equations
            .iter()
            .map(Polynomial::degree)
            .max()
            .unwrap_or(0)
    }

    /// Renders the system as one `name' = rhs` line per variable.
    pub fn render(&self) -> String {
        self.names
            .iter()
            .zip(&self.equations)
            .map(|(n, eq)| format!("{n}' = {}", eq.render(&self.names)))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

impl fmt::Display for EquationSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

/// Incremental builder for [`EquationSystem`]s.
///
/// Declare variables first (with [`var`](Self::var) / [`vars`](Self::vars)),
/// then add terms by variable *name*; [`build`](Self::build) validates
/// everything and produces the system.
///
/// # Examples
///
/// ```
/// use odekit::EquationSystemBuilder;
///
/// let sys = EquationSystemBuilder::new()
///     .vars(["x", "y"])
///     .term("x", -1.0, &[("x", 1), ("y", 1)])
///     .term("y", 1.0, &[("x", 1), ("y", 1)])
///     .build()?;
/// assert_eq!(sys.dim(), 2);
/// # Ok::<(), odekit::OdeError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct EquationSystemBuilder {
    names: Vec<String>,
    pending: Vec<PendingTerm>,
}

/// A term queued in the builder: (target variable, coefficient,
/// [(variable, exponent)]).
type PendingTerm = (String, f64, Vec<(String, u32)>);

impl EquationSystemBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a variable. Declaration order becomes variable order.
    #[must_use]
    pub fn var(mut self, name: impl Into<String>) -> Self {
        self.names.push(name.into());
        self
    }

    /// Declares several variables at once.
    #[must_use]
    pub fn vars<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.names.extend(names.into_iter().map(Into::into));
        self
    }

    /// Sorts the declared variables lexicographically (the order the paper's
    /// One-Time-Sampling rule assumes). Call after declaring all variables and
    /// before adding terms.
    #[must_use]
    pub fn sorted_vars(mut self) -> Self {
        self.names.sort();
        self
    }

    /// Adds the term `coeff · Π var^exp` to the equation of `target`.
    #[must_use]
    pub fn term(mut self, target: impl Into<String>, coeff: f64, factors: &[(&str, u32)]) -> Self {
        self.pending.push((
            target.into(),
            coeff,
            factors.iter().map(|(n, e)| (n.to_string(), *e)).collect(),
        ));
        self
    }

    /// Adds a constant term `coeff` to the equation of `target`.
    #[must_use]
    pub fn constant(self, target: impl Into<String>, coeff: f64) -> Self {
        self.term(target, coeff, &[])
    }

    /// Validates and constructs the [`EquationSystem`].
    ///
    /// # Errors
    ///
    /// Returns [`OdeError::EmptySystem`] if no variables were declared,
    /// [`OdeError::DuplicateVariable`] for repeated declarations,
    /// [`OdeError::UnknownVariable`] if a term references an undeclared
    /// variable, and [`OdeError::InvalidParameter`] if a coefficient is not
    /// finite.
    pub fn build(self) -> Result<EquationSystem> {
        if self.names.is_empty() {
            return Err(OdeError::EmptySystem);
        }
        for (i, n) in self.names.iter().enumerate() {
            if self.names[..i].contains(n) {
                return Err(OdeError::DuplicateVariable(n.clone()));
            }
        }
        let dim = self.names.len();
        let index_of = |name: &str| -> Result<usize> {
            self.names
                .iter()
                .position(|n| n == name)
                .ok_or_else(|| OdeError::UnknownVariable(name.to_string()))
        };
        let mut equations = vec![Polynomial::zero(); dim];
        for (target, coeff, factors) in &self.pending {
            if !coeff.is_finite() {
                return Err(OdeError::InvalidParameter {
                    name: "coefficient",
                    reason: format!("coefficient {coeff} for `{target}` is not finite"),
                });
            }
            let ti = index_of(target)?;
            let mut exps = vec![0u32; dim];
            for (name, exp) in factors {
                let vi = index_of(name)?;
                exps[vi] += exp;
            }
            equations[ti].push(Term::new(*coeff, exps));
        }
        EquationSystem::new(self.names, equations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn epidemic() -> EquationSystem {
        EquationSystemBuilder::new()
            .vars(["x", "y"])
            .term("x", -1.0, &[("x", 1), ("y", 1)])
            .term("y", 1.0, &[("x", 1), ("y", 1)])
            .build()
            .unwrap()
    }

    #[test]
    fn builder_produces_expected_dimensions() {
        let sys = epidemic();
        assert_eq!(sys.dim(), 2);
        assert_eq!(sys.var_names(), &["x".to_string(), "y".to_string()]);
        assert_eq!(sys.term_count(), 2);
        assert_eq!(sys.degree(), 2);
    }

    #[test]
    fn var_lookup() {
        let sys = epidemic();
        assert_eq!(sys.var("y"), Some(VarId::new(1)));
        assert_eq!(sys.var("nope"), None);
        assert!(sys.require_var("nope").is_err());
        assert_eq!(sys.var_name(VarId::new(0)), "x");
        assert_eq!(sys.var_ids().count(), 2);
    }

    #[test]
    fn rhs_evaluation() {
        let sys = epidemic();
        let rhs = sys.eval_rhs(&[0.9, 0.1]);
        assert!((rhs[0] + 0.09).abs() < 1e-12);
        assert!((rhs[1] - 0.09).abs() < 1e-12);
    }

    #[test]
    fn rhs_sum_is_zero_for_complete_system() {
        let sys = epidemic();
        assert!(sys.rhs_sum().simplified(1e-12).is_zero());
    }

    #[test]
    fn jacobian_of_epidemic() {
        let sys = epidemic();
        // f_x = -xy → ∂/∂x = -y, ∂/∂y = -x
        let j = sys.jacobian_at(&[0.25, 0.5]);
        assert!((j[0][0] + 0.5).abs() < 1e-12);
        assert!((j[0][1] + 0.25).abs() < 1e-12);
        assert!((j[1][0] - 0.5).abs() < 1e-12);
        assert!((j[1][1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_builder_is_error() {
        assert_eq!(
            EquationSystemBuilder::new().build().unwrap_err(),
            OdeError::EmptySystem
        );
    }

    #[test]
    fn duplicate_variable_rejected() {
        let err = EquationSystemBuilder::new()
            .vars(["x", "x"])
            .build()
            .unwrap_err();
        assert_eq!(err, OdeError::DuplicateVariable("x".to_string()));
    }

    #[test]
    fn unknown_variable_rejected() {
        let err = EquationSystemBuilder::new()
            .var("x")
            .term("x", 1.0, &[("q", 1)])
            .build()
            .unwrap_err();
        assert_eq!(err, OdeError::UnknownVariable("q".to_string()));
    }

    #[test]
    fn non_finite_coefficient_rejected() {
        let err = EquationSystemBuilder::new()
            .var("x")
            .constant("x", f64::NAN)
            .build()
            .unwrap_err();
        assert!(matches!(err, OdeError::InvalidParameter { .. }));
    }

    #[test]
    fn sorted_vars_reorders() {
        let sys = EquationSystemBuilder::new()
            .vars(["z", "a", "m"])
            .sorted_vars()
            .build()
            .unwrap();
        assert_eq!(
            sys.var_names(),
            &["a".to_string(), "m".to_string(), "z".to_string()]
        );
    }

    #[test]
    fn repeated_factor_accumulates_exponent() {
        let sys = EquationSystemBuilder::new()
            .var("x")
            .term("x", 1.0, &[("x", 1), ("x", 1)])
            .build()
            .unwrap();
        assert_eq!(sys.equation(VarId::new(0)).terms()[0].exponent(0), 2);
    }

    #[test]
    fn render_round_trips_names() {
        let sys = epidemic();
        let text = sys.render();
        assert!(text.contains("x' ="));
        assert!(text.contains("y' ="));
        assert!(!format!("{sys}").is_empty());
    }

    #[test]
    fn direct_constructor_validates() {
        assert!(EquationSystem::new(vec![], vec![]).is_err());
        let err = EquationSystem::new(vec!["x".into()], vec![]).unwrap_err();
        assert!(matches!(err, OdeError::DimensionMismatch { .. }));
        // term of wrong dimension
        let p = Polynomial::from_terms(vec![Term::new(1.0, vec![1, 1])]);
        let err = EquationSystem::new(vec!["x".into()], vec![p]).unwrap_err();
        assert!(matches!(err, OdeError::DimensionMismatch { .. }));
    }

    #[test]
    fn simplified_system_combines_terms() {
        let sys = EquationSystemBuilder::new()
            .vars(["x", "y"])
            .term("x", 3.0, &[("x", 1), ("y", 1)])
            .term("x", 3.0, &[("x", 1), ("y", 1)])
            .term("y", -6.0, &[("x", 1), ("y", 1)])
            .build()
            .unwrap();
        let s = sys.simplified(1e-12);
        assert_eq!(s.equation(VarId::new(0)).len(), 1);
        assert_eq!(s.equation(VarId::new(0)).terms()[0].coeff(), 6.0);
    }
}
