//! Protocol actions: the probabilistic, periodic steps of a synthesized
//! state machine.
//!
//! The compiler (Section 3 and 6 of the paper) emits three action kinds:
//! [`Action::Flip`], [`Action::Sample`] (One-Time-Sampling) and
//! [`Action::Tokenize`]. Two further kinds, [`Action::SampleAny`] and
//! [`Action::PushSample`], express the *variant* constructions the paper uses
//! in its endemic case study (Figure 1 and the optimization (iv) of
//! Section 4.1.2): contacting `b` targets and reacting if *any* of them is in
//! a given state, and pushing a transition onto sampled targets.

use crate::state_machine::StateId;
use std::fmt;

/// One periodic action attached to a protocol state.
///
/// Every action is executed once per protocol period by each process whose
/// current state carries the action (unless an earlier action of the same
/// state already made the process transition this period).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Action {
    /// Toss a biased coin; on heads, transition to `to`.
    ///
    /// Derived from a term `-c·x` on the right-hand side of `ẋ`; the coin's
    /// heads probability is `p·c`.
    Flip {
        /// Heads probability of the local coin.
        prob: f64,
        /// Destination state on heads.
        to: StateId,
    },
    /// One-Time-Sampling: sample `required.len()` processes uniformly at
    /// random from the group; transition to `to` if the `j`-th sampled
    /// process is in state `required[j]` for every `j` *and* a local coin with
    /// heads probability `prob` falls heads.
    ///
    /// Derived from a term `-c·x^{i_x}·Π y^{i_y}` on the right-hand side of
    /// `ẋ`: `required` contains `i_x − 1` copies of `x` followed by `i_y`
    /// copies of each other variable `y` in lexicographic order.
    Sample {
        /// States the sampled targets must be in (in sampling order).
        required: Vec<StateId>,
        /// Heads probability of the local coin.
        prob: f64,
        /// Destination state when all conditions hold.
        to: StateId,
    },
    /// Sample `samples` processes and transition to `to` if **any** of them is
    /// in `target_state` (and the local coin falls heads).
    ///
    /// This is the Figure 1 "receptive seeks stasher" construction with
    /// contact parameter `b = samples`; its effective rate is
    /// `1 − (1 − y)^b ≈ b·y` for small `y`.
    SampleAny {
        /// The state the process is looking for among its samples.
        target_state: StateId,
        /// Number of uniform samples (the paper's `b`).
        samples: u32,
        /// Heads probability of the local coin.
        prob: f64,
        /// Destination state on success.
        to: StateId,
    },
    /// Sample `samples` processes; every sampled process that is currently in
    /// `target_state` immediately transitions to `to` (subject to the local
    /// coin). The *executing* process does not change state.
    ///
    /// This is the endemic protocol's optimization (iv): a stasher pushes the
    /// object onto receptive targets.
    PushSample {
        /// The state of the targets that will be converted.
        target_state: StateId,
        /// Number of uniform samples (the paper's `b`).
        samples: u32,
        /// Heads probability of the local coin (applied per target hit).
        prob: f64,
        /// State the converted targets move to.
        to: StateId,
    },
    /// Tokenizing (Section 6): the executing process evaluates the same
    /// conditions as [`Action::Sample`], but on success it does **not**
    /// transition. Instead it generates a token and forwards it to some
    /// process currently in `token_state`; on receipt that process transitions
    /// to `to`. If no process is in `token_state`, the token is dropped.
    Tokenize {
        /// States the sampled targets must be in (in sampling order).
        required: Vec<StateId>,
        /// Heads probability of the local coin.
        prob: f64,
        /// The state whose members consume the token (the paper's `x` with
        /// `i_x = 0`).
        token_state: StateId,
        /// Destination state of the token consumer.
        to: StateId,
    },
}

impl Action {
    /// The coin probability of the action.
    pub fn prob(&self) -> f64 {
        match self {
            Action::Flip { prob, .. }
            | Action::Sample { prob, .. }
            | Action::SampleAny { prob, .. }
            | Action::PushSample { prob, .. }
            | Action::Tokenize { prob, .. } => *prob,
        }
    }

    /// The destination state of the transition this action can cause.
    pub fn destination(&self) -> StateId {
        match self {
            Action::Flip { to, .. }
            | Action::Sample { to, .. }
            | Action::SampleAny { to, .. }
            | Action::PushSample { to, .. }
            | Action::Tokenize { to, .. } => *to,
        }
    }

    /// Number of sampling messages this action sends per period (the quantity
    /// the paper's message-complexity bound counts: one message per sampled
    /// target, tokens counted as one extra message).
    pub fn messages_per_period(&self) -> u32 {
        match self {
            Action::Flip { .. } => 0,
            Action::Sample { required, .. } => required.len() as u32,
            Action::SampleAny { samples, .. } | Action::PushSample { samples, .. } => *samples,
            Action::Tokenize { required, .. } => required.len() as u32 + 1,
        }
    }

    /// `true` if executing this action can change the executing process's own
    /// state (as opposed to some other process's state).
    pub fn moves_self(&self) -> bool {
        matches!(
            self,
            Action::Flip { .. } | Action::Sample { .. } | Action::SampleAny { .. }
        )
    }

    /// Returns a copy of the action with its coin probability replaced.
    pub fn with_prob(&self, prob: f64) -> Action {
        let mut a = self.clone();
        match &mut a {
            Action::Flip { prob: p, .. }
            | Action::Sample { prob: p, .. }
            | Action::SampleAny { prob: p, .. }
            | Action::PushSample { prob: p, .. }
            | Action::Tokenize { prob: p, .. } => *p = prob,
        }
        a
    }

    /// Renders the action using state names from the surrounding protocol.
    pub fn render(&self, names: &[String]) -> String {
        let name = |s: &StateId| {
            names
                .get(s.index())
                .cloned()
                .unwrap_or_else(|| format!("s{}", s.index()))
        };
        match self {
            Action::Flip { prob, to } => {
                format!("flip(heads={prob:.4}) -> {}", name(to))
            }
            Action::Sample { required, prob, to } => {
                let req: Vec<String> = required.iter().map(&name).collect();
                format!(
                    "sample[{}] & flip(heads={prob:.4}) -> {}",
                    req.join(","),
                    name(to)
                )
            }
            Action::SampleAny {
                target_state,
                samples,
                prob,
                to,
            } => format!(
                "sample {samples} targets, if any in {} & flip(heads={prob:.4}) -> {}",
                name(target_state),
                name(to)
            ),
            Action::PushSample {
                target_state,
                samples,
                prob,
                to,
            } => format!(
                "push to {samples} targets: any in {} moves (heads={prob:.4}) -> {}",
                name(target_state),
                name(to)
            ),
            Action::Tokenize {
                required,
                prob,
                token_state,
                to,
            } => {
                let req: Vec<String> = required.iter().map(&name).collect();
                format!(
                    "sample[{}] & flip(heads={prob:.4}) => token to a process in {}, which -> {}",
                    req.join(","),
                    name(token_state),
                    name(to)
                )
            }
        }
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render(&[]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid(i: usize) -> StateId {
        StateId::new(i)
    }

    #[test]
    fn accessors_cover_all_variants() {
        let actions = [
            Action::Flip {
                prob: 0.1,
                to: sid(1),
            },
            Action::Sample {
                required: vec![sid(0), sid(2)],
                prob: 0.2,
                to: sid(2),
            },
            Action::SampleAny {
                target_state: sid(1),
                samples: 4,
                prob: 0.3,
                to: sid(1),
            },
            Action::PushSample {
                target_state: sid(0),
                samples: 2,
                prob: 0.4,
                to: sid(1),
            },
            Action::Tokenize {
                required: vec![sid(1)],
                prob: 0.5,
                token_state: sid(0),
                to: sid(2),
            },
        ];
        let probs: Vec<f64> = actions.iter().map(Action::prob).collect();
        assert_eq!(probs, vec![0.1, 0.2, 0.3, 0.4, 0.5]);
        let dests: Vec<usize> = actions.iter().map(|a| a.destination().index()).collect();
        assert_eq!(dests, vec![1, 2, 1, 1, 2]);
        let msgs: Vec<u32> = actions.iter().map(Action::messages_per_period).collect();
        assert_eq!(msgs, vec![0, 2, 4, 2, 2]);
        assert!(actions[0].moves_self());
        assert!(actions[1].moves_self());
        assert!(actions[2].moves_self());
        assert!(!actions[3].moves_self());
        assert!(!actions[4].moves_self());
    }

    #[test]
    fn with_prob_replaces_only_probability() {
        let a = Action::Sample {
            required: vec![sid(1)],
            prob: 0.2,
            to: sid(1),
        };
        let b = a.with_prob(0.9);
        assert_eq!(b.prob(), 0.9);
        assert_eq!(b.destination(), sid(1));
        assert_eq!(a.prob(), 0.2);
    }

    #[test]
    fn rendering_uses_names_when_available() {
        let names: Vec<String> = ["x", "y", "z"].iter().map(|s| s.to_string()).collect();
        let a = Action::SampleAny {
            target_state: sid(1),
            samples: 2,
            prob: 0.25,
            to: sid(1),
        };
        let text = a.render(&names);
        assert!(text.contains('y'));
        assert!(text.contains('2'));
        // Display falls back to positional names.
        let plain = format!(
            "{}",
            Action::Flip {
                prob: 0.5,
                to: sid(7)
            }
        );
        assert!(plain.contains("s7"));
    }
}
