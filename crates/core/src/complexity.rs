//! Message-complexity accounting (Section 3 of the paper).
//!
//! "The number of sampling messages sent out by a process in state x, per
//! protocol period, equals the sum of the number of occurrences of all
//! variables in negative terms in f_x, less the number of negative terms in
//! f_x." For a compiled protocol this is exactly the total number of sampled
//! targets across the state's actions, which is what
//! [`Action::messages_per_period`](crate::Action::messages_per_period)
//! counts (tokens add one forwarding message).

use crate::state_machine::{Protocol, StateId};

/// Per-state and aggregate message complexity of a protocol.
#[derive(Debug, Clone, PartialEq)]
pub struct MessageComplexity {
    per_state: Vec<u32>,
}

impl MessageComplexity {
    /// Computes the message complexity of a protocol.
    pub fn of(protocol: &Protocol) -> Self {
        let per_state = protocol
            .state_ids()
            .map(|s| {
                protocol
                    .actions(s)
                    .iter()
                    .map(|a| a.messages_per_period())
                    .sum()
            })
            .collect();
        MessageComplexity { per_state }
    }

    /// Messages sent per period by a process in the given state.
    ///
    /// # Panics
    ///
    /// Panics if the state id is out of range for the protocol this report was
    /// computed from.
    pub fn messages_for(&self, state: StateId) -> u32 {
        self.per_state[state.index()]
    }

    /// The worst-case per-process message count over all states — the paper's
    /// "constant message overhead at each process", independent of group size.
    pub fn worst_case(&self) -> u32 {
        self.per_state.iter().copied().max().unwrap_or(0)
    }

    /// Expected messages per process per period under a given distribution of
    /// processes over states (fractions summing to 1).
    ///
    /// # Panics
    ///
    /// Panics if `fractions.len()` differs from the number of states.
    pub fn expected(&self, fractions: &[f64]) -> f64 {
        assert_eq!(
            fractions.len(),
            self.per_state.len(),
            "fraction vector has wrong length"
        );
        self.per_state
            .iter()
            .zip(fractions)
            .map(|(&m, &f)| f * f64::from(m))
            .sum()
    }

    /// Per-state message counts, indexed by state.
    pub fn per_state(&self) -> &[u32] {
        &self.per_state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::ProtocolCompiler;
    use odekit::system::EquationSystemBuilder;

    #[test]
    fn epidemic_costs_one_message_for_susceptibles_only() {
        let sys = EquationSystemBuilder::new()
            .vars(["x", "y"])
            .term("x", -1.0, &[("x", 1), ("y", 1)])
            .term("y", 1.0, &[("x", 1), ("y", 1)])
            .build()
            .unwrap();
        let protocol = ProtocolCompiler::new("epidemic").compile(&sys).unwrap();
        let mc = MessageComplexity::of(&protocol);
        let x = protocol.require_state("x").unwrap();
        let y = protocol.require_state("y").unwrap();
        // Paper formula for f_x = -xy: occurrences (2) minus negative terms (1) = 1.
        assert_eq!(mc.messages_for(x), 1);
        assert_eq!(mc.messages_for(y), 0);
        assert_eq!(mc.worst_case(), 1);
        assert_eq!(mc.per_state(), &[1, 0]);
        assert!((mc.expected(&[0.5, 0.5]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn endemic_message_counts_match_paper_formula() {
        let sys = EquationSystemBuilder::new()
            .vars(["x", "y", "z"])
            .term("x", -4.0, &[("x", 1), ("y", 1)])
            .term("x", 0.01, &[("z", 1)])
            .term("y", 4.0, &[("x", 1), ("y", 1)])
            .term("y", -1.0, &[("y", 1)])
            .term("z", 1.0, &[("y", 1)])
            .term("z", -0.01, &[("z", 1)])
            .build()
            .unwrap();
        let protocol = ProtocolCompiler::new("endemic").compile(&sys).unwrap();
        let mc = MessageComplexity::of(&protocol);
        // f_x has one negative term -βxy with 2 occurrences → 1 message.
        // f_y's -γy and f_z's -αz are pure flips → 0 messages.
        assert_eq!(mc.per_state(), &[1, 0, 0]);
        assert_eq!(mc.worst_case(), 1);
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn expected_panics_on_wrong_fraction_length() {
        let sys = EquationSystemBuilder::new()
            .vars(["x", "y"])
            .term("x", -1.0, &[("x", 1), ("y", 1)])
            .term("y", 1.0, &[("x", 1), ("y", 1)])
            .build()
            .unwrap();
        let protocol = ProtocolCompiler::new("epidemic").compile(&sys).unwrap();
        MessageComplexity::of(&protocol).expected(&[1.0]);
    }
}
