//! Protocol state machines: the output of the ODE→protocol compiler.

use crate::action::Action;
use crate::error::CoreError;
use crate::Result;
use std::fmt;

/// Identifier of a protocol state (a dense index).
///
/// States correspond one-to-one to the variables of the source equation
/// system, in the same order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StateId(usize);

impl StateId {
    /// Creates a state id from a raw index.
    pub fn new(index: usize) -> Self {
        StateId(index)
    }

    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for StateId {
    fn from(value: usize) -> Self {
        StateId(value)
    }
}

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "state#{}", self.0)
    }
}

/// A synthesized protocol: a probabilistic state machine with one state per
/// equation-system variable and periodic actions attached to each state.
///
/// A `Protocol` is pure data — it can be executed by the
/// [`AgentRuntime`](crate::runtime::AgentRuntime) (one state per process) or
/// the [`AggregateRuntime`](crate::runtime::AggregateRuntime) (state counts
/// only), rendered for documentation, or inspected for message complexity.
///
/// The `time_scale` records the normalizing constant `p`: one protocol period
/// advances the source differential equations by `p` time units, which is how
/// protocol trajectories are compared against ODE trajectories.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Protocol {
    name: String,
    states: Vec<String>,
    actions: Vec<Vec<Action>>,
    time_scale: f64,
}

impl Protocol {
    /// Creates an empty protocol with the given state names and a time scale
    /// of 1 (one period = one ODE time unit).
    ///
    /// # Errors
    ///
    /// Returns an error if no states are given or names repeat.
    pub fn new(name: impl Into<String>, states: Vec<String>) -> Result<Self> {
        if states.is_empty() {
            return Err(CoreError::InvalidConfig {
                name: "states",
                reason: "a protocol needs at least one state".into(),
            });
        }
        for (i, s) in states.iter().enumerate() {
            if states[..i].contains(s) {
                return Err(CoreError::InvalidConfig {
                    name: "states",
                    reason: format!("state `{s}` declared twice"),
                });
            }
        }
        let n = states.len();
        Ok(Protocol {
            name: name.into(),
            states,
            actions: vec![Vec::new(); n],
            time_scale: 1.0,
        })
    }

    /// The protocol's name (used in reports and rendered output).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// The state names, in order.
    pub fn state_names(&self) -> &[String] {
        &self.states
    }

    /// The name of one state.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn state_name(&self, state: StateId) -> &str {
        &self.states[state.index()]
    }

    /// Looks up a state by name.
    pub fn state(&self, name: &str) -> Option<StateId> {
        self.states.iter().position(|s| s == name).map(StateId)
    }

    /// Looks up a state by name, returning an error if absent.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownState`] if no state has that name.
    pub fn require_state(&self, name: &str) -> Result<StateId> {
        self.state(name)
            .ok_or_else(|| CoreError::UnknownState(name.to_string()))
    }

    /// All state ids in order.
    pub fn state_ids(&self) -> impl Iterator<Item = StateId> {
        (0..self.states.len()).map(StateId)
    }

    /// The actions attached to a state.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn actions(&self, state: StateId) -> &[Action] {
        &self.actions[state.index()]
    }

    /// Attaches an action to a state.
    ///
    /// # Errors
    ///
    /// Returns an error if the state or any state referenced by the action is
    /// out of range, or the action's probability is outside `[0, 1]`.
    pub fn add_action(&mut self, state: StateId, action: Action) -> Result<()> {
        self.check_state(state)?;
        self.check_action(&action)?;
        self.actions[state.index()].push(action);
        Ok(())
    }

    /// The normalizing constant `p`: ODE time advanced per protocol period.
    pub fn time_scale(&self) -> f64 {
        self.time_scale
    }

    /// Sets the time scale (the normalizing constant `p`).
    ///
    /// # Errors
    ///
    /// Returns an error unless `0 < time_scale ≤ 1`.
    pub fn set_time_scale(&mut self, time_scale: f64) -> Result<()> {
        if !(time_scale.is_finite() && time_scale > 0.0 && time_scale <= 1.0) {
            return Err(CoreError::InvalidConfig {
                name: "time_scale",
                reason: format!("the normalizing constant must lie in (0, 1], got {time_scale}"),
            });
        }
        self.time_scale = time_scale;
        Ok(())
    }

    /// Total number of actions across all states.
    pub fn num_actions(&self) -> usize {
        self.actions.iter().map(Vec::len).sum()
    }

    /// Validates every action (state references in range, probabilities in
    /// `[0, 1]`).
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<()> {
        for state in self.state_ids() {
            for action in self.actions(state) {
                self.check_action(action)?;
            }
        }
        Ok(())
    }

    fn check_state(&self, state: StateId) -> Result<()> {
        if state.index() >= self.states.len() {
            return Err(CoreError::UnknownState(format!("{state}")));
        }
        Ok(())
    }

    fn check_action(&self, action: &Action) -> Result<()> {
        let prob = action.prob();
        if !(prob.is_finite() && (0.0..=1.0).contains(&prob)) {
            return Err(CoreError::InvalidProbability {
                context: format!("action `{action}`"),
                value: prob,
            });
        }
        self.check_state(action.destination())?;
        match action {
            Action::Sample { required, .. } => {
                for s in required {
                    self.check_state(*s)?;
                }
            }
            Action::Tokenize {
                required,
                token_state,
                ..
            } => {
                for s in required {
                    self.check_state(*s)?;
                }
                self.check_state(*token_state)?;
            }
            Action::SampleAny { target_state, .. } | Action::PushSample { target_state, .. } => {
                self.check_state(*target_state)?;
            }
            Action::Flip { .. } => {}
        }
        Ok(())
    }

    /// Renders the protocol in a human-readable form similar to the paper's
    /// Figure 3 (one block per state listing its periodic actions).
    pub fn render(&self) -> String {
        let mut out = format!("protocol `{}` (p = {})\n", self.name, self.time_scale);
        for state in self.state_ids() {
            out.push_str(&format!("state {}:\n", self.state_name(state)));
            let actions = self.actions(state);
            if actions.is_empty() {
                out.push_str("  (no actions)\n");
            }
            for a in actions {
                out.push_str(&format!("  - {}\n", a.render(&self.states)));
            }
        }
        out
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_state() -> Protocol {
        Protocol::new("test", vec!["x".into(), "y".into(), "z".into()]).unwrap()
    }

    #[test]
    fn construction_and_lookup() {
        let p = three_state();
        assert_eq!(p.name(), "test");
        assert_eq!(p.num_states(), 3);
        assert_eq!(p.state("y"), Some(StateId::new(1)));
        assert_eq!(p.state("q"), None);
        assert!(p.require_state("q").is_err());
        assert_eq!(p.state_name(StateId::new(2)), "z");
        assert_eq!(p.state_ids().count(), 3);
        assert_eq!(p.num_actions(), 0);
        assert_eq!(p.time_scale(), 1.0);
        assert!(Protocol::new("empty", vec![]).is_err());
        assert!(Protocol::new("dup", vec!["a".into(), "a".into()]).is_err());
    }

    #[test]
    fn add_action_validates_references_and_probabilities() {
        let mut p = three_state();
        let x = p.require_state("x").unwrap();
        let y = p.require_state("y").unwrap();
        p.add_action(x, Action::Flip { prob: 0.5, to: y }).unwrap();
        assert_eq!(p.actions(x).len(), 1);
        assert_eq!(p.num_actions(), 1);
        // Bad probability.
        assert!(p.add_action(x, Action::Flip { prob: 1.5, to: y }).is_err());
        // Bad destination.
        assert!(p
            .add_action(
                x,
                Action::Flip {
                    prob: 0.5,
                    to: StateId::new(9)
                }
            )
            .is_err());
        // Bad required state inside a Sample.
        assert!(p
            .add_action(
                x,
                Action::Sample {
                    required: vec![StateId::new(9)],
                    prob: 0.1,
                    to: y
                }
            )
            .is_err());
        // Bad token state.
        assert!(p
            .add_action(
                x,
                Action::Tokenize {
                    required: vec![y],
                    prob: 0.1,
                    token_state: StateId::new(9),
                    to: y
                }
            )
            .is_err());
        // Bad target state for SampleAny / PushSample.
        assert!(p
            .add_action(
                x,
                Action::SampleAny {
                    target_state: StateId::new(9),
                    samples: 1,
                    prob: 0.1,
                    to: y
                }
            )
            .is_err());
        // Unknown source state.
        assert!(p
            .add_action(StateId::new(9), Action::Flip { prob: 0.5, to: y })
            .is_err());
        assert!(p.validate().is_ok());
    }

    #[test]
    fn time_scale_bounds() {
        let mut p = three_state();
        assert!(p.set_time_scale(0.01).is_ok());
        assert_eq!(p.time_scale(), 0.01);
        assert!(p.set_time_scale(0.0).is_err());
        assert!(p.set_time_scale(1.5).is_err());
        assert!(p.set_time_scale(f64::NAN).is_err());
    }

    #[test]
    fn render_mentions_every_state_and_action() {
        let mut p = three_state();
        let x = p.require_state("x").unwrap();
        let y = p.require_state("y").unwrap();
        p.add_action(
            x,
            Action::SampleAny {
                target_state: y,
                samples: 2,
                prob: 1.0,
                to: y,
            },
        )
        .unwrap();
        let text = p.render();
        assert!(text.contains("state x:"));
        assert!(text.contains("state z:"));
        assert!(text.contains("no actions"));
        assert!(text.contains("2 targets"));
        assert!(!format!("{p}").is_empty());
    }

    #[test]
    fn state_id_conversions() {
        let s: StateId = 3.into();
        assert_eq!(s.index(), 3);
        assert_eq!(s.to_string(), "state#3");
    }
}
