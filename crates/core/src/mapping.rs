//! The ODE→protocol compiler (Sections 3 and 6 of the paper).
//!
//! [`ProtocolCompiler`] turns an [`EquationSystem`] that is *polynomial and
//! completely partitionable* into a [`Protocol`]:
//!
//! * a term `-c·x` in `ẋ` becomes a **Flipping** action on state `x` with coin
//!   probability `p·c`;
//! * a term `-c·x^{i_x}·Π y^{i_y}` with `i_x ≥ 1` becomes a
//!   **One-Time-Sampling** action on state `x` that samples
//!   `i_x − 1 + Σ_{y≠x} i_y` targets and requires them to match the term's
//!   variables (in lexicographic order), plus a coin with probability `p·c`;
//! * a term with `i_x = 0` (allowed only for *polynomial* systems that are not
//!   *restricted* polynomial) becomes a **Tokenizing** action hosted by some
//!   state `w` that does occur in the term: on success the executor hands a
//!   token to a process in state `x`, which then transitions.
//!
//! The destination state of every transition is determined by the term
//! pairing of the *completely partitionable* property: the positive copy of
//! the term lives in the destination variable's equation.
//!
//! The compiler also implements the paper's failure compensation ("The Effect
//! of Failures", Section 3): given a per-contact failure rate `f`, the coin
//! probability of every sampling action is multiplied by
//! `(1/(1−f))^{|T|−1}`, and the normalizing constant `p` is chosen (or
//! validated) so that every probability stays within `[0, 1]`.

use crate::action::Action;
use crate::error::CoreError;
use crate::state_machine::{Protocol, StateId};
use crate::Result;
use odekit::rewrite::expand_constant_terms;
use odekit::system::EquationSystem;
use odekit::taxonomy;

/// Computes the paper's failure-compensation factor `(1/(1−f))^(|T|−1)` for a
/// term with `occurrences` variable occurrences under per-contact failure
/// rate `f`.
///
/// # Errors
///
/// Returns an error unless `0 ≤ f < 1`.
pub fn compensation_factor(f: f64, occurrences: u32) -> Result<f64> {
    if !(f.is_finite() && (0.0..1.0).contains(&f)) {
        return Err(CoreError::InvalidConfig {
            name: "connection_failure_rate",
            reason: format!("failure rate must lie in [0, 1), got {f}"),
        });
    }
    Ok((1.0 / (1.0 - f)).powi(occurrences.saturating_sub(1) as i32))
}

/// Configurable compiler from equation systems to protocols.
///
/// # Examples
///
/// Compile the epidemic equations into the canonical pull protocol:
///
/// ```
/// use dpde_core::ProtocolCompiler;
/// use odekit::EquationSystemBuilder;
///
/// let sys = EquationSystemBuilder::new()
///     .vars(["x", "y"])
///     .term("x", -1.0, &[("x", 1), ("y", 1)])
///     .term("y", 1.0, &[("x", 1), ("y", 1)])
///     .build()?;
/// let protocol = ProtocolCompiler::new("epidemic").compile(&sys)?;
/// assert_eq!(protocol.num_states(), 2);
/// // State x carries one action: sample a member, and if it is infected (y),
/// // become infected.
/// let x = protocol.require_state("x")?;
/// assert_eq!(protocol.actions(x).len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolCompiler {
    name: String,
    normalizing_constant: Option<f64>,
    connection_failure_rate: f64,
    allow_tokenizing: bool,
    auto_expand_constants: bool,
}

impl ProtocolCompiler {
    /// Creates a compiler with default settings: automatic normalizing
    /// constant, no failure compensation, tokenizing enabled, constant terms
    /// auto-expanded.
    pub fn new(name: impl Into<String>) -> Self {
        ProtocolCompiler {
            name: name.into(),
            normalizing_constant: None,
            connection_failure_rate: 0.0,
            allow_tokenizing: true,
            auto_expand_constants: true,
        }
    }

    /// Fixes the normalizing constant `p` instead of letting the compiler pick
    /// the largest feasible value.
    #[must_use]
    pub fn with_normalizing_constant(mut self, p: f64) -> Self {
        self.normalizing_constant = Some(p);
        self
    }

    /// Enables failure compensation for the given group-wide per-contact
    /// failure rate `f` (Section 3, "The Effect of Failures").
    #[must_use]
    pub fn with_failure_compensation(mut self, f: f64) -> Self {
        self.connection_failure_rate = f;
        self
    }

    /// Disables Tokenizing; compilation then requires the system to be
    /// *restricted* polynomial (Theorem 1) and fails otherwise.
    #[must_use]
    pub fn without_tokenizing(mut self) -> Self {
        self.allow_tokenizing = false;
        self
    }

    /// Disables the automatic `±c → ±c·Σv` rewriting of constant terms.
    #[must_use]
    pub fn without_constant_expansion(mut self) -> Self {
        self.auto_expand_constants = false;
        self
    }

    /// Compiles the equation system into a protocol.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotMappable`] if the system is not polynomial /
    /// complete / completely partitionable (or not restricted polynomial when
    /// tokenizing is disabled), and
    /// [`CoreError::NormalizationImpossible`] if no (or the requested)
    /// normalizing constant keeps all probabilities within `[0, 1]`.
    pub fn compile(&self, sys: &EquationSystem) -> Result<Protocol> {
        // Optionally rewrite constant terms so every term contains a variable.
        let has_constant_terms = sys
            .equations()
            .iter()
            .flat_map(|p| p.terms())
            .any(|t| t.is_constant() && !t.is_zero());
        let rewritten;
        let sys = if has_constant_terms && self.auto_expand_constants {
            rewritten = expand_constant_terms(sys)?;
            &rewritten
        } else {
            sys
        };

        let report = taxonomy::classify(sys);
        if !report.polynomial {
            return Err(CoreError::NotMappable {
                requirement: "polynomial",
                detail: "a coefficient is not finite".into(),
            });
        }
        if !report.complete {
            return Err(CoreError::NotMappable {
                requirement: "complete",
                detail: "the right-hand sides do not sum to zero; apply rewrite::complete first"
                    .into(),
            });
        }
        if !report.completely_partitionable {
            return Err(CoreError::NotMappable {
                requirement: "completely partitionable",
                detail: format!(
                    "{} term(s) have no cancelling partner",
                    report.unpaired_terms.len()
                ),
            });
        }
        if !self.allow_tokenizing && !report.restricted_polynomial {
            return Err(CoreError::NotMappable {
                requirement: "restricted polynomial (tokenizing disabled)",
                detail: format!(
                    "{} negative term(s) do not contain their own variable",
                    report.restricted_violations.len()
                ),
            });
        }

        let partition = taxonomy::partition(sys);

        // Lexicographic order of the *other* variables, as the paper's
        // One-Time-Sampling rule requires.
        let mut lex_order: Vec<usize> = (0..sys.dim()).collect();
        lex_order.sort_by(|a, b| sys.var_names()[*a].cmp(&sys.var_names()[*b]));

        // First pass: build action blueprints with their effective rates.
        struct Blueprint {
            host: StateId,
            rate: f64,
            kind: BlueprintKind,
        }
        enum BlueprintKind {
            Flip {
                to: StateId,
            },
            Sample {
                required: Vec<StateId>,
                to: StateId,
            },
            Tokenize {
                required: Vec<StateId>,
                token_state: StateId,
                to: StateId,
            },
        }

        let mut blueprints: Vec<Blueprint> = Vec::new();
        for pair in &partition.pairs {
            let x = pair.negative.var;
            let dest = pair.positive.var;
            if x == dest {
                // A term cancelling within its own equation is a no-op flow.
                continue;
            }
            let term = pair.negative.resolve(sys);
            let c = term.magnitude();
            let occurrences = term.occurrences();
            let comp = compensation_factor(self.connection_failure_rate, occurrences)?;
            let rate = c * comp;
            let i_x = term.exponent(x.index());
            let to = StateId::new(dest.index());

            if i_x >= 1 {
                // Flipping / One-Time-Sampling hosted by state x.
                let mut required: Vec<StateId> = Vec::new();
                for _ in 1..i_x {
                    required.push(StateId::new(x.index()));
                }
                for &v in &lex_order {
                    if v == x.index() {
                        continue;
                    }
                    for _ in 0..term.exponent(v) {
                        required.push(StateId::new(v));
                    }
                }
                let host = StateId::new(x.index());
                let kind = if required.is_empty() {
                    BlueprintKind::Flip { to }
                } else {
                    BlueprintKind::Sample { required, to }
                };
                blueprints.push(Blueprint { host, rate, kind });
            } else {
                // Tokenizing: hosted by the lexicographically smallest variable
                // occurring in the term.
                let w = lex_order
                    .iter()
                    .copied()
                    .find(|&v| term.exponent(v) >= 1)
                    .ok_or_else(|| CoreError::NotMappable {
                        requirement: "free of constant terms",
                        detail: format!(
                            "term `{term}` in `{}'` has no variables; enable constant expansion",
                            sys.var_name(x)
                        ),
                    })?;
                let mut required: Vec<StateId> = Vec::new();
                for _ in 1..term.exponent(w) {
                    required.push(StateId::new(w));
                }
                for &v in &lex_order {
                    if v == w {
                        continue;
                    }
                    for _ in 0..term.exponent(v) {
                        required.push(StateId::new(v));
                    }
                }
                blueprints.push(Blueprint {
                    host: StateId::new(w),
                    rate,
                    kind: BlueprintKind::Tokenize {
                        required,
                        token_state: StateId::new(x.index()),
                        to,
                    },
                });
            }
        }

        // Choose (or validate) the normalizing constant.
        let max_rate = blueprints.iter().map(|b| b.rate).fold(0.0_f64, f64::max);
        let p = match self.normalizing_constant {
            Some(p) => {
                if !(p.is_finite() && p > 0.0 && p <= 1.0) || p * max_rate > 1.0 + 1e-12 {
                    return Err(CoreError::NormalizationImpossible {
                        max_rate,
                        requested_p: Some(p),
                    });
                }
                p
            }
            None => {
                if max_rate <= 1.0 {
                    1.0
                } else {
                    1.0 / max_rate
                }
            }
        };

        // Assemble the protocol.
        let mut protocol = Protocol::new(self.name.clone(), sys.var_names().to_vec())?;
        protocol.set_time_scale(p)?;
        for b in blueprints {
            let prob = (p * b.rate).min(1.0);
            let action = match b.kind {
                BlueprintKind::Flip { to } => Action::Flip { prob, to },
                BlueprintKind::Sample { required, to } => Action::Sample { required, prob, to },
                BlueprintKind::Tokenize {
                    required,
                    token_state,
                    to,
                } => Action::Tokenize {
                    required,
                    prob,
                    token_state,
                    to,
                },
            };
            protocol.add_action(b.host, action)?;
        }
        Ok(protocol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odekit::system::EquationSystemBuilder;

    fn epidemic() -> EquationSystem {
        EquationSystemBuilder::new()
            .vars(["x", "y"])
            .term("x", -1.0, &[("x", 1), ("y", 1)])
            .term("y", 1.0, &[("x", 1), ("y", 1)])
            .build()
            .unwrap()
    }

    fn endemic(beta: f64, gamma: f64, alpha: f64) -> EquationSystem {
        EquationSystemBuilder::new()
            .vars(["x", "y", "z"])
            .term("x", -beta, &[("x", 1), ("y", 1)])
            .term("x", alpha, &[("z", 1)])
            .term("y", beta, &[("x", 1), ("y", 1)])
            .term("y", -gamma, &[("y", 1)])
            .term("z", gamma, &[("y", 1)])
            .term("z", -alpha, &[("z", 1)])
            .build()
            .unwrap()
    }

    #[test]
    fn compensation_factor_formula() {
        assert_eq!(compensation_factor(0.0, 3).unwrap(), 1.0);
        assert!((compensation_factor(0.5, 2).unwrap() - 2.0).abs() < 1e-12);
        assert!((compensation_factor(0.5, 3).unwrap() - 4.0).abs() < 1e-12);
        // |T| = 1 (pure flip): no compensation needed.
        assert_eq!(compensation_factor(0.9, 1).unwrap(), 1.0);
        assert!(compensation_factor(1.0, 2).is_err());
        assert!(compensation_factor(-0.1, 2).is_err());
    }

    #[test]
    fn epidemic_compiles_to_canonical_pull_protocol() {
        let protocol = ProtocolCompiler::new("epidemic")
            .compile(&epidemic())
            .unwrap();
        assert_eq!(protocol.num_states(), 2);
        assert_eq!(protocol.time_scale(), 1.0);
        let x = protocol.require_state("x").unwrap();
        let y = protocol.require_state("y").unwrap();
        // Susceptible samples one member; if infected, becomes infected.
        assert_eq!(protocol.actions(x).len(), 1);
        match &protocol.actions(x)[0] {
            Action::Sample { required, prob, to } => {
                assert_eq!(required, &vec![y]);
                assert_eq!(*prob, 1.0);
                assert_eq!(*to, y);
            }
            other => panic!("expected Sample, got {other:?}"),
        }
        // Infected processes have no actions.
        assert!(protocol.actions(y).is_empty());
        assert!(protocol.validate().is_ok());
    }

    #[test]
    fn endemic_compiles_with_three_actions_and_auto_p() {
        let protocol = ProtocolCompiler::new("endemic")
            .compile(&endemic(4.0, 1.0, 0.01))
            .unwrap();
        let x = protocol.require_state("x").unwrap();
        let y = protocol.require_state("y").unwrap();
        let z = protocol.require_state("z").unwrap();
        // β = 4 > 1 forces p = 1/4.
        assert!((protocol.time_scale() - 0.25).abs() < 1e-12);
        // x: sample a y, coin p·β = 1.0 → become y.
        assert_eq!(protocol.actions(x).len(), 1);
        match &protocol.actions(x)[0] {
            Action::Sample { required, prob, to } => {
                assert_eq!(required, &vec![y]);
                assert!((prob - 1.0).abs() < 1e-12);
                assert_eq!(*to, y);
            }
            other => panic!("expected Sample, got {other:?}"),
        }
        // y: flip with prob p·γ = 0.25 → z.
        match &protocol.actions(y)[0] {
            Action::Flip { prob, to } => {
                assert!((prob - 0.25).abs() < 1e-12);
                assert_eq!(*to, z);
            }
            other => panic!("expected Flip, got {other:?}"),
        }
        // z: flip with prob p·α = 0.0025 → x.
        match &protocol.actions(z)[0] {
            Action::Flip { prob, to } => {
                assert!((prob - 0.0025).abs() < 1e-12);
                assert_eq!(*to, x);
            }
            other => panic!("expected Flip, got {other:?}"),
        }
    }

    #[test]
    fn explicit_normalizing_constant_is_respected_or_rejected() {
        let sys = endemic(4.0, 1.0, 0.01);
        let protocol = ProtocolCompiler::new("endemic")
            .with_normalizing_constant(0.1)
            .compile(&sys)
            .unwrap();
        assert_eq!(protocol.time_scale(), 0.1);
        let x = protocol.require_state("x").unwrap();
        assert!((protocol.actions(x)[0].prob() - 0.4).abs() < 1e-12);
        // p too large: 0.5 * 4.0 = 2 > 1.
        let err = ProtocolCompiler::new("endemic")
            .with_normalizing_constant(0.5)
            .compile(&sys)
            .unwrap_err();
        assert!(matches!(err, CoreError::NormalizationImpossible { .. }));
        // Invalid p.
        assert!(ProtocolCompiler::new("endemic")
            .with_normalizing_constant(0.0)
            .compile(&sys)
            .is_err());
    }

    #[test]
    fn failure_compensation_scales_sampling_probabilities() {
        // With f = 0.5, the βxy sampling term (|T| = 2) gets a 2x factor; the
        // flips (|T| = 1) are unchanged.
        let sys = endemic(0.4, 0.1, 0.01);
        let plain = ProtocolCompiler::new("endemic").compile(&sys).unwrap();
        let comp = ProtocolCompiler::new("endemic")
            .with_failure_compensation(0.5)
            .compile(&sys)
            .unwrap();
        let x = plain.require_state("x").unwrap();
        let y = plain.require_state("y").unwrap();
        assert!((plain.actions(x)[0].prob() - 0.4).abs() < 1e-12);
        assert!((comp.actions(x)[0].prob() - 0.8).abs() < 1e-12);
        assert!((plain.actions(y)[0].prob() - comp.actions(y)[0].prob()).abs() < 1e-12);
    }

    #[test]
    fn lv_rewritten_system_compiles_with_four_transitions() {
        let sys = EquationSystemBuilder::new()
            .vars(["x", "y", "z"])
            .term("x", 3.0, &[("x", 1), ("z", 1)])
            .term("x", -3.0, &[("x", 1), ("y", 1)])
            .term("y", 3.0, &[("y", 1), ("z", 1)])
            .term("y", -3.0, &[("x", 1), ("y", 1)])
            .term("z", -3.0, &[("x", 1), ("z", 1)])
            .term("z", -3.0, &[("y", 1), ("z", 1)])
            .term("z", 3.0, &[("x", 1), ("y", 1)])
            .term("z", 3.0, &[("x", 1), ("y", 1)])
            .build()
            .unwrap();
        let protocol = ProtocolCompiler::new("lv")
            .with_normalizing_constant(0.01)
            .compile(&sys)
            .unwrap();
        // Figure 3: x has one action (to z), y has one action (to z), z has two
        // actions (to x and to y)... in the rewritten equations the -3xy terms
        // sit in x' and y' (flowing to z), and the -3xz / -3yz terms sit in z'
        // (flowing to x and y).
        let x = protocol.require_state("x").unwrap();
        let y = protocol.require_state("y").unwrap();
        let z = protocol.require_state("z").unwrap();
        assert_eq!(protocol.actions(x).len(), 1);
        assert_eq!(protocol.actions(y).len(), 1);
        assert_eq!(protocol.actions(z).len(), 2);
        assert_eq!(protocol.num_actions(), 4);
        // All coin probabilities are 3p = 0.03, matching Figure 3's "3*p".
        for s in protocol.state_ids() {
            for a in protocol.actions(s) {
                assert!((a.prob() - 0.03).abs() < 1e-12);
            }
        }
        // Destinations: x -> z requires sampling a y; z -> x requires sampling an x.
        assert_eq!(protocol.actions(x)[0].destination(), z);
        assert_eq!(protocol.actions(z)[0].destination(), x);
        assert_eq!(protocol.actions(z)[1].destination(), y);
    }

    #[test]
    fn incomplete_system_is_rejected() {
        let sys = EquationSystemBuilder::new()
            .vars(["x", "y"])
            .term("x", -1.0, &[("x", 1)])
            .term("y", 0.5, &[("x", 1)])
            .build()
            .unwrap();
        let err = ProtocolCompiler::new("bad").compile(&sys).unwrap_err();
        assert!(matches!(
            err,
            CoreError::NotMappable {
                requirement: "complete",
                ..
            }
        ));
    }

    #[test]
    fn unpartitionable_system_is_rejected() {
        // Complete (sums to zero) but the terms do not pair: -2x in x' vs +x, +x in y'...
        // Actually +x and +x each cancel -2x only partially → not partitionable.
        let sys = EquationSystemBuilder::new()
            .vars(["x", "y"])
            .term("x", -2.0, &[("x", 1)])
            .term("y", 1.0, &[("x", 1)])
            .term("y", 1.0, &[("x", 1)])
            .build()
            .unwrap();
        let err = ProtocolCompiler::new("bad").compile(&sys).unwrap_err();
        assert!(matches!(
            err,
            CoreError::NotMappable {
                requirement: "completely partitionable",
                ..
            }
        ));
    }

    #[test]
    fn tokenizing_emitted_for_non_restricted_systems() {
        // x' = -y (x loses mass through a term without x), y' = +y ... complete.
        let sys = EquationSystemBuilder::new()
            .vars(["x", "y"])
            .term("x", -0.5, &[("y", 1)])
            .term("y", 0.5, &[("y", 1)])
            .build()
            .unwrap();
        let protocol = ProtocolCompiler::new("token").compile(&sys).unwrap();
        let x = protocol.require_state("x").unwrap();
        let y = protocol.require_state("y").unwrap();
        // The action is hosted by y (the variable occurring in the term), and
        // tokens move processes from x to y.
        assert!(protocol.actions(x).is_empty());
        assert_eq!(protocol.actions(y).len(), 1);
        match &protocol.actions(y)[0] {
            Action::Tokenize {
                required,
                prob,
                token_state,
                to,
            } => {
                assert!(required.is_empty());
                assert!((prob - 0.5).abs() < 1e-12);
                assert_eq!(*token_state, x);
                assert_eq!(*to, y);
            }
            other => panic!("expected Tokenize, got {other:?}"),
        }
        // With tokenizing disabled the same system is rejected.
        let err = ProtocolCompiler::new("token")
            .without_tokenizing()
            .compile(&sys)
            .unwrap_err();
        assert!(matches!(err, CoreError::NotMappable { .. }));
    }

    #[test]
    fn constant_terms_are_expanded_automatically() {
        let sys = EquationSystemBuilder::new()
            .vars(["x", "y"])
            .constant("x", -0.5)
            .constant("y", 0.5)
            .build()
            .unwrap();
        let protocol = ProtocolCompiler::new("const").compile(&sys).unwrap();
        // -0.5 in x' expands to -0.5x - 0.5y; the -0.5x part is a Flip on x,
        // the -0.5y part becomes a Tokenize hosted by y.
        assert!(protocol.num_actions() >= 2);
        assert!(protocol.validate().is_ok());
        // Without expansion the constant term cannot be mapped.
        let err = ProtocolCompiler::new("const")
            .without_constant_expansion()
            .compile(&sys)
            .unwrap_err();
        assert!(matches!(err, CoreError::NotMappable { .. }));
    }

    #[test]
    fn higher_power_terms_require_multiple_self_samples() {
        // x' = -x²·y + ... : i_x = 2 → one self-sample plus one y-sample.
        let sys = EquationSystemBuilder::new()
            .vars(["x", "y"])
            .term("x", -1.0, &[("x", 2), ("y", 1)])
            .term("y", 1.0, &[("x", 2), ("y", 1)])
            .build()
            .unwrap();
        let protocol = ProtocolCompiler::new("cubic").compile(&sys).unwrap();
        let x = protocol.require_state("x").unwrap();
        let y = protocol.require_state("y").unwrap();
        match &protocol.actions(x)[0] {
            Action::Sample { required, .. } => {
                assert_eq!(required, &vec![x, y]);
            }
            other => panic!("expected Sample, got {other:?}"),
        }
    }
}
