//! # dpde-core — distributed protocols from differential equations
//!
//! This crate implements the central contribution of *"On the Design of
//! Distributed Protocols from Differential Equations"* (Gupta, PODC 2004): a
//! compiler that translates a system of polynomial differential equations
//! into a practical distributed protocol, together with runtimes that execute
//! the synthesized protocol in simulation and tooling that verifies the
//! protocol's behaviour against its source equations.
//!
//! * [`ProtocolCompiler`] ([`mapping`]) — the translation itself: *Flipping*,
//!   *One-Time-Sampling* and *Tokenizing* actions, destination states derived
//!   from the term pairing of completely partitionable systems, normalizing
//!   constant selection and failure compensation.
//! * [`Protocol`] / [`Action`] ([`state_machine`], [`action`]) — the compiled
//!   probabilistic state machine, as pure data.
//! * [`runtime`] — the [`Runtime`] trait with four fidelities (the
//!   per-process [`AgentRuntime`](runtime::AgentRuntime), the count-batched
//!   [`BatchedRuntime`](runtime::BatchedRuntime), the boundary-crossing
//!   [`HybridRuntime`](runtime::HybridRuntime) and the mean-field
//!   [`AggregateRuntime`](runtime::AggregateRuntime)), composable
//!   [`Observer`]s for opt-in recording, the [`Simulation`] builder and the
//!   parallel [`Ensemble`] driver.
//! * [`equivalence`] — quantitative comparison of protocol trajectories
//!   against integrations of the source equations (Theorem 1, measured).
//! * [`complexity`] — the paper's message-complexity accounting.
//!
//! # Example: from equations to a running protocol
//!
//! ```
//! use dpde_core::{ProtocolCompiler, runtime::{AggregateRuntime, InitialStates}};
//! use dpde_core::equivalence::compare_to_system;
//! use odekit::parse::parse_system;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The epidemic equations of the paper's motivating example.
//! let sys = parse_system("x' = -x*y\ny' = x*y", &[])?;
//!
//! // Compile them into a protocol (p = 0.2 keeps the per-period coin
//! // probabilities small) and run it on 10 000 simulated processes.
//! let protocol = ProtocolCompiler::new("epidemic")
//!     .with_normalizing_constant(0.2)
//!     .compile(&sys)?;
//! let result = AggregateRuntime::new(protocol)
//!     .run(10_000, 125, &InitialStates::counts(&[9_990, 10]), 1)?;
//! // (`Simulation::of(protocol)…run::<AggregateRuntime>()` is the composable
//! // form of the same run — see the `runtime` module.)
//!
//! // The run tracks the differential equations (Theorem 1).
//! let report = compare_to_system(&result.as_ode_trajectory(10_000.0), &sys, 0.01)?;
//! assert!(report.max_abs_error < 0.2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod action;
pub mod complexity;
pub mod equivalence;
pub mod error;
pub mod mapping;
pub mod mean_field;
pub mod runtime;
pub mod state_machine;

pub use action::Action;
pub use complexity::MessageComplexity;
pub use equivalence::{compare_to_system, compare_trajectories, EquivalenceReport};
pub use error::CoreError;
pub use mapping::{compensation_factor, ProtocolCompiler};
pub use mean_field::mean_field_equations;
pub use runtime::{Ensemble, EnsembleResult, Observer, Runtime, Simulation};
pub use state_machine::{Protocol, StateId};

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CoreError>;
