//! Error types for the `dpde-core` crate.

use std::fmt;

/// The error type returned by fallible `dpde-core` operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// The source equation system is not in a class the compiler can map.
    NotMappable {
        /// Which requirement failed (e.g. "completely partitionable").
        requirement: &'static str,
        /// Human-readable details.
        detail: String,
    },
    /// The chosen or required normalizing constant cannot keep every coin
    /// probability within `[0, 1]`.
    NormalizationImpossible {
        /// The largest effective rate constant encountered.
        max_rate: f64,
        /// The normalizing constant that was requested (if any).
        requested_p: Option<f64>,
    },
    /// A state name or id was not part of the protocol.
    UnknownState(String),
    /// A probability ended up outside `[0, 1]`.
    InvalidProbability {
        /// Description of where the probability came from.
        context: String,
        /// The offending value.
        value: f64,
    },
    /// A configuration parameter was invalid.
    InvalidConfig {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// Every run of one ensemble scenario panicked. Partially failed
    /// ensembles succeed instead and list the panicked seeds in
    /// [`EnsembleResult::failures`](crate::runtime::EnsembleResult::failures).
    EnsemblePanicked {
        /// Index of the scenario within the sweep.
        scenario: usize,
        /// Panic message of the first failed seed.
        first_message: String,
    },
    /// An error bubbled up from the ODE layer.
    Ode(odekit::OdeError),
    /// An error bubbled up from the simulator layer.
    Sim(netsim::SimError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::NotMappable { requirement, detail } => {
                write!(f, "equation system cannot be mapped: not {requirement} ({detail})")
            }
            CoreError::NormalizationImpossible { max_rate, requested_p } => match requested_p {
                Some(p) => write!(
                    f,
                    "normalizing constant p = {p} makes some coin probability exceed 1 (largest rate {max_rate})"
                ),
                None => write!(f, "no normalizing constant keeps probabilities below 1 (largest rate {max_rate})"),
            },
            CoreError::UnknownState(name) => write!(f, "unknown protocol state `{name}`"),
            CoreError::InvalidProbability { context, value } => {
                write!(f, "probability for {context} must lie in [0, 1], got {value}")
            }
            CoreError::InvalidConfig { name, reason } => {
                write!(f, "invalid configuration `{name}`: {reason}")
            }
            CoreError::EnsemblePanicked {
                scenario,
                first_message,
            } => {
                write!(
                    f,
                    "every run of ensemble scenario {scenario} panicked (first: {first_message})"
                )
            }
            CoreError::Ode(e) => write!(f, "ode error: {e}"),
            CoreError::Sim(e) => write!(f, "simulation error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Ode(e) => Some(e),
            CoreError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<odekit::OdeError> for CoreError {
    fn from(e: odekit::OdeError) -> Self {
        CoreError::Ode(e)
    }
}

impl From<netsim::SimError> for CoreError {
    fn from(e: netsim::SimError) -> Self {
        CoreError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = CoreError::NotMappable {
            requirement: "complete",
            detail: "sum is x".into(),
        };
        assert!(e.to_string().contains("complete"));
        let e = CoreError::NormalizationImpossible {
            max_rate: 7.0,
            requested_p: Some(0.5),
        };
        assert!(e.to_string().contains("0.5"));
        let e = CoreError::NormalizationImpossible {
            max_rate: 7.0,
            requested_p: None,
        };
        assert!(e.to_string().contains('7'));
        assert!(CoreError::UnknownState("q".into())
            .to_string()
            .contains('q'));
        let e: CoreError = odekit::OdeError::EmptySystem.into();
        assert!(e.source().is_some());
        let e: CoreError = netsim::SimError::UnknownSeries("s".into()).into();
        assert!(e.source().is_some());
        assert!(CoreError::InvalidProbability {
            context: "flip".into(),
            value: 2.0
        }
        .source()
        .is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
