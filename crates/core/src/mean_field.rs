//! The reverse mapping: derive the mean-field differential equations of a
//! protocol state machine.
//!
//! The paper's framework goes from equations to protocols; this module goes
//! back. Given any [`Protocol`] — compiled or hand-built — it constructs the
//! system of ODEs that describes the expected evolution of the state
//! *fractions* in an infinite group, with one protocol period corresponding
//! to `time_scale()` ODE time units:
//!
//! * `Flip { prob, to }` on state `s` contributes `−(prob/p)·s` to `ṡ` and the
//!   opposite term to the destination;
//! * `Sample { required, prob, to }` contributes
//!   `−(prob/p)·s·Π required` (the law of mass action);
//! * `SampleAny { target, b, prob, to }` contributes the exact polynomial
//!   expansion of `prob·s·(1 − (1 − target)^b)`;
//! * `PushSample { target, b, prob, to }` moves `(b·prob/p)·s·target` worth of
//!   *target* processes per time unit;
//! * `Tokenize { required, prob, token_state, to }` moves
//!   `(prob/p)·s·Π required` worth of *token_state* processes per time unit
//!   (ignoring token drops — the infinite-group idealization of Section 6).
//!
//! For protocols produced by [`ProtocolCompiler`](crate::ProtocolCompiler)
//! from a completely partitionable system, the derived equations reproduce
//! the source system exactly (see the round-trip tests), which provides an
//! independent check of Theorem 1. For hand-built variants (e.g. the endemic
//! Figure 1 protocol) it yields the equations the variant *actually* models,
//! making approximations such as `1 − (1 − y)^b ≈ b·y` explicit.

use crate::action::Action;
use crate::error::CoreError;
use crate::state_machine::{Protocol, StateId};
use crate::Result;
use odekit::{EquationSystem, Polynomial, Term};

/// Derives the mean-field equation system of a protocol (over state
/// fractions, in ODE time).
///
/// # Errors
///
/// Returns an error if the protocol fails validation.
pub fn mean_field_equations(protocol: &Protocol) -> Result<EquationSystem> {
    protocol.validate()?;
    let dim = protocol.num_states();
    let p = protocol.time_scale();
    let mut equations = vec![Polynomial::zero(); dim];

    for state in protocol.state_ids() {
        for action in protocol.actions(state) {
            apply_action(&mut equations, dim, state, action, p);
        }
    }

    EquationSystem::new(protocol.state_names().to_vec(), equations).map_err(CoreError::from)
}

fn apply_action(equations: &mut [Polynomial], dim: usize, host: StateId, action: &Action, p: f64) {
    match action {
        Action::Flip { prob, to } => {
            let rate = prob / p;
            let term = Term::linear(rate, host.index(), dim);
            move_mass(equations, host.index(), to.index(), &term);
        }
        Action::Sample { required, prob, to } => {
            let rate = prob / p;
            let term = Term::new(rate, monomial_with(dim, host, required));
            move_mass(equations, host.index(), to.index(), &term);
        }
        Action::SampleAny {
            target_state,
            samples,
            prob,
            to,
        } => {
            // prob · s · (1 − (1 − t)^b) expanded binomially:
            // Σ_{k=1..b} C(b,k)·(−1)^{k+1}·prob·s·t^k
            let rate = prob / p;
            for k in 1..=*samples {
                let coeff = rate * binomial_coefficient(*samples, k) * sign(k + 1);
                let mut exps = vec![0u32; dim];
                exps[host.index()] += 1;
                exps[target_state.index()] += k;
                let term = Term::new(coeff, exps);
                move_mass(equations, host.index(), to.index(), &term);
            }
        }
        Action::PushSample {
            target_state,
            samples,
            prob,
            to,
        } => {
            // Each of the b samples converts a member of `target_state` with
            // probability prob·target, so target-state mass flows at rate
            // b·prob·s·t.
            let rate = f64::from(*samples) * prob / p;
            let mut exps = vec![0u32; dim];
            exps[host.index()] += 1;
            exps[target_state.index()] += 1;
            let term = Term::new(rate, exps);
            move_mass(equations, target_state.index(), to.index(), &term);
        }
        Action::Tokenize {
            required,
            prob,
            token_state,
            to,
        } => {
            let rate = prob / p;
            let term = Term::new(rate, monomial_with(dim, host, required));
            move_mass(equations, token_state.index(), to.index(), &term);
        }
    }
}

/// Builds the exponent vector of `host · Π required`.
fn monomial_with(dim: usize, host: StateId, required: &[StateId]) -> Vec<u32> {
    let mut exps = vec![0u32; dim];
    exps[host.index()] += 1;
    for r in required {
        exps[r.index()] += 1;
    }
    exps
}

/// Adds `−term` to the source equation and `+term` to the destination
/// equation (no-op if they coincide).
fn move_mass(equations: &mut [Polynomial], from: usize, to: usize, term: &Term) {
    if from == to || term.is_zero() {
        return;
    }
    equations[from].push(term.negated());
    equations[to].push(term.clone());
}

fn binomial_coefficient(n: u32, k: u32) -> f64 {
    let k = k.min(n - k);
    let mut result = 1.0;
    for i in 0..k {
        result *= f64::from(n - i) / f64::from(i + 1);
    }
    result
}

fn sign(k: u32) -> f64 {
    if k % 2 == 0 {
        1.0
    } else {
        -1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::ProtocolCompiler;
    use odekit::system::EquationSystemBuilder;
    use odekit::taxonomy;

    /// Maximum absolute difference between two systems' right-hand sides over
    /// a few probe points on the simplex.
    fn rhs_distance(a: &EquationSystem, b: &EquationSystem, probes: &[Vec<f64>]) -> f64 {
        let mut worst = 0.0_f64;
        for probe in probes {
            let ra = a.eval_rhs(probe);
            let rb = b.eval_rhs(probe);
            for (x, y) in ra.iter().zip(&rb) {
                worst = worst.max((x - y).abs());
            }
        }
        worst
    }

    fn probes2() -> Vec<Vec<f64>> {
        vec![vec![0.9, 0.1], vec![0.5, 0.5], vec![0.2, 0.8]]
    }

    fn probes3() -> Vec<Vec<f64>> {
        vec![
            vec![0.5, 0.2, 0.3],
            vec![0.1, 0.05, 0.85],
            vec![0.33, 0.33, 0.34],
        ]
    }

    #[test]
    fn epidemic_round_trip_is_exact() {
        let sys = EquationSystemBuilder::new()
            .vars(["x", "y"])
            .term("x", -1.0, &[("x", 1), ("y", 1)])
            .term("y", 1.0, &[("x", 1), ("y", 1)])
            .build()
            .unwrap();
        let protocol = ProtocolCompiler::new("epidemic").compile(&sys).unwrap();
        let derived = mean_field_equations(&protocol).unwrap();
        assert!(rhs_distance(&sys, &derived, &probes2()) < 1e-12);
        assert!(taxonomy::is_completely_partitionable(&derived));
    }

    #[test]
    fn endemic_round_trip_is_exact_for_any_normalizing_constant() {
        let sys = EquationSystemBuilder::new()
            .vars(["x", "y", "z"])
            .term("x", -4.0, &[("x", 1), ("y", 1)])
            .term("x", 0.01, &[("z", 1)])
            .term("y", 4.0, &[("x", 1), ("y", 1)])
            .term("y", -1.0, &[("y", 1)])
            .term("z", 1.0, &[("y", 1)])
            .term("z", -0.01, &[("z", 1)])
            .build()
            .unwrap();
        for p in [None, Some(0.1), Some(0.01)] {
            let mut compiler = ProtocolCompiler::new("endemic");
            if let Some(p) = p {
                compiler = compiler.with_normalizing_constant(p);
            }
            let protocol = compiler.compile(&sys).unwrap();
            let derived = mean_field_equations(&protocol).unwrap();
            assert!(
                rhs_distance(&sys, &derived, &probes3()) < 1e-9,
                "round trip failed for p = {p:?}"
            );
        }
    }

    #[test]
    fn tokenizing_round_trip_is_exact() {
        let sys = EquationSystemBuilder::new()
            .vars(["x", "y", "z"])
            .term("x", 0.5, &[("x", 1), ("y", 1)])
            .term("z", -0.5, &[("x", 1), ("y", 1)])
            .build()
            .unwrap();
        let protocol = ProtocolCompiler::new("token").compile(&sys).unwrap();
        let derived = mean_field_equations(&protocol).unwrap();
        assert!(rhs_distance(&sys, &derived, &probes3()) < 1e-12);
    }

    #[test]
    fn figure1_endemic_mean_field_matches_beta_for_small_y() {
        // The Figure 1 variant (SampleAny with b contacts + PushSample) models
        // β = 2b only to first order in y; the derived mean field makes the
        // exact polynomial explicit.
        use self::dpde_protocols_free::figure1_like_protocol;
        let protocol = figure1_like_protocol();
        let derived = mean_field_equations(&protocol).unwrap();
        // ẏ at (x, y, z): 2b·x·y − b·x·y² (from the SampleAny expansion with
        // b = 2) minus γ·y... here b = 2, γ = 0.1.
        let probe = [0.8, 0.01, 0.19];
        let rhs = derived.eval_rhs(&probe);
        let beta_eff = 4.0; // 2b
        let expected_y =
            beta_eff * probe[0] * probe[1] - 1.0 * probe[0] * probe[1] * probe[1] - 0.1 * probe[1];
        assert!(
            (rhs[1] - expected_y).abs() < 1e-9,
            "got {}, expected {expected_y}",
            rhs[1]
        );
        // Mass conservation holds exactly.
        let total: f64 = rhs.iter().sum();
        assert!(total.abs() < 1e-12);
    }

    /// Helper module building a Figure-1-like protocol without depending on
    /// the protocols crate (which would be a dependency cycle).
    mod dpde_protocols_free {
        use crate::action::Action;
        use crate::state_machine::Protocol;

        pub fn figure1_like_protocol() -> Protocol {
            let mut protocol = Protocol::new(
                "endemic-figure1",
                vec!["receptive".into(), "stash".into(), "averse".into()],
            )
            .unwrap();
            let receptive = protocol.require_state("receptive").unwrap();
            let stash = protocol.require_state("stash").unwrap();
            let averse = protocol.require_state("averse").unwrap();
            protocol
                .add_action(
                    stash,
                    Action::Flip {
                        prob: 0.1,
                        to: averse,
                    },
                )
                .unwrap();
            protocol
                .add_action(
                    averse,
                    Action::Flip {
                        prob: 0.01,
                        to: receptive,
                    },
                )
                .unwrap();
            protocol
                .add_action(
                    receptive,
                    Action::SampleAny {
                        target_state: stash,
                        samples: 2,
                        prob: 1.0,
                        to: stash,
                    },
                )
                .unwrap();
            protocol
                .add_action(
                    stash,
                    Action::PushSample {
                        target_state: receptive,
                        samples: 2,
                        prob: 1.0,
                        to: stash,
                    },
                )
                .unwrap();
            protocol
        }
    }

    #[test]
    fn binomial_coefficients_and_signs() {
        assert_eq!(binomial_coefficient(4, 0), 1.0);
        assert_eq!(binomial_coefficient(4, 1), 4.0);
        assert_eq!(binomial_coefficient(4, 2), 6.0);
        assert_eq!(binomial_coefficient(5, 5), 1.0);
        assert_eq!(sign(2), 1.0);
        assert_eq!(sign(3), -1.0);
    }

    #[test]
    fn derived_equations_are_always_complete() {
        // Whatever the protocol, mass conservation means the derived system is
        // complete.
        let protocol = dpde_protocols_free::figure1_like_protocol();
        let derived = mean_field_equations(&protocol).unwrap();
        assert!(taxonomy::is_complete(&derived));
    }
}
