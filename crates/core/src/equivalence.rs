//! Equivalence checking: does the protocol behave like its source equations?
//!
//! Theorem 1 of the paper states that the compiled protocol has "equivalent
//! behavior in infinite sized groups" to the source equation system. In a
//! finite group the protocol trajectory is a stochastic perturbation of the
//! ODE trajectory; this module quantifies the gap so tests (and the
//! experiment harness) can assert that it is small and shrinks with group
//! size.

use crate::error::CoreError;
use crate::Result;
use odekit::integrate::{Integrator, Rk4, Trajectory};
use odekit::system::EquationSystem;

/// The deviation between a protocol run and its source ODE.
#[derive(Debug, Clone, PartialEq)]
pub struct EquivalenceReport {
    /// Largest absolute deviation over all times and state components
    /// (fractions, so values are in `[0, 1]`).
    pub max_abs_error: f64,
    /// Mean absolute deviation over all compared samples.
    pub mean_abs_error: f64,
    /// Per-state maximum absolute deviation.
    pub per_state_max: Vec<f64>,
    /// Number of `(time, state)` samples compared.
    pub samples: usize,
}

impl EquivalenceReport {
    /// `true` if the maximum deviation is below `tol`.
    pub fn within(&self, tol: f64) -> bool {
        self.max_abs_error <= tol
    }
}

/// Compares a protocol trajectory (already expressed in fractions and ODE
/// time, e.g. from
/// [`RunResult::as_ode_trajectory`](crate::runtime::RunResult::as_ode_trajectory))
/// against the given trajectory of the source system, interpolating the
/// reference at the protocol's sample times.
///
/// # Errors
///
/// Returns an error if the trajectories have different dimensions or do not
/// overlap in time.
pub fn compare_trajectories(
    protocol: &Trajectory,
    reference: &Trajectory,
) -> Result<EquivalenceReport> {
    if protocol.is_empty() || reference.is_empty() {
        return Err(CoreError::InvalidConfig {
            name: "trajectory",
            reason: "cannot compare empty trajectories".into(),
        });
    }
    if protocol.dim() != reference.dim() {
        return Err(CoreError::InvalidConfig {
            name: "trajectory",
            reason: format!(
                "dimension mismatch: protocol has {}, reference has {}",
                protocol.dim(),
                reference.dim()
            ),
        });
    }
    let dim = protocol.dim();
    let mut max_abs = 0.0_f64;
    let mut sum_abs = 0.0_f64;
    let mut per_state = vec![0.0_f64; dim];
    let mut samples = 0usize;
    for (t, state) in protocol.iter() {
        let Some(reference_state) = reference.state_at(t) else {
            continue;
        };
        for (i, (p, r)) in state.iter().zip(&reference_state).enumerate() {
            let err = (p - r).abs();
            max_abs = max_abs.max(err);
            per_state[i] = per_state[i].max(err);
            sum_abs += err;
            samples += 1;
        }
    }
    if samples == 0 {
        return Err(CoreError::InvalidConfig {
            name: "trajectory",
            reason: "the trajectories do not overlap in time".into(),
        });
    }
    Ok(EquivalenceReport {
        max_abs_error: max_abs,
        mean_abs_error: sum_abs / samples as f64,
        per_state_max: per_state,
        samples,
    })
}

/// Integrates `sys` (over fractions) with RK4 and compares the given protocol
/// trajectory against it. The protocol trajectory must already be expressed
/// in fractions and ODE time.
///
/// # Errors
///
/// Propagates integration and comparison errors.
pub fn compare_to_system(
    protocol: &Trajectory,
    sys: &EquationSystem,
    step: f64,
) -> Result<EquivalenceReport> {
    if protocol.is_empty() {
        return Err(CoreError::InvalidConfig {
            name: "trajectory",
            reason: "protocol trajectory is empty".into(),
        });
    }
    let y0 = protocol.states()[0].clone();
    let t0 = protocol.times()[0];
    let t_end = protocol.last_time();
    let reference = Rk4::new(step).integrate(sys, t0, &y0, t_end)?;
    compare_trajectories(protocol, &reference)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::ProtocolCompiler;
    use crate::runtime::{AggregateRuntime, InitialStates};
    use odekit::system::EquationSystemBuilder;

    fn epidemic() -> EquationSystem {
        EquationSystemBuilder::new()
            .vars(["x", "y"])
            .term("x", -1.0, &[("x", 1), ("y", 1)])
            .term("y", 1.0, &[("x", 1), ("y", 1)])
            .build()
            .unwrap()
    }

    #[test]
    fn identical_trajectories_have_zero_error() {
        let mut t = Trajectory::new();
        t.push(0.0, vec![1.0, 0.0]);
        t.push(1.0, vec![0.5, 0.5]);
        let report = compare_trajectories(&t, &t).unwrap();
        assert_eq!(report.max_abs_error, 0.0);
        assert_eq!(report.mean_abs_error, 0.0);
        assert_eq!(report.per_state_max, vec![0.0, 0.0]);
        assert!(report.within(1e-12));
        assert_eq!(report.samples, 4);
    }

    #[test]
    fn dimension_and_overlap_errors() {
        let mut a = Trajectory::new();
        a.push(0.0, vec![1.0]);
        let mut b = Trajectory::new();
        b.push(0.0, vec![1.0, 0.0]);
        assert!(compare_trajectories(&a, &b).is_err());
        assert!(compare_trajectories(&Trajectory::new(), &a).is_err());
        // Non-overlapping times.
        let mut c = Trajectory::new();
        c.push(100.0, vec![1.0]);
        assert!(compare_trajectories(&c, &a).is_err());
        assert!(compare_to_system(&Trajectory::new(), &epidemic(), 0.01).is_err());
    }

    #[test]
    fn protocol_tracks_ode_and_error_shrinks_with_group_size() {
        // Theorem 1, quantitatively: the epidemic protocol follows ẋ = -xy
        // and the deviation shrinks as N grows (law of large numbers).
        // A small normalizing constant keeps the per-period probabilities
        // small, so the discrete-time protocol closely tracks the continuous
        // ODE (bias O(p)); the remaining gap is stochastic and shrinks with N.
        let sys = epidemic();
        let protocol = ProtocolCompiler::new("epidemic")
            .with_normalizing_constant(0.1)
            .compile(&sys)
            .unwrap();
        let mut errors = Vec::new();
        for &n in &[1_000u64, 100_000u64] {
            let tenth = n / 10;
            let result = AggregateRuntime::new(protocol.clone())
                .run(n, 150, &InitialStates::counts(&[n - tenth, tenth]), 17)
                .unwrap();
            let report =
                compare_to_system(&result.as_ode_trajectory(n as f64), &sys, 0.01).unwrap();
            errors.push(report.max_abs_error);
            assert!(report.mean_abs_error <= report.max_abs_error);
        }
        assert!(errors[0] < 0.25, "N=1000 error {}", errors[0]);
        assert!(errors[1] < 0.06, "N=100000 error {}", errors[1]);
        assert!(
            errors[1] <= errors[0] + 0.02,
            "error should not grow with N: {errors:?}"
        );
    }
}
