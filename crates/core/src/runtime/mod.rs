//! Protocol runtimes: execute a compiled [`Protocol`](crate::Protocol) in
//! simulation.
//!
//! Two runtimes are provided:
//!
//! * [`AgentRuntime`] — keeps one state per process and executes every
//!   process's actions each protocol period against a
//!   [`Scenario`](netsim::Scenario) (failures, churn, message loss). This is
//!   the faithful, per-host simulation used for the paper's figures that need
//!   host identity (untraceability, churn).
//! * [`AggregateRuntime`] — keeps only the per-state *counts* and samples how
//!   many processes take each transition per period (binomial/multinomial
//!   draws from the same per-process probabilities). Statistically equivalent
//!   under the synchronous-round approximation and orders of magnitude
//!   faster, it is used for large parameter sweeps and property tests against
//!   the ODE.

mod agent;
mod aggregate;

pub use agent::AgentRuntime;
pub use aggregate::AggregateRuntime;

use crate::error::CoreError;
use crate::state_machine::{Protocol, StateId};
use crate::Result;
use netsim::{MetricsRecorder, ProcessId};
use odekit::integrate::Trajectory;

/// How the initial protocol states are assigned to processes.
#[derive(Debug, Clone, PartialEq)]
pub enum InitialStates {
    /// Explicit number of processes per state (must sum to the group size in
    /// the agent runtime; used verbatim by the aggregate runtime).
    Counts(Vec<u64>),
    /// Fractions per state (must sum to ~1); converted to counts by largest-
    /// remainder rounding.
    Fractions(Vec<f64>),
}

impl InitialStates {
    /// Convenience constructor from counts.
    pub fn counts(counts: &[u64]) -> Self {
        InitialStates::Counts(counts.to_vec())
    }

    /// Convenience constructor from fractions.
    pub fn fractions(fractions: &[f64]) -> Self {
        InitialStates::Fractions(fractions.to_vec())
    }

    /// Resolves the specification into per-state counts for a group of `n`
    /// processes distributed over `num_states` states.
    ///
    /// # Errors
    ///
    /// Returns an error if the length does not match `num_states`, counts do
    /// not sum to `n`, or fractions are negative / do not sum to ~1.
    pub fn resolve(&self, num_states: usize, n: u64) -> Result<Vec<u64>> {
        match self {
            InitialStates::Counts(counts) => {
                if counts.len() != num_states {
                    return Err(CoreError::InvalidConfig {
                        name: "initial_states",
                        reason: format!("expected {num_states} counts, got {}", counts.len()),
                    });
                }
                let total: u64 = counts.iter().sum();
                if total != n {
                    return Err(CoreError::InvalidConfig {
                        name: "initial_states",
                        reason: format!("counts sum to {total}, expected {n}"),
                    });
                }
                Ok(counts.clone())
            }
            InitialStates::Fractions(fracs) => {
                if fracs.len() != num_states {
                    return Err(CoreError::InvalidConfig {
                        name: "initial_states",
                        reason: format!("expected {num_states} fractions, got {}", fracs.len()),
                    });
                }
                if fracs.iter().any(|f| !f.is_finite() || *f < 0.0) {
                    return Err(CoreError::InvalidConfig {
                        name: "initial_states",
                        reason: "fractions must be non-negative and finite".into(),
                    });
                }
                let sum: f64 = fracs.iter().sum();
                if (sum - 1.0).abs() > 1e-6 {
                    return Err(CoreError::InvalidConfig {
                        name: "initial_states",
                        reason: format!("fractions sum to {sum}, expected 1"),
                    });
                }
                // Largest-remainder rounding so the counts sum to exactly n.
                let raw: Vec<f64> = fracs.iter().map(|f| f * n as f64).collect();
                let mut counts: Vec<u64> = raw.iter().map(|r| r.floor() as u64).collect();
                let mut leftover = n - counts.iter().sum::<u64>();
                let mut order: Vec<usize> = (0..fracs.len()).collect();
                order.sort_by(|a, b| {
                    let ra = raw[*a] - raw[*a].floor();
                    let rb = raw[*b] - raw[*b].floor();
                    rb.partial_cmp(&ra).unwrap()
                });
                for i in order {
                    if leftover == 0 {
                        break;
                    }
                    counts[i] += 1;
                    leftover -= 1;
                }
                Ok(counts)
            }
        }
    }
}

/// Configuration knobs shared by the runtimes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunConfig {
    /// State a process is placed in when it recovers / rejoins (`None` keeps
    /// its previous state). The endemic replication protocol sets this to the
    /// receptive state: a host that lost its disk rejoins without replicas.
    pub rejoin_state: Option<StateId>,
    /// If set, the agent runtime records the ids of the (alive) processes in
    /// this state at the end of every period — used for the paper's
    /// untraceability / load-balancing plot (Figure 8).
    pub track_members_of: Option<StateId>,
    /// Count only alive processes in the per-period state counts (default
    /// `false` counts every process regardless of liveness).
    pub count_alive_only: bool,
}

/// The output of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    protocol_states: Vec<String>,
    /// Per-period state counts; time is the period index, one component per
    /// protocol state.
    pub counts: Trajectory,
    /// Per-period transition counts, one series per `from->to` edge.
    pub transitions: MetricsRecorder,
    /// Auxiliary series: `alive` (alive process count), `messages` (sampling
    /// messages sent), and anything a caller adds.
    pub metrics: MetricsRecorder,
    /// `(period, members)` snapshots of the tracked state, if configured.
    pub tracked_members: Vec<(u64, Vec<ProcessId>)>,
    /// ODE time advanced per protocol period (the protocol's normalizing
    /// constant), recorded so trajectories can be compared against
    /// integrations of the source equations.
    pub time_scale: f64,
}

impl RunResult {
    pub(crate) fn new(protocol: &Protocol) -> Self {
        RunResult {
            protocol_states: protocol.state_names().to_vec(),
            counts: Trajectory::new(),
            transitions: MetricsRecorder::new(),
            metrics: MetricsRecorder::new(),
            tracked_members: Vec::new(),
            time_scale: protocol.time_scale(),
        }
    }

    /// The state names, in the order used by [`counts`](Self::counts).
    pub fn state_names(&self) -> &[String] {
        &self.protocol_states
    }

    /// The count series of one state (by name).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownState`] if the name is not a protocol state.
    pub fn state_series(&self, name: &str) -> Result<Vec<f64>> {
        let idx = self
            .protocol_states
            .iter()
            .position(|s| s == name)
            .ok_or_else(|| CoreError::UnknownState(name.to_string()))?;
        Ok(self.counts.component(idx))
    }

    /// The final per-state counts.
    ///
    /// # Panics
    ///
    /// Panics if the run recorded no periods.
    pub fn final_counts(&self) -> &[f64] {
        self.counts.last_state()
    }

    /// The per-period counts normalized to fractions of `n`.
    pub fn fractions(&self, n: f64) -> Trajectory {
        let mut out = Trajectory::with_capacity(self.counts.len());
        for (t, s) in self.counts.iter() {
            out.push(t, s.iter().map(|c| c / n).collect());
        }
        out
    }

    /// The per-period counts re-timed to ODE time (period × time-scale),
    /// normalized by `n` — directly comparable to an integration of the
    /// source equations over fractions.
    pub fn as_ode_trajectory(&self, n: f64) -> Trajectory {
        let mut out = Trajectory::with_capacity(self.counts.len());
        for (t, s) in self.counts.iter() {
            out.push(t * self.time_scale, s.iter().map(|c| c / n).collect());
        }
        out
    }

    /// Total number of transitions along a given edge over the whole run.
    pub fn total_transitions(&self, from: &str, to: &str) -> f64 {
        self.transitions
            .series(&format!("{from}->{to}"))
            .map(|s| s.iter().map(|(_, v)| v).sum())
            .unwrap_or(0.0)
    }
}

/// Name used for transition series: `from->to`.
pub(crate) fn edge_name(protocol: &Protocol, from: StateId, to: StateId) -> String {
    format!("{}->{}", protocol.state_name(from), protocol.state_name(to))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::ProtocolCompiler;
    use odekit::system::EquationSystemBuilder;

    fn protocol() -> Protocol {
        let sys = EquationSystemBuilder::new()
            .vars(["x", "y"])
            .term("x", -1.0, &[("x", 1), ("y", 1)])
            .term("y", 1.0, &[("x", 1), ("y", 1)])
            .build()
            .unwrap();
        ProtocolCompiler::new("epidemic").compile(&sys).unwrap()
    }

    #[test]
    fn initial_states_counts_validation() {
        assert_eq!(
            InitialStates::counts(&[60, 40]).resolve(2, 100).unwrap(),
            vec![60, 40]
        );
        assert!(InitialStates::counts(&[60, 40]).resolve(3, 100).is_err());
        assert!(InitialStates::counts(&[60, 41]).resolve(2, 100).is_err());
    }

    #[test]
    fn initial_states_fraction_rounding() {
        let counts = InitialStates::fractions(&[0.6, 0.4])
            .resolve(2, 101)
            .unwrap();
        assert_eq!(counts.iter().sum::<u64>(), 101);
        assert_eq!(counts, vec![61, 40]);
        // Thirds still sum exactly.
        let counts = InitialStates::fractions(&[1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0])
            .resolve(3, 1000)
            .unwrap();
        assert_eq!(counts.iter().sum::<u64>(), 1000);
        assert!(InitialStates::fractions(&[0.6, 0.6])
            .resolve(2, 10)
            .is_err());
        assert!(InitialStates::fractions(&[-0.1, 1.1])
            .resolve(2, 10)
            .is_err());
        assert!(InitialStates::fractions(&[1.0]).resolve(2, 10).is_err());
    }

    #[test]
    fn run_result_accessors() {
        let p = protocol();
        let mut r = RunResult::new(&p);
        r.counts.push(0.0, vec![90.0, 10.0]);
        r.counts.push(1.0, vec![50.0, 50.0]);
        r.transitions.record("x->y", 1, 40.0);
        assert_eq!(r.state_names(), &["x".to_string(), "y".to_string()]);
        assert_eq!(r.state_series("y").unwrap(), vec![10.0, 50.0]);
        assert!(r.state_series("q").is_err());
        assert_eq!(r.final_counts(), &[50.0, 50.0]);
        assert_eq!(r.fractions(100.0).last_state(), &[0.5, 0.5]);
        assert_eq!(r.total_transitions("x", "y"), 40.0);
        assert_eq!(r.total_transitions("y", "x"), 0.0);
        let ode = r.as_ode_trajectory(100.0);
        assert_eq!(ode.times()[1], p.time_scale());
    }

    #[test]
    fn edge_name_uses_state_names() {
        let p = protocol();
        let x = p.require_state("x").unwrap();
        let y = p.require_state("y").unwrap();
        assert_eq!(edge_name(&p, x, y), "x->y");
    }
}
