//! Protocol runtimes: execute a compiled [`Protocol`] in simulation.
//!
//! # Architecture
//!
//! Execution is split into three orthogonal pieces:
//!
//! * **Runtimes** — the [`Runtime`] trait exposes an incremental step
//!   interface (`init` → repeated `step`) over a
//!   [`Scenario`]. Four fidelities are provided:
//!   [`AgentRuntime`] keeps one state per process (failures, churn, host
//!   identity), [`BatchedRuntime`] advances whole state-count vectors with
//!   binomial/multinomial draws — O(states² · actions) per period,
//!   independent of N, while still modelling exchangeable failures —
//!   [`HybridRuntime`] batches while every per-state count is large and
//!   hands off losslessly to per-process execution when any count runs
//!   small (extinction, tie-breaking, post-failure recovery), and
//!   [`AggregateRuntime`] is the scenario-free mean-field sampler for
//!   failure-free sweeps. Two continuous-time fidelities complement them:
//!   [`SsaRuntime`] executes every reaction individually at exponentially
//!   distributed virtual times (exact Gillespie sampling), and
//!   [`TauLeapRuntime`] advances the same event clock in Poisson-batched
//!   leaps under a per-leap error bound. Drivers and tests are generic over
//!   the trait, so the same experiment can be replayed at any fidelity (or
//!   let [`Simulation::run_auto`] pick one — see [`FidelityTier`] and
//!   [`ErrorBudget`]).
//! * **Observers** — recording is opt-in: an [`Observer`] receives
//!   [`PeriodEvents`] after every protocol period and folds whatever it
//!   recorded into the final [`RunResult`]. Built-ins cover the standard
//!   bookkeeping ([`CountsRecorder`], [`TransitionRecorder`],
//!   [`MembershipTracker`], [`AliveTracker`], [`MessageCounter`]); the hot
//!   loop does no work for observers that are not attached.
//! * **Drivers** — [`Simulation`] is the one-run builder
//!   (`Simulation::of(protocol).scenario(s).initial(i).run::<AgentRuntime>()`)
//!   and [`Ensemble`] fans a seed range or scenario sweep across threads and
//!   aggregates per-period mean/std envelopes into an [`EnsembleResult`].

mod agent;
mod aggregate;
mod async_runtime;
mod batched;
mod ensemble;
mod hybrid;
mod inject;
mod observer;
mod sharded;
mod simulation;
mod ssa;
mod tau_leap;

pub use agent::{AgentRuntime, AgentState, MembershipView};
pub use aggregate::{AggregateRuntime, AggregateState};
pub use async_runtime::{AsyncRuntime, AsyncState};
pub use batched::{BatchedRuntime, BatchedState};
pub use ensemble::{Ensemble, EnsembleResult, SeedFailure};
pub use hybrid::{HybridFidelity, HybridRuntime, HybridState, SMALL_COUNT_THRESHOLD};
pub use observer::{
    AliveTracker, CountsRecorder, LiveMetrics, LiveMetricsHandle, MembershipTracker,
    MessageCounter, Observer, PeriodEvents, ResilienceReport, ShardCountsRecorder,
    TransitionRecorder, TransportProbe,
};
pub use sharded::{ShardedRuntime, ShardedState};
pub use simulation::{RunDeadline, Simulation};
pub use ssa::{SsaRuntime, SsaState};
pub use tau_leap::{TauLeapRuntime, TauLeapState, DEFAULT_TAU_EPSILON};

use crate::error::CoreError;
use crate::state_machine::{Protocol, StateId};
use crate::Result;
use netsim::{MetricsRecorder, ProcessId, Scenario};
use odekit::integrate::Trajectory;

/// A protocol execution engine with an incremental step interface.
///
/// A runtime is a pure state-transition function over its
/// [`State`](Runtime::State): `init`
/// builds the start-of-run state from a scenario and an initial distribution,
/// and every `step` executes one protocol period, returning the
/// [`PeriodEvents`] observers consume. Drivers ([`Simulation`], [`Ensemble`])
/// and tests are generic over this trait, so the same experiment runs at
/// per-process fidelity ([`AgentRuntime`]) or count-level fidelity
/// ([`AggregateRuntime`]) without changing driver code.
pub trait Runtime: Sized + Send + Sync {
    /// The mutable per-run execution state.
    type State: Send;

    /// Constructs a runtime for `protocol` from the shared [`RunConfig`]
    /// (used by the generic drivers; runtime-specific knobs keep their
    /// dedicated builder methods).
    fn build(protocol: Protocol, config: &RunConfig) -> Self;

    /// The protocol being executed.
    fn protocol(&self) -> &Protocol;

    /// Builds the start-of-run state for `scenario` with the given initial
    /// distribution.
    ///
    /// # Errors
    ///
    /// Returns configuration errors (invalid protocol, mismatched initial
    /// distribution).
    fn init(&self, scenario: &Scenario, initial: &InitialStates) -> Result<Self::State>;

    /// Executes one protocol period and returns the events it produced.
    ///
    /// # Errors
    ///
    /// Propagates scenario errors (invalid failure schedules etc.).
    fn step<'s>(&self, state: &'s mut Self::State) -> Result<PeriodEvents<'s>>;

    /// The events view of the current state without stepping — used by
    /// drivers to show observers the initial configuration (period 0).
    fn snapshot<'s>(&self, state: &'s Self::State) -> PeriodEvents<'s>;
}

/// The runtime fidelity the automatic selection
/// ([`Simulation::run_auto`], [`Ensemble::run_auto`]) executes a run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FidelityTier {
    /// Count-batched throughout ([`BatchedRuntime`]): exchangeable
    /// environment, no membership observers, all populations large.
    Batched,
    /// Count-batched with a per-process fallback for small-count segments
    /// ([`HybridRuntime`]).
    Hybrid,
    /// Per-process throughout ([`AgentRuntime`]): the environment or an
    /// observer needs host identity.
    Agent,
    /// Count-batched per shard ([`ShardedRuntime`]): the scenario carries a
    /// sharded [`Topology`](netsim::Topology) or shard-targeted events, so
    /// the population advances as `S` locally-mixed count vectors exchanging
    /// processes through per-period migration.
    Sharded,
    /// Asynchronous message passing ([`AsyncRuntime`]): the scenario carries
    /// a [`TransportConfig`](netsim::TransportConfig), so every protocol
    /// contact becomes an actual queued message subject to per-link latency,
    /// drops and partition windows, scheduled in virtual time.
    Async,
    /// Exact continuous-time stochastic simulation ([`SsaRuntime`]): every
    /// reaction fires individually at an exponentially distributed virtual
    /// time (Gillespie's stochastic simulation algorithm, next-reaction
    /// form). Selected by [`ErrorBudget::Exact`].
    Ssa,
    /// Tau-leaping ([`TauLeapRuntime`]): continuous-time dynamics advanced
    /// in Poisson-batched leaps whose size is chosen from a per-leap error
    /// bound, with automatic fallback to exact SSA steps at small counts.
    /// Selected by [`ErrorBudget::Bounded`].
    TauLeap,
}

/// How much sampling error the caller will trade for speed — the knob that
/// generalizes the automatic tier policy beyond its count-threshold
/// heuristics (see [`Simulation::error_budget`] and
/// [`Ensemble::error_budget`]).
///
/// The period-synchronized tiers evaluate every firing probability against
/// start-of-period populations, so within one period the dynamics cannot
/// compound — an approximation that is excellent for slow per-period rates
/// and visibly biased for fast ones (see the `exp_ssa_burst` experiment).
/// The budget names the caller's position on that trade:
///
/// * [`Exact`](ErrorBudget::Exact) — no within-period approximation at all:
///   run the continuous-time exact sampler ([`FidelityTier::Ssa`]),
///   whatever it costs (`O(events)` per period, i.e. proportional to `N`
///   times the mean per-period rate).
/// * [`Bounded`](ErrorBudget::Bounded)`(ε)` — continuous-time dynamics with
///   a per-leap relative error bound of `ε` ([`FidelityTier::TauLeap`]):
///   leaps are sized so no propensity changes by more than a factor `ε`
///   within a leap, and the runtime drops to exact SSA steps whenever a
///   population is too small for leaping to respect the bound.
/// * [`Fast`](ErrorBudget::Fast) — the default: today's count-threshold
///   policy, bit-for-bit ([`FidelityTier::Batched`] or
///   [`FidelityTier::Hybrid`] by initial counts).
///
/// Scenario features that *require* a specific runtime (transport models →
/// async, sharded topologies → sharded, host identity → agent) dominate the
/// budget: those tiers are the only ones that can serve such runs, so the
/// budget only arbitrates among the count-level, well-mixed fidelities.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ErrorBudget {
    /// Exact continuous-time sampling ([`FidelityTier::Ssa`]).
    Exact,
    /// Continuous-time leaping with per-leap relative error at most the
    /// given `ε` ([`FidelityTier::TauLeap`]). Values are clamped to
    /// `(0, 1)` at runtime construction.
    Bounded(f64),
    /// The period-synchronized count-threshold policy — the historical
    /// default, unchanged bit-for-bit.
    #[default]
    Fast,
}

/// Picks the fastest fidelity that can serve a run (the policy behind
/// [`Simulation::run_auto`] and [`Ensemble::run_auto`]):
///
/// * a scenario with a [`TransportConfig`](netsim::TransportConfig) selects
///   [`FidelityTier::Async`] — explicit link models (latency distributions,
///   drops, partition windows) only exist at the message layer, so no
///   period-synchronized runtime can serve them; this dominates every other
///   criterion and is checked first;
/// * a scenario with a sharded [`Topology`](netsim::Topology) or
///   shard-targeted events selects [`FidelityTier::Sharded`] — sharding is
///   count-level only, so it is checked first and membership observers are
///   inert under it (exactly as under the batched tier);
/// * an observer that needs per-process identity, a per-id failure schedule
///   or a churn trace forces [`FidelityTier::Agent`];
/// * otherwise the [`ErrorBudget`] arbitrates among the count-level
///   fidelities: [`ErrorBudget::Exact`] selects [`FidelityTier::Ssa`] and
///   [`ErrorBudget::Bounded`] selects [`FidelityTier::TauLeap`] — the
///   continuous-time tiers serve any exchangeable count-level run,
///   regardless of population sizes;
/// * otherwise (the default [`ErrorBudget::Fast`]), if any resolved initial
///   per-state count is below
///   [`SMALL_COUNT_THRESHOLD`] the run starts in the small-count regime
///   where mean-field batching is untrustworthy, so the
///   [`FidelityTier::Hybrid`] tier serves it (count-batched whenever
///   populations allow, per-process when they don't — and, once selected,
///   the hybrid runtime also covers late-run small-count regimes);
/// * otherwise [`FidelityTier::Batched`]. The selection is static: a run
///   that starts with every population large is assumed to stay batchable,
///   matching the batched tier's prior behaviour and cost. Callers that
///   expect an initially-large run to decay into small-count dynamics
///   (e.g. a long subcritical decay toward extinction) should run
///   [`HybridRuntime`] explicitly via [`Simulation::run`].
///
/// A *missing* scenario is trivially exchangeable (no environment events at
/// all), so it must select the batched tier — treating `None` as
/// incompatible would silently fall back to the 10⁴×-slower agent runtime.
/// Likewise a missing or unresolvable initial distribution simply skips the
/// small-count refinement (the eventual `run` reports the real error).
pub(crate) fn auto_tier(
    protocol: &Protocol,
    scenario: Option<&Scenario>,
    initial: Option<&InitialStates>,
    needs_membership: bool,
    budget: ErrorBudget,
) -> FidelityTier {
    if scenario.is_some_and(Scenario::has_link_models) {
        return FidelityTier::Async;
    }
    if scenario.is_some_and(Scenario::needs_sharding) {
        return FidelityTier::Sharded;
    }
    if needs_membership || !scenario.map_or(true, Scenario::count_level_compatible) {
        return FidelityTier::Agent;
    }
    match budget {
        ErrorBudget::Exact => return FidelityTier::Ssa,
        ErrorBudget::Bounded(_) => return FidelityTier::TauLeap,
        ErrorBudget::Fast => {}
    }
    let small_start = match (scenario, initial) {
        (Some(sc), Some(init)) => init
            .resolve(protocol.num_states(), sc.group_size() as u64)
            .is_ok_and(|counts| counts.iter().any(|&k| k < SMALL_COUNT_THRESHOLD)),
        _ => false,
    };
    if small_start {
        FidelityTier::Hybrid
    } else {
        FidelityTier::Batched
    }
}

/// How the initial protocol states are assigned to processes.
#[derive(Debug, Clone, PartialEq)]
pub enum InitialStates {
    /// Explicit number of processes per state (must sum to the group size in
    /// the agent runtime; used verbatim by the aggregate runtime).
    Counts(Vec<u64>),
    /// Fractions per state (must sum to ~1); converted to counts by largest-
    /// remainder rounding.
    Fractions(Vec<f64>),
}

impl InitialStates {
    /// Convenience constructor from counts.
    pub fn counts(counts: &[u64]) -> Self {
        InitialStates::Counts(counts.to_vec())
    }

    /// Convenience constructor from fractions.
    pub fn fractions(fractions: &[f64]) -> Self {
        InitialStates::Fractions(fractions.to_vec())
    }

    /// Resolves the specification into per-state counts for a group of `n`
    /// processes distributed over `num_states` states.
    ///
    /// # Errors
    ///
    /// Returns an error if the length does not match `num_states`, counts do
    /// not sum to `n`, or fractions are negative / do not sum to ~1.
    pub fn resolve(&self, num_states: usize, n: u64) -> Result<Vec<u64>> {
        match self {
            InitialStates::Counts(counts) => {
                if counts.len() != num_states {
                    return Err(CoreError::InvalidConfig {
                        name: "initial_states",
                        reason: format!("expected {num_states} counts, got {}", counts.len()),
                    });
                }
                let total: u64 = counts.iter().sum();
                if total != n {
                    return Err(CoreError::InvalidConfig {
                        name: "initial_states",
                        reason: format!("counts sum to {total}, expected {n}"),
                    });
                }
                Ok(counts.clone())
            }
            InitialStates::Fractions(fracs) => {
                if fracs.len() != num_states {
                    return Err(CoreError::InvalidConfig {
                        name: "initial_states",
                        reason: format!("expected {num_states} fractions, got {}", fracs.len()),
                    });
                }
                if fracs.iter().any(|f| !f.is_finite() || *f < 0.0) {
                    return Err(CoreError::InvalidConfig {
                        name: "initial_states",
                        reason: "fractions must be non-negative and finite".into(),
                    });
                }
                let sum: f64 = fracs.iter().sum();
                if (sum - 1.0).abs() > 1e-6 {
                    return Err(CoreError::InvalidConfig {
                        name: "initial_states",
                        reason: format!("fractions sum to {sum}, expected 1"),
                    });
                }
                // Largest-remainder rounding so the counts sum to exactly n.
                let raw: Vec<f64> = fracs.iter().map(|f| f * n as f64).collect();
                let mut counts: Vec<u64> = raw.iter().map(|r| r.floor() as u64).collect();
                let mut leftover = n - counts.iter().sum::<u64>();
                let mut order: Vec<usize> = (0..fracs.len()).collect();
                order.sort_by(|a, b| {
                    let ra = raw[*a] - raw[*a].floor();
                    let rb = raw[*b] - raw[*b].floor();
                    rb.partial_cmp(&ra).unwrap()
                });
                for i in order {
                    if leftover == 0 {
                        break;
                    }
                    counts[i] += 1;
                    leftover -= 1;
                }
                Ok(counts)
            }
        }
    }
}

/// Configuration knobs shared by the runtimes.
///
/// Recording used to be configured here (`track_members_of`,
/// `count_alive_only`); it is now expressed by attaching [`Observer`]s to a
/// [`Simulation`] ([`MembershipTracker`], [`CountsRecorder::alive_only`]), so
/// the only remaining knob is protocol semantics: what happens on rejoin.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunConfig {
    /// State a process is placed in when it recovers / rejoins (`None` keeps
    /// its previous state). The endemic replication protocol sets this to the
    /// receptive state: a host that lost its disk rejoins without replicas.
    pub rejoin_state: Option<StateId>,
    /// Per-leap relative error bound for [`TauLeapRuntime`] (`None` uses
    /// [`DEFAULT_TAU_EPSILON`]). Set automatically by the drivers when an
    /// [`ErrorBudget::Bounded`] selects the tau-leap tier; ignored by every
    /// other runtime.
    pub tau_epsilon: Option<f64>,
}

impl RunConfig {
    /// A configuration that moves recovering processes into `state`.
    pub fn rejoining_to(state: StateId) -> Self {
        RunConfig {
            rejoin_state: Some(state),
            ..RunConfig::default()
        }
    }
}

/// Whether a run executed its full scheduled horizon.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RunStatus {
    /// Every scheduled period executed.
    #[default]
    Completed,
    /// A [`RunDeadline`] stopped the run early; the result covers only the
    /// periods that completed.
    Interrupted {
        /// Number of protocol periods that executed before the deadline hit.
        completed_periods: u64,
    },
}

impl RunStatus {
    /// `true` if the run executed its full horizon.
    pub fn is_completed(&self) -> bool {
        matches!(self, RunStatus::Completed)
    }
}

/// The output of one simulation run, assembled by the attached observers.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    protocol_states: Vec<String>,
    /// Per-period state counts; time is the period index, one component per
    /// protocol state. Filled by [`CountsRecorder`].
    pub counts: Trajectory,
    /// Per-period transition counts, one series per `from->to` edge. Filled
    /// by [`TransitionRecorder`].
    pub transitions: MetricsRecorder,
    /// Auxiliary series: `alive` ([`AliveTracker`]), `messages`
    /// ([`MessageCounter`]), and anything a custom observer adds.
    pub metrics: MetricsRecorder,
    /// `(period, members)` snapshots of a tracked state, filled by
    /// [`MembershipTracker`].
    pub tracked_members: Vec<(u64, Vec<ProcessId>)>,
    /// ODE time advanced per protocol period (the protocol's normalizing
    /// constant), recorded so trajectories can be compared against
    /// integrations of the source equations.
    pub time_scale: f64,
    /// Whether the run completed its horizon or was interrupted by a
    /// [`RunDeadline`].
    pub status: RunStatus,
}

impl RunResult {
    pub(crate) fn new(protocol: &Protocol) -> Self {
        RunResult {
            protocol_states: protocol.state_names().to_vec(),
            counts: Trajectory::new(),
            transitions: MetricsRecorder::new(),
            metrics: MetricsRecorder::new(),
            tracked_members: Vec::new(),
            time_scale: protocol.time_scale(),
            status: RunStatus::Completed,
        }
    }

    /// The state names, in the order used by [`counts`](Self::counts).
    pub fn state_names(&self) -> &[String] {
        &self.protocol_states
    }

    /// The count series of one state (by name).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownState`] if the name is not a protocol state.
    pub fn state_series(&self, name: &str) -> Result<Vec<f64>> {
        let idx = self
            .protocol_states
            .iter()
            .position(|s| s == name)
            .ok_or_else(|| CoreError::UnknownState(name.to_string()))?;
        Ok(self.counts.component(idx))
    }

    /// The final per-state counts, or `None` if the run recorded no periods
    /// (for instance when no [`CountsRecorder`] was attached).
    pub fn final_counts(&self) -> Option<&[f64]> {
        self.counts.states().last().map(Vec::as_slice)
    }

    /// The per-period counts normalized to fractions of `n`.
    pub fn fractions(&self, n: f64) -> Trajectory {
        let mut out = Trajectory::with_capacity(self.counts.len());
        for (t, s) in self.counts.iter() {
            out.push(t, s.iter().map(|c| c / n).collect());
        }
        out
    }

    /// The per-period counts re-timed to ODE time (period × time-scale),
    /// normalized by `n` — directly comparable to an integration of the
    /// source equations over fractions.
    pub fn as_ode_trajectory(&self, n: f64) -> Trajectory {
        let mut out = Trajectory::with_capacity(self.counts.len());
        for (t, s) in self.counts.iter() {
            out.push(t * self.time_scale, s.iter().map(|c| c / n).collect());
        }
        out
    }

    /// Total number of transitions along a given edge over the whole run.
    pub fn total_transitions(&self, from: &str, to: &str) -> f64 {
        self.transitions
            .series(&format!("{from}->{to}"))
            .map(|s| s.iter().map(|(_, v)| v).sum())
            .unwrap_or(0.0)
    }
}

/// Rejects a sharded scenario on behalf of a single-group runtime: only
/// [`ShardedRuntime`] understands shard topologies and shard-targeted
/// events, and silently flattening them into one well-mixed group would
/// change the dynamics the caller asked for.
pub(crate) fn reject_sharded(scenario: &Scenario, runtime_name: &str) -> Result<()> {
    if scenario.needs_sharding() {
        return Err(CoreError::InvalidConfig {
            name: "scenario",
            reason: format!(
                "the scenario carries a sharded topology or shard-targeted \
                 events, which the {runtime_name} runtime's single well-mixed \
                 group cannot represent — use ShardedRuntime (or \
                 Simulation::run_auto, which selects it automatically)"
            ),
        });
    }
    Ok(())
}

/// Rejects a scenario with explicit link models on behalf of a
/// period-synchronized runtime: per-link latency, drops and partition
/// windows only exist at the message layer, and silently ignoring them
/// would simulate a different network than the caller configured.
pub(crate) fn reject_transport(scenario: &Scenario, runtime_name: &str) -> Result<()> {
    if scenario.has_link_models() {
        return Err(CoreError::InvalidConfig {
            name: "scenario",
            reason: format!(
                "the scenario carries a transport model (link latency / drops \
                 / partitions), which the period-synchronized {runtime_name} \
                 runtime cannot honour — use AsyncRuntime (or \
                 Simulation::run_auto, which selects it automatically)"
            ),
        });
    }
    Ok(())
}

/// Name used for transition series: `from->to`.
pub(crate) fn edge_name(protocol: &Protocol, from: StateId, to: StateId) -> String {
    format!("{}->{}", protocol.state_name(from), protocol.state_name(to))
}

/// Per-process probability that an action's firing condition holds this
/// period (excluding who it moves), given start-of-period target populations
/// `counts` over a maximal group of `n` processes. Shared by the count-level
/// runtimes ([`BatchedRuntime`], [`AggregateRuntime`]): a sampled contact
/// hits a wanted target with probability `counts[target] / n`, degraded by
/// the per-contact loss rate.
pub(crate) fn fire_probability(
    action: &crate::action::Action,
    counts: &[u64],
    n: f64,
    loss: &netsim::LossConfig,
) -> f64 {
    use crate::action::Action;
    let contact_ok = 1.0 - loss.effective_contact_failure(1);
    match action {
        Action::Flip { prob, .. } => *prob,
        Action::Sample { required, prob, .. } => {
            let mut p = *prob;
            for r in required {
                p *= (counts[r.index()] as f64 / n) * contact_ok;
            }
            p
        }
        Action::SampleAny {
            target_state,
            samples,
            prob,
            ..
        } => {
            let hit = (counts[target_state.index()] as f64 / n) * contact_ok;
            prob * (1.0 - (1.0 - hit).powi(*samples as i32))
        }
        Action::PushSample { .. } => 0.0,
        Action::Tokenize { required, prob, .. } => {
            let mut p = *prob;
            for r in required {
                p *= (counts[r.index()] as f64 / n) * contact_ok;
            }
            p
        }
    }
}

/// Renders a dense `from * num_states + to` transition-count buffer into the
/// sparse `(from, to, count)` list handed to observers (shared by the
/// runtimes' `step` implementations).
pub(crate) fn render_sparse_transitions(
    dense: &[u64],
    num_states: usize,
    out: &mut Vec<(StateId, StateId, u64)>,
) {
    for (idx, &count) in dense.iter().enumerate() {
        if count > 0 {
            out.push((
                StateId::new(idx / num_states),
                StateId::new(idx % num_states),
                count,
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::ProtocolCompiler;
    use odekit::system::EquationSystemBuilder;

    fn protocol() -> Protocol {
        let sys = EquationSystemBuilder::new()
            .vars(["x", "y"])
            .term("x", -1.0, &[("x", 1), ("y", 1)])
            .term("y", 1.0, &[("x", 1), ("y", 1)])
            .build()
            .unwrap();
        ProtocolCompiler::new("epidemic").compile(&sys).unwrap()
    }

    #[test]
    fn initial_states_counts_validation() {
        assert_eq!(
            InitialStates::counts(&[60, 40]).resolve(2, 100).unwrap(),
            vec![60, 40]
        );
        assert!(InitialStates::counts(&[60, 40]).resolve(3, 100).is_err());
        assert!(InitialStates::counts(&[60, 41]).resolve(2, 100).is_err());
    }

    #[test]
    fn initial_states_fraction_rounding() {
        let counts = InitialStates::fractions(&[0.6, 0.4])
            .resolve(2, 101)
            .unwrap();
        assert_eq!(counts.iter().sum::<u64>(), 101);
        assert_eq!(counts, vec![61, 40]);
        // Thirds still sum exactly.
        let counts = InitialStates::fractions(&[1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0])
            .resolve(3, 1000)
            .unwrap();
        assert_eq!(counts.iter().sum::<u64>(), 1000);
        assert!(InitialStates::fractions(&[0.6, 0.6])
            .resolve(2, 10)
            .is_err());
        assert!(InitialStates::fractions(&[-0.1, 1.1])
            .resolve(2, 10)
            .is_err());
        assert!(InitialStates::fractions(&[1.0]).resolve(2, 10).is_err());
    }

    #[test]
    fn run_result_accessors() {
        let p = protocol();
        let mut r = RunResult::new(&p);
        // Empty run: no final counts, no panic.
        assert_eq!(r.final_counts(), None);
        r.counts.push(0.0, vec![90.0, 10.0]);
        r.counts.push(1.0, vec![50.0, 50.0]);
        r.transitions.record("x->y", 1, 40.0);
        assert_eq!(r.state_names(), &["x".to_string(), "y".to_string()]);
        assert_eq!(r.state_series("y").unwrap(), vec![10.0, 50.0]);
        assert!(r.state_series("q").is_err());
        assert_eq!(r.final_counts(), Some(&[50.0, 50.0][..]));
        assert_eq!(r.fractions(100.0).last_state(), &[0.5, 0.5]);
        assert_eq!(r.total_transitions("x", "y"), 40.0);
        assert_eq!(r.total_transitions("y", "x"), 0.0);
        let ode = r.as_ode_trajectory(100.0);
        assert_eq!(ode.times()[1], p.time_scale());
    }

    #[test]
    fn run_config_constructor() {
        let p = protocol();
        let y = p.require_state("y").unwrap();
        assert_eq!(RunConfig::rejoining_to(y).rejoin_state, Some(y));
        assert_eq!(RunConfig::default().rejoin_state, None);
    }

    #[test]
    fn edge_name_uses_state_names() {
        let p = protocol();
        let x = p.require_state("x").unwrap();
        let y = p.require_state("y").unwrap();
        assert_eq!(edge_name(&p, x, y), "x->y");
    }
}
