//! The tau-leaping continuous-time runtime: bounded-error leaps over the
//! SSA's reaction channels.
//!
//! Exact continuous-time sampling ([`SsaRuntime`](super::SsaRuntime)) costs
//! one iteration per *event* — `O(N)` per period at fixed rates. Tau-leaping
//! (Gillespie 2001, with Cao/Gillespie/Petzold's 2006 step-size selection)
//! recovers near-batched cost while keeping the continuous-time dynamics:
//! it advances the event clock in leaps of length `τ`, chosen so that no
//! channel's propensity changes by more than a relative `ε` during the
//! leap, and fires each channel a Poisson-distributed `k_c ~ Poisson(a_c·τ)`
//! times per leap.
//!
//! Two guards keep the error bound honest where leaping breaks down:
//!
//! * **small-count fallback** — when any active channel drains a population
//!   below [`SMALL_COUNT_THRESHOLD`] (the same regime boundary the hybrid
//!   tier uses), Poisson leaps can overshoot pools and distort extinction
//!   dynamics, so the runtime executes a short burst of *exact* SSA steps
//!   (direct method) instead, then re-evaluates;
//! * **unprofitable leaps** — when the selected `τ` would cover only a few
//!   events (`τ · Σa ≲ 10`), exact steps are cheaper *and* exact, so the
//!   runtime takes them.
//!
//! Within-period event clocks restart at each period boundary (the exact
//! burst uses the memoryless direct method, so only the truncation of an
//! in-flight wait at the boundary is approximated — an `O(ε)`-class error
//! already covered by the leap bound). Boundary semantics are shared with
//! the SSA tier: the batched runtime's failure/injection hooks run at each
//! boundary with identical draws, boundary counts are the exact
//! interpolation of the piecewise-constant path, and message tallies reuse
//! the synchronized expected-message accounting.
//!
//! The per-leap error bound `ε` defaults to [`DEFAULT_TAU_EPSILON`] and is
//! set per run by [`ErrorBudget::Bounded`](super::ErrorBudget) through
//! [`RunConfig::tau_epsilon`].

use super::batched::{BatchedRuntime, BatchedState};
use super::observer::default_observers;
use super::simulation::drive;
use super::ssa::{build_channels, expected_messages, validate_continuous, Channel};
use super::{InitialStates, PeriodEvents, RunConfig, RunResult, Runtime, SMALL_COUNT_THRESHOLD};
use crate::state_machine::{Protocol, StateId};
use crate::Result;
use netsim::Scenario;

/// Default per-leap relative error bound (`ε` in the Cao/Gillespie/Petzold
/// step-size criterion): no propensity may change by more than ~3% within
/// one leap.
pub const DEFAULT_TAU_EPSILON: f64 = 0.03;

/// Number of exact SSA steps executed per small-count / unprofitable-leap
/// burst before leaping is re-evaluated (the standard ~10-step heuristic).
const EXACT_BURST_STEPS: u32 = 10;

/// A leap covering fewer than this many expected events is unprofitable:
/// exact steps are taken instead.
const MIN_EVENTS_PER_LEAP: f64 = 10.0;

/// Executes a protocol in continuous virtual time with Poisson-batched
/// leaps under a per-leap relative error bound, falling back to exact SSA
/// steps at small counts. See the module-level documentation.
///
/// # Examples
///
/// ```
/// use dpde_core::{ProtocolCompiler, runtime::{TauLeapRuntime, InitialStates}};
/// use netsim::Scenario;
/// use odekit::parse::parse_system;
///
/// let sys = parse_system("x' = -x*y\ny' = x*y", &[])?;
/// let protocol = ProtocolCompiler::new("epidemic").compile(&sys)?;
/// let scenario = Scenario::new(100_000, 60)?.with_seed(7);
/// let result = TauLeapRuntime::new(protocol).with_epsilon(0.05)
///     .run(&scenario, &InitialStates::counts(&[99_000, 1_000]))?;
/// assert!(result.final_counts().expect("counts recorded")[1] > 90_000.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct TauLeapRuntime {
    batched: BatchedRuntime,
    epsilon: f64,
}

/// The mutable execution state of a [`TauLeapRuntime`] run.
#[derive(Debug, Clone)]
pub struct TauLeapState {
    inner: BatchedState,
    channels: Vec<Channel>,
    /// Scratch: propensities of the current leap iteration.
    propensities: Vec<f64>,
    /// Working copy of the alive counts while the event clock runs.
    x: Vec<u64>,
    /// Scratch: per-state expected drift `μ_i = Σ_c a_c ν_ci`.
    mu: Vec<f64>,
    /// Scratch: per-state event variance `σ²_i = Σ_c a_c ν²_ci`.
    sigma2: Vec<f64>,
    transitions_dense: Vec<u64>,
    transitions: Vec<(StateId, StateId, u64)>,
    messages: u64,
    exact_steps: u64,
    leaps: u64,
}

impl TauLeapState {
    /// Total exact SSA steps taken by the small-count / unprofitable-leap
    /// fallback so far (diagnostics: a large-population run should spend
    /// almost all its virtual time leaping).
    pub fn exact_steps(&self) -> u64 {
        self.exact_steps
    }

    /// Total Poisson leaps taken so far.
    pub fn leaps(&self) -> u64 {
        self.leaps
    }
}

impl TauLeapRuntime {
    /// Creates a tau-leap runtime with the default [`RunConfig`] and
    /// [`DEFAULT_TAU_EPSILON`].
    pub fn new(protocol: Protocol) -> Self {
        TauLeapRuntime {
            batched: BatchedRuntime::new(protocol),
            epsilon: DEFAULT_TAU_EPSILON,
        }
    }

    /// Replaces the per-leap relative error bound (clamped to
    /// `[1e-4, 0.5]`: zero or negative bounds would stall the leap loop,
    /// and bounds near 1 void the Poisson approximation).
    #[must_use]
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = clamp_epsilon(epsilon);
        self
    }

    /// The per-leap relative error bound in effect.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Replaces the run configuration (rejoin semantics are applied by the
    /// shared boundary hooks exactly as in the batched runtime; a
    /// [`RunConfig::tau_epsilon`] override is honoured).
    #[must_use]
    pub fn with_config(self, config: RunConfig) -> Self {
        let epsilon = config.tau_epsilon.map_or(self.epsilon, clamp_epsilon);
        TauLeapRuntime {
            batched: self.batched.with_config(config),
            epsilon,
        }
    }

    /// Runs the protocol under the given scenario and initial state
    /// distribution with the standard recording set.
    ///
    /// # Errors
    ///
    /// Returns configuration errors (mismatched initial distribution,
    /// invalid protocol, a scenario that needs host identity) and propagates
    /// scenario errors.
    pub fn run(&self, scenario: &Scenario, initial: &InitialStates) -> Result<RunResult> {
        drive(self, scenario, initial, &mut default_observers())
    }

    fn events<'s>(&self, state: &'s TauLeapState) -> PeriodEvents<'s> {
        PeriodEvents {
            period: state.inner.period(),
            counts: state.inner.total_counts(),
            transitions: &state.transitions,
            messages: state.messages,
            alive: state.inner.alive_total(),
            counts_alive: Some(state.inner.alive_counts()),
            membership: None,
            shard_counts_alive: None,
            transport: None,
            injections: state.inner.injection_records(),
            virtual_time: Some(
                state
                    .inner
                    .scenario()
                    .clock()
                    .period_to_secs(state.inner.period()),
            ),
        }
    }

    /// Executes up to [`EXACT_BURST_STEPS`] direct-method SSA steps from
    /// virtual time `t`, returning the new time (capped at the period
    /// boundary `period_secs`). Propensities in `state.propensities` are
    /// current on entry and are refreshed after every applied event.
    fn exact_burst(&self, state: &mut TauLeapState, mut t: f64, period_secs: f64) -> f64 {
        let num_states = self.protocol().num_states();
        let n_f = state.inner.density_n();
        let loss = *state.inner.scenario().loss();
        for _ in 0..EXACT_BURST_STEPS {
            let total: f64 = state.propensities.iter().sum();
            if total <= 0.0 {
                return period_secs;
            }
            let wait = state.inner.rng_mut().exponential(1.0 / total);
            if t + wait >= period_secs {
                return period_secs;
            }
            t += wait;
            // Direct method: pick the firing channel by propensity mass.
            let mut u = state.inner.rng_mut().next_f64() * total;
            let mut winner = state.propensities.len() - 1;
            for (c, &a) in state.propensities.iter().enumerate() {
                if a <= 0.0 {
                    continue;
                }
                if u < a {
                    winner = c;
                    break;
                }
                u -= a;
            }
            state.channels[winner].apply(&mut state.x, &mut state.transitions_dense, num_states);
            state.exact_steps += 1;
            for c in 0..state.channels.len() {
                state.propensities[c] =
                    state.channels[c].propensity(&state.x, n_f, &loss, period_secs);
            }
        }
        t
    }
}

fn clamp_epsilon(epsilon: f64) -> f64 {
    if epsilon.is_finite() {
        epsilon.clamp(1e-4, 0.5)
    } else {
        DEFAULT_TAU_EPSILON
    }
}

impl Runtime for TauLeapRuntime {
    type State = TauLeapState;

    fn build(protocol: Protocol, config: &RunConfig) -> Self {
        let epsilon = config
            .tau_epsilon
            .map_or(DEFAULT_TAU_EPSILON, clamp_epsilon);
        TauLeapRuntime {
            batched: BatchedRuntime::build(protocol, config),
            epsilon,
        }
    }

    fn protocol(&self) -> &Protocol {
        self.batched.protocol()
    }

    fn init(&self, scenario: &Scenario, initial: &InitialStates) -> Result<TauLeapState> {
        let protocol = self.batched.protocol();
        protocol.validate()?;
        validate_continuous(scenario, "tau-leap")?;
        let num_states = protocol.num_states();
        let n = scenario.group_size() as u64;
        let counts = initial.resolve(num_states, n)?;
        let channels = build_channels(protocol);
        let inner = self.batched.state_from_counts(
            scenario,
            counts,
            vec![0; num_states],
            0,
            scenario.build_rng(),
        );
        Ok(TauLeapState {
            propensities: vec![0.0; channels.len()],
            channels,
            x: Vec::with_capacity(num_states),
            mu: vec![0.0; num_states],
            sigma2: vec![0.0; num_states],
            transitions_dense: vec![0; num_states * num_states],
            transitions: Vec::new(),
            messages: 0,
            exact_steps: 0,
            leaps: 0,
            inner,
        })
    }

    fn step<'s>(&self, state: &'s mut TauLeapState) -> Result<PeriodEvents<'s>> {
        let num_states = self.protocol().num_states();
        state.transitions_dense.fill(0);
        state.transitions.clear();

        // 1. Boundary hooks: identical count-level draws to the batched tier.
        self.batched.apply_failures(&mut state.inner)?;
        self.batched.apply_injections(&mut state.inner)?;

        // 2. Leap from this boundary to the next.
        state.x.clear();
        state.x.extend_from_slice(state.inner.alive_counts());
        let n_f = state.inner.density_n();
        let loss = *state.inner.scenario().loss();
        let period_secs = state.inner.scenario().clock().period_secs();
        let messages_f = expected_messages(self.protocol(), &state.x, n_f, &loss);

        let mut t = 0.0f64;
        while t < period_secs {
            let mut total = 0.0;
            for c in 0..state.channels.len() {
                let a = state.channels[c].propensity(&state.x, n_f, &loss, period_secs);
                state.propensities[c] = a;
                total += a;
            }
            if total <= 0.0 {
                break;
            }

            // Small-count guard: an active channel draining a small pool
            // must be resolved exactly.
            let small = state
                .channels
                .iter()
                .zip(&state.propensities)
                .any(|(ch, &a)| a > 0.0 && state.x[ch.from] < SMALL_COUNT_THRESHOLD);
            if small {
                t = self.exact_burst(state, t, period_secs);
                continue;
            }

            // Cao/Gillespie/Petzold step-size selection: bound each state's
            // expected drift and fluctuation over the leap by max(ε·x_i, 1).
            state.mu.fill(0.0);
            state.sigma2.fill(0.0);
            for (ch, &a) in state.channels.iter().zip(&state.propensities) {
                if a <= 0.0 || ch.from == ch.to {
                    continue;
                }
                state.mu[ch.from] -= a;
                state.mu[ch.to] += a;
                state.sigma2[ch.from] += a;
                state.sigma2[ch.to] += a;
            }
            let mut tau = period_secs - t;
            for i in 0..num_states {
                let bound = (self.epsilon * state.x[i] as f64).max(1.0);
                if state.mu[i] != 0.0 {
                    tau = tau.min(bound / state.mu[i].abs());
                }
                if state.sigma2[i] > 0.0 {
                    tau = tau.min(bound * bound / state.sigma2[i]);
                }
            }

            // Unprofitable leap: a handful of exact events is cheaper and
            // exact.
            if tau * total < MIN_EVENTS_PER_LEAP && tau < period_secs - t {
                t = self.exact_burst(state, t, period_secs);
                continue;
            }

            // Poisson-fire every channel over the leap, capped by the pool
            // each firing drains at application time (the same caps the
            // batched tier applies to its binomial draws).
            for c in 0..state.channels.len() {
                let a = state.propensities[c];
                if a <= 0.0 {
                    continue;
                }
                let ch = &state.channels[c];
                let k = state.inner.rng_mut().poisson(a * tau).min(state.x[ch.from]);
                if k > 0 {
                    state.x[ch.from] -= k;
                    state.x[ch.to] += k;
                    state.transitions_dense[ch.from * num_states + ch.to] += k;
                }
            }
            state.leaps += 1;
            t += tau;
        }

        // 3. Commit boundary counts back into the shared state.
        state.inner.rebase_alive(&state.x);
        let next = state.inner.period() + 1;
        state.inner.set_period(next);
        super::render_sparse_transitions(
            &state.transitions_dense,
            num_states,
            &mut state.transitions,
        );
        state.messages = messages_f.round() as u64;
        Ok(self.events(state))
    }

    fn snapshot<'s>(&self, state: &'s TauLeapState) -> PeriodEvents<'s> {
        self.events(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::ProtocolCompiler;
    use crate::runtime::SsaRuntime;
    use odekit::system::EquationSystemBuilder;

    fn epidemic_protocol() -> Protocol {
        let sys = EquationSystemBuilder::new()
            .vars(["x", "y"])
            .term("x", -1.0, &[("x", 1), ("y", 1)])
            .term("y", 1.0, &[("x", 1), ("y", 1)])
            .build()
            .unwrap();
        ProtocolCompiler::new("epidemic").compile(&sys).unwrap()
    }

    #[test]
    fn epidemic_saturates_and_conserves_counts() {
        let protocol = epidemic_protocol();
        let scenario = Scenario::new(50_000, 80).unwrap().with_seed(13);
        let runtime = TauLeapRuntime::new(protocol);
        let mut state = runtime
            .init(&scenario, &InitialStates::counts(&[49_000, 1_000]))
            .unwrap();
        for _ in 0..scenario.periods() {
            let events = runtime.step(&mut state).unwrap();
            assert_eq!(events.counts.iter().sum::<u64>(), 50_000);
        }
        assert!(
            runtime.snapshot(&state).counts[1] > 45_000,
            "epidemic should saturate"
        );
        assert!(state.leaps() > 0, "large populations should leap");
    }

    #[test]
    fn small_counts_fall_back_to_exact_steps() {
        // A 1-seed epidemic starts with an infected pool far below the
        // threshold: the early dynamics must be resolved by exact bursts.
        let protocol = epidemic_protocol();
        let scenario = Scenario::new(2_000, 60).unwrap().with_seed(17);
        let runtime = TauLeapRuntime::new(protocol);
        let mut state = runtime
            .init(&scenario, &InitialStates::counts(&[1_999, 1]))
            .unwrap();
        for _ in 0..scenario.periods() {
            runtime.step(&mut state).unwrap();
        }
        assert!(state.exact_steps() > 0, "seed regime needs exact steps");
        assert!(
            runtime.snapshot(&state).counts[1] > 1_500,
            "epidemic should still take off"
        );
    }

    #[test]
    fn fallback_runs_are_deterministic_per_seed() {
        let scenario = Scenario::new(2_000, 60).unwrap().with_seed(23);
        let initial = InitialStates::counts(&[1_999, 1]);
        let run = || {
            let runtime = TauLeapRuntime::new(epidemic_protocol());
            let mut state = runtime.init(&scenario, &initial).unwrap();
            for _ in 0..scenario.periods() {
                runtime.step(&mut state).unwrap();
            }
            (
                state.inner.alive_counts().to_vec(),
                state.exact_steps(),
                state.leaps(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn epsilon_is_clamped_and_threaded_from_config() {
        let runtime = TauLeapRuntime::new(epidemic_protocol());
        assert_eq!(runtime.epsilon(), DEFAULT_TAU_EPSILON);
        assert_eq!(runtime.clone().with_epsilon(0.1).epsilon(), 0.1);
        assert_eq!(runtime.clone().with_epsilon(0.0).epsilon(), 1e-4);
        assert_eq!(runtime.clone().with_epsilon(f64::NAN).epsilon(), 0.03);
        let config = RunConfig {
            tau_epsilon: Some(0.2),
            ..RunConfig::default()
        };
        assert_eq!(
            TauLeapRuntime::build(epidemic_protocol(), &config).epsilon(),
            0.2
        );
        assert_eq!(runtime.with_config(config).epsilon(), 0.2);
    }

    #[test]
    fn tracks_ssa_at_large_populations() {
        // One seeded path each; the leaping path must land in the same
        // saturation regime as the exact path on the shared time grid.
        let protocol = epidemic_protocol();
        let n = 20_000u64;
        let scenario = Scenario::new(n as usize, 60).unwrap().with_seed(31);
        let initial = InitialStates::counts(&[n - 1_000, 1_000]);
        let tau = TauLeapRuntime::new(protocol.clone())
            .run(&scenario, &initial)
            .unwrap();
        let ssa = SsaRuntime::new(protocol).run(&scenario, &initial).unwrap();
        let (yt, ys) = (
            tau.state_series("y").unwrap(),
            ssa.state_series("y").unwrap(),
        );
        let max_gap = yt
            .iter()
            .zip(&ys)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(max_gap < 0.1 * n as f64, "max gap {max_gap}");
    }

    #[test]
    fn rejects_incompatible_scenarios() {
        let runtime = TauLeapRuntime::new(epidemic_protocol());
        let initial = InitialStates::counts(&[99, 1]);
        let transported = Scenario::new(100, 10)
            .unwrap()
            .with_transport(netsim::TransportConfig::default())
            .unwrap();
        assert!(runtime.init(&transported, &initial).is_err());
        let sharded = Scenario::new(100, 10)
            .unwrap()
            .with_topology(netsim::Topology::sharded(4, 0.05).unwrap());
        assert!(runtime.init(&sharded, &initial).is_err());
    }
}
