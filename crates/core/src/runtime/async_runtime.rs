//! The asynchronous message-passing runtime: every protocol contact is an
//! actual queued message.
//!
//! The period-synchronized runtimes resolve a contact instantaneously — a
//! probability computed from the current counts, one coin. Here a contact is
//! a *message*: sent into a [`Transport`], delayed by the link's sampled
//! latency, possibly dropped by loss or a partition window, and only on
//! resolution does the executing process learn the outcome and continue its
//! action list. Time is virtual (seconds on the scenario's
//! [`PeriodClock`](netsim::PeriodClock)); each `step` advances one protocol
//! period of it, interleaving process wake-ups and message deliveries in a
//! deterministic event order, so a seeded run replays bit-identically.
//!
//! Execution model:
//!
//! * every process owns a fixed uniform **wake offset** inside the period;
//!   at its wake it starts executing its current state's action list as a
//!   *chain* — local actions (`Flip`) resolve immediately, contact actions
//!   suspend the chain behind a probe message;
//! * a chain holds at most **one message in flight**; its resolution either
//!   continues the chain (next required contact, next sample, next action)
//!   or ends it (the process transitioned, or the list ran out);
//! * a process whose chain is still waiting on a slow response **skips its
//!   next wake** — that is precisely how link latency slows a protocol down:
//!   fewer action attempts per unit of virtual time, never altered
//!   per-attempt probabilities;
//! * with zero latency and no loss every chain completes within its wake
//!   instant, so a period degenerates to a sequential sweep in wake order —
//!   the agent runtime's semantics with a (fixed, uniformly random)
//!   visiting permutation, which is why the ensemble-mean equivalence
//!   pinned in `tests/property.rs` holds.
//!
//! Contact semantics mirror the agent runtime's: a probe is addressed to a
//! uniform member of the maximal group and *hits* when it is delivered,
//! survives the scenario's per-contact loss, and finds its target alive and
//! in the wanted state — the target's state is read at **delivery time**,
//! not send time. `SampleAny` probes until the first hit and then pays one
//! `prob` coin (fire probability `prob·(1−(1−hit)^k)`, as in the agent
//! runtime); `PushSample` treats a self-addressed probe as a miss (the
//! executor is not a valid victim); `Tokenize` picks its consumer uniformly
//! among alive members of the token state and forwards the token as one
//! more message.
//!
//! Initial states are assigned in **contiguous index blocks** (first
//! `counts[0]` processes in state 0, and so on) rather than shuffled: under
//! uniform mixing the assignment is exchangeable so the dynamics are
//! unchanged, and it gives segmented transports a deterministic placement —
//! "the seeds live in the last segment" is expressible from counts alone.
//!
//! Two accounting differences from the agent runtime, by design:
//! [`PeriodEvents::messages`] counts messages *actually sent* (the agent
//! runtime bills a state's full per-period message budget up front), and
//! [`PeriodEvents::membership`] is `None` — per-process identity exists
//! internally, but the membership view belongs to the agent runtime.

use super::inject::{self, InjectionPoint};
use super::observer::{default_observers, TransportProbe};
use super::simulation::drive;
use super::{InitialStates, PeriodEvents, RunConfig, RunResult, Runtime};
use crate::action::Action;
use crate::error::CoreError;
use crate::state_machine::{Protocol, StateId};
use crate::Result;
use netsim::adversary::{AdversaryView, Injection, TransportGauges};
use netsim::transport::{
    Delivery, InProcTransport, Transport, TransportBackend, TransportConfig, TransportStats,
    UdsTransport,
};
use netsim::{Group, ProcessId, Rng, Scenario};
use std::sync::Arc;

/// Executes a protocol as asynchronous message passing over a virtual-time
/// transport (see the module docs above for the execution model).
///
/// Selected by [`Simulation::run_auto`](super::Simulation::run_auto) whenever
/// the scenario carries a [`TransportConfig`]
/// ([`Scenario::with_transport`]); a scenario without one runs on the
/// implicit zero-latency lossless transport, which reproduces the
/// synchronized runtimes' ensemble means.
///
/// # Examples
///
/// ```
/// use dpde_core::{ProtocolCompiler, runtime::{AsyncRuntime, InitialStates}};
/// use netsim::transport::{LatencyModel, LinkModel, TransportConfig};
/// use netsim::Scenario;
/// use odekit::EquationSystemBuilder;
///
/// let sys = EquationSystemBuilder::new()
///     .vars(["x", "y"])
///     .term("x", -1.0, &[("x", 1), ("y", 1)])
///     .term("y", 1.0, &[("x", 1), ("y", 1)])
///     .build()?;
/// let protocol = ProtocolCompiler::new("epidemic").compile(&sys)?;
/// // A uniform link: 30 s mean exponential latency, 1 % drops.
/// let link = LinkModel::new(LatencyModel::Exponential { mean: 30.0 }, 0.01)?;
/// let scenario = Scenario::new(500, 40)?
///     .with_seed(7)
///     .with_transport(TransportConfig::new(link))?;
/// let result = AsyncRuntime::new(protocol).run(&scenario, &InitialStates::counts(&[499, 1]))?;
/// let infected = result.final_counts().expect("run recorded periods")[1];
/// assert!(infected > 450.0, "epidemic should still saturate, got {infected}");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct AsyncRuntime {
    protocol: Protocol,
    config: RunConfig,
    compiled: Compiled,
}

/// The protocol's action lists flattened for the event loop (the agent
/// runtime's dispatch-table idea, with per-chain progress instead of a
/// per-period sweep).
#[derive(Debug, Clone)]
struct Compiled {
    actions: Vec<CAction>,
    /// `(start, end)` action range per state.
    meta: Vec<(u32, u32)>,
    /// Flattened `required` state lists referenced by Sample/Tokenize.
    required: Vec<u32>,
}

#[derive(Debug, Clone, Copy)]
enum CAction {
    Flip {
        /// `1 / ln(1 − prob)` for geometric-run sampling (see the agent
        /// runtime's `CompiledAction::Flip`).
        geo_scale: f64,
        to: u32,
    },
    Sample {
        req_start: u32,
        req_end: u32,
        prob: f64,
        to: u32,
    },
    SampleAny {
        target: u32,
        samples: u32,
        prob: f64,
        to: u32,
    },
    Push {
        target: u32,
        samples: u32,
        prob: f64,
        to: u32,
    },
    Tokenize {
        req_start: u32,
        req_end: u32,
        prob: f64,
        token_state: u32,
        to: u32,
    },
}

impl Compiled {
    fn compile(protocol: &Protocol) -> Self {
        let mut actions = Vec::new();
        let mut meta = Vec::with_capacity(protocol.num_states());
        let mut required = Vec::new();
        let flatten = |required: &mut Vec<u32>, list: &[StateId]| {
            let start = required.len() as u32;
            required.extend(list.iter().map(|s| s.index() as u32));
            (start, required.len() as u32)
        };
        for state in 0..protocol.num_states() {
            let start = actions.len() as u32;
            for action in protocol.actions(StateId::new(state)) {
                actions.push(match action {
                    Action::Flip { prob, to } => CAction::Flip {
                        geo_scale: if *prob <= 0.0 {
                            f64::NEG_INFINITY
                        } else {
                            1.0 / (1.0 - prob).ln()
                        },
                        to: to.index() as u32,
                    },
                    Action::Sample {
                        required: req,
                        prob,
                        to,
                    } => {
                        let (req_start, req_end) = flatten(&mut required, req);
                        CAction::Sample {
                            req_start,
                            req_end,
                            prob: *prob,
                            to: to.index() as u32,
                        }
                    }
                    Action::SampleAny {
                        target_state,
                        samples,
                        prob,
                        to,
                    } => CAction::SampleAny {
                        target: target_state.index() as u32,
                        samples: *samples,
                        prob: *prob,
                        to: to.index() as u32,
                    },
                    Action::PushSample {
                        target_state,
                        samples,
                        prob,
                        to,
                    } => CAction::Push {
                        target: target_state.index() as u32,
                        samples: *samples,
                        prob: *prob,
                        to: to.index() as u32,
                    },
                    Action::Tokenize {
                        required: req,
                        prob,
                        token_state,
                        to,
                    } => {
                        let (req_start, req_end) = flatten(&mut required, req);
                        CAction::Tokenize {
                            req_start,
                            req_end,
                            prob: *prob,
                            token_state: token_state.index() as u32,
                            to: to.index() as u32,
                        }
                    }
                });
            }
            meta.push((start, actions.len() as u32));
        }
        Compiled {
            actions,
            meta,
            required,
        }
    }
}

/// Where a process's current chain is suspended, waiting for one in-flight
/// message to resolve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// No chain running: the process will start one at its next wake.
    Idle,
    /// `Sample` action `idx`, probing `required[req_pos]`.
    Sample { idx: u32, req_pos: u32 },
    /// `SampleAny` action `idx`, `remaining` probes left (current included).
    SampleAny { idx: u32, remaining: u32 },
    /// `PushSample` action `idx`, `remaining` probes left (current included).
    Push { idx: u32, remaining: u32 },
    /// `Tokenize` action `idx`, probing its fire condition.
    TokenFire { idx: u32, req_pos: u32 },
    /// `Tokenize` action `idx`, token message on its way to the consumer.
    TokenSend { idx: u32 },
}

/// Message payload layout: `kind` (4 bits) | chain generation (28 bits) |
/// action index (32 bits). The generation counter invalidates in-flight
/// messages when their sender crashes: a stale response must not continue a
/// chain the crash already killed.
const GEN_MASK: u32 = 0x0FFF_FFFF;

fn encode(kind: u64, gen: u32, idx: usize) -> u64 {
    (kind << 60) | (u64::from(gen & GEN_MASK) << 32) | idx as u64
}

fn decode(payload: u64) -> (u32, usize) {
    ((payload >> 32) as u32 & GEN_MASK, payload as u32 as usize)
}

const KIND_PROBE: u64 = 1;
const KIND_PUSH: u64 = 2;
const KIND_TOKEN: u64 = 3;

/// The transport actually driving the run: the virtual-time in-process
/// broker, or the Unix-datagram-socket transport running each population
/// segment as a real worker process ([`TransportBackend`] on the scenario's
/// [`TransportConfig`] selects which). Both share one event-loop interface,
/// so the execution model above is backend-agnostic.
#[derive(Debug)]
enum RunTransport {
    InProc(Box<InProcTransport>),
    Uds(Box<UdsTransport>),
}

impl RunTransport {
    fn build(config: TransportConfig, n: usize) -> Result<Self> {
        Ok(match config.backend() {
            TransportBackend::InProcess => {
                RunTransport::InProc(Box::new(InProcTransport::new(config, n)))
            }
            TransportBackend::UnixSocket(_) => {
                RunTransport::Uds(Box::new(UdsTransport::new(config, n)?))
            }
        })
    }

    fn config(&self) -> &TransportConfig {
        match self {
            RunTransport::InProc(t) => t.config(),
            RunTransport::Uds(t) => t.config(),
        }
    }

    fn stats(&self) -> Arc<TransportStats> {
        match self {
            RunTransport::InProc(t) => t.stats(),
            RunTransport::Uds(t) => t.stats(),
        }
    }

    /// Takes the worker for `segment` down. On the socket backend this is a
    /// real SIGKILL plus segment parking; in process the failure is purely
    /// logical (the per-process crash bookkeeping in the caller carries the
    /// whole effect), keeping both backends injectable by the same adversary.
    fn kill_segment(&mut self, segment: usize) {
        match self {
            RunTransport::InProc(_) => {}
            RunTransport::Uds(t) => t.kill_segment(segment),
        }
    }

    /// Brings the worker for `segment` back: a generation-bumped respawn on
    /// the socket backend, a no-op in process.
    fn revive_segment(&mut self, segment: usize) -> Result<()> {
        match self {
            RunTransport::InProc(_) => Ok(()),
            RunTransport::Uds(t) => Ok(t.revive_segment(segment)?),
        }
    }
}

impl Transport for RunTransport {
    fn send(
        &mut self,
        src: u32,
        dst: u32,
        payload: u64,
        now: f64,
        period: u64,
        rng: &mut Rng,
    ) -> f64 {
        match self {
            RunTransport::InProc(t) => t.send(src, dst, payload, now, period, rng),
            RunTransport::Uds(t) => t.send(src, dst, payload, now, period, rng),
        }
    }

    fn next_ready(&mut self, until: f64) -> Option<Delivery> {
        match self {
            RunTransport::InProc(t) => t.next_ready(until),
            RunTransport::Uds(t) => t.next_ready(until),
        }
    }

    fn next_time(&self) -> Option<f64> {
        match self {
            RunTransport::InProc(t) => t.next_time(),
            RunTransport::Uds(t) => t.next_time(),
        }
    }

    fn queue_depth(&self) -> usize {
        match self {
            RunTransport::InProc(t) => t.queue_depth(),
            RunTransport::Uds(t) => t.queue_depth(),
        }
    }
}

/// A worker restart scheduled by [`Injection::KillWorker`] under
/// supervision: at period `due` the listed victims — the segment members
/// that were alive at the kill's period boundary, with the states the
/// boundary checkpoint recorded for them — rejoin the group.
#[derive(Debug, Clone)]
struct PendingRestore {
    due: u64,
    segment: usize,
    /// `(process, checkpointed state)` pairs to recover.
    victims: Vec<(u32, u32)>,
}

/// The mutable execution state of an [`AsyncRuntime`] run.
#[derive(Debug)]
pub struct AsyncState {
    scenario: Scenario,
    rng: Rng,
    transport: RunTransport,
    group: Group,
    /// Current protocol state per process.
    states: Vec<u32>,
    counts: Vec<u64>,
    counts_alive: Vec<u64>,
    /// Per-process wake offset within a period, in `[0, period_secs)`.
    offsets: Vec<f64>,
    /// Process ids sorted by wake offset — the deterministic wake order,
    /// computed once (offsets never change).
    wake_order: Vec<u32>,
    pending: Vec<Phase>,
    /// Per-process chain generation (bumped on crash, embedded in payloads).
    chain_id: Vec<u32>,
    /// The state whose action list the current chain is executing.
    chain_origin: Vec<u32>,
    /// Per-flip-action geometric "tails left" counters.
    flip_skips: Vec<u64>,
    period: u64,
    period_secs: f64,
    has_liveness_events: bool,
    messages: u64,
    transitions_dense: Vec<u64>,
    transitions: Vec<(StateId, StateId, u64)>,
    probe: TransportProbe,
    /// The scenario's adversary, forked for this run (absent for
    /// adversary-free scenarios). Uniquely here the adversary's view carries
    /// live transport gauges alongside the counts.
    injector: Option<InjectionPoint>,
    /// Worker restarts scheduled by supervised [`Injection::KillWorker`]s,
    /// applied at their due period boundary before anything else.
    pending_restores: Vec<PendingRestore>,
}

impl AsyncState {
    /// The next period to execute (also the number of periods executed).
    pub fn period(&self) -> u64 {
        self.period
    }

    /// The current protocol state of each process (index = process id).
    pub fn process_states(&self) -> &[u32] {
        &self.states
    }

    /// A cloneable, thread-safe handle onto the transport's live statistics
    /// (queue depth, per-link counters, latency windows) — readable while
    /// the run executes.
    pub fn transport_stats(&self) -> Arc<TransportStats> {
        self.transport.stats()
    }
}

/// Everything the event handlers touch, borrowed once per `step`.
struct Ctx<'a> {
    rng: &'a mut Rng,
    transport: &'a mut RunTransport,
    group: &'a Group,
    states: &'a mut [u32],
    counts: &'a mut [u64],
    counts_alive: &'a mut [u64],
    pending: &'a mut [Phase],
    chain_id: &'a [u32],
    chain_origin: &'a mut [u32],
    flip_skips: &'a mut [u64],
    transitions_dense: &'a mut [u64],
    messages: &'a mut u64,
    n: usize,
    num_states: usize,
    contact_fail: f64,
    check_alive: bool,
    period: u64,
}

impl Ctx<'_> {
    /// Moves the alive process `p` to `to`, maintaining counts and the dense
    /// transition buffer.
    fn move_alive(&mut self, p: usize, to: usize) {
        let from = self.states[p] as usize;
        if from == to {
            return;
        }
        self.counts[from] -= 1;
        self.counts[to] += 1;
        self.counts_alive[from] -= 1;
        self.counts_alive[to] += 1;
        self.states[p] = to as u32;
        self.transitions_dense[from * self.num_states + to] += 1;
    }

    fn is_alive(&self, p: usize) -> bool {
        !self.check_alive || self.group.is_alive_unchecked(p)
    }

    /// Sends one chain message from `p` to `dst` at virtual time `now`.
    fn send(&mut self, p: usize, dst: usize, kind: u64, idx: usize, now: f64) {
        let payload = encode(kind, self.chain_id[p], idx);
        self.transport
            .send(p as u32, dst as u32, payload, now, self.period, self.rng);
        *self.messages += 1;
    }

    /// Sends a probe to a uniform member of the maximal group (self
    /// included — a contact aimed at yourself or at a crashed process is
    /// fruitless, exactly as in the agent runtime).
    fn send_probe(&mut self, p: usize, kind: u64, idx: usize, now: f64) {
        let dst = self.rng.index(self.n);
        self.send(p, dst, kind, idx, now);
    }

    /// Picks a uniformly random alive member of `state` (rejection sampling
    /// with a k-th-member fallback, mirroring the agent runtime's
    /// `random_alive_in_state`), or `None` if no alive member exists.
    fn random_alive_in_state(&mut self, state: usize) -> Option<usize> {
        let alive = self.counts_alive[state];
        if alive == 0 {
            return None;
        }
        for _ in 0..32 {
            let q = self.rng.index(self.n);
            if self.states[q] as usize == state && self.is_alive(q) {
                return Some(q);
            }
        }
        let k = self.rng.index(alive as usize);
        (0..self.n)
            .filter(|&q| self.states[q] as usize == state && self.is_alive(q))
            .nth(k)
    }
}

/// Geometric inverse-CDF with precomputed `geo_scale = 1 / ln(1 − prob)`.
#[inline]
fn draw_geometric(rng: &mut Rng, geo_scale: f64) -> u64 {
    let ln1mu = (1.0 - rng.next_f64()).max(f64::MIN_POSITIVE).ln();
    (ln1mu * geo_scale) as u64
}

impl AsyncRuntime {
    /// Creates a runtime for the given protocol with the default
    /// [`RunConfig`].
    pub fn new(protocol: Protocol) -> Self {
        let compiled = Compiled::compile(&protocol);
        AsyncRuntime {
            protocol,
            config: RunConfig::default(),
            compiled,
        }
    }

    /// Replaces the run configuration.
    #[must_use]
    pub fn with_config(mut self, config: RunConfig) -> Self {
        self.config = config;
        self
    }

    /// The protocol being executed.
    pub fn protocol(&self) -> &Protocol {
        &self.protocol
    }

    /// Runs the protocol under the given scenario with the standard
    /// recording set; use [`Simulation`](super::Simulation) for opt-in
    /// recording (e.g. [`LiveMetrics`](super::LiveMetrics)).
    ///
    /// # Errors
    ///
    /// Returns configuration errors (mismatched initial distribution,
    /// invalid protocol or transport) and propagates scenario errors.
    pub fn run(&self, scenario: &Scenario, initial: &InitialStates) -> Result<RunResult> {
        drive(self, scenario, initial, &mut default_observers())
    }

    fn events<'s>(&self, state: &'s AsyncState) -> PeriodEvents<'s> {
        PeriodEvents {
            period: state.period,
            counts: &state.counts,
            transitions: &state.transitions,
            messages: state.messages,
            alive: state.group.alive_count() as u64,
            counts_alive: Some(&state.counts_alive),
            membership: None,
            shard_counts_alive: None,
            transport: Some(state.probe),
            injections: inject::records_of(&state.injector),
            virtual_time: None,
        }
    }

    fn apply_injections(&self, state: &mut AsyncState) -> Result<()> {
        let Some(mut injector) = state.injector.take() else {
            return Ok(());
        };
        let stats = state.transport.stats();
        // Per-segment alive counts give worker-striking adversaries their
        // targeting signal (the same counts on either backend).
        let segments_alive: Vec<u64> = {
            let config = state.transport.config();
            let n = state.scenario.group_size();
            let mut per_segment = vec![0u64; config.segments()];
            for p in 0..n {
                if state.group.is_alive_unchecked(p) {
                    per_segment[config.segment_of(p, n)] += 1;
                }
            }
            per_segment
        };
        let view = AdversaryView {
            period: state.period,
            counts_alive: &state.counts_alive,
            alive: state.group.alive_count() as u64,
            shard_counts_alive: None,
            transport: Some(TransportGauges {
                queue_depth: state.transport.queue_depth() as u64,
                sent: stats.sent(),
                delivered: stats.delivered(),
                dropped: stats.dropped(),
            }),
            segments_alive: Some(&segments_alive),
        };
        let planned = match injector.plan(&view) {
            Ok(planned) => planned,
            Err(e) => {
                state.injector = Some(injector);
                return Err(e);
            }
        };
        for injection in planned {
            match self.apply_one_injection(state, injection) {
                Ok(victims) => injector.record(state.period, injection, victims),
                Err(e) => {
                    state.injector = Some(injector);
                    return Err(e);
                }
            }
        }
        state.injector = Some(injector);
        Ok(())
    }

    /// Applies one validated injection to the per-id run state, returning the
    /// number of affected processes. Crashes invalidate the victim's chain
    /// exactly like a scheduled crash: the generation counter bumps so
    /// in-flight responses are discarded on arrival.
    fn apply_one_injection(&self, state: &mut AsyncState, injection: Injection) -> Result<u64> {
        match injection {
            Injection::CrashUniform { fraction } => {
                // Bit-identical to the scheduled massive-failure path.
                let down = state
                    .group
                    .crash_random_fraction(&mut state.rng, fraction)?;
                for id in &down {
                    let p = id.index();
                    state.counts_alive[state.states[p] as usize] -= 1;
                    state.chain_id[p] = state.chain_id[p].wrapping_add(1);
                    state.pending[p] = Phase::Idle;
                }
                Ok(down.len() as u64)
            }
            Injection::CrashState { state: s, fraction } => {
                if s >= self.protocol.num_states() {
                    return Err(CoreError::InvalidConfig {
                        name: "adversary",
                        reason: format!(
                            "injection targets state {s}, but the protocol has only {} states",
                            self.protocol.num_states()
                        ),
                    });
                }
                let pool: Vec<usize> = (0..state.scenario.group_size())
                    .filter(|&p| state.states[p] as usize == s && state.group.is_alive_unchecked(p))
                    .collect();
                let k = inject::victim_count(fraction, pool.len() as u64) as usize;
                let chosen =
                    netsim::stochastic::sample_without_replacement(&mut state.rng, pool.len(), k);
                for idx in chosen {
                    let p = pool[idx];
                    let changed = state.group.crash(ProcessId(p))?;
                    debug_assert!(changed);
                    state.counts_alive[state.states[p] as usize] -= 1;
                    state.chain_id[p] = state.chain_id[p].wrapping_add(1);
                    state.pending[p] = Phase::Idle;
                }
                Ok(k as u64)
            }
            Injection::RecoverUniform { fraction } => {
                let pool: Vec<usize> = (0..state.scenario.group_size())
                    .filter(|&p| !state.group.is_alive_unchecked(p))
                    .collect();
                let k = inject::victim_count(fraction, pool.len() as u64) as usize;
                let chosen =
                    netsim::stochastic::sample_without_replacement(&mut state.rng, pool.len(), k);
                for idx in chosen {
                    let p = pool[idx];
                    let changed = state.group.recover(ProcessId(p))?;
                    debug_assert!(changed);
                    if let Some(rejoin) = self.config.rejoin_state {
                        let from = state.states[p] as usize;
                        if from != rejoin.index() {
                            state.counts[from] -= 1;
                            state.counts[rejoin.index()] += 1;
                            state.states[p] = rejoin.index() as u32;
                        }
                    }
                    state.counts_alive[state.states[p] as usize] += 1;
                }
                Ok(k as u64)
            }
            Injection::KillWorker { segment } => {
                let n = state.scenario.group_size();
                let segments = state.transport.config().segments();
                if segment >= segments {
                    return Err(CoreError::InvalidConfig {
                        name: "adversary",
                        reason: format!(
                            "injection kills worker {segment}, but the transport has only \
                             {segments} segments"
                        ),
                    });
                }
                // The victims are the segment's currently-alive members.
                // Their states have not changed since the period boundary
                // (the event loop has not run yet), so this list doubles as
                // the period-boundary checkpoint a supervised restart
                // recovers from.
                let victims: Vec<(u32, u32)> = {
                    let config = state.transport.config();
                    (0..n)
                        .filter(|&p| {
                            config.segment_of(p, n) == segment && state.group.is_alive_unchecked(p)
                        })
                        .map(|p| (p as u32, state.states[p]))
                        .collect()
                };
                for &(p, _) in &victims {
                    let p = p as usize;
                    let changed = state.group.crash(ProcessId(p))?;
                    debug_assert!(changed);
                    state.counts_alive[state.states[p] as usize] -= 1;
                    state.chain_id[p] = state.chain_id[p].wrapping_add(1);
                    state.pending[p] = Phase::Idle;
                }
                // On the socket backend this is a real SIGKILL; either way
                // the segment's in-flight traffic is now garbage (the
                // generation bumps above discard any stale responses).
                state.transport.kill_segment(segment);
                let count = victims.len() as u64;
                if let Some(delay) = state.transport.config().supervision() {
                    // `due <= period` fires at a boundary, so a zero delay
                    // means "restart at the next period".
                    state.pending_restores.push(PendingRestore {
                        due: state.period + delay,
                        segment,
                        victims,
                    });
                }
                Ok(count)
            }
            // `Injection` is non_exhaustive: shard-targeted (and any future)
            // injections are rejected explicitly rather than silently skipped.
            unsupported => Err(inject::unsupported_injection("async", &unsupported)),
        }
    }

    /// Applies every pending supervised worker restart that has come due:
    /// the worker respawns (a generation-bumped process on the socket
    /// backend) and its kill victims rejoin with the states the kill-time
    /// period-boundary checkpoint recorded — unless something else (e.g. a
    /// `RecoverUniform`) already brought them back.
    fn apply_due_restores(&self, state: &mut AsyncState) -> Result<()> {
        if state.pending_restores.is_empty() {
            return Ok(());
        }
        let period = state.period;
        let mut i = 0;
        while i < state.pending_restores.len() {
            if state.pending_restores[i].due > period {
                i += 1;
                continue;
            }
            let restore = state.pending_restores.remove(i);
            state.transport.revive_segment(restore.segment)?;
            for (p, chk_state) in restore.victims {
                let p = p as usize;
                if state.group.is_alive_unchecked(p) {
                    continue;
                }
                let changed = state.group.recover(ProcessId(p))?;
                debug_assert!(changed);
                let from = state.states[p] as usize;
                let to = chk_state as usize;
                if from != to {
                    state.counts[from] -= 1;
                    state.counts[to] += 1;
                    state.states[p] = chk_state;
                }
                state.counts_alive[to] += 1;
            }
        }
        Ok(())
    }

    /// Walks `p`'s action list (for its chain-origin state) from `start_idx`
    /// at virtual time `now`: local actions resolve inline, the first
    /// contact action suspends the chain behind a message, and a transition
    /// or list exhaustion ends the chain.
    fn advance_chain(&self, ctx: &mut Ctx<'_>, p: usize, start_idx: usize, now: f64) {
        let origin = ctx.chain_origin[p] as usize;
        let (_, end) = self.compiled.meta[origin];
        let mut idx = start_idx;
        while idx < end as usize {
            match self.compiled.actions[idx] {
                CAction::Flip { geo_scale, to } => {
                    let skip = &mut ctx.flip_skips[idx];
                    if *skip == 0 {
                        *skip = draw_geometric(ctx.rng, geo_scale);
                        ctx.move_alive(p, to as usize);
                        ctx.pending[p] = Phase::Idle;
                        return;
                    }
                    *skip -= 1;
                }
                CAction::Sample {
                    req_start,
                    req_end,
                    prob,
                    to,
                } => {
                    if req_start == req_end {
                        // Contact-free sample degenerates to a coin.
                        if ctx.rng.chance(prob) {
                            ctx.move_alive(p, to as usize);
                            ctx.pending[p] = Phase::Idle;
                            return;
                        }
                    } else {
                        ctx.pending[p] = Phase::Sample {
                            idx: idx as u32,
                            req_pos: 0,
                        };
                        ctx.send_probe(p, KIND_PROBE, idx, now);
                        return;
                    }
                }
                CAction::SampleAny { samples, .. } => {
                    ctx.pending[p] = Phase::SampleAny {
                        idx: idx as u32,
                        remaining: samples.max(1),
                    };
                    ctx.send_probe(p, KIND_PROBE, idx, now);
                    return;
                }
                CAction::Push { samples, .. } => {
                    ctx.pending[p] = Phase::Push {
                        idx: idx as u32,
                        remaining: samples.max(1),
                    };
                    ctx.send_probe(p, KIND_PUSH, idx, now);
                    return;
                }
                CAction::Tokenize {
                    req_start,
                    req_end,
                    prob,
                    token_state,
                    ..
                } => {
                    if req_start == req_end {
                        if ctx.rng.chance(prob)
                            && self.launch_token(ctx, p, idx, token_state as usize, now)
                        {
                            return;
                        }
                    } else {
                        ctx.pending[p] = Phase::TokenFire {
                            idx: idx as u32,
                            req_pos: 0,
                        };
                        ctx.send_probe(p, KIND_PROBE, idx, now);
                        return;
                    }
                }
            }
            idx += 1;
        }
        ctx.pending[p] = Phase::Idle;
    }

    /// Fired `Tokenize`: picks the consumer and sends the token. Returns
    /// `false` (chain continues past the action) when no alive consumer
    /// exists — the paper's "if no processes are in state x, the token is
    /// dropped".
    fn launch_token(
        &self,
        ctx: &mut Ctx<'_>,
        p: usize,
        idx: usize,
        token_state: usize,
        now: f64,
    ) -> bool {
        let Some(consumer) = ctx.random_alive_in_state(token_state) else {
            return false;
        };
        ctx.pending[p] = Phase::TokenSend { idx: idx as u32 };
        ctx.send(p, consumer, KIND_TOKEN, idx, now);
        true
    }

    /// Resolves one message: continues (or abandons) the sender's chain.
    fn on_delivery(&self, ctx: &mut Ctx<'_>, d: Delivery) {
        let p = d.src as usize;
        let (gen, _idx) = decode(d.payload);
        // Stale generation: the sender crashed (and possibly recovered)
        // since this message left — the chain it belonged to is dead.
        if gen != (ctx.chain_id[p] & GEN_MASK) {
            return;
        }
        let phase = ctx.pending[p];
        if phase == Phase::Idle {
            return;
        }
        // The executor was moved by someone else (push victim, token
        // consumer) while its chain was in flight: the chain belongs to a
        // state the process is no longer in, so it is abandoned.
        if ctx.states[p] != ctx.chain_origin[p] {
            ctx.pending[p] = Phase::Idle;
            return;
        }
        let now = d.deliver_at;
        let dst = d.dst as usize;
        // A contact "hits" when the message arrived, survived the scenario's
        // per-contact loss, and found its target alive. The target's state
        // is read below, at delivery time.
        let contact = d.delivered && !ctx.rng.chance(ctx.contact_fail) && ctx.is_alive(dst);
        match phase {
            Phase::Idle => unreachable!("filtered above"),
            Phase::Sample { idx, req_pos } => {
                let CAction::Sample {
                    req_start,
                    req_end,
                    prob,
                    to,
                } = self.compiled.actions[idx as usize]
                else {
                    unreachable!("phase points at a Sample action");
                };
                let wanted = self.compiled.required[(req_start + req_pos) as usize];
                if contact && ctx.states[dst] == wanted {
                    if req_start + req_pos + 1 < req_end {
                        ctx.pending[p] = Phase::Sample {
                            idx,
                            req_pos: req_pos + 1,
                        };
                        ctx.send_probe(p, KIND_PROBE, idx as usize, now);
                        return;
                    }
                    if ctx.rng.chance(prob) {
                        ctx.move_alive(p, to as usize);
                        ctx.pending[p] = Phase::Idle;
                        return;
                    }
                }
                self.advance_chain(ctx, p, idx as usize + 1, now);
            }
            Phase::SampleAny { idx, remaining } => {
                let CAction::SampleAny {
                    target, prob, to, ..
                } = self.compiled.actions[idx as usize]
                else {
                    unreachable!("phase points at a SampleAny action");
                };
                if contact && ctx.states[dst] == target {
                    // First hit found: one `prob` coin decides the whole
                    // action (fire probability prob·(1−(1−hit)^k), matching
                    // the agent runtime's collapsed form).
                    if ctx.rng.chance(prob) {
                        ctx.move_alive(p, to as usize);
                        ctx.pending[p] = Phase::Idle;
                        return;
                    }
                } else if remaining > 1 {
                    ctx.pending[p] = Phase::SampleAny {
                        idx,
                        remaining: remaining - 1,
                    };
                    ctx.send_probe(p, KIND_PROBE, idx as usize, now);
                    return;
                }
                self.advance_chain(ctx, p, idx as usize + 1, now);
            }
            Phase::Push { idx, remaining } => {
                let CAction::Push {
                    target, prob, to, ..
                } = self.compiled.actions[idx as usize]
                else {
                    unreachable!("phase points at a Push action");
                };
                // The executor is not a valid victim; a self-addressed
                // probe is a miss (per-probe hit probability avail/N).
                if contact && dst != p && ctx.states[dst] == target && ctx.rng.chance(prob) {
                    ctx.move_alive(dst, to as usize);
                }
                if remaining > 1 {
                    ctx.pending[p] = Phase::Push {
                        idx,
                        remaining: remaining - 1,
                    };
                    ctx.send_probe(p, KIND_PUSH, idx as usize, now);
                    return;
                }
                self.advance_chain(ctx, p, idx as usize + 1, now);
            }
            Phase::TokenFire { idx, req_pos } => {
                let CAction::Tokenize {
                    req_start,
                    req_end,
                    prob,
                    token_state,
                    ..
                } = self.compiled.actions[idx as usize]
                else {
                    unreachable!("phase points at a Tokenize action");
                };
                if contact
                    && ctx.states[dst] == self.compiled.required[(req_start + req_pos) as usize]
                {
                    if req_start + req_pos + 1 < req_end {
                        ctx.pending[p] = Phase::TokenFire {
                            idx,
                            req_pos: req_pos + 1,
                        };
                        ctx.send_probe(p, KIND_PROBE, idx as usize, now);
                        return;
                    }
                    if ctx.rng.chance(prob)
                        && self.launch_token(ctx, p, idx as usize, token_state as usize, now)
                    {
                        return;
                    }
                }
                self.advance_chain(ctx, p, idx as usize + 1, now);
            }
            Phase::TokenSend { idx } => {
                let CAction::Tokenize {
                    token_state, to, ..
                } = self.compiled.actions[idx as usize]
                else {
                    unreachable!("phase points at a Tokenize action");
                };
                // The consumer moves if the token arrived and it still is in
                // the token state; either way the executor's list continues
                // (Tokenize never moves the executor).
                if contact && ctx.states[dst] == token_state {
                    ctx.move_alive(dst, to as usize);
                }
                self.advance_chain(ctx, p, idx as usize + 1, now);
            }
        }
    }
}

impl Runtime for AsyncRuntime {
    type State = AsyncState;

    fn build(protocol: Protocol, config: &RunConfig) -> Self {
        AsyncRuntime::new(protocol).with_config(config.clone())
    }

    fn protocol(&self) -> &Protocol {
        &self.protocol
    }

    fn init(&self, scenario: &Scenario, initial: &InitialStates) -> Result<AsyncState> {
        self.protocol.validate()?;
        super::reject_sharded(scenario, "async")?;
        let n = scenario.group_size();
        let num_states = self.protocol.num_states();
        let counts = initial.resolve(num_states, n as u64)?;
        let transport_config = scenario
            .transport()
            .cloned()
            .unwrap_or_else(TransportConfig::default);
        if transport_config.segments() > n {
            return Err(CoreError::InvalidConfig {
                name: "transport",
                reason: format!(
                    "{} transport segments cannot partition a group of {n} processes",
                    transport_config.segments()
                ),
            });
        }
        let mut rng = scenario.build_rng();
        let group = scenario.build_group();

        // Contiguous block assignment (see the module docs): deterministic
        // placement for segmented transports, exchangeable under mixing.
        let mut states = Vec::with_capacity(n);
        for (state, &count) in counts.iter().enumerate() {
            states.extend(std::iter::repeat(state as u32).take(count as usize));
        }
        let mut counts_alive = vec![0u64; num_states];
        for (p, &s) in states.iter().enumerate() {
            if group.is_alive_unchecked(p) {
                counts_alive[s as usize] += 1;
            }
        }

        let period_secs = scenario.clock().period_secs();
        let offsets: Vec<f64> = (0..n).map(|_| rng.uniform(0.0, period_secs)).collect();
        let mut wake_order: Vec<u32> = (0..n as u32).collect();
        wake_order.sort_by(|&a, &b| {
            offsets[a as usize]
                .total_cmp(&offsets[b as usize])
                .then(a.cmp(&b))
        });
        let flip_skips = self
            .compiled
            .actions
            .iter()
            .map(|a| match a {
                CAction::Flip { geo_scale, .. } => draw_geometric(&mut rng, *geo_scale),
                _ => 0,
            })
            .collect();

        Ok(AsyncState {
            transport: RunTransport::build(transport_config, n)?,
            rng,
            group,
            states,
            counts,
            counts_alive,
            offsets,
            wake_order,
            pending: vec![Phase::Idle; n],
            chain_id: vec![0; n],
            chain_origin: vec![0; n],
            flip_skips,
            period: 0,
            period_secs,
            has_liveness_events: scenario.has_liveness_events(),
            scenario: scenario.clone(),
            messages: 0,
            transitions_dense: vec![0; num_states * num_states],
            transitions: Vec::new(),
            probe: TransportProbe::default(),
            injector: InjectionPoint::from_scenario(scenario),
            pending_restores: Vec::new(),
        })
    }

    fn step<'s>(&self, state: &'s mut AsyncState) -> Result<PeriodEvents<'s>> {
        let period = state.period;
        let t0 = period as f64 * state.period_secs;
        let t1 = t0 + state.period_secs;
        let n = state.scenario.group_size();
        state.transitions_dense.fill(0);
        state.transitions.clear();
        state.messages = 0;

        // 0. Supervised worker restarts that have come due fire first, so a
        //    restored segment participates in this period's events.
        self.apply_due_restores(state)?;

        // 1. Environment events at the period boundary. A crash kills the
        //    process's chain and bumps its generation so in-flight responses
        //    are discarded on arrival.
        if state.has_liveness_events {
            let (down, up) =
                state
                    .scenario
                    .apply_period_events(period, &mut state.group, &mut state.rng)?;
            for id in &down {
                let p = id.index();
                state.counts_alive[state.states[p] as usize] -= 1;
                state.chain_id[p] = state.chain_id[p].wrapping_add(1);
                state.pending[p] = Phase::Idle;
            }
            for id in up {
                let p = id.index();
                if let Some(rejoin) = self.config.rejoin_state {
                    let from = state.states[p] as usize;
                    if from != rejoin.index() {
                        state.counts[from] -= 1;
                        state.counts[rejoin.index()] += 1;
                        state.states[p] = rejoin.index() as u32;
                    }
                }
                state.counts_alive[state.states[p] as usize] += 1;
            }
        }

        // Adversary injections observe the post-event state, including the
        // live transport gauges (carry-over queue depth from prior periods).
        self.apply_injections(state)?;

        // 2. The event loop: interleave process wakes and message
        //    deliveries in virtual-time order (messages first on ties, in
        //    deterministic sequence order). Messages resolving at or after
        //    t1 stay queued for later periods — that carry-over is the
        //    latency semantics.
        let check_alive = !state.group.all_alive();
        let AsyncState {
            ref mut rng,
            ref mut transport,
            ref group,
            ref mut states,
            ref mut counts,
            ref mut counts_alive,
            ref offsets,
            ref wake_order,
            ref mut pending,
            ref chain_id,
            ref mut chain_origin,
            ref mut flip_skips,
            ref mut transitions_dense,
            ref mut messages,
            ref scenario,
            ..
        } = *state;
        let mut ctx = Ctx {
            rng,
            transport,
            group,
            states,
            counts,
            counts_alive,
            pending,
            chain_id,
            chain_origin,
            flip_skips,
            transitions_dense,
            messages,
            n,
            num_states: self.protocol.num_states(),
            contact_fail: scenario.loss().effective_contact_failure(1),
            check_alive,
            period,
        };
        let mut wake_ptr = 0usize;
        loop {
            let next_wake = wake_order.get(wake_ptr).map(|&p| t0 + offsets[p as usize]);
            let next_msg = ctx.transport.next_time().filter(|&t| t < t1);
            let deliver_first = match (next_msg, next_wake) {
                (Some(m), Some(w)) => m <= w,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if deliver_first {
                let d = ctx.transport.next_ready(t1).expect("peeked above");
                self.on_delivery(&mut ctx, d);
            } else {
                let p = wake_order[wake_ptr] as usize;
                wake_ptr += 1;
                // A busy chain (waiting on a slow response) or a crashed
                // process skips this period's attempt.
                if ctx.pending[p] == Phase::Idle && ctx.is_alive(p) {
                    ctx.chain_origin[p] = ctx.states[p];
                    let (start, _) = self.compiled.meta[ctx.states[p] as usize];
                    self.advance_chain(&mut ctx, p, start as usize, t0 + offsets[p]);
                }
            }
        }

        // 3. Render transitions and snapshot the transport.
        super::render_sparse_transitions(
            &state.transitions_dense,
            self.protocol.num_states(),
            &mut state.transitions,
        );
        let stats = state.transport.stats();
        state.probe = TransportProbe {
            queue_depth: state.transport.queue_depth() as u64,
            sent: stats.sent(),
            delivered: stats.delivered(),
            dropped: stats.dropped(),
            recent_latency_mean: stats.recent_latency_mean(),
        };
        state.period = period + 1;
        Ok(self.events(state))
    }

    fn snapshot<'s>(&self, state: &'s AsyncState) -> PeriodEvents<'s> {
        self.events(state)
    }
}

#[cfg(test)]
mod tests {
    use super::super::{AgentRuntime, BatchedRuntime, CountsRecorder};
    use super::*;
    use crate::mapping::ProtocolCompiler;
    use netsim::transport::{LatencyModel, LinkModel};
    use netsim::Topology;
    use odekit::system::EquationSystemBuilder;

    fn epidemic_protocol() -> Protocol {
        let sys = EquationSystemBuilder::new()
            .vars(["x", "y"])
            .term("x", -1.0, &[("x", 1), ("y", 1)])
            .term("y", 1.0, &[("x", 1), ("y", 1)])
            .build()
            .unwrap();
        ProtocolCompiler::new("epidemic").compile(&sys).unwrap()
    }

    #[test]
    fn epidemic_saturates_on_the_default_reliable_transport() {
        let protocol = epidemic_protocol();
        let scenario = Scenario::new(4096, 40).unwrap().with_seed(11);
        let result = AsyncRuntime::new(protocol)
            .run(&scenario, &InitialStates::counts(&[4095, 1]))
            .unwrap();
        for (_, s) in result.counts.iter() {
            assert_eq!(s[0] + s[1], 4096.0, "conservation violated");
        }
        let final_counts = result.final_counts().unwrap();
        assert!(
            final_counts[1] > 4000.0,
            "epidemic stalled at {final_counts:?}"
        );
        // Messages were actually sent (one per probe, not a budget).
        assert!(result
            .metrics
            .series("messages")
            .unwrap()
            .iter()
            .any(|(_, v)| *v > 0.0));
    }

    #[test]
    fn replay_is_deterministic_per_seed() {
        let protocol = epidemic_protocol();
        let link = LinkModel::new(LatencyModel::Exponential { mean: 90.0 }, 0.02).unwrap();
        let initial = InitialStates::counts(&[999, 1]);
        let run = |seed: u64| {
            let scenario = Scenario::new(1000, 25)
                .unwrap()
                .with_seed(seed)
                .with_transport(TransportConfig::new(link))
                .unwrap();
            AsyncRuntime::new(epidemic_protocol())
                .run(&scenario, &initial)
                .unwrap()
                .counts
                .states()
                .to_vec()
        };
        drop(protocol);
        assert_eq!(run(5), run(5), "same seed must replay bit-identically");
        assert_ne!(run(5), run(6), "different seeds should diverge");
    }

    #[test]
    fn latency_delays_the_takeoff() {
        // A mean latency of two periods stretches every chain across
        // multiple wake slots, so the epidemic needs strictly more periods
        // to reach the halfway mark than on the instantaneous transport.
        let first_half_period = |transport: Option<TransportConfig>| {
            let mut scenario = Scenario::new(2000, 120).unwrap().with_seed(21);
            if let Some(t) = transport {
                scenario = scenario.with_transport(t).unwrap();
            }
            let result = AsyncRuntime::new(epidemic_protocol())
                .run(&scenario, &InitialStates::counts(&[1999, 1]))
                .unwrap();
            let y = result.state_series("y").unwrap();
            y.iter()
                .position(|&v| v > 1000.0)
                .expect("epidemic reached half")
        };
        let instant = first_half_period(None);
        let slow_link = LinkModel::new(LatencyModel::Exponential { mean: 720.0 }, 0.0).unwrap();
        let slow = first_half_period(Some(TransportConfig::new(slow_link)));
        assert!(
            slow > instant + 3,
            "latency should delay takeoff: instant={instant}, slow={slow}"
        );
    }

    #[test]
    fn partitioned_link_blocks_infection() {
        // Two contiguous segments of 100 processes; the 10 seeds sit at the
        // tail indices (block assignment), i.e. entirely inside segment 1.
        // With the inter-segment link partitioned for the whole run, no
        // message crosses and segment 0 stays uninfected.
        let protocol = epidemic_protocol();
        let transport = TransportConfig::default()
            .with_segments(2)
            .unwrap()
            .with_partition(0, 1, 0, 1_000)
            .unwrap();
        let scenario = Scenario::new(200, 60)
            .unwrap()
            .with_seed(9)
            .with_transport(transport)
            .unwrap();
        let runtime = AsyncRuntime::new(protocol);
        let mut state = runtime
            .init(&scenario, &InitialStates::counts(&[190, 10]))
            .unwrap();
        for _ in 0..scenario.periods() {
            runtime.step(&mut state).unwrap();
        }
        let states = state.process_states();
        assert!(
            states[..100].iter().all(|&s| s == 0),
            "partition leaked: segment 0 got infected"
        );
        assert!(
            states[100..].iter().all(|&s| s == 1),
            "segment 1 should fully saturate among its own 100 processes"
        );
        // The cross-segment probes were sent and timed out as drops.
        let stats = state.transport_stats();
        assert!(
            stats.dropped() > 0,
            "cross-partition sends should be dropped"
        );
        assert_eq!(
            stats.sent(),
            stats.delivered() + stats.dropped() + stats.in_flight()
        );
    }

    #[test]
    fn transport_probe_streams_through_period_events() {
        let protocol = epidemic_protocol();
        let link = LinkModel::new(LatencyModel::Constant(30.0), 0.1).unwrap();
        let scenario = Scenario::new(300, 10)
            .unwrap()
            .with_seed(2)
            .with_transport(TransportConfig::new(link))
            .unwrap();
        let runtime = AsyncRuntime::new(protocol);
        let mut state = runtime
            .init(&scenario, &InitialStates::counts(&[299, 1]))
            .unwrap();
        let mut last_sent = 0;
        for _ in 0..scenario.periods() {
            let ev = runtime.step(&mut state).unwrap();
            let probe = ev.transport.expect("async runtime always reports a probe");
            assert!(probe.sent >= last_sent, "sent counter is cumulative");
            assert_eq!(
                probe.sent,
                probe.delivered + probe.dropped + probe.queue_depth,
                "every sent message is delivered, dropped, or in flight"
            );
            last_sent = probe.sent;
        }
        assert!(last_sent > 0);
        assert!(
            state.transport_stats().dropped() > 0,
            "10% drops must show up"
        );
    }

    #[test]
    fn sharded_scenarios_are_rejected() {
        let protocol = epidemic_protocol();
        let scenario = Scenario::new(1000, 5)
            .unwrap()
            .with_topology(Topology::sharded(4, 0.01).unwrap());
        let err = AsyncRuntime::new(protocol)
            .run(&scenario, &InitialStates::counts(&[999, 1]))
            .unwrap_err();
        assert!(matches!(err, CoreError::InvalidConfig { .. }));
    }

    #[test]
    fn period_synchronized_runtimes_reject_transport_scenarios() {
        let scenario = Scenario::new(100, 5)
            .unwrap()
            .with_transport(TransportConfig::default())
            .unwrap();
        let initial = InitialStates::counts(&[99, 1]);
        let agent_err = AgentRuntime::new(epidemic_protocol())
            .run(&scenario, &initial)
            .unwrap_err();
        assert!(agent_err.to_string().contains("AsyncRuntime"));
        let batched_err = BatchedRuntime::new(epidemic_protocol())
            .run(&scenario, &initial)
            .unwrap_err();
        assert!(matches!(batched_err, CoreError::InvalidConfig { .. }));
    }

    #[test]
    fn crashes_kill_chains_and_recoveries_rejoin() {
        // With every process crashed at period 0, nothing ever transitions
        // even though probes may still be in flight.
        let protocol = epidemic_protocol();
        let scenario = Scenario::new(50, 10)
            .unwrap()
            .with_massive_failure(0, 1.0)
            .unwrap()
            .with_seed(3);
        let result = AsyncRuntime::new(protocol)
            .run(&scenario, &InitialStates::counts(&[49, 1]))
            .unwrap();
        assert_eq!(result.final_counts(), Some(&[49.0, 1.0][..]));
        assert_eq!(result.total_transitions("x", "y"), 0.0);
    }

    #[test]
    fn zero_latency_matches_the_agent_runtime_in_ensemble_mean() {
        // A pointwise pin lives in tests/property.rs; this is a fast smoke
        // version — mean final infections over a few seeds must land within
        // the batched-agreement envelope used across the runtime tests.
        let n = 20_000u64;
        let mean_final = |agent: bool| {
            let mut total = 0.0;
            for seed in 300..308u64 {
                let scenario = Scenario::new(n as usize, 12).unwrap().with_seed(seed);
                let initial = InitialStates::counts(&[n - 20, 20]);
                let result = if agent {
                    AgentRuntime::new(epidemic_protocol())
                        .run(&scenario, &initial)
                        .unwrap()
                } else {
                    AsyncRuntime::new(epidemic_protocol())
                        .run(&scenario, &initial)
                        .unwrap()
                };
                total += result.final_counts().unwrap()[1];
            }
            total / 8.0
        };
        let agent = mean_final(true);
        let asynchronous = mean_final(false);
        let tolerance = n as f64 * 0.15;
        assert!(
            (agent - asynchronous).abs() < tolerance,
            "agent mean {agent} vs async mean {asynchronous} exceeds {tolerance}"
        );
    }

    #[test]
    fn segments_cannot_exceed_group_size() {
        let protocol = epidemic_protocol();
        let transport = TransportConfig::default().with_segments(64).unwrap();
        let scenario = Scenario::new(10, 5)
            .unwrap()
            .with_transport(transport)
            .unwrap();
        let err = AsyncRuntime::new(protocol)
            .run(&scenario, &InitialStates::counts(&[9, 1]))
            .unwrap_err();
        assert!(matches!(
            err,
            CoreError::InvalidConfig {
                name: "transport",
                ..
            }
        ));
    }

    #[test]
    fn kill_worker_parks_the_segment_and_supervision_restores_it() {
        // Four segments of 50 processes; the seeds sit in segment 3 (block
        // assignment). The adversary kills segment 3's worker at period 4
        // and supervision restarts it from the period-boundary checkpoint
        // three periods later. On the in-process backend the kill is purely
        // logical, which makes this path exactly reproducible in CI.
        let transport = TransportConfig::default()
            .with_segments(4)
            .unwrap()
            .with_supervision(3);
        let run = |kill: bool| {
            let mut scenario = Scenario::new(200, 30)
                .unwrap()
                .with_seed(17)
                .with_transport(transport.clone())
                .unwrap();
            if kill {
                scenario = scenario.with_adversary(
                    netsim::adversary::ObliviousSchedule::new()
                        .kill_worker_at(4, 3)
                        .unwrap(),
                );
            }
            let runtime = AsyncRuntime::new(epidemic_protocol());
            let mut state = runtime
                .init(&scenario, &InitialStates::counts(&[190, 10]))
                .unwrap();
            let mut alive = Vec::new();
            for _ in 0..30 {
                let ev = runtime.step(&mut state).unwrap();
                alive.push(ev.alive);
                let ev_counts: f64 = ev.counts.iter().map(|&c| c as f64).sum();
                assert_eq!(ev_counts, 200.0, "conservation violated");
            }
            (alive, state.process_states().to_vec())
        };
        let (alive, states) = run(true);
        assert_eq!(alive[3], 200, "pre-strike population intact");
        assert_eq!(
            &alive[4..7],
            &[150, 150, 150],
            "segment parked for 3 periods"
        );
        assert_eq!(alive[7], 200, "supervised restart restored the segment");
        // The checkpoint/restart path replays bit-identically per seed…
        let (alive2, states2) = run(true);
        assert_eq!(alive, alive2);
        assert_eq!(states, states2);
        // …and actually perturbed the run relative to the unharmed one.
        let (alive0, _) = run(false);
        assert_eq!(alive0, vec![200u64; 30]);
        assert_ne!(alive, alive0);
    }

    #[test]
    fn run_auto_selects_async_for_transport_scenarios() {
        let protocol = epidemic_protocol();
        let scenario = Scenario::new(500, 10)
            .unwrap()
            .with_seed(1)
            .with_transport(TransportConfig::default())
            .unwrap();
        let result = super::super::Simulation::of(protocol)
            .scenario(scenario)
            .initial(InitialStates::counts(&[499, 1]))
            .observe(CountsRecorder::new())
            .run_auto()
            .unwrap();
        let final_counts = result.final_counts().unwrap();
        assert_eq!(final_counts[0] + final_counts[1], 500.0);
        assert!(
            final_counts[1] > 1.0,
            "run_auto's async run should make progress"
        );
    }
}
