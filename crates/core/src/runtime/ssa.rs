//! The exact continuous-time stochastic protocol runtime (Gillespie SSA).
//!
//! The period-synchronized runtimes evaluate every firing probability
//! against **start-of-period** populations: within one period the dynamics
//! cannot compound, which is exactly the approximation the paper's analysis
//! makes and which grows visible as per-period rates grow (see the
//! `exp_ssa_burst` experiment). This runtime removes that approximation by
//! executing the protocol in **continuous virtual time**: every reaction
//! fires individually at an exponentially distributed instant, and the
//! populations every propensity sees are the populations *at that instant*.
//!
//! # The hazard embedding
//!
//! A synchronized action with per-period firing probability `q` is embedded
//! as a Poisson process with hazard `h(q) = −ln(1 − q)` per period (rate
//! `h(q) / period_secs` per second of virtual time): over one period with a
//! *frozen* environment the probability of at least one firing is
//! `1 − e^{−h(q)} = q`, so single-period marginals match the synchronized
//! tiers exactly. Where the tiers differ is precisely where they should:
//! competing actions race in continuous time (replacing the synchronized
//! tiers' survival accounting with competing risks — the shared
//! continuous-time limit both converge to as `q → 0`), and populations
//! update between events, so fast dynamics compound within a period.
//!
//! # Channels
//!
//! Each `(state, action)` pair becomes one reaction channel with propensity
//! `a` (per second) and a one-process effect, evaluated against the current
//! alive counts `x` over the maximal group of `n` processes:
//!
//! * **self-moving actions** (`Flip`, `Sample`, `SampleAny`):
//!   `a = x[s] · h(fire_probability) / T`, moving one process `s → to`;
//! * **`PushSample`**: each of the `x[s] · samples` per-period draws
//!   converts a target with probability `per_draw`, so
//!   `a = x[s] · samples · h(per_draw) / T`, moving one process
//!   `target → to` (self-gating: `h(0) = 0` when the target pool is empty);
//! * **`Tokenize`**: `a = x[s] · h(q) / T` gated on a non-empty token pool,
//!   moving one token `token_state → to`.
//!
//! # Scheduling
//!
//! Events are scheduled with Anderson's *modified next-reaction method*:
//! each channel keeps an internal clock `T_c` (integrated propensity) and a
//! unit-exponential threshold `P_c`; the next event is the channel
//! minimizing `(P_c − T_c) / a_c`, and only the firing channel consumes one
//! `Exp(1)` draw to refill its threshold. This keeps the run deterministic
//! per seed (a single PRNG stream, fixed channel order) and consumes no
//! randomness for events that do not fire.
//!
//! # Period boundaries
//!
//! The event clock runs *between* period boundaries. At each boundary the
//! runtime applies the scenario's exchangeable failure events and adversary
//! injections through the batched runtime's own hooks — the identical
//! count-level hypergeometric/binomial draws, in the identical order, so
//! injection times land on the period clock by construction — and reports
//! boundary counts. The trajectory is piecewise-constant between events, so
//! boundary counts are the *exact* interpolation of the continuous-time
//! path at the boundary instant: recorders binning by period see the same
//! figure bins as every other tier. Message tallies reuse the synchronized
//! tiers' expected-message accounting at start-of-period counts (messages
//! are an accounting fiction at count level, not queued deliveries).
//!
//! Cost is `O(events)` per period — proportional to `N` times the mean
//! per-period rate, *not* independent of `N` like the batched tier. Use it
//! when exactness is the point ([`ErrorBudget::Exact`](super::ErrorBudget)),
//! or [`TauLeapRuntime`](super::TauLeapRuntime) for a bounded-error middle
//! ground.

use super::batched::{BatchedRuntime, BatchedState};
use super::observer::default_observers;
use super::simulation::drive;
use super::{InitialStates, PeriodEvents, RunConfig, RunResult, Runtime};
use crate::action::Action;
use crate::error::CoreError;
use crate::state_machine::{Protocol, StateId};
use crate::Result;
use netsim::{LossConfig, Scenario};

/// Executes a protocol as an exact continuous-time jump process (Gillespie's
/// stochastic simulation algorithm in next-reaction form) — every reaction
/// fires individually at an exponentially distributed virtual time.
///
/// See the module-level documentation for the embedding and its relation to the
/// period-synchronized tiers.
///
/// # Examples
///
/// ```
/// use dpde_core::{ProtocolCompiler, runtime::{SsaRuntime, InitialStates}};
/// use netsim::Scenario;
/// use odekit::parse::parse_system;
///
/// let sys = parse_system("x' = -x*y\ny' = x*y", &[])?;
/// let protocol = ProtocolCompiler::new("epidemic").compile(&sys)?;
/// let scenario = Scenario::new(500, 60)?.with_seed(7);
/// let result = SsaRuntime::new(protocol)
///     .run(&scenario, &InitialStates::counts(&[499, 1]))?;
/// assert!(result.final_counts().expect("counts recorded")[1] > 400.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct SsaRuntime {
    batched: BatchedRuntime,
}

/// The mutable execution state of an [`SsaRuntime`] run: the shared
/// count-level state (counts, PRNG, injection point) plus the per-channel
/// next-reaction bookkeeping.
#[derive(Debug, Clone)]
pub struct SsaState {
    pub(super) inner: BatchedState,
    channels: Vec<Channel>,
    /// Internal clocks `T_c`: integrated propensity per channel.
    clocks: Vec<f64>,
    /// Unit-exponential thresholds `P_c`: each channel fires when its
    /// internal clock reaches its threshold.
    thresholds: Vec<f64>,
    /// Scratch: propensities of the current event iteration.
    propensities: Vec<f64>,
    /// Working copy of the alive counts while the event clock runs.
    x: Vec<u64>,
    transitions_dense: Vec<u64>,
    transitions: Vec<(StateId, StateId, u64)>,
    messages: u64,
}

/// The per-period hazard embedding a synchronized firing probability `q`:
/// a Poisson process with this hazard fires at least once per period with
/// probability exactly `q` (clamped near `q = 1` to keep the rate finite).
pub(super) fn hazard(q: f64) -> f64 {
    -(1.0 - q).max(1e-12).ln()
}

/// One reaction channel: an executor state, the compiled action driving the
/// channel's propensity, and the one-process effect `from → to` a firing
/// applies. Shared with the tau-leap runtime, which leaps over the same
/// channel set.
#[derive(Debug, Clone)]
pub(super) struct Channel {
    /// Executor state `s` (the propensity scales with `x[s]`).
    pub(super) state: usize,
    /// State a firing decrements.
    pub(super) from: usize,
    /// State a firing increments.
    pub(super) to: usize,
    action: Action,
}

impl Channel {
    /// The channel's propensity (events per second of virtual time) against
    /// the current alive counts `x` over a maximal group of `n` processes.
    pub(super) fn propensity(&self, x: &[u64], n: f64, loss: &LossConfig, period_secs: f64) -> f64 {
        let k = x[self.state] as f64;
        if k == 0.0 {
            return 0.0;
        }
        match &self.action {
            Action::PushSample {
                target_state,
                samples,
                prob,
                ..
            } => {
                let contact_ok = 1.0 - loss.effective_contact_failure(1);
                let per_draw = (x[target_state.index()] as f64 / n) * prob * contact_ok;
                k * f64::from(*samples) * hazard(per_draw) / period_secs
            }
            Action::Tokenize { token_state, .. } => {
                if x[token_state.index()] == 0 {
                    return 0.0;
                }
                k * hazard(super::fire_probability(&self.action, x, n, loss)) / period_secs
            }
            _ => k * hazard(super::fire_probability(&self.action, x, n, loss)) / period_secs,
        }
    }

    /// Applies one firing: move one process `from → to` and tally the edge.
    /// Only called when the propensity is positive, which guarantees the
    /// decremented pool is non-empty.
    pub(super) fn apply(&self, x: &mut [u64], dense: &mut [u64], num_states: usize) {
        debug_assert!(x[self.from] > 0, "firing channel with an empty pool");
        x[self.from] -= 1;
        x[self.to] += 1;
        dense[self.from * num_states + self.to] += 1;
    }
}

/// Builds the channel list: one channel per `(state, action)` pair, in
/// state-then-action order (the order fixes the PRNG consumption sequence).
pub(super) fn build_channels(protocol: &Protocol) -> Vec<Channel> {
    let mut channels = Vec::new();
    for s in 0..protocol.num_states() {
        for action in protocol.actions(StateId::new(s)) {
            let (from, to) = match action {
                Action::Flip { to, .. }
                | Action::Sample { to, .. }
                | Action::SampleAny { to, .. } => (s, to.index()),
                Action::PushSample {
                    target_state, to, ..
                } => (target_state.index(), to.index()),
                Action::Tokenize {
                    token_state, to, ..
                } => (token_state.index(), to.index()),
            };
            channels.push(Channel {
                state: s,
                from,
                to,
                action: action.clone(),
            });
        }
    }
    channels
}

/// The synchronized tiers' expected-message accounting evaluated at the
/// given counts: a process pays for an action only if no earlier self-moving
/// action in its state's list already moved it this period. Shared by the
/// continuous-time runtimes (message tallies are an accounting fiction at
/// count level, kept comparable across every tier).
pub(super) fn expected_messages(
    protocol: &Protocol,
    counts_alive: &[u64],
    n: f64,
    loss: &LossConfig,
) -> f64 {
    let mut messages = 0.0f64;
    for (s, &k_s) in counts_alive.iter().enumerate() {
        if k_s == 0 {
            continue;
        }
        let mut survive = 1.0;
        for action in protocol.actions(StateId::new(s)) {
            messages += k_s as f64 * survive * f64::from(action.messages_per_period());
            if action.moves_self() {
                survive *= 1.0 - super::fire_probability(action, counts_alive, n, loss);
            }
        }
    }
    messages
}

/// Validates a scenario for a continuous-time count-level runtime (shared
/// with the tau-leap runtime, which differs only in the name it reports).
pub(super) fn validate_continuous(scenario: &Scenario, runtime_name: &str) -> Result<()> {
    if !scenario.count_level_compatible() {
        return Err(CoreError::InvalidConfig {
            name: "scenario",
            reason: format!(
                "the {runtime_name} runtime models only exchangeable environments \
                 (massive failures, probabilistic failure models, losses); \
                 per-id failure schedules and churn traces need host identity \
                 — use AgentRuntime (or Simulation::run_auto, which picks the \
                 right fidelity automatically)"
            ),
        });
    }
    super::reject_sharded(scenario, runtime_name)?;
    super::reject_transport(scenario, runtime_name)?;
    Ok(())
}

impl SsaRuntime {
    /// Creates an SSA runtime with the default [`RunConfig`].
    pub fn new(protocol: Protocol) -> Self {
        SsaRuntime {
            batched: BatchedRuntime::new(protocol),
        }
    }

    /// Replaces the run configuration (rejoin semantics are applied by the
    /// shared boundary hooks exactly as in the batched runtime).
    #[must_use]
    pub fn with_config(self, config: RunConfig) -> Self {
        SsaRuntime {
            batched: self.batched.with_config(config),
        }
    }

    /// Runs the protocol under the given scenario and initial state
    /// distribution with the standard recording set (counts, transitions,
    /// alive counts, messages).
    ///
    /// # Errors
    ///
    /// Returns configuration errors (mismatched initial distribution,
    /// invalid protocol, a scenario that needs host identity) and propagates
    /// scenario errors.
    pub fn run(&self, scenario: &Scenario, initial: &InitialStates) -> Result<RunResult> {
        drive(self, scenario, initial, &mut default_observers())
    }

    fn events<'s>(&self, state: &'s SsaState) -> PeriodEvents<'s> {
        PeriodEvents {
            period: state.inner.period(),
            counts: state.inner.total_counts(),
            transitions: &state.transitions,
            messages: state.messages,
            alive: state.inner.alive_total(),
            counts_alive: Some(state.inner.alive_counts()),
            membership: None,
            shard_counts_alive: None,
            transport: None,
            injections: state.inner.injection_records(),
            virtual_time: Some(
                state
                    .inner
                    .scenario()
                    .clock()
                    .period_to_secs(state.inner.period()),
            ),
        }
    }
}

impl Runtime for SsaRuntime {
    type State = SsaState;

    fn build(protocol: Protocol, config: &RunConfig) -> Self {
        SsaRuntime {
            batched: BatchedRuntime::build(protocol, config),
        }
    }

    fn protocol(&self) -> &Protocol {
        self.batched.protocol()
    }

    fn init(&self, scenario: &Scenario, initial: &InitialStates) -> Result<SsaState> {
        let protocol = self.batched.protocol();
        protocol.validate()?;
        validate_continuous(scenario, "SSA")?;
        let num_states = protocol.num_states();
        let n = scenario.group_size() as u64;
        let counts = initial.resolve(num_states, n)?;
        let channels = build_channels(protocol);
        let mut inner = self.batched.state_from_counts(
            scenario,
            counts,
            vec![0; num_states],
            0,
            scenario.build_rng(),
        );
        // One Exp(1) threshold per channel, drawn in channel order from the
        // run's single PRNG stream.
        let thresholds: Vec<f64> = (0..channels.len())
            .map(|_| inner.rng_mut().exponential(1.0))
            .collect();
        Ok(SsaState {
            clocks: vec![0.0; channels.len()],
            propensities: vec![0.0; channels.len()],
            thresholds,
            channels,
            x: Vec::with_capacity(num_states),
            transitions_dense: vec![0; num_states * num_states],
            transitions: Vec::new(),
            messages: 0,
            inner,
        })
    }

    fn step<'s>(&self, state: &'s mut SsaState) -> Result<PeriodEvents<'s>> {
        let num_states = self.protocol().num_states();
        state.transitions_dense.fill(0);
        state.transitions.clear();

        // 1. Boundary hooks: the identical count-level failure/injection
        // draws as the batched tier, in the identical order.
        self.batched.apply_failures(&mut state.inner)?;
        self.batched.apply_injections(&mut state.inner)?;

        // 2. The event clock, from this boundary to the next.
        state.x.clear();
        state.x.extend_from_slice(state.inner.alive_counts());
        let n_f = state.inner.density_n();
        let loss = *state.inner.scenario().loss();
        let period_secs = state.inner.scenario().clock().period_secs();
        let messages_f = expected_messages(self.protocol(), &state.x, n_f, &loss);

        let mut t = 0.0f64;
        loop {
            let mut total = 0.0;
            for c in 0..state.channels.len() {
                let a = state.channels[c].propensity(&state.x, n_f, &loss, period_secs);
                state.propensities[c] = a;
                total += a;
            }
            if total <= 0.0 {
                // Absorbing configuration: no internal time accrues.
                break;
            }
            // Next reaction: the channel whose threshold is reached first.
            let mut best = f64::INFINITY;
            let mut winner = usize::MAX;
            for c in 0..state.channels.len() {
                let a = state.propensities[c];
                if a <= 0.0 {
                    continue;
                }
                let wait = ((state.thresholds[c] - state.clocks[c]) / a).max(0.0);
                if wait < best {
                    best = wait;
                    winner = c;
                }
            }
            if winner == usize::MAX || t + best >= period_secs {
                // Advance every internal clock to the boundary and stop.
                let dt = period_secs - t;
                for c in 0..state.channels.len() {
                    state.clocks[c] += state.propensities[c] * dt;
                }
                break;
            }
            t += best;
            for c in 0..state.channels.len() {
                state.clocks[c] += state.propensities[c] * best;
            }
            state.channels[winner].apply(&mut state.x, &mut state.transitions_dense, num_states);
            // Only the firing channel consumes randomness.
            state.thresholds[winner] += state.inner.rng_mut().exponential(1.0);
        }

        // 3. Commit boundary counts back into the shared state.
        state.inner.rebase_alive(&state.x);
        let next = state.inner.period() + 1;
        state.inner.set_period(next);
        super::render_sparse_transitions(
            &state.transitions_dense,
            num_states,
            &mut state.transitions,
        );
        state.messages = messages_f.round() as u64;
        Ok(self.events(state))
    }

    fn snapshot<'s>(&self, state: &'s SsaState) -> PeriodEvents<'s> {
        self.events(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::ProtocolCompiler;
    use crate::runtime::{CountsRecorder, Observer, Simulation};
    use odekit::system::EquationSystemBuilder;

    fn epidemic_protocol() -> Protocol {
        let sys = EquationSystemBuilder::new()
            .vars(["x", "y"])
            .term("x", -1.0, &[("x", 1), ("y", 1)])
            .term("y", 1.0, &[("x", 1), ("y", 1)])
            .build()
            .unwrap();
        ProtocolCompiler::new("epidemic").compile(&sys).unwrap()
    }

    fn decay_protocol() -> Protocol {
        let sys = EquationSystemBuilder::new()
            .vars(["x", "y"])
            .term("x", -1.0, &[("x", 1)])
            .term("y", 1.0, &[("x", 1)])
            .build()
            .unwrap();
        // A non-trivial per-period probability (q = 0.3): with the default
        // constant the Flip would fire with q = 1, a degenerate marginal.
        ProtocolCompiler::new("decay")
            .with_normalizing_constant(0.3)
            .compile(&sys)
            .unwrap()
    }

    #[test]
    fn epidemic_saturates_and_conserves_counts() {
        let protocol = epidemic_protocol();
        let scenario = Scenario::new(500, 120).unwrap().with_seed(11);
        let runtime = SsaRuntime::new(protocol);
        let mut state = runtime
            .init(&scenario, &InitialStates::counts(&[495, 5]))
            .unwrap();
        for _ in 0..scenario.periods() {
            let events = runtime.step(&mut state).unwrap();
            assert_eq!(events.counts.iter().sum::<u64>(), 500);
            assert_eq!(events.alive, 500);
        }
        let events = runtime.snapshot(&state);
        assert!(
            events.counts[1] > 450,
            "epidemic should saturate, got {:?}",
            events.counts
        );
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let scenario = Scenario::new(300, 60).unwrap().with_seed(99);
        let initial = InitialStates::counts(&[295, 5]);
        let run = || {
            SsaRuntime::new(epidemic_protocol())
                .run(&scenario, &initial)
                .unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.state_series("y").unwrap(), b.state_series("y").unwrap());
        assert_eq!(
            a.metrics.series("messages").unwrap(),
            b.metrics.series("messages").unwrap()
        );
        // A different seed produces a different path.
        let c = SsaRuntime::new(epidemic_protocol())
            .run(&scenario.clone().with_seed(100), &initial)
            .unwrap();
        assert_ne!(a.state_series("y").unwrap(), c.state_series("y").unwrap());
    }

    #[test]
    fn single_period_flip_marginal_is_exact() {
        // A Flip with per-period probability q embeds as hazard −ln(1−q):
        // over one period the per-process firing probability is exactly q,
        // so the one-period mean matches the synchronized tiers' binomial.
        let protocol = decay_protocol();
        let q = match protocol.actions(StateId::new(0))[0] {
            Action::Flip { prob, .. } => prob,
            ref other => panic!("expected Flip, got {other:?}"),
        };
        let n = 40_000u64;
        let scenario = Scenario::new(n as usize, 1).unwrap().with_seed(5);
        let result = SsaRuntime::new(protocol)
            .run(&scenario, &InitialStates::counts(&[n, 0]))
            .unwrap();
        let moved = result.final_counts().unwrap()[1];
        let expected = q * n as f64;
        let sd = (n as f64 * q * (1.0 - q)).sqrt();
        assert!(
            (moved - expected).abs() < 5.0 * sd,
            "moved {moved}, expected {expected:.0} ± {sd:.1}"
        );
    }

    #[test]
    fn virtual_time_lands_on_period_boundaries() {
        struct TimeProbe(Vec<f64>);
        impl Observer for TimeProbe {
            fn on_period(&mut self, _protocol: &Protocol, events: &PeriodEvents<'_>) {
                self.0.push(events.virtual_time.expect("continuous tier"));
            }
            fn finish(&mut self, _result: &mut RunResult) {}
        }
        let scenario = Scenario::new(100, 3).unwrap().with_seed(1);
        let runtime = SsaRuntime::new(epidemic_protocol());
        let mut state = runtime
            .init(&scenario, &InitialStates::counts(&[99, 1]))
            .unwrap();
        let mut probe = TimeProbe(Vec::new());
        probe.on_period(runtime.protocol(), &runtime.snapshot(&state));
        for _ in 0..3 {
            probe.on_period(runtime.protocol(), &runtime.step(&mut state).unwrap());
        }
        let secs = scenario.clock().period_secs();
        assert_eq!(probe.0, vec![0.0, secs, 2.0 * secs, 3.0 * secs]);
    }

    #[test]
    fn boundary_failures_apply_like_batched() {
        let scenario = Scenario::new(1_000, 30)
            .unwrap()
            .with_massive_failure(10, 0.5)
            .unwrap()
            .with_seed(3);
        let result = SsaRuntime::new(epidemic_protocol())
            .run(&scenario, &InitialStates::counts(&[999, 1]))
            .unwrap();
        let alive = result.metrics.series("alive").unwrap();
        assert_eq!(alive.last().unwrap().1, 500.0);
    }

    #[test]
    fn rejects_incompatible_scenarios() {
        let runtime = SsaRuntime::new(epidemic_protocol());
        let initial = InitialStates::counts(&[99, 1]);
        let sharded = Scenario::new(100, 10)
            .unwrap()
            .with_topology(netsim::Topology::sharded(4, 0.05).unwrap());
        assert!(runtime.init(&sharded, &initial).is_err());
        let transported = Scenario::new(100, 10)
            .unwrap()
            .with_transport(netsim::TransportConfig::default())
            .unwrap();
        assert!(runtime.init(&transported, &initial).is_err());
        let mut schedule = netsim::FailureSchedule::new();
        schedule.add(5, netsim::FailureEvent::Crash(netsim::ProcessId(3)));
        let per_id = Scenario::new(100, 10)
            .unwrap()
            .with_failure_schedule(schedule)
            .unwrap();
        assert!(runtime.init(&per_id, &initial).is_err());
    }

    #[test]
    fn sample_epidemic_tracks_batched_closely_at_slow_rates() {
        // With a small normalizing constant the per-period rates are slow,
        // so the synchronized and continuous-time dynamics agree (the
        // within-period compounding gap is O(q²) per period): one seeded SSA
        // path stays close to the batched path all the way through takeoff.
        let sys = EquationSystemBuilder::new()
            .vars(["x", "y"])
            .term("x", -1.0, &[("x", 1), ("y", 1)])
            .term("y", 1.0, &[("x", 1), ("y", 1)])
            .build()
            .unwrap();
        let protocol = ProtocolCompiler::new("epidemic")
            .with_normalizing_constant(0.05)
            .compile(&sys)
            .unwrap();
        let n = 10_000u64;
        let scenario = Scenario::new(n as usize, 250).unwrap().with_seed(21);
        let initial = InitialStates::counts(&[n - 100, 100]);
        let ssa = SsaRuntime::new(protocol.clone())
            .run(&scenario, &initial)
            .unwrap();
        let batched = BatchedRuntime::new(protocol)
            .run(&scenario, &initial)
            .unwrap();
        let (ya, yb) = (
            ssa.state_series("y").unwrap(),
            batched.state_series("y").unwrap(),
        );
        let max_gap = ya
            .iter()
            .zip(&yb)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        // Single paths, so allow generous noise — but they must share the
        // same takeoff (a compounding bug would shift it by many periods).
        assert!(max_gap < 0.15 * n as f64, "max gap {max_gap}");
    }

    #[test]
    fn observer_plumbing_matches_other_tiers() {
        let scenario = Scenario::new(200, 20).unwrap().with_seed(2);
        let result = Simulation::of(epidemic_protocol())
            .scenario(scenario)
            .initial(InitialStates::counts(&[199, 1]))
            .observe(CountsRecorder::new())
            .run::<SsaRuntime>()
            .unwrap();
        assert_eq!(result.counts.len(), 21);
        let total: f64 = result.final_counts().unwrap().iter().sum();
        assert_eq!(total, 200.0);
    }
}
