//! The sharded count-batched runtime: S locally-mixed populations.
//!
//! The paper's protocols (and the batched runtime that executes them) assume
//! one uniformly mixed population. [`ShardedRuntime`] relaxes that: the group
//! is split into `S` shards (cells / subnets), each advanced as its own
//! count-batched population, with processes exchanged between shards at
//! period boundaries. Inter-shard contact is realized entirely through this
//! migration — a process interacts with whichever shard it currently
//! inhabits — so the per-shard dynamics stay exactly the batched runtime's
//! and the well-mixed limit is recovered as the migration probability
//! approaches 1.
//!
//! # The exchange, by exchangeability
//!
//! Within a shard every alive process is exchangeable, so the *set* of
//! emigrants leaving it is a uniformly random subset of its alive
//! population: its split across protocol states is a multivariate
//! hypergeometric draw — the same argument the batched runtime uses for
//! massive failures and the hybrid runtime uses for its mid-run handoff.
//! Each period boundary therefore costs O(S · states) count-level draws:
//!
//! 1. **Emigration.** For each non-partitioned shard, the emigrant count is
//!    binomial(alive, migration) and is split across states by a
//!    multivariate hypergeometric draw.
//! 2. **Immigration.** Per state, the pooled emigrants are scattered over
//!    the non-partitioned shards by a uniform multinomial draw (the
//!    destination is uniform, including the source — at migration 1 the
//!    whole population reshuffles, which is statistically well-mixed; the
//!    equivalence tests pin exactly that limit).
//!
//! Crashed processes never migrate: a crashed host stays where it is, and
//! recoveries (under a probabilistic failure model) rejoin their shard.
//!
//! # Shard-targeted events
//!
//! * Global massive failures hit a uniform fraction of the whole alive
//!   population: one multivariate hypergeometric draw over all
//!   `S × states` cells.
//! * [`ShardFailure`](netsim::ShardFailure)s confine the draw to one shard.
//! * [`ShardPartition`](netsim::ShardPartition)s suspend migration in and
//!   out of a shard for a period window; its internal dynamics (and any
//!   failures) continue unaffected.
//!
//! # Fidelity and the S = 1 contract
//!
//! Shards are advanced by [`BatchedRuntime`] states — not hybrid ones —
//! because migration changes shard populations every period, which a
//! fixed-id membership cannot represent. Small shard populations stay
//! trustworthy anyway: every sampler used here walks an exact inverse CDF
//! below [`netsim::stochastic::NORMAL_APPROX_CUTOFF`], so boundary
//! probabilities (extinction, an empty shard) are preserved. A run with one
//! shard and no shard-targeted events delegates wholesale to the batched
//! path — same scenario, same seed stream — and is **bit-for-bit identical**
//! to [`BatchedRuntime`]; the property tests pin this.
//!
//! # Threads
//!
//! [`ShardedRuntime::with_parallel`] steps shards on scoped worker threads.
//! Per-shard work is O(states² · actions) regardless of N, so parallelism
//! only pays when that inner work is heavy (many states) or cores are
//! plentiful; the default is sequential stepping, which also keeps
//! single-core CI benches honest.

use super::inject::{self, InjectionPoint};
use super::observer::default_observers;
use super::simulation::drive;
use super::{
    BatchedRuntime, BatchedState, InitialStates, PeriodEvents, RunConfig, RunResult, Runtime,
};
use crate::error::CoreError;
use crate::state_machine::{Protocol, StateId};
use crate::Result;
use netsim::adversary::{AdversaryView, Injection};
use netsim::topology::Placement;
use netsim::{FailureEvent, Rng, Scenario};

/// Executes a protocol over a population split into `S` locally-mixed
/// shards, each advanced at count level, with inter-shard migration drawn
/// via multivariate hypergeometric exchange at period boundaries.
///
/// Select it explicitly with [`Simulation::run`](super::Simulation::run), or
/// implicitly: [`Simulation::run_auto`](super::Simulation::run_auto) picks
/// the sharded tier for any scenario whose
/// [`Topology`](netsim::Topology) is sharded or that carries shard-targeted
/// events.
///
/// # Examples
///
/// ```
/// use dpde_core::{ProtocolCompiler, runtime::{InitialStates, ShardedRuntime}};
/// use netsim::{Scenario, Topology};
/// use odekit::parse::parse_system;
///
/// let sys = parse_system("x' = -x*y\ny' = x*y", &[])?;
/// let protocol = ProtocolCompiler::new("epidemic").compile(&sys)?;
/// // One million processes in 8 shards; the epidemic seed starts in the
/// // last shard (block placement) and must migrate to spread.
/// let scenario = Scenario::new(1_000_000, 60)?
///     .with_topology(Topology::sharded(8, 0.02)?)
///     .with_seed(7);
/// let result = ShardedRuntime::new(protocol)
///     .run(&scenario, &InitialStates::counts(&[999_999, 1]))?;
/// assert!(result.final_counts().expect("counts recorded")[1] > 900_000.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ShardedRuntime {
    inner: BatchedRuntime,
    parallel: bool,
}

/// The mutable execution state of a [`ShardedRuntime`] run: one
/// [`BatchedState`] per shard, the master PRNG driving exchange and
/// shard-targeted events, and the aggregated views observers consume.
#[derive(Debug, Clone)]
pub struct ShardedState {
    shards: Vec<BatchedState>,
    /// Drives every cross-shard draw (exchange, global and shard-targeted
    /// failures, uniform placement); per-shard PRNGs are forked separately
    /// so shard streams never interleave with exchange streams.
    master_rng: Rng,
    scenario: Scenario,
    /// `true` when the run is a single shard with no shard-targeted events:
    /// the shard holds the full scenario and the exact seed stream of
    /// [`BatchedRuntime`], making the run bit-for-bit identical to it.
    delegate: bool,
    migration: f64,
    period: u64,
    /// The scenario's adversary, driven at the master level so one strategy
    /// instance sees the whole sharded population (`None` in delegate mode —
    /// there the single shard's own injection point applies it, keeping the
    /// bit-for-bit contract with [`BatchedRuntime`]).
    injector: Option<InjectionPoint>,
    // Aggregated views, refreshed after every step.
    counts: Vec<u64>,
    counts_alive: Vec<u64>,
    alive_n: u64,
    messages: u64,
    transitions_dense: Vec<u64>,
    transitions: Vec<(StateId, StateId, u64)>,
    shard_alive: Vec<Vec<u64>>,
    // Scratch buffers reused every period.
    scratch_alive: Vec<Vec<u64>>,
    scratch_hits: Vec<u64>,
    pool: Vec<u64>,
    weights: Vec<f64>,
    dest_draws: Vec<u64>,
    open: Vec<usize>,
    flat_cells: Vec<u64>,
    flat_hits: Vec<u64>,
}

impl ShardedState {
    /// The next period to execute (also the number of periods executed).
    pub fn period(&self) -> u64 {
        self.period
    }

    /// Per-shard alive counts (`[shard][state]`) at the current snapshot.
    pub fn shard_alive_counts(&self) -> &[Vec<u64>] {
        &self.shard_alive
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    fn num_states(&self) -> usize {
        self.counts.len()
    }

    fn refresh_aggregates(&mut self) {
        let num_states = self.num_states();
        self.counts.fill(0);
        self.counts_alive.fill(0);
        self.transitions_dense.fill(0);
        self.transitions.clear();
        self.messages = 0;
        for (j, shard) in self.shards.iter().enumerate() {
            for (s, (&alive, &total)) in shard
                .alive_counts()
                .iter()
                .zip(shard.total_counts())
                .enumerate()
            {
                self.counts_alive[s] += alive;
                self.counts[s] += total;
                self.shard_alive[j][s] = alive;
            }
            self.messages += shard.last_messages();
            for &(from, to, count) in shard.last_transitions() {
                self.transitions_dense[from.index() * num_states + to.index()] += count;
            }
        }
        self.alive_n = self.counts_alive.iter().sum();
        super::render_sparse_transitions(
            &self.transitions_dense,
            num_states,
            &mut self.transitions,
        );
    }
}

impl ShardedRuntime {
    /// Creates a sharded runtime with the default [`RunConfig`] and
    /// sequential shard stepping.
    pub fn new(protocol: Protocol) -> Self {
        ShardedRuntime {
            inner: BatchedRuntime::new(protocol),
            parallel: false,
        }
    }

    /// Replaces the run configuration ([`RunConfig::rejoin_state`] steers
    /// where recovering processes land, within their shard).
    #[must_use]
    pub fn with_config(self, config: RunConfig) -> Self {
        ShardedRuntime {
            inner: self.inner.with_config(config),
            parallel: self.parallel,
        }
    }

    /// Steps shards on scoped worker threads instead of sequentially.
    ///
    /// Per-shard work is independent of the shard population, so this pays
    /// only for protocols with heavy per-period work on multi-core hosts;
    /// results are identical either way (each shard owns its PRNG).
    #[must_use]
    pub fn with_parallel(mut self) -> Self {
        self.parallel = true;
        self
    }

    /// The protocol being executed.
    pub fn protocol(&self) -> &Protocol {
        self.inner.protocol()
    }

    /// Runs the protocol under the given scenario and initial state
    /// distribution with the standard recording set (counts, transitions,
    /// alive counts, messages). Attach a
    /// [`ShardCountsRecorder`](super::ShardCountsRecorder) through
    /// [`Simulation`](super::Simulation) for per-shard series.
    ///
    /// # Errors
    ///
    /// Returns configuration errors (mismatched initial distribution,
    /// invalid protocol, identity-needing scenarios, shard events targeting
    /// nonexistent shards) and propagates scenario errors.
    pub fn run(&self, scenario: &Scenario, initial: &InitialStates) -> Result<RunResult> {
        drive(self, scenario, initial, &mut default_observers())
    }

    fn events<'s>(&self, state: &'s ShardedState) -> PeriodEvents<'s> {
        PeriodEvents {
            period: state.period,
            counts: &state.counts,
            transitions: &state.transitions,
            messages: state.messages,
            alive: state.alive_n,
            counts_alive: Some(&state.counts_alive),
            membership: None,
            shard_counts_alive: Some(&state.shard_alive),
            transport: None,
            injections: if state.delegate {
                state.shards[0].injection_records()
            } else {
                inject::records_of(&state.injector)
            },
            virtual_time: None,
        }
    }

    /// Splits the resolved initial counts across shards according to the
    /// placement policy. Blocks fill shards to capacity in state order (the
    /// minority state lands in the last shard); Uniform scatters each state
    /// with a uniform multinomial draw from the master PRNG.
    fn place(
        &self,
        counts: &[u64],
        num_shards: usize,
        placement: Placement,
        master: &mut Rng,
    ) -> Vec<Vec<u64>> {
        let num_states = counts.len();
        let mut alloc = vec![vec![0u64; num_states]; num_shards];
        match placement {
            Placement::Blocks => {
                let n: u64 = counts.iter().sum();
                let base = n / num_shards as u64;
                let rem = (n % num_shards as u64) as usize;
                let capacity = |j: usize| base + u64::from(j < rem);
                let mut shard = 0usize;
                let mut room = capacity(0);
                for (s, &count) in counts.iter().enumerate() {
                    let mut left = count;
                    while left > 0 {
                        while room == 0 {
                            shard += 1;
                            room = capacity(shard);
                        }
                        let take = left.min(room);
                        alloc[shard][s] += take;
                        room -= take;
                        left -= take;
                    }
                }
            }
            Placement::Uniform => {
                let weights = vec![1.0 / num_shards as f64; num_shards];
                let mut draws = vec![0u64; num_shards];
                for (s, &count) in counts.iter().enumerate() {
                    master.multinomial_into(count, &weights, &mut draws);
                    for (j, &d) in draws.iter().enumerate() {
                        alloc[j][s] = d;
                    }
                }
            }
        }
        alloc
    }

    /// The per-period migration exchange (general mode only): emigrants
    /// leave each open shard as a binomial of its alive population, split
    /// across states hypergeometrically, then scatter uniformly over the
    /// open shards.
    fn exchange(&self, state: &mut ShardedState) {
        if state.migration <= 0.0 || state.shards.len() < 2 {
            return;
        }
        let period = state.period;
        state.open.clear();
        for j in 0..state.shards.len() {
            if !state.scenario.is_shard_partitioned(j, period) {
                state.open.push(j);
            }
        }
        if state.open.len() < 2 {
            return;
        }
        let num_states = state.num_states();
        state.pool.fill(0);
        for &j in &state.open {
            let alive_total = state.shards[j].alive_total();
            let emigrants = state.master_rng.binomial(alive_total, state.migration);
            state.master_rng.multivariate_hypergeometric_into(
                state.shards[j].alive_counts(),
                emigrants,
                &mut state.scratch_hits[..num_states],
            );
            state.scratch_alive[j].copy_from_slice(state.shards[j].alive_counts());
            for s in 0..num_states {
                let hit = state.scratch_hits[s];
                state.scratch_alive[j][s] -= hit;
                state.pool[s] += hit;
            }
        }
        // Immigration: each emigrant lands in a uniformly random open shard
        // (including its source — at migration 1 this is a full reshuffle).
        let open_count = state.open.len();
        state.weights.clear();
        state.weights.resize(open_count, 1.0 / open_count as f64);
        for s in 0..num_states {
            if state.pool[s] == 0 {
                continue;
            }
            state.master_rng.multinomial_into(
                state.pool[s],
                &state.weights,
                &mut state.dest_draws[..open_count],
            );
            for (idx, &j) in state.open.iter().enumerate() {
                state.scratch_alive[j][s] += state.dest_draws[idx];
            }
        }
        for &j in &state.open {
            state.shards[j].rebase_alive(&state.scratch_alive[j]);
        }
    }

    /// Applies this period's global massive failures (general mode only):
    /// one multivariate hypergeometric draw over all `S × states` alive
    /// cells, so the victims are a uniform subset of the whole population —
    /// exactly the semantics the batched runtime gives a single group.
    fn apply_global_failures(&self, state: &mut ShardedState) -> Result<()> {
        let period = state.period;
        let num_states = state.num_states();
        for (p, event) in state.scenario.failure_schedule().events() {
            if *p != period {
                continue;
            }
            match event {
                FailureEvent::MassiveFailure { fraction } => {
                    if !(0.0..=1.0).contains(fraction) {
                        return Err(CoreError::InvalidProbability {
                            context: "massive failure fraction".into(),
                            value: *fraction,
                        });
                    }
                    for (j, shard) in state.shards.iter().enumerate() {
                        state.flat_cells[j * num_states..(j + 1) * num_states]
                            .copy_from_slice(shard.alive_counts());
                    }
                    let total_alive: u64 = state.flat_cells.iter().sum();
                    let k = (fraction * total_alive as f64).floor() as u64;
                    state.master_rng.multivariate_hypergeometric_into(
                        &state.flat_cells,
                        k,
                        &mut state.flat_hits,
                    );
                    for (j, shard) in state.shards.iter_mut().enumerate() {
                        shard.crash_counts(&state.flat_hits[j * num_states..(j + 1) * num_states]);
                    }
                }
                FailureEvent::Crash(_) | FailureEvent::Recover(_) => {
                    unreachable!("init rejects per-id failure schedules")
                }
            }
        }
        Ok(())
    }

    /// Applies this period's shard-targeted massive failures (general mode
    /// only): the draw is confined to the target shard's alive cells.
    fn apply_shard_failures(&self, state: &mut ShardedState) {
        let period = state.period;
        let num_states = state.num_states();
        for i in 0..state.scenario.shard_failures().len() {
            let failure = state.scenario.shard_failures()[i];
            if failure.period != period {
                continue;
            }
            let j = failure.shard;
            let alive_total = state.shards[j].alive_total();
            let k = (failure.fraction * alive_total as f64).floor() as u64;
            state.master_rng.multivariate_hypergeometric_into(
                state.shards[j].alive_counts(),
                k,
                &mut state.scratch_hits[..num_states],
            );
            state.shards[j].crash_counts(&state.scratch_hits[..num_states]);
        }
    }

    /// Shows the adversary (if any) the live per-shard alive counts and
    /// applies the injections it emits from the master PRNG (general mode
    /// only): uniform and state-targeted crashes draw multivariate
    /// hypergeometrics over the flattened `S × states` alive cells — the
    /// same exchangeable semantics the scheduled global events use — while
    /// shard-targeted crashes confine the draw to one shard.
    fn apply_injections(&self, state: &mut ShardedState) -> Result<()> {
        let Some(mut injector) = state.injector.take() else {
            return Ok(());
        };
        let result = self.drive_injections(state, &mut injector);
        state.injector = Some(injector);
        result
    }

    fn drive_injections(
        &self,
        state: &mut ShardedState,
        injector: &mut InjectionPoint,
    ) -> Result<()> {
        let num_states = state.num_states();
        let num_shards = state.shards.len();
        // Fresh post-event alive view: the cached aggregates are refreshed
        // only after the protocol step, so recompute from the shards.
        for (j, shard) in state.shards.iter().enumerate() {
            state.scratch_alive[j].copy_from_slice(shard.alive_counts());
        }
        let mut counts_alive = vec![0u64; num_states];
        for shard in &state.scratch_alive {
            for (s, &c) in shard.iter().enumerate() {
                counts_alive[s] += c;
            }
        }
        let alive: u64 = counts_alive.iter().sum();
        let planned = injector.plan(&AdversaryView {
            period: state.period,
            counts_alive: &counts_alive,
            alive,
            shard_counts_alive: Some(&state.scratch_alive),
            transport: None,
            segments_alive: None,
        })?;
        for injection in planned {
            let victims = match injection {
                Injection::CrashUniform { fraction } => {
                    for (j, shard) in state.shards.iter().enumerate() {
                        state.flat_cells[j * num_states..(j + 1) * num_states]
                            .copy_from_slice(shard.alive_counts());
                    }
                    let total: u64 = state.flat_cells.iter().sum();
                    let k = inject::victim_count(fraction, total);
                    state.master_rng.multivariate_hypergeometric_into(
                        &state.flat_cells,
                        k,
                        &mut state.flat_hits,
                    );
                    for (j, shard) in state.shards.iter_mut().enumerate() {
                        shard.crash_counts(&state.flat_hits[j * num_states..(j + 1) * num_states]);
                    }
                    k
                }
                Injection::CrashState { state: s, fraction } => {
                    if s >= num_states {
                        return Err(CoreError::InvalidConfig {
                            name: "adversary",
                            reason: format!(
                                "injection targets state {s}, but the protocol has only \
                                 {num_states} states"
                            ),
                        });
                    }
                    // Victims are exchangeable within the state but spread
                    // over shards: split the kill across shards by a
                    // hypergeometric draw over that state's per-shard cells.
                    let cells: Vec<u64> = state
                        .shards
                        .iter()
                        .map(|shard| shard.alive_counts()[s])
                        .collect();
                    let total: u64 = cells.iter().sum();
                    let k = inject::victim_count(fraction, total);
                    state.master_rng.multivariate_hypergeometric_into(
                        &cells,
                        k,
                        &mut state.dest_draws[..num_shards],
                    );
                    for (j, shard) in state.shards.iter_mut().enumerate() {
                        state.scratch_hits[..num_states].fill(0);
                        state.scratch_hits[s] = state.dest_draws[j];
                        shard.crash_counts(&state.scratch_hits[..num_states]);
                    }
                    k
                }
                Injection::CrashShard { shard: j, fraction } => {
                    if j >= num_shards {
                        return Err(CoreError::InvalidConfig {
                            name: "adversary",
                            reason: format!(
                                "injection targets shard {j}, but the topology has only \
                                 {num_shards} shard(s)"
                            ),
                        });
                    }
                    let alive_total = state.shards[j].alive_total();
                    let k = inject::victim_count(fraction, alive_total);
                    state.master_rng.multivariate_hypergeometric_into(
                        state.shards[j].alive_counts(),
                        k,
                        &mut state.scratch_hits[..num_states],
                    );
                    state.shards[j].crash_counts(&state.scratch_hits[..num_states]);
                    k
                }
                Injection::RecoverUniform { fraction } => {
                    for (j, shard) in state.shards.iter().enumerate() {
                        state.flat_cells[j * num_states..(j + 1) * num_states]
                            .copy_from_slice(shard.crashed_counts());
                    }
                    let total: u64 = state.flat_cells.iter().sum();
                    let k = inject::victim_count(fraction, total);
                    state.master_rng.multivariate_hypergeometric_into(
                        &state.flat_cells,
                        k,
                        &mut state.flat_hits,
                    );
                    let rejoin = self.inner.rejoin_state();
                    for (j, shard) in state.shards.iter_mut().enumerate() {
                        shard.recover_counts(
                            &state.flat_hits[j * num_states..(j + 1) * num_states],
                            rejoin,
                        );
                    }
                    k
                }
                // `Injection` is non_exhaustive: unknown future injections
                // are rejected rather than silently skipped.
                unsupported => {
                    return Err(inject::unsupported_injection("sharded", &unsupported));
                }
            };
            injector.record(state.period, injection, victims);
        }
        Ok(())
    }
}

impl Runtime for ShardedRuntime {
    type State = ShardedState;

    fn build(protocol: Protocol, config: &RunConfig) -> Self {
        ShardedRuntime::new(protocol).with_config(config.clone())
    }

    fn protocol(&self) -> &Protocol {
        self.inner.protocol()
    }

    fn init(&self, scenario: &Scenario, initial: &InitialStates) -> Result<ShardedState> {
        self.protocol().validate()?;
        super::reject_transport(scenario, "sharded")?;
        if !scenario.count_level_compatible() {
            return Err(CoreError::InvalidConfig {
                name: "scenario",
                reason: "the sharded runtime is count-level: per-id failure \
                         schedules and churn traces need host identity and \
                         have no sharded equivalent yet"
                    .into(),
            });
        }
        let num_shards = scenario.topology().shard_count();
        let n = scenario.group_size() as u64;
        if (num_shards as u64) > n {
            return Err(CoreError::InvalidConfig {
                name: "scenario",
                reason: format!("{num_shards} shards cannot partition a group of {n} processes"),
            });
        }
        for failure in scenario.shard_failures() {
            if failure.shard >= num_shards {
                return Err(CoreError::InvalidConfig {
                    name: "scenario",
                    reason: format!(
                        "shard failure targets shard {} but the topology has {} shard(s)",
                        failure.shard, num_shards
                    ),
                });
            }
        }
        for partition in scenario.shard_partitions() {
            if partition.shard >= num_shards {
                return Err(CoreError::InvalidConfig {
                    name: "scenario",
                    reason: format!(
                        "shard partition targets shard {} but the topology has {} shard(s)",
                        partition.shard, num_shards
                    ),
                });
            }
        }
        let num_states = self.protocol().num_states();
        let counts = initial.resolve(num_states, n)?;
        let delegate = num_shards == 1 && !scenario.has_shard_events();
        let migration = scenario
            .topology()
            .shard_config()
            .map_or(0.0, |config| config.migration());

        let (shards, master_rng) = if delegate {
            // The single shard carries the full scenario (failure schedule
            // included) and the exact PRNG BatchedRuntime::init would build:
            // the run is bit-for-bit the batched run. The master PRNG is
            // never drawn from in this mode.
            let shard = self.inner.state_from_counts(
                scenario,
                counts.clone(),
                vec![0; num_states],
                0,
                scenario.build_rng(),
            );
            (vec![shard], scenario.build_rng())
        } else {
            let mut root = scenario.build_rng();
            let mut master = root.fork(0);
            let placement = scenario
                .topology()
                .shard_config()
                .map_or(Placement::Blocks, |config| config.placement());
            let alloc = self.place(&counts, num_shards, placement, &mut master);
            let mut shards = Vec::with_capacity(num_shards);
            for (j, shard_counts) in alloc.into_iter().enumerate() {
                let shard_n: u64 = shard_counts.iter().sum();
                // Per-shard scenarios keep the exchangeable iid environment
                // (loss, failure model, clock) but drop the failure schedule:
                // global massive failures span shards, so the outer layer
                // draws them. Scenario sizes must be positive, so an
                // initially empty shard gets a placeholder population that is
                // immediately rebased away.
                let shard_scenario = Scenario::new(shard_n.max(1) as usize, scenario.periods())?
                    .with_loss(*scenario.loss())
                    .with_failure_model(*scenario.failure_model())
                    .with_clock(*scenario.clock());
                let rng = root.fork(j as u64 + 1);
                let shard = if shard_n > 0 {
                    self.inner.state_from_counts(
                        &shard_scenario,
                        shard_counts,
                        vec![0; num_states],
                        0,
                        rng,
                    )
                } else {
                    let mut placeholder = vec![0u64; num_states];
                    placeholder[0] = 1;
                    let mut empty = self.inner.state_from_counts(
                        &shard_scenario,
                        placeholder,
                        vec![0; num_states],
                        0,
                        rng,
                    );
                    empty.rebase_alive(&shard_counts);
                    empty
                };
                shards.push(shard);
            }
            (shards, master)
        };

        let mut state = ShardedState {
            shards,
            master_rng,
            // In delegate mode the single shard carries the full scenario and
            // therefore its own injection point; a master-level one would
            // apply every injection twice.
            injector: if delegate {
                None
            } else {
                InjectionPoint::from_scenario(scenario)
            },
            scenario: scenario.clone(),
            delegate,
            migration,
            period: 0,
            counts: vec![0; num_states],
            counts_alive: vec![0; num_states],
            alive_n: 0,
            messages: 0,
            transitions_dense: vec![0; num_states * num_states],
            transitions: Vec::new(),
            shard_alive: vec![vec![0; num_states]; num_shards],
            scratch_alive: vec![vec![0; num_states]; num_shards],
            scratch_hits: vec![0; num_states],
            pool: vec![0; num_states],
            weights: Vec::with_capacity(num_shards),
            dest_draws: vec![0; num_shards],
            open: Vec::with_capacity(num_shards),
            flat_cells: vec![0; num_shards * num_states],
            flat_hits: vec![0; num_shards * num_states],
        };
        state.refresh_aggregates();
        Ok(state)
    }

    fn step<'s>(&self, state: &'s mut ShardedState) -> Result<PeriodEvents<'s>> {
        if !state.delegate {
            // Period-boundary order: migration first (processes move, then
            // experience the period's events where they land), then global
            // and shard-targeted failures, then adversary injections (which
            // observe the post-event counts), then the protocol period.
            self.exchange(state);
            self.apply_global_failures(state)?;
            self.apply_shard_failures(state);
            self.apply_injections(state)?;
        }
        if self.parallel && state.shards.len() > 1 {
            let inner = &self.inner;
            let mut results: Vec<Result<()>> = state.shards.iter().map(|_| Ok(())).collect();
            std::thread::scope(|scope| {
                for (shard, slot) in state.shards.iter_mut().zip(results.iter_mut()) {
                    scope.spawn(move || *slot = inner.step(shard).map(|_| ()));
                }
            });
            results.into_iter().collect::<Result<()>>()?;
        } else {
            for shard in &mut state.shards {
                self.inner.step(shard)?;
            }
        }
        state.period += 1;
        state.refresh_aggregates();
        Ok(self.events(state))
    }

    fn snapshot<'s>(&self, state: &'s ShardedState) -> PeriodEvents<'s> {
        self.events(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::ProtocolCompiler;
    use crate::runtime::{CountsRecorder, ShardCountsRecorder, Simulation};
    use netsim::topology::{ShardConfig, Topology};
    use odekit::system::EquationSystemBuilder;

    fn epidemic_protocol() -> Protocol {
        let sys = EquationSystemBuilder::new()
            .vars(["x", "y"])
            .term("x", -1.0, &[("x", 1), ("y", 1)])
            .term("y", 1.0, &[("x", 1), ("y", 1)])
            .build()
            .unwrap();
        ProtocolCompiler::new("epidemic").compile(&sys).unwrap()
    }

    #[test]
    fn single_shard_delegates_bit_for_bit() {
        // S = 1 without shard events is the batched run, byte for byte —
        // including under massive failures and a failure model.
        let protocol = epidemic_protocol();
        let scenario = Scenario::new(100_000, 40)
            .unwrap()
            .with_massive_failure(20, 0.5)
            .unwrap()
            .with_failure_model(netsim::FailureModel::new(0.001, 0.01).unwrap())
            .with_seed(13)
            .with_topology(Topology::sharded(1, 0.3).unwrap());
        let initial = InitialStates::counts(&[99_990, 10]);
        let sharded = ShardedRuntime::new(protocol.clone())
            .run(&scenario, &initial)
            .unwrap();
        // The batched runtime refuses sharded scenarios, so compare against
        // the same scenario without the topology marker.
        let plain = Scenario::new(100_000, 40)
            .unwrap()
            .with_massive_failure(20, 0.5)
            .unwrap()
            .with_failure_model(netsim::FailureModel::new(0.001, 0.01).unwrap())
            .with_seed(13);
        let batched = BatchedRuntime::new(protocol).run(&plain, &initial).unwrap();
        assert_eq!(sharded, batched);
    }

    #[test]
    fn epidemic_crosses_shards_and_conserves_population() {
        let protocol = epidemic_protocol();
        let n = 1_000_000u64;
        let scenario = Scenario::new(n as usize, 80)
            .unwrap()
            .with_topology(Topology::sharded(8, 0.02).unwrap())
            .with_seed(3);
        let runtime = ShardedRuntime::new(protocol);
        let mut state = runtime
            .init(&scenario, &InitialStates::counts(&[n - 1, 1]))
            .unwrap();
        // Block placement concentrates the seed in the last shard.
        assert_eq!(state.shard_alive_counts()[7][1], 1);
        assert_eq!(state.shard_alive_counts()[0][1], 0);
        for _ in 0..80 {
            let events = runtime.step(&mut state).unwrap();
            assert_eq!(
                events.counts.iter().sum::<u64>(),
                n,
                "population conserved at period {}",
                state.period()
            );
        }
        // The epidemic escaped the seed shard: every shard is mostly infected.
        for (j, shard) in state.shard_alive_counts().iter().enumerate() {
            let total: u64 = shard.iter().sum();
            assert!(
                shard[1] as f64 > 0.9 * total as f64,
                "shard {j} not infected: {shard:?}"
            );
        }
    }

    #[test]
    fn full_mixing_with_parallel_stepping_matches_sequential() {
        let protocol = epidemic_protocol();
        let scenario = Scenario::new(100_000, 30)
            .unwrap()
            .with_topology(Topology::sharded(4, 1.0).unwrap())
            .with_seed(9);
        let initial = InitialStates::counts(&[99_900, 100]);
        let sequential = ShardedRuntime::new(protocol.clone())
            .run(&scenario, &initial)
            .unwrap();
        let parallel = ShardedRuntime::new(protocol)
            .with_parallel()
            .run(&scenario, &initial)
            .unwrap();
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn shard_failure_hits_only_its_shard() {
        let protocol = Protocol::new("inert", vec!["x".into(), "y".into()]).unwrap();
        let scenario = Scenario::new(80_000, 10)
            .unwrap()
            .with_topology(Topology::sharded(4, 0.0).unwrap())
            .with_shard_massive_failure(5, 2, 0.5)
            .unwrap()
            .with_seed(1);
        let runtime = ShardedRuntime::new(protocol);
        let mut state = runtime
            .init(&scenario, &InitialStates::counts(&[40_000, 40_000]))
            .unwrap();
        for _ in 0..10 {
            runtime.step(&mut state).unwrap();
        }
        let alive: Vec<u64> = state
            .shard_alive_counts()
            .iter()
            .map(|shard| shard.iter().sum())
            .collect();
        assert_eq!(alive, vec![20_000, 20_000, 10_000, 20_000]);
    }

    #[test]
    fn partitioned_shard_is_isolated_while_the_window_lasts() {
        let protocol = epidemic_protocol();
        let n = 100_000u64;
        // Seed in the last shard; shard 3 partitioned for the whole run at
        // full migration: it cannot be infected, everyone else mixes freely.
        let scenario = Scenario::new(n as usize, 50)
            .unwrap()
            .with_topology(Topology::sharded(4, 1.0).unwrap())
            .with_shard_partition(3, 0, 1_000)
            .unwrap()
            .with_seed(5);
        let runtime = ShardedRuntime::new(protocol);
        let mut state = runtime
            .init(&scenario, &InitialStates::counts(&[n - 1, 1]))
            .unwrap();
        for _ in 0..50 {
            runtime.step(&mut state).unwrap();
        }
        let shards = state.shard_alive_counts();
        // The partitioned shard held the seed (block placement put the
        // single infected process in the last shard) — the epidemic rages
        // inside it but never escapes.
        assert!(
            shards[3][1] > 20_000,
            "seed shard infected: {:?}",
            shards[3]
        );
        for (j, shard) in shards.iter().enumerate().take(3) {
            assert_eq!(shard[1], 0, "shard {j} must stay uninfected");
        }
        // Population in the partitioned shard is frozen at its initial size.
        assert_eq!(shards[3].iter().sum::<u64>(), n / 4);
    }

    #[test]
    fn uniform_placement_spreads_every_state() {
        let protocol = epidemic_protocol();
        let scenario = Scenario::new(80_000, 5)
            .unwrap()
            .with_topology(Topology::Sharded(
                ShardConfig::new(8, 0.0)
                    .unwrap()
                    .with_placement(Placement::Uniform),
            ))
            .with_seed(2);
        let runtime = ShardedRuntime::new(protocol);
        let state = runtime
            .init(&scenario, &InitialStates::counts(&[40_000, 40_000]))
            .unwrap();
        for (j, shard) in state.shard_alive_counts().iter().enumerate() {
            // Each shard holds roughly 5_000 of each state (±5σ).
            for (s, &count) in shard.iter().enumerate() {
                assert!(
                    (count as f64 - 5_000.0).abs() < 350.0,
                    "shard {j} state {s}: {count}"
                );
            }
        }
    }

    #[test]
    fn rejects_identity_scenarios_and_bad_shard_targets() {
        let protocol = epidemic_protocol();
        let runtime = ShardedRuntime::new(protocol);
        let initial = InitialStates::counts(&[99, 1]);
        // Per-id failure schedules need host identity.
        let mut schedule = netsim::FailureSchedule::new();
        schedule.add(1, FailureEvent::Crash(netsim::ProcessId(3)));
        let with_id = Scenario::new(100, 10)
            .unwrap()
            .with_failure_schedule(schedule)
            .unwrap()
            .with_topology(Topology::sharded(2, 0.1).unwrap());
        assert!(runtime.init(&with_id, &initial).is_err());
        // Shard events must target existing shards.
        let bad_failure = Scenario::new(100, 10)
            .unwrap()
            .with_topology(Topology::sharded(2, 0.1).unwrap())
            .with_shard_massive_failure(1, 2, 0.5)
            .unwrap();
        assert!(runtime.init(&bad_failure, &initial).is_err());
        let bad_partition = Scenario::new(100, 10)
            .unwrap()
            .with_topology(Topology::sharded(2, 0.1).unwrap())
            .with_shard_partition(7, 0, 5)
            .unwrap();
        assert!(runtime.init(&bad_partition, &initial).is_err());
        // More shards than processes is unsatisfiable.
        let tiny = Scenario::new(4, 10)
            .unwrap()
            .with_topology(Topology::sharded(8, 0.1).unwrap());
        assert!(runtime
            .init(&tiny, &InitialStates::counts(&[3, 1]))
            .is_err());
    }

    #[test]
    fn oblivious_adversary_matches_scheduled_global_failure_bit_for_bit() {
        // The master-level injection path consumes the master PRNG exactly
        // like a scheduled global massive failure of the same fraction.
        let protocol = epidemic_protocol();
        let initial = InitialStates::counts(&[99_900, 100]);
        let runtime = ShardedRuntime::new(protocol);
        let scheduled = Scenario::new(100_000, 30)
            .unwrap()
            .with_topology(Topology::sharded(4, 0.1).unwrap())
            .with_massive_failure(5, 0.5)
            .unwrap()
            .with_seed(19);
        let injected = Scenario::new(100_000, 30)
            .unwrap()
            .with_topology(Topology::sharded(4, 0.1).unwrap())
            .with_seed(19)
            .with_adversary(
                netsim::adversary::ObliviousSchedule::new()
                    .crash_uniform_at(5, 0.5)
                    .unwrap(),
            );
        let a = runtime.run(&scheduled, &initial).unwrap();
        let b = runtime.run(&injected, &initial).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn shard_targeted_injection_hits_only_its_shard() {
        // The injected twin of shard_failure_hits_only_its_shard: an
        // oblivious CrashShard at period 5 halves shard 2 and nothing else.
        let protocol = Protocol::new("inert", vec!["x".into(), "y".into()]).unwrap();
        let adversary = netsim::adversary::ObliviousSchedule::new()
            .inject_at(
                5,
                netsim::adversary::Injection::CrashShard {
                    shard: 2,
                    fraction: 0.5,
                },
            )
            .unwrap();
        let scenario = Scenario::new(80_000, 10)
            .unwrap()
            .with_topology(Topology::sharded(4, 0.0).unwrap())
            .with_seed(1)
            .with_adversary(adversary);
        let runtime = ShardedRuntime::new(protocol);
        let mut state = runtime
            .init(&scenario, &InitialStates::counts(&[40_000, 40_000]))
            .unwrap();
        for _ in 0..10 {
            runtime.step(&mut state).unwrap();
        }
        let alive: Vec<u64> = state
            .shard_alive_counts()
            .iter()
            .map(|shard| shard.iter().sum())
            .collect();
        assert_eq!(alive, vec![20_000, 20_000, 10_000, 20_000]);
    }

    #[test]
    fn shard_observer_records_per_shard_series() {
        let protocol = epidemic_protocol();
        let scenario = Scenario::new(10_000, 20)
            .unwrap()
            .with_topology(Topology::sharded(4, 0.1).unwrap())
            .with_seed(8);
        let result = Simulation::of(protocol)
            .scenario(scenario)
            .initial(InitialStates::counts(&[9_999, 1]))
            .observe(CountsRecorder::new())
            .observe(ShardCountsRecorder::new())
            .run::<ShardedRuntime>()
            .unwrap();
        for j in 0..4 {
            let series = result.metrics.series(&format!("shard{j}:x")).unwrap();
            assert_eq!(series.len(), 21, "shard {j} series covers every period");
        }
        // Per-shard series sum to the aggregate at the final period.
        let aggregate = result.final_counts().unwrap()[0];
        let sharded_sum: f64 = (0..4)
            .map(|j| {
                result
                    .metrics
                    .series(&format!("shard{j}:x"))
                    .unwrap()
                    .last()
                    .unwrap()
                    .1
            })
            .sum();
        assert_eq!(sharded_sum, aggregate);
    }

    #[test]
    fn zero_migration_keeps_shards_isolated() {
        let protocol = epidemic_protocol();
        let n = 40_000u64;
        let scenario = Scenario::new(n as usize, 60)
            .unwrap()
            .with_topology(Topology::sharded(4, 0.0).unwrap())
            .with_seed(6);
        let runtime = ShardedRuntime::new(protocol);
        let mut state = runtime
            .init(&scenario, &InitialStates::counts(&[n - 1, 1]))
            .unwrap();
        for _ in 0..60 {
            runtime.step(&mut state).unwrap();
        }
        let shards = state.shard_alive_counts();
        // The epidemic saturates its own shard and never leaves it.
        assert!(shards[3][1] > 9_000, "seed shard: {:?}", shards[3]);
        for (j, shard) in shards.iter().enumerate().take(3) {
            assert_eq!(shard[1], 0, "shard {j} must stay uninfected");
        }
    }
}
