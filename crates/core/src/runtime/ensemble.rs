//! Parallel multi-seed / multi-scenario ensembles.
//!
//! The paper (and the mean-field literature it builds on) compares protocol
//! dynamics against the ODE limit through *ensembles*: many independent runs
//! of the same protocol under varied seeds or environments, summarized by
//! per-period mean/standard-deviation envelopes. [`Ensemble`] makes that a
//! one-liner — it fans the runs across `std::thread` workers and folds the
//! trajectories into an [`EnsembleResult`] with Welford accumulators, so
//! memory stays O(periods × states) regardless of the number of seeds.
//!
//! # A Figure-11-style convergence sweep in a few lines
//!
//! ```
//! use dpde_core::runtime::{AggregateRuntime, Ensemble, InitialStates};
//! use dpde_core::ProtocolCompiler;
//! use netsim::Scenario;
//! use odekit::parse::parse_system;
//!
//! let sys = parse_system("x' = -x*y\ny' = x*y", &[])?;
//! let protocol = ProtocolCompiler::new("epidemic").compile(&sys)?;
//! let ensemble = Ensemble::of(protocol)
//!     .scenario(Scenario::new(10_000, 40)?)
//!     .initial(InitialStates::counts(&[9_990, 10]))
//!     .seed_range(0..16)
//!     .run::<AggregateRuntime>()?;
//! let infected = ensemble.mean_series("y")?;
//! assert!(infected.last().unwrap() > &9_900.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use super::observer::CountsRecorder;
use super::simulation::drive;
use super::{auto_tier, ErrorBudget, FidelityTier, InitialStates, Observer, RunConfig, Runtime};
use crate::error::CoreError;
use crate::state_machine::{Protocol, StateId};
use crate::Result;
use netsim::{OnlineStats, Scenario, Topology};
use odekit::integrate::Trajectory;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One ensemble run that panicked instead of completing.
///
/// A panicking seed does not bring the ensemble down: the worker catches the
/// unwind, records it here, and moves on to the next job. The aggregated
/// envelopes cover the seeds that completed;
/// [`EnsembleResult::failures`] lists the ones that did not.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeedFailure {
    /// Index of the scenario within the sweep (always 0 for
    /// [`Ensemble::run`]).
    pub scenario: usize,
    /// The seed whose run panicked.
    pub seed: u64,
    /// The panic payload, stringified.
    pub message: String,
}

/// Stringifies a caught panic payload. Panics carry `&str` or `String` in
/// practice, which pass through verbatim; anything else at least names its
/// concrete type id, so an exotic `panic_any` in a failure list is
/// diagnosable rather than fully opaque.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        format!("non-string panic payload ({:?})", (*payload).type_id())
    }
}

/// Driver for ensembles: the same protocol and initial distribution executed
/// under many seeds (and optionally many scenarios), in parallel.
#[derive(Debug, Clone)]
pub struct Ensemble {
    protocol: Protocol,
    scenario: Option<Scenario>,
    topology: Option<Topology>,
    initial: Option<InitialStates>,
    config: RunConfig,
    budget: ErrorBudget,
    seeds: Vec<u64>,
    threads: Option<usize>,
    alive_only: bool,
}

impl Ensemble {
    /// Starts an ensemble of the given protocol. By default it runs seeds
    /// `0..8` on all available cores.
    pub fn of(protocol: Protocol) -> Self {
        Ensemble {
            protocol,
            scenario: None,
            topology: None,
            initial: None,
            config: RunConfig::default(),
            budget: ErrorBudget::default(),
            seeds: (0..8).collect(),
            threads: None,
            alive_only: false,
        }
    }

    /// Sets the scenario template; each run clones it and overrides the seed.
    #[must_use]
    pub fn scenario(mut self, scenario: Scenario) -> Self {
        self.scenario = Some(scenario);
        self
    }

    /// Sets the population topology applied to every scenario in the
    /// ensemble (including each entry of a [`run_sweep`](Self::run_sweep)
    /// list), overriding the scenarios' own. A sharded topology makes
    /// [`run_auto`](Self::run_auto) select the
    /// [`ShardedRuntime`](super::ShardedRuntime) tier.
    #[must_use]
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Sets the initial state distribution shared by every run.
    #[must_use]
    pub fn initial(mut self, initial: InitialStates) -> Self {
        self.initial = Some(initial);
        self
    }

    /// Sets the state recovering processes rejoin into (see
    /// [`RunConfig::rejoin_state`]).
    #[must_use]
    pub fn rejoin_state(mut self, state: StateId) -> Self {
        self.config.rejoin_state = Some(state);
        self
    }

    /// Replaces the whole run configuration.
    #[must_use]
    pub fn config(mut self, config: RunConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the accuracy/cost trade-off [`run_auto`](Self::run_auto) honours
    /// (see [`ErrorBudget`]). The default, [`ErrorBudget::Fast`], keeps the
    /// historical count-threshold tier policy bit-for-bit.
    #[must_use]
    pub fn error_budget(mut self, budget: ErrorBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets an explicit seed list (one run per seed).
    #[must_use]
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Convenience: one run per seed in `range`.
    #[must_use]
    pub fn seed_range(self, range: std::ops::Range<u64>) -> Self {
        self.seeds(range)
    }

    /// Caps the number of worker threads (default: all available cores).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Aggregates alive-only counts (the paper's churn and massive-failure
    /// figures plot alive populations).
    #[must_use]
    pub fn count_alive_only(mut self) -> Self {
        self.alive_only = true;
        self
    }

    /// Runs the ensemble over the configured seeds.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the scenario, initial
    /// distribution or seed list is missing/empty, and propagates the first
    /// error any run reports.
    pub fn run<R: Runtime>(&self) -> Result<EnsembleResult> {
        let scenario = self.scenario.as_ref().ok_or(CoreError::InvalidConfig {
            name: "scenario",
            reason: "Ensemble::scenario was not set".into(),
        })?;
        let mut results = self.run_sweep::<R>(std::slice::from_ref(scenario))?;
        Ok(results.pop().expect("one result per scenario"))
    }

    /// The fidelity tier [`run_auto`](Self::run_auto) would execute this
    /// ensemble on (see [`FidelityTier`] for the policy; ensembles only record
    /// counts, so no observer ever needs host identity here).
    pub fn selected_tier(&self) -> FidelityTier {
        let effective = match (&self.scenario, self.topology) {
            (Some(scenario), Some(topology)) => Some(scenario.clone().with_topology(topology)),
            _ => None,
        };
        auto_tier(
            &self.protocol,
            effective.as_ref().or(self.scenario.as_ref()),
            self.initial.as_ref(),
            false,
            self.budget,
        )
    }

    /// Runs the ensemble on the fastest fidelity that can serve it
    /// ([`selected_tier`](Self::selected_tier)): the count-batched
    /// [`BatchedRuntime`](super::BatchedRuntime) when the scenario's
    /// environment is exchangeable ([`Scenario::count_level_compatible`])
    /// and every initial population is large, the
    /// [`HybridRuntime`](super::HybridRuntime) when the environment is
    /// exchangeable but the runs start in the small-count regime, and the
    /// per-process [`AgentRuntime`](super::AgentRuntime) otherwise.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    pub fn run_auto(&self) -> Result<EnsembleResult> {
        match self.selected_tier() {
            FidelityTier::Batched => self.run::<super::BatchedRuntime>(),
            FidelityTier::Hybrid => self.run::<super::HybridRuntime>(),
            FidelityTier::Agent => self.run::<super::AgentRuntime>(),
            FidelityTier::Sharded => self.run::<super::ShardedRuntime>(),
            FidelityTier::Async => self.run::<super::AsyncRuntime>(),
            FidelityTier::Ssa => self.run::<super::SsaRuntime>(),
            FidelityTier::TauLeap => {
                if let ErrorBudget::Bounded(epsilon) = self.budget {
                    let mut bounded = self.clone();
                    bounded.config.tau_epsilon = Some(epsilon);
                    return bounded.run::<super::TauLeapRuntime>();
                }
                self.run::<super::TauLeapRuntime>()
            }
        }
    }

    /// Runs the full sweep — every scenario × every seed — sharing one worker
    /// pool, and returns one [`EnsembleResult`] per scenario (in input
    /// order).
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run), plus an error for an empty scenario list.
    pub fn run_sweep<R: Runtime>(&self, scenarios: &[Scenario]) -> Result<Vec<EnsembleResult>> {
        if scenarios.is_empty() {
            return Err(CoreError::InvalidConfig {
                name: "scenarios",
                reason: "sweep needs at least one scenario".into(),
            });
        }
        if self.seeds.is_empty() {
            return Err(CoreError::InvalidConfig {
                name: "seeds",
                reason: "ensemble needs at least one seed".into(),
            });
        }
        let initial = self.initial.as_ref().ok_or(CoreError::InvalidConfig {
            name: "initial",
            reason: "Ensemble::initial was not set".into(),
        })?;

        // One job per (scenario, seed) pair, pulled off a shared counter by
        // the workers; trajectories land in per-job slots so aggregation is
        // deterministic regardless of scheduling.
        let jobs: Vec<(usize, u64)> = (0..scenarios.len())
            .flat_map(|sc| self.seeds.iter().map(move |&seed| (sc, seed)))
            .collect();
        let threads = self
            .threads
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            })
            .min(jobs.len())
            .max(1);

        let next_job = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Trajectory>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
        let first_error: Mutex<Option<CoreError>> = Mutex::new(None);
        let panics: Mutex<Vec<SeedFailure>> = Mutex::new(Vec::new());

        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let job = next_job.fetch_add(1, Ordering::Relaxed);
                    if job >= jobs.len() || first_error.lock().unwrap().is_some() {
                        return;
                    }
                    let (sc, seed) = jobs[job];
                    let mut scenario = scenarios[sc].clone().with_seed(seed);
                    if let Some(topology) = self.topology {
                        scenario = scenario.with_topology(topology);
                    }
                    let runtime = R::build(self.protocol.clone(), &self.config);
                    let mut observers: Vec<Box<dyn Observer>> =
                        vec![Box::new(if self.alive_only {
                            CountsRecorder::alive_only()
                        } else {
                            CountsRecorder::new()
                        })];
                    // A panicking run must not take its worker (let alone the
                    // whole ensemble) down: catch the unwind, record the seed,
                    // keep pulling jobs.
                    match catch_unwind(AssertUnwindSafe(|| {
                        drive(&runtime, &scenario, initial, &mut observers)
                    })) {
                        Ok(Ok(result)) => {
                            *slots[job].lock().unwrap() = Some(result.counts);
                        }
                        Ok(Err(err)) => {
                            let mut guard = first_error.lock().unwrap();
                            if guard.is_none() {
                                *guard = Some(err);
                            }
                            return;
                        }
                        Err(payload) => {
                            panics.lock().unwrap().push(SeedFailure {
                                scenario: sc,
                                seed,
                                message: panic_message(payload),
                            });
                        }
                    }
                });
            }
        });

        if let Some(err) = first_error.into_inner().unwrap() {
            return Err(err);
        }
        // Workers race on the shared failure list; sort it so results are
        // deterministic regardless of scheduling.
        let mut panics = panics.into_inner().unwrap();
        panics.sort_by_key(|a| (a.scenario, a.seed));

        let mut slot_iter = slots.into_iter().map(|slot| slot.into_inner().unwrap());
        let mut results = Vec::with_capacity(scenarios.len());
        for sc in 0..scenarios.len() {
            let mut seeds = Vec::with_capacity(self.seeds.len());
            let mut trajectories = Vec::with_capacity(self.seeds.len());
            for &seed in &self.seeds {
                if let Some(trajectory) = slot_iter.next().expect("one slot per job") {
                    seeds.push(seed);
                    trajectories.push(trajectory);
                }
            }
            let failures: Vec<SeedFailure> = panics
                .iter()
                .filter(|f| f.scenario == sc)
                .cloned()
                .collect();
            if trajectories.is_empty() {
                return Err(CoreError::EnsemblePanicked {
                    scenario: sc,
                    first_message: failures
                        .first()
                        .map(|f| f.message.clone())
                        .unwrap_or_default(),
                });
            }
            results.push(self.aggregate(seeds, &trajectories, failures, threads));
        }
        Ok(results)
    }

    /// Folds the per-seed trajectories of one scenario into mean/std
    /// envelopes.
    fn aggregate(
        &self,
        seeds: Vec<u64>,
        trajectories: &[Trajectory],
        failures: Vec<SeedFailure>,
        threads_used: usize,
    ) -> EnsembleResult {
        let reference = &trajectories[0];
        let periods = reference.len();
        let dim = reference.dim();
        let mut accumulators = vec![OnlineStats::new(); periods * dim];
        for trajectory in trajectories {
            for (p, (_, counts)) in trajectory.iter().enumerate() {
                for (v, acc) in counts.iter().zip(&mut accumulators[p * dim..(p + 1) * dim]) {
                    acc.push(*v);
                }
            }
        }
        let mut mean = Trajectory::with_capacity(periods);
        let mut std_dev = Trajectory::with_capacity(periods);
        for (p, &t) in reference.times().iter().enumerate() {
            let accs = &accumulators[p * dim..(p + 1) * dim];
            mean.push(t, accs.iter().map(OnlineStats::mean).collect());
            std_dev.push(t, accs.iter().map(OnlineStats::std_dev).collect());
        }
        EnsembleResult {
            state_names: self.protocol.state_names().to_vec(),
            time_scale: self.protocol.time_scale(),
            seeds,
            mean,
            std_dev,
            final_counts: trajectories
                .iter()
                .map(|t| t.last_state().to_vec())
                .collect(),
            threads_used,
            failures,
        }
    }
}

/// Per-period mean/std envelopes over an ensemble of runs.
#[derive(Debug, Clone, PartialEq)]
pub struct EnsembleResult {
    state_names: Vec<String>,
    time_scale: f64,
    /// The seeds that completed, in order; `final_counts[i]` belongs to
    /// `seeds[i]`. Panicked seeds are absent here and listed in
    /// [`failures`](Self::failures).
    pub seeds: Vec<u64>,
    /// Per-period mean counts across the ensemble (time is the period index).
    pub mean: Trajectory,
    /// Per-period sample standard deviation across the ensemble.
    pub std_dev: Trajectory,
    /// Final per-state counts of every run.
    pub final_counts: Vec<Vec<f64>>,
    /// Number of worker threads the ensemble actually spawned.
    pub threads_used: usize,
    /// Seeds whose run panicked (caught per worker; the envelopes above
    /// cover only the completed seeds). Empty for a fully healthy ensemble.
    pub failures: Vec<SeedFailure>,
}

impl EnsembleResult {
    /// The state names, in the order used by the envelope components.
    pub fn state_names(&self) -> &[String] {
        &self.state_names
    }

    /// Number of runs aggregated.
    pub fn runs(&self) -> usize {
        self.final_counts.len()
    }

    fn state_index(&self, name: &str) -> Result<usize> {
        self.state_names
            .iter()
            .position(|s| s == name)
            .ok_or_else(|| CoreError::UnknownState(name.to_string()))
    }

    /// The ensemble-mean count series of one state (by name).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownState`] if the name is not a protocol
    /// state.
    pub fn mean_series(&self, name: &str) -> Result<Vec<f64>> {
        Ok(self.mean.component(self.state_index(name)?))
    }

    /// The ensemble standard-deviation series of one state (by name).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownState`] if the name is not a protocol
    /// state.
    pub fn std_series(&self, name: &str) -> Result<Vec<f64>> {
        Ok(self.std_dev.component(self.state_index(name)?))
    }

    /// `(mean, std)` per period for one state — the envelope the paper-style
    /// convergence plots draw.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownState`] if the name is not a protocol
    /// state.
    pub fn envelope(&self, name: &str) -> Result<Vec<(f64, f64)>> {
        let idx = self.state_index(name)?;
        Ok(self
            .mean
            .component(idx)
            .into_iter()
            .zip(self.std_dev.component(idx))
            .collect())
    }

    /// The mean counts re-timed to ODE time and normalized by `n` — directly
    /// comparable to an integration of the source equations over fractions.
    pub fn mean_as_ode_trajectory(&self, n: f64) -> Trajectory {
        let mut out = Trajectory::with_capacity(self.mean.len());
        for (t, s) in self.mean.iter() {
            out.push(t * self.time_scale, s.iter().map(|c| c / n).collect());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::{AgentRuntime, AggregateRuntime};
    use super::*;
    use crate::mapping::ProtocolCompiler;
    use odekit::system::EquationSystemBuilder;

    fn epidemic_protocol() -> Protocol {
        let sys = EquationSystemBuilder::new()
            .vars(["x", "y"])
            .term("x", -1.0, &[("x", 1), ("y", 1)])
            .term("y", 1.0, &[("x", 1), ("y", 1)])
            .build()
            .unwrap();
        ProtocolCompiler::new("epidemic").compile(&sys).unwrap()
    }

    #[test]
    fn ensemble_aggregates_mean_and_std_over_seeds() {
        let ensemble = Ensemble::of(epidemic_protocol())
            .scenario(Scenario::new(2_000, 25).unwrap())
            .initial(InitialStates::counts(&[1_999, 1]))
            .seed_range(0..8)
            .threads(4)
            .run::<AgentRuntime>()
            .unwrap();
        assert_eq!(ensemble.runs(), 8);
        assert_eq!(ensemble.seeds, (0..8).collect::<Vec<_>>());
        assert!(ensemble.threads_used > 1, "8 seeds should use > 1 worker");
        assert_eq!(ensemble.mean.len(), 26);
        // Every run saturates, so the mean does too and the final std is
        // small relative to N.
        let infected = ensemble.mean_series("y").unwrap();
        assert!(infected.last().unwrap() > &1_950.0);
        let std = ensemble.std_series("x").unwrap();
        assert!(std[0] == 0.0, "identical initial configurations");
        assert!(
            std.iter().cloned().fold(0.0, f64::max) > 0.0,
            "seeds differ"
        );
        // Envelope pairs match the two series.
        let envelope = ensemble.envelope("y").unwrap();
        assert_eq!(envelope.len(), infected.len());
        assert_eq!(envelope.last().unwrap().0, *infected.last().unwrap());
        assert!(ensemble.mean_series("nope").is_err());
        // Mean counts stay conserved (every run conserves them).
        for (_, s) in ensemble.mean.iter() {
            assert!((s.iter().sum::<f64>() - 2_000.0).abs() < 1e-9);
        }
    }

    #[test]
    fn sweep_returns_one_result_per_scenario() {
        let scenarios = vec![
            Scenario::new(1_000, 20).unwrap(),
            Scenario::new(4_000, 20).unwrap(),
        ];
        let results = Ensemble::of(epidemic_protocol())
            .initial(InitialStates::fractions(&[0.999, 0.001]))
            .seed_range(0..4)
            .threads(4)
            .run_sweep::<AggregateRuntime>(&scenarios)
            .unwrap();
        assert_eq!(results.len(), 2);
        // Larger groups end with more infected processes.
        let last_mean = |r: &EnsembleResult| *r.mean_series("y").unwrap().last().unwrap();
        assert!(last_mean(&results[1]) > last_mean(&results[0]));
    }

    #[test]
    fn ensemble_validation_errors() {
        let base = Ensemble::of(epidemic_protocol());
        assert!(matches!(
            base.clone().run::<AgentRuntime>(),
            Err(CoreError::InvalidConfig {
                name: "scenario",
                ..
            })
        ));
        let with_scenario = base.scenario(Scenario::new(100, 5).unwrap());
        assert!(matches!(
            with_scenario.clone().run::<AgentRuntime>(),
            Err(CoreError::InvalidConfig {
                name: "initial",
                ..
            })
        ));
        let with_initial = with_scenario.initial(InitialStates::counts(&[99, 1]));
        assert!(matches!(
            with_initial.clone().seeds([]).run::<AgentRuntime>(),
            Err(CoreError::InvalidConfig { name: "seeds", .. })
        ));
        assert!(matches!(
            with_initial.run_sweep::<AgentRuntime>(&[]),
            Err(CoreError::InvalidConfig {
                name: "scenarios",
                ..
            })
        ));
        // A failing run propagates its error (mismatched initial distribution).
        let err = Ensemble::of(epidemic_protocol())
            .scenario(Scenario::new(100, 5).unwrap())
            .initial(InitialStates::counts(&[50, 49]))
            .seed_range(0..4)
            .run::<AgentRuntime>()
            .unwrap_err();
        assert!(matches!(err, CoreError::InvalidConfig { .. }));
    }

    /// An [`AgentRuntime`] wrapper that panics mid-run for odd seeds —
    /// exercises the per-seed `catch_unwind` supervision.
    struct PanickyRuntime(AgentRuntime);

    struct PanickyState {
        poisoned: bool,
        inner: super::super::AgentState,
    }

    impl Runtime for PanickyRuntime {
        type State = PanickyState;

        fn build(protocol: Protocol, config: &RunConfig) -> Self {
            PanickyRuntime(AgentRuntime::build(protocol, config))
        }

        fn protocol(&self) -> &Protocol {
            self.0.protocol()
        }

        fn init(&self, scenario: &Scenario, initial: &InitialStates) -> Result<PanickyState> {
            Ok(PanickyState {
                poisoned: scenario.seed() % 2 == 1,
                inner: self.0.init(scenario, initial)?,
            })
        }

        fn step<'s>(&self, state: &'s mut PanickyState) -> Result<super::super::PeriodEvents<'s>> {
            assert!(!state.poisoned, "injected test panic");
            self.0.step(&mut state.inner)
        }

        fn snapshot<'s>(&self, state: &'s PanickyState) -> super::super::PeriodEvents<'s> {
            self.0.snapshot(&state.inner)
        }
    }

    #[test]
    fn panicked_seeds_are_reported_not_fatal() {
        let ensemble = Ensemble::of(epidemic_protocol())
            .scenario(Scenario::new(500, 10).unwrap())
            .initial(InitialStates::counts(&[499, 1]))
            .seeds([0, 1, 2, 3])
            .threads(2)
            .run::<PanickyRuntime>()
            .unwrap();
        // The even seeds completed and are the only ones aggregated …
        assert_eq!(ensemble.seeds, vec![0, 2]);
        assert_eq!(ensemble.runs(), 2);
        assert_eq!(ensemble.mean.len(), 11);
        // … and the odd seeds are reported, in deterministic order.
        assert_eq!(ensemble.failures.len(), 2);
        assert_eq!(
            ensemble.failures.iter().map(|f| f.seed).collect::<Vec<_>>(),
            vec![1, 3]
        );
        for failure in &ensemble.failures {
            assert_eq!(failure.scenario, 0);
            assert!(failure.message.contains("injected test panic"));
        }
    }

    #[test]
    fn panic_messages_survive_for_every_payload_kind() {
        assert_eq!(panic_message(Box::new("boom")), "boom");
        assert_eq!(panic_message(Box::new(String::from("kaboom"))), "kaboom");
        // `panic_any` with an exotic payload still yields a diagnosable
        // message: the concrete type id is named instead of a blank shrug.
        let exotic = panic_message(Box::new(42u64));
        assert!(exotic.contains("non-string panic payload"));
        assert!(exotic.contains("TypeId"), "got: {exotic}");
    }

    #[test]
    fn an_ensemble_where_every_seed_panics_is_an_error() {
        let err = Ensemble::of(epidemic_protocol())
            .scenario(Scenario::new(500, 10).unwrap())
            .initial(InitialStates::counts(&[499, 1]))
            .seeds([1, 3, 5])
            .run::<PanickyRuntime>()
            .unwrap_err();
        match err {
            CoreError::EnsemblePanicked {
                scenario,
                first_message,
            } => {
                assert_eq!(scenario, 0);
                assert!(first_message.contains("injected test panic"));
            }
            other => panic!("expected EnsemblePanicked, got {other:?}"),
        }
    }

    #[test]
    fn ensemble_tier_selection_policy() {
        let protocol = epidemic_protocol();
        // Regression: no scenario attached → trivially exchangeable →
        // batched tier (used to fall back to the agent runtime).
        let bare = Ensemble::of(protocol.clone()).initial(InitialStates::counts(&[500, 500]));
        assert_eq!(bare.selected_tier(), FidelityTier::Batched);
        // Large balanced populations → batched; a small one → hybrid.
        let large = bare.clone().scenario(Scenario::new(1_000, 10).unwrap());
        assert_eq!(large.selected_tier(), FidelityTier::Batched);
        let small = Ensemble::of(protocol.clone())
            .scenario(Scenario::new(1_000, 10).unwrap())
            .initial(InitialStates::counts(&[999, 1]));
        assert_eq!(small.selected_tier(), FidelityTier::Hybrid);
        // Per-id events force the agent tier.
        let mut schedule = netsim::FailureSchedule::new();
        schedule.add(1, netsim::FailureEvent::Crash(netsim::ProcessId(0)));
        let per_id = Ensemble::of(protocol.clone())
            .scenario(
                Scenario::new(1_000, 10)
                    .unwrap()
                    .with_failure_schedule(schedule)
                    .unwrap(),
            )
            .initial(InitialStates::counts(&[500, 500]));
        assert_eq!(per_id.selected_tier(), FidelityTier::Agent);
        // A builder-level sharded topology selects the sharded tier and the
        // ensemble runs on it.
        let sharded = Ensemble::of(protocol)
            .scenario(Scenario::new(10_000, 20).unwrap())
            .initial(InitialStates::counts(&[9_900, 100]))
            .topology(netsim::Topology::sharded(4, 0.05).unwrap())
            .seed_range(0..4);
        assert_eq!(sharded.selected_tier(), FidelityTier::Sharded);
        let result = sharded.run_auto().unwrap();
        assert!(result.mean_series("y").unwrap().last().unwrap() > &9_000.0);
    }

    #[test]
    fn ensemble_error_budget_selects_continuous_time_tiers() {
        let base = Ensemble::of(epidemic_protocol())
            .scenario(Scenario::new(2_000, 15).unwrap())
            .initial(InitialStates::counts(&[1_500, 500]))
            .seed_range(0..4)
            .threads(2);
        // The default budget keeps the historical policy …
        assert_eq!(base.selected_tier(), FidelityTier::Batched);
        // … while explicit budgets redirect to the continuous-time tiers.
        let exact = base.clone().error_budget(ErrorBudget::Exact);
        assert_eq!(exact.selected_tier(), FidelityTier::Ssa);
        let bounded = base.clone().error_budget(ErrorBudget::Bounded(0.05));
        assert_eq!(bounded.selected_tier(), FidelityTier::TauLeap);
        // Both budgets actually run and conserve the population mean.
        for ensemble in [exact, bounded] {
            let result = ensemble.run_auto().unwrap();
            assert!(result.failures.is_empty());
            for (_, s) in result.mean.iter() {
                assert!((s.iter().sum::<f64>() - 2_000.0).abs() < 1e-9);
            }
            assert!(result.mean_series("y").unwrap().last().unwrap() > &1_500.0);
        }
        // Id-based scenarios still win over the budget: correctness first.
        let mut schedule = netsim::FailureSchedule::new();
        schedule.add(1, netsim::FailureEvent::Crash(netsim::ProcessId(0)));
        let per_id = base
            .scenario(
                Scenario::new(2_000, 15)
                    .unwrap()
                    .with_failure_schedule(schedule)
                    .unwrap(),
            )
            .error_budget(ErrorBudget::Exact);
        assert_eq!(per_id.selected_tier(), FidelityTier::Agent);
    }

    #[test]
    fn run_auto_serves_exchangeable_and_id_based_scenarios() {
        // Exchangeable scenario → batched fidelity; N = 200 000 over 8 seeds
        // stays fast because the work is independent of N.
        let auto = Ensemble::of(epidemic_protocol())
            .scenario(Scenario::new(200_000, 30).unwrap())
            .initial(InitialStates::counts(&[199_990, 10]))
            .seed_range(0..8)
            .run_auto()
            .unwrap();
        assert!(auto.mean_series("y").unwrap().last().unwrap() > &198_000.0);

        // A churn trace needs identity; run_auto must still serve it (via the
        // agent runtime).
        let cfg = netsim::SyntheticChurnConfig {
            hosts: 300,
            hours: 2,
            mean_availability: 0.8,
            churn_min: 0.1,
            churn_max: 0.2,
        };
        let mut rng = netsim::Rng::seed_from(5);
        let trace = cfg.generate(&mut rng).unwrap();
        let churny = Ensemble::of(epidemic_protocol())
            .scenario(
                Scenario::new(300, 20)
                    .unwrap()
                    .with_churn_trace(&trace, &mut rng)
                    .unwrap(),
            )
            .initial(InitialStates::counts(&[299, 1]))
            .seed_range(0..4)
            .count_alive_only()
            .run_auto()
            .unwrap();
        // Alive-only counts reflect the partial availability.
        let total: f64 = auto.mean.last_state().iter().sum();
        assert_eq!(total, 200_000.0);
        let churny_total: f64 = churny.mean.last_state().iter().sum();
        assert!(churny_total < 295.0, "churn left {churny_total} alive");
    }

    #[test]
    fn both_fidelities_produce_compatible_envelopes() {
        let build = || {
            Ensemble::of(epidemic_protocol())
                .scenario(Scenario::new(5_000, 30).unwrap())
                .initial(InitialStates::counts(&[4_995, 5]))
                .seed_range(10..18)
        };
        let agent = build().run::<AgentRuntime>().unwrap();
        let aggregate = build().run::<AggregateRuntime>().unwrap();
        let a = agent.mean_series("y").unwrap();
        let b = aggregate.mean_series("y").unwrap();
        // Both saturate to (almost) everyone infected.
        assert!(a.last().unwrap() > &4_900.0);
        assert!(b.last().unwrap() > &4_900.0);
    }
}
