//! The count-batched stochastic protocol runtime.

use super::inject::{self, InjectionPoint};
use super::observer::default_observers;
use super::simulation::drive;
use super::{InitialStates, PeriodEvents, RunConfig, RunResult, Runtime};
use crate::action::Action;
use crate::error::CoreError;
use crate::state_machine::{Protocol, StateId};
use crate::Result;
use netsim::adversary::{AdversaryView, Injection, InjectionRecord};
use netsim::{FailureEvent, Rng, Scenario};

/// Executes a protocol by advancing whole state-count vectors, sampling the
/// *number* of processes taking each transition per period instead of
/// simulating every process — O(states² · actions) per period, independent of
/// the group size `N`.
///
/// The paper's protocols are symmetric and memoryless: within a period every
/// process in the same state performs exchangeable Bernoulli/sampling trials,
/// so the per-state outcome tallies are binomially/multinomially distributed
/// and can be drawn directly (the "batched" technique of population-protocol
/// simulators). This is what makes N = 10⁶–10⁷ runs interactive.
///
/// # Semantics (and how they relate to [`AgentRuntime`](super::AgentRuntime))
///
/// * **Synchronous update.** All firing probabilities are evaluated against
///   the **start-of-period** alive counts and all transitions are applied at
///   the period boundary, whereas the agent runtime updates states in process
///   order within a period. The discrepancy vanishes as per-period transition
///   probabilities shrink (the compiler's normalizing constant keeps them
///   small), and the ensemble-equivalence property tests pin both fidelities
///   to the same mean trajectories.
/// * **First-move-wins.** Within one state's action list the agent runtime
///   stops at the first action that moves the process; the batched runtime
///   reproduces this with survival accounting: action `j` fires for the
///   `k_s · survive_j` processes that no earlier action moved, and the joint
///   outcome is a single multinomial draw per state.
/// * **`PushSample`/`Tokenize` ordering.** The executor pool of a push/token
///   action is thinned by the same survival probability as the self-moving
///   actions (an executor that already moved never reaches it, exactly as in
///   the agent's first-move-wins loop). The conversions themselves are drawn
///   as binomial tallies against start-of-period counts and capped by the
///   target state's population; a process that is pushed and also moves
///   itself in the same period is counted once for each (the agent runtime
///   resolves such races in process order). These target-side race effects
///   are O(per-period-probability²) and statistically invisible at the
///   paper's parameters — the property tests in `tests/property.rs` validate
///   the agreement through the `Runtime` trait.
///
/// # Environment support
///
/// Unlike [`AggregateRuntime`](super::AggregateRuntime) (which rejects every
/// failure-carrying scenario), the batched runtime models all *exchangeable*
/// environment events at count level:
///
/// * **massive failures** — crashing a uniform fraction of the alive
///   processes splits across states as a multivariate hypergeometric draw;
/// * **probabilistic failure models** — per-period crash/recovery become
///   per-state binomial draws, with crashed processes remembering their state
///   (or rejoining into [`RunConfig::rejoin_state`]);
/// * **message/connection loss** — folded into the firing probabilities.
///
/// Only environments that name *specific* processes (per-id failure
/// schedules, churn traces) still need host identity:
/// [`init`](Runtime::init) rejects those loudly, and
/// [`Simulation::run_auto`](super::Simulation::run_auto) falls back to the
/// agent runtime for them automatically.
///
/// # Examples
///
/// ```
/// use dpde_core::{ProtocolCompiler, runtime::{BatchedRuntime, InitialStates}};
/// use netsim::Scenario;
/// use odekit::parse::parse_system;
///
/// let sys = parse_system("x' = -x*y\ny' = x*y", &[])?;
/// let protocol = ProtocolCompiler::new("epidemic").compile(&sys)?;
/// // One million processes, half of them crashing at period 15 — still
/// // milliseconds, because work is independent of N.
/// let scenario = Scenario::new(1_000_000, 30)?
///     .with_massive_failure(15, 0.5)?
///     .with_seed(7);
/// let result = BatchedRuntime::new(protocol)
///     .run(&scenario, &InitialStates::counts(&[999_999, 1]))?;
/// assert!(result.final_counts().expect("counts recorded")[1] > 400_000.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct BatchedRuntime {
    protocol: Protocol,
    config: RunConfig,
}

/// The mutable execution state of a [`BatchedRuntime`] run: per-state alive
/// and crashed counts, the PRNG, and reusable scratch buffers so the
/// per-period step allocates nothing.
#[derive(Debug, Clone)]
pub struct BatchedState {
    scenario: Scenario,
    rng: Rng,
    n_f: f64,
    alive_n: u64,
    /// Total processes per state (alive + crashed; crashed processes remember
    /// their state, mirroring the agent runtime's frozen membership).
    counts: Vec<u64>,
    /// Alive processes per state — what the protocol actions act on.
    counts_alive: Vec<u64>,
    /// Crashed processes per state — the pool recoveries draw from.
    counts_crashed: Vec<u64>,
    period: u64,
    messages: u64,
    transitions_dense: Vec<u64>,
    transitions: Vec<(StateId, StateId, u64)>,
    injector: Option<InjectionPoint>,
    // Scratch buffers reused every period.
    start: Vec<u64>,
    delta: Vec<i64>,
    weights: Vec<f64>,
    dests: Vec<u32>,
    draws: Vec<u64>,
}

impl BatchedState {
    /// The next period to execute (also the number of periods executed).
    pub fn period(&self) -> u64 {
        self.period
    }

    /// Per-state alive counts (used by the hybrid runtime's handoff
    /// decisions and the counts→membership handoff).
    pub(super) fn alive_counts(&self) -> &[u64] {
        &self.counts_alive
    }

    /// Per-state crashed counts.
    pub(super) fn crashed_counts(&self) -> &[u64] {
        &self.counts_crashed
    }

    /// Per-state total counts (alive + crashed).
    pub(super) fn total_counts(&self) -> &[u64] {
        &self.counts
    }

    /// A copy of the PRNG at its current position, so a handoff continues
    /// the same stream.
    pub(super) fn rng_clone(&self) -> Rng {
        self.rng.clone()
    }

    /// Total alive processes.
    pub(super) fn alive_total(&self) -> u64 {
        self.alive_n
    }

    /// The sparse transition tallies of the last executed period.
    pub(super) fn last_transitions(&self) -> &[(StateId, StateId, u64)] {
        &self.transitions
    }

    /// The message tally of the last executed period.
    pub(super) fn last_messages(&self) -> u64 {
        self.messages
    }

    /// Replaces the per-state alive counts (crashed counts are untouched) and
    /// refreshes the derived totals — including the density denominator
    /// `n_f`, which tracks the *current* population so firing probabilities
    /// keep meaning "sample a uniform member of this group".
    ///
    /// This is the sharded runtime's migration hook: after an inter-shard
    /// exchange the shard's population differs from the group size its
    /// scenario was built with, and this method is the only place allowed to
    /// break that equality. Scratch buffers are untouched (their sizes
    /// depend only on the protocol).
    pub(super) fn rebase_alive(&mut self, counts_alive: &[u64]) {
        debug_assert_eq!(counts_alive.len(), self.counts_alive.len());
        self.counts_alive.copy_from_slice(counts_alive);
        for ((count, alive), crashed) in self
            .counts
            .iter_mut()
            .zip(&self.counts_alive)
            .zip(&self.counts_crashed)
        {
            *count = alive + crashed;
        }
        self.alive_n = self.counts_alive.iter().sum();
        self.n_f = self.counts.iter().sum::<u64>() as f64;
    }

    /// Moves `hits[s]` processes of each state `s` from alive to crashed —
    /// the sharded runtime's hook for externally drawn massive failures
    /// (state totals and the density denominator are unchanged: crashed
    /// processes remember their state).
    pub(super) fn crash_counts(&mut self, hits: &[u64]) {
        debug_assert_eq!(hits.len(), self.counts_alive.len());
        for ((alive, crashed), &hit) in self
            .counts_alive
            .iter_mut()
            .zip(self.counts_crashed.iter_mut())
            .zip(hits)
        {
            debug_assert!(hit <= *alive, "cannot crash more than are alive");
            *alive -= hit;
            *crashed += hit;
        }
        self.alive_n -= hits.iter().sum::<u64>();
    }

    /// Moves `hits[s]` processes of each state `s` from crashed back to
    /// alive (remembered-state recovery) — the sharded runtime's hook for
    /// externally drawn recovery injections. `rejoin` optionally resets
    /// recovering processes into one state instead.
    pub(super) fn recover_counts(&mut self, hits: &[u64], rejoin: Option<StateId>) {
        debug_assert_eq!(hits.len(), self.counts_crashed.len());
        for (s, &hit) in hits.iter().enumerate() {
            if hit == 0 {
                continue;
            }
            debug_assert!(hit <= self.counts_crashed[s]);
            self.counts_crashed[s] -= hit;
            match rejoin {
                Some(r) => {
                    let r = r.index();
                    self.counts_alive[r] += hit;
                    self.counts[s] -= hit;
                    self.counts[r] += hit;
                }
                None => self.counts_alive[s] += hit,
            }
        }
        self.alive_n += hits.iter().sum::<u64>();
    }

    /// Detaches the adversary injection point (hybrid handoff: the strategy
    /// state must survive the fidelity switch).
    pub(super) fn take_injector(&mut self) -> Option<InjectionPoint> {
        self.injector.take()
    }

    /// Re-attaches an adversary injection point after a handoff (or detaches
    /// it with `None` — the sharded runtime drives injections from its
    /// master state, not per shard).
    pub(super) fn set_injector(&mut self, injector: Option<InjectionPoint>) {
        self.injector = injector;
    }

    /// The injections applied in the most recent period (the sharded
    /// runtime's delegate mode surfaces its single shard's records).
    pub(super) fn injection_records(&self) -> &[InjectionRecord] {
        inject::records_of(&self.injector)
    }

    /// Overwrites the period counter — the continuous-time runtimes advance
    /// their event clocks outside the inner state and synchronize it at each
    /// boundary so the shared failure/injection hooks fire on schedule.
    pub(super) fn set_period(&mut self, period: u64) {
        self.period = period;
    }

    /// Mutable access to the PRNG, for runtimes that draw event waits and
    /// leap sizes from the same stream the boundary hooks consume.
    pub(super) fn rng_mut(&mut self) -> &mut Rng {
        &mut self.rng
    }

    /// The scenario this state was built against.
    pub(super) fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// The density denominator (total population as `f64`), i.e. the `n` in
    /// "sample a uniform member of this group".
    pub(super) fn density_n(&self) -> f64 {
        self.n_f
    }
}

impl BatchedRuntime {
    /// Creates a batched runtime with the default [`RunConfig`].
    pub fn new(protocol: Protocol) -> Self {
        BatchedRuntime {
            protocol,
            config: RunConfig::default(),
        }
    }

    /// Replaces the run configuration ([`RunConfig::rejoin_state`] steers
    /// where recovering processes land).
    #[must_use]
    pub fn with_config(mut self, config: RunConfig) -> Self {
        self.config = config;
        self
    }

    /// The protocol being executed.
    pub fn protocol(&self) -> &Protocol {
        &self.protocol
    }

    /// The configured rejoin state (the sharded runtime applies recovery
    /// injections at its master level with the inner runtime's semantics).
    pub(super) fn rejoin_state(&self) -> Option<StateId> {
        self.config.rejoin_state
    }

    /// Runs the protocol under the given scenario and initial state
    /// distribution with the standard recording set (counts, transitions,
    /// alive counts, messages).
    ///
    /// For opt-in recording or custom observers use
    /// [`Simulation`](super::Simulation).
    ///
    /// # Errors
    ///
    /// Returns configuration errors (mismatched initial distribution, invalid
    /// protocol, a scenario that needs host identity) and propagates scenario
    /// errors.
    pub fn run(&self, scenario: &Scenario, initial: &InitialStates) -> Result<RunResult> {
        drive(self, scenario, initial, &mut default_observers())
    }

    fn events<'s>(&self, state: &'s BatchedState) -> PeriodEvents<'s> {
        PeriodEvents {
            period: state.period,
            counts: &state.counts,
            transitions: &state.transitions,
            messages: state.messages,
            alive: state.alive_n,
            counts_alive: Some(&state.counts_alive),
            membership: None,
            shard_counts_alive: None,
            transport: None,
            injections: inject::records_of(&state.injector),
            virtual_time: None,
        }
    }

    /// Builds a mid-run [`BatchedState`] from per-state alive/crashed counts
    /// — the membership→counts projection of the hybrid runtime's handoff
    /// (also the tail of [`init`](Runtime::init), with all-zero crashed
    /// counts and period 0).
    ///
    /// The caller guarantees the counts sum to the scenario's group size and
    /// that the scenario is count-level compatible.
    pub(super) fn state_from_counts(
        &self,
        scenario: &Scenario,
        counts_alive: Vec<u64>,
        counts_crashed: Vec<u64>,
        period: u64,
        rng: Rng,
    ) -> BatchedState {
        let num_states = self.protocol.num_states();
        let n = scenario.group_size() as u64;
        let alive_n: u64 = counts_alive.iter().sum();
        debug_assert_eq!(
            alive_n + counts_crashed.iter().sum::<u64>(),
            n,
            "handoff counts must cover the whole group"
        );
        let counts: Vec<u64> = counts_alive
            .iter()
            .zip(&counts_crashed)
            .map(|(a, c)| a + c)
            .collect();
        // Scratch sized once: at most one self-move outcome per action, plus
        // the "stay" bucket.
        let max_outcomes = (0..num_states)
            .map(|s| {
                self.protocol
                    .actions(StateId::new(s))
                    .iter()
                    .filter(|a| a.moves_self())
                    .count()
            })
            .max()
            .unwrap_or(0)
            + 1;
        BatchedState {
            scenario: scenario.clone(),
            rng,
            n_f: n as f64,
            alive_n,
            counts_alive,
            counts_crashed,
            counts,
            period,
            messages: 0,
            transitions_dense: vec![0; num_states * num_states],
            transitions: Vec::new(),
            injector: InjectionPoint::from_scenario(scenario),
            start: vec![0; num_states],
            delta: vec![0; num_states],
            weights: Vec::with_capacity(max_outcomes),
            dests: Vec::with_capacity(max_outcomes),
            draws: vec![0; max_outcomes],
        }
    }

    /// Applies this period's exchangeable failure events at count level.
    /// Shared with the continuous-time runtimes, which run the same boundary
    /// hooks between their event windows.
    pub(super) fn apply_failures(&self, state: &mut BatchedState) -> Result<()> {
        let period = state.period;
        // Scheduled massive failures: hypergeometric split across states.
        for (p, event) in state.scenario.failure_schedule().events() {
            if *p != period {
                continue;
            }
            match event {
                FailureEvent::MassiveFailure { fraction } => {
                    if !(0.0..=1.0).contains(fraction) {
                        return Err(CoreError::InvalidProbability {
                            context: "massive failure fraction".into(),
                            value: *fraction,
                        });
                    }
                    let k = (fraction * state.alive_n as f64).floor() as u64;
                    crash_hypergeometric(
                        &mut state.rng,
                        &mut state.counts_alive,
                        &mut state.counts_crashed,
                        state.alive_n,
                        k,
                    );
                    state.alive_n -= k;
                }
                FailureEvent::Crash(_) | FailureEvent::Recover(_) => {
                    unreachable!("init rejects per-id failure schedules")
                }
            }
        }
        // Probabilistic crash/recovery: per-state binomial draws.
        let model = *state.scenario.failure_model();
        if model.crash_prob() > 0.0 {
            for s in 0..state.counts_alive.len() {
                let crashed = state
                    .rng
                    .binomial(state.counts_alive[s], model.crash_prob());
                state.counts_alive[s] -= crashed;
                state.counts_crashed[s] += crashed;
                state.alive_n -= crashed;
            }
        }
        if model.recover_prob() > 0.0 {
            for s in 0..state.counts_crashed.len() {
                let recovered = state
                    .rng
                    .binomial(state.counts_crashed[s], model.recover_prob());
                if recovered == 0 {
                    continue;
                }
                state.counts_crashed[s] -= recovered;
                state.alive_n += recovered;
                match self.config.rejoin_state {
                    // Rejoiners are reset: they change state, so the total
                    // counts move too.
                    Some(rejoin) => {
                        let r = rejoin.index();
                        state.counts_alive[r] += recovered;
                        state.counts[s] -= recovered;
                        state.counts[r] += recovered;
                    }
                    // Otherwise they come back in their remembered state.
                    None => state.counts_alive[s] += recovered,
                }
            }
        }
        Ok(())
    }

    /// Shows the adversary (if any) the live counts and applies the
    /// injections it emits, with the same exchangeable semantics as the
    /// scheduled-event path: a `CrashUniform` consumes the run's main PRNG
    /// stream exactly like a scheduled massive failure of the same fraction.
    pub(super) fn apply_injections(&self, state: &mut BatchedState) -> Result<()> {
        let Some(mut injector) = state.injector.take() else {
            return Ok(());
        };
        let view = AdversaryView {
            period: state.period,
            counts_alive: &state.counts_alive,
            alive: state.alive_n,
            shard_counts_alive: None,
            transport: None,
            segments_alive: None,
        };
        let planned = injector.plan(&view)?;
        for injection in planned {
            let victims = match injection {
                Injection::CrashUniform { fraction } => {
                    let k = inject::victim_count(fraction, state.alive_n);
                    crash_hypergeometric(
                        &mut state.rng,
                        &mut state.counts_alive,
                        &mut state.counts_crashed,
                        state.alive_n,
                        k,
                    );
                    state.alive_n -= k;
                    k
                }
                Injection::CrashState { state: s, fraction } => {
                    if s >= state.counts_alive.len() {
                        state.injector = Some(injector);
                        return Err(CoreError::InvalidConfig {
                            name: "adversary",
                            reason: format!(
                                "injection targets state {s}, but the protocol has only {} states",
                                state.counts_alive.len()
                            ),
                        });
                    }
                    // A state-targeted crash is a deterministic count move:
                    // the victims are exchangeable within one state, so no
                    // randomness is needed at count level.
                    let k = inject::victim_count(fraction, state.counts_alive[s]);
                    state.counts_alive[s] -= k;
                    state.counts_crashed[s] += k;
                    state.alive_n -= k;
                    k
                }
                Injection::RecoverUniform { fraction } => {
                    let crashed_total: u64 = state.counts_crashed.iter().sum();
                    let k = inject::victim_count(fraction, crashed_total);
                    if k > 0 {
                        let mut hits = vec![0u64; state.counts_crashed.len()];
                        state.rng.multivariate_hypergeometric_into(
                            &state.counts_crashed,
                            k,
                            &mut hits,
                        );
                        state.recover_counts(&hits, self.config.rejoin_state);
                    }
                    k
                }
                // `Injection` is non_exhaustive: shard-targeted (and any
                // future) injections are rejected rather than skipped.
                unsupported => {
                    state.injector = Some(injector);
                    return Err(inject::unsupported_injection("batched", &unsupported));
                }
            };
            injector.record(state.period, injection, victims);
        }
        state.injector = Some(injector);
        Ok(())
    }
}

/// Crashes `k` uniformly random alive processes: the per-state hit counts
/// follow a multivariate hypergeometric distribution.
///
/// Delegates to [`Rng::multivariate_hypergeometric_into`], whose
/// sequential-conditional walk consumes the PRNG stream exactly like the
/// hand-rolled loop this used to be — seeded runs stay bit-identical.
fn crash_hypergeometric(
    rng: &mut Rng,
    counts_alive: &mut [u64],
    counts_crashed: &mut [u64],
    alive_total: u64,
    k: u64,
) {
    debug_assert_eq!(counts_alive.iter().sum::<u64>(), alive_total);
    debug_assert!(k <= alive_total, "cannot crash more than are alive");
    let mut hits = vec![0u64; counts_alive.len()];
    rng.multivariate_hypergeometric_into(counts_alive, k, &mut hits);
    for ((alive, crashed), hit) in counts_alive
        .iter_mut()
        .zip(counts_crashed.iter_mut())
        .zip(hits)
    {
        *alive -= hit;
        *crashed += hit;
    }
}

impl Runtime for BatchedRuntime {
    type State = BatchedState;

    fn build(protocol: Protocol, config: &RunConfig) -> Self {
        BatchedRuntime::new(protocol).with_config(config.clone())
    }

    fn protocol(&self) -> &Protocol {
        &self.protocol
    }

    fn init(&self, scenario: &Scenario, initial: &InitialStates) -> Result<BatchedState> {
        self.protocol.validate()?;
        if !scenario.count_level_compatible() {
            return Err(CoreError::InvalidConfig {
                name: "scenario",
                reason: "the batched runtime models only exchangeable environments \
                         (massive failures, probabilistic failure models, losses); \
                         per-id failure schedules and churn traces need host \
                         identity — use AgentRuntime (or Simulation::run_auto, \
                         which picks the right fidelity automatically)"
                    .into(),
            });
        }
        super::reject_sharded(scenario, "batched")?;
        super::reject_transport(scenario, "batched")?;
        let num_states = self.protocol.num_states();
        let n = scenario.group_size() as u64;
        let counts = initial.resolve(num_states, n)?;
        Ok(self.state_from_counts(
            scenario,
            counts,
            vec![0; num_states],
            0,
            scenario.build_rng(),
        ))
    }

    fn step<'s>(&self, state: &'s mut BatchedState) -> Result<PeriodEvents<'s>> {
        let num_states = self.protocol.num_states();
        state.transitions_dense.fill(0);
        state.transitions.clear();

        // 1. Environment events at count level, then adversary injections
        // (which observe the post-event counts).
        self.apply_failures(state)?;
        self.apply_injections(state)?;

        // 2. Protocol actions over the start-of-period alive counts.
        let n_f = state.n_f;
        let loss = *state.scenario.loss();
        let contact_ok = 1.0 - loss.effective_contact_failure(1);
        state.start.copy_from_slice(&state.counts_alive);
        state.delta.fill(0);
        // Expected messages, matching the agent runtime's accounting: a
        // process pays for an action only if it has not already moved on an
        // earlier action this period (including the action that moves it).
        let mut messages_f = 0.0f64;

        for s in 0..num_states {
            let k_s = state.start[s];
            if k_s == 0 {
                continue;
            }
            let actions = self.protocol.actions(StateId::new(s));
            if actions.is_empty() {
                continue;
            }
            // Per-process probabilities of each *self-moving* outcome, in
            // action order; push/token actions affect other states and are
            // drawn separately.
            state.weights.clear();
            state.dests.clear();
            let mut survive = 1.0; // probability of not having moved yet
            for action in actions {
                messages_f += k_s as f64 * survive * f64::from(action.messages_per_period());
                let fire = super::fire_probability(action, &state.start, n_f, &loss);
                match action {
                    Action::Flip { to, .. }
                    | Action::Sample { to, .. }
                    | Action::SampleAny { to, .. } => {
                        state.weights.push(survive * fire);
                        state.dests.push(to.index() as u32);
                        survive *= 1.0 - fire;
                    }
                    Action::PushSample {
                        target_state,
                        samples,
                        prob,
                        to,
                    } => {
                        // Executors do not move themselves, but only those
                        // that no earlier self-moving action already moved
                        // reach this action (the agent runtime breaks out of
                        // the list on a move) — fold `survive` into the
                        // per-draw probability. Each surviving executor's
                        // samples convert alive members of target_state.
                        let per_draw = (state.start[target_state.index()] as f64 / n_f)
                            * prob
                            * contact_ok
                            * survive;
                        let draws = k_s.saturating_mul(u64::from(*samples));
                        let converted = state
                            .rng
                            .binomial(draws, per_draw)
                            .min(state.start[target_state.index()]);
                        if converted > 0 {
                            state.delta[target_state.index()] -= converted as i64;
                            state.delta[to.index()] += converted as i64;
                            state.transitions_dense
                                [target_state.index() * num_states + to.index()] += converted;
                        }
                    }
                    Action::Tokenize {
                        token_state, to, ..
                    } => {
                        // Each executor reaches this action only if it has
                        // not moved on an earlier action (probability
                        // `survive`, independent of the token draw).
                        let fired = state.rng.binomial(k_s, survive * fire);
                        let consumed = fired.min(state.start[token_state.index()]);
                        if consumed > 0 {
                            state.delta[token_state.index()] -= consumed as i64;
                            state.delta[to.index()] += consumed as i64;
                            state.transitions_dense
                                [token_state.index() * num_states + to.index()] += consumed;
                        }
                    }
                }
            }

            if !state.weights.is_empty() {
                // One multinomial draw over (outcome_1, ..., outcome_m, stay).
                let stay = (1.0 - state.weights.iter().sum::<f64>()).max(0.0);
                state.weights.push(stay);
                let buckets = state.weights.len();
                state
                    .rng
                    .multinomial_into(k_s, &state.weights, &mut state.draws[..buckets]);
                for (&dest, &moved) in state.dests.iter().zip(&state.draws) {
                    if moved > 0 {
                        let dest = dest as usize;
                        state.delta[s] -= moved as i64;
                        state.delta[dest] += moved as i64;
                        state.transitions_dense[s * num_states + dest] += moved;
                    }
                }
            }
        }

        // 3. Apply the deltas with saturation (clamping can only be triggered
        // by the push/token approximations racing each other in the same
        // period, which is statistically negligible) and refresh the totals.
        for ((alive, crashed), (count, d)) in state
            .counts_alive
            .iter_mut()
            .zip(&state.counts_crashed)
            .zip(state.counts.iter_mut().zip(&state.delta))
        {
            *alive = (*alive as i64 + d).max(0) as u64;
            *count = *alive + crashed;
        }

        super::render_sparse_transitions(
            &state.transitions_dense,
            num_states,
            &mut state.transitions,
        );

        state.messages = messages_f.round() as u64;
        state.period += 1;
        Ok(self.events(state))
    }

    fn snapshot<'s>(&self, state: &'s BatchedState) -> PeriodEvents<'s> {
        self.events(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::ProtocolCompiler;
    use crate::runtime::{AgentRuntime, CountsRecorder, Ensemble, ResilienceReport, Simulation};
    use netsim::adversary::{ObliviousSchedule, TargetLargestState};
    use netsim::FailureModel;
    use odekit::system::EquationSystemBuilder;

    fn epidemic_protocol() -> Protocol {
        let sys = EquationSystemBuilder::new()
            .vars(["x", "y"])
            .term("x", -1.0, &[("x", 1), ("y", 1)])
            .term("y", 1.0, &[("x", 1), ("y", 1)])
            .build()
            .unwrap();
        ProtocolCompiler::new("epidemic").compile(&sys).unwrap()
    }

    #[test]
    fn epidemic_saturates_and_conserves_counts() {
        let protocol = epidemic_protocol();
        let scenario = Scenario::new(1_000_000, 30).unwrap().with_seed(7);
        let result = BatchedRuntime::new(protocol)
            .run(&scenario, &InitialStates::counts(&[999_999, 1]))
            .unwrap();
        for (_, s) in result.counts.iter() {
            assert_eq!(s.iter().sum::<f64>(), 1_000_000.0);
        }
        assert!(result.final_counts().unwrap()[1] > 990_000.0);
        // Transition and message series are populated like the agent's.
        assert!(result.total_transitions("x", "y") > 990_000.0);
        assert!(result
            .metrics
            .series("messages")
            .unwrap()
            .iter()
            .any(|(_, v)| *v > 0.0));
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let protocol = epidemic_protocol();
        let scenario = Scenario::new(100_000, 25).unwrap().with_seed(3);
        let initial = InitialStates::counts(&[99_990, 10]);
        let a = BatchedRuntime::new(protocol.clone())
            .run(&scenario, &initial)
            .unwrap();
        let b = BatchedRuntime::new(protocol)
            .run(&scenario, &initial)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn massive_failure_crashes_counts_hypergeometrically() {
        let protocol = epidemic_protocol();
        let n = 100_000u64;
        let scenario = Scenario::new(n as usize, 10)
            .unwrap()
            .with_massive_failure(5, 0.5)
            .unwrap()
            .with_seed(2);
        let runtime = BatchedRuntime::new(protocol);
        let mut state = runtime
            .init(&scenario, &InitialStates::counts(&[60_000, 40_000]))
            .unwrap();
        for _ in 0..5 {
            runtime.step(&mut state).unwrap();
        }
        let before_alive = state.alive_n;
        assert_eq!(before_alive, n);
        runtime.step(&mut state).unwrap(); // period 5: the massive failure
        assert_eq!(state.alive_n, n / 2);
        // Total counts (alive + crashed) still cover everyone.
        assert_eq!(state.counts.iter().sum::<u64>(), n);
        assert_eq!(state.counts_alive.iter().sum::<u64>(), n / 2);
        // The crash split tracks the state proportions (x was mostly eaten by
        // the epidemic by period 5, so just check consistency per state).
        for s in 0..state.counts.len() {
            assert_eq!(
                state.counts[s],
                state.counts_alive[s] + state.counts_crashed[s]
            );
        }
    }

    #[test]
    fn failure_model_reaches_steady_state_availability() {
        // An inert protocol isolates the count-level crash/recovery model:
        // availability converges to recover / (crash + recover) = 0.8.
        let protocol = Protocol::new("inert", vec!["x".into(), "y".into()]).unwrap();
        let scenario = Scenario::new(50_000, 400)
            .unwrap()
            .with_failure_model(FailureModel::new(0.01, 0.04).unwrap())
            .with_seed(11);
        let runtime = BatchedRuntime::new(protocol);
        let mut state = runtime
            .init(&scenario, &InitialStates::counts(&[25_000, 25_000]))
            .unwrap();
        for _ in 0..400 {
            runtime.step(&mut state).unwrap();
        }
        let availability = state.alive_n as f64 / 50_000.0;
        assert!(
            (availability - 0.8).abs() < 0.02,
            "availability {availability}"
        );
        // Without a rejoin state, recoveries return to their remembered
        // state: the x/y split stays balanced.
        let ratio = state.counts[0] as f64 / state.counts[1] as f64;
        assert!((0.95..1.05).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn rejoin_state_moves_recovered_processes() {
        // Crash-recovery with rejoin into y: every recovery converts an x.
        let protocol = Protocol::new("inert", vec!["x".into(), "y".into()]).unwrap();
        let y = protocol.require_state("y").unwrap();
        let scenario = Scenario::new(10_000, 200)
            .unwrap()
            .with_failure_model(FailureModel::new(0.05, 0.2).unwrap())
            .with_seed(4);
        let runtime = BatchedRuntime::new(protocol).with_config(RunConfig::rejoining_to(y));
        let mut state = runtime
            .init(&scenario, &InitialStates::counts(&[10_000, 0]))
            .unwrap();
        for _ in 0..200 {
            runtime.step(&mut state).unwrap();
        }
        // Conservation holds and almost everyone has cycled through a crash.
        assert_eq!(state.counts.iter().sum::<u64>(), 10_000);
        assert!(state.counts[1] > 9_000, "y = {}", state.counts[1]);
    }

    #[test]
    fn per_id_scenarios_are_rejected() {
        let runtime = BatchedRuntime::new(epidemic_protocol());
        let initial = InitialStates::counts(&[99, 1]);
        let mut schedule = netsim::FailureSchedule::new();
        schedule.add(1, FailureEvent::Crash(netsim::ProcessId(3)));
        let scenario = Scenario::new(100, 10)
            .unwrap()
            .with_failure_schedule(schedule)
            .unwrap();
        assert!(matches!(
            runtime.init(&scenario, &initial),
            Err(CoreError::InvalidConfig {
                name: "scenario",
                ..
            })
        ));
        // Massive failures are fine.
        let massive = Scenario::new(100, 10)
            .unwrap()
            .with_massive_failure(5, 0.5)
            .unwrap();
        assert!(runtime.init(&massive, &initial).is_ok());
    }

    #[test]
    fn agrees_with_agent_runtime_under_massive_failure() {
        // Ensemble means of both fidelities under a 50% massive failure must
        // track each other (alive-only counts). The synchronous-update bias
        // of count batching scales with the per-period probabilities, so the
        // protocol is compiled with a small normalizing constant (exactly as
        // the ODE-equivalence property tests do) and the comparison uses a
        // trajectory-wide tolerance.
        let sys = EquationSystemBuilder::new()
            .vars(["x", "y"])
            .term("x", -1.0, &[("x", 1), ("y", 1)])
            .term("y", 1.0, &[("x", 1), ("y", 1)])
            .build()
            .unwrap();
        let protocol = ProtocolCompiler::new("epidemic")
            .with_normalizing_constant(0.2)
            .compile(&sys)
            .unwrap();
        let n = 20_000usize;
        let periods = 100;
        let scenario = Scenario::new(n, periods)
            .unwrap()
            .with_massive_failure(60, 0.5)
            .unwrap();
        // A 1% infected seed keeps the exponential phase short enough that
        // the agent's within-period cascade (a ~p/2-period head start per
        // period of growth) stays within the comparison tolerance — the same
        // regime the agent-vs-aggregate property test uses.
        let ensemble = Ensemble::of(protocol)
            .scenario(scenario)
            .initial(InitialStates::counts(&[n as u64 - 200, 200]))
            .seed_range(100..108)
            .count_alive_only();
        let agent = ensemble.run::<AgentRuntime>().unwrap();
        let batched = ensemble.run::<BatchedRuntime>().unwrap();
        let a = agent.mean_series("y").unwrap();
        let b = batched.mean_series("y").unwrap();
        for (period, (ya, yb)) in a.iter().zip(&b).enumerate() {
            let diff = (ya - yb).abs();
            assert!(
                diff < n as f64 * 0.15,
                "period {period}: agent {ya} vs batched {yb}"
            );
        }
        // Both saturate before the failure and halve right after it.
        assert!(a[59] > n as f64 * 0.95 && b[59] > n as f64 * 0.95);
        assert!(a[65] < n as f64 * 0.55 && b[65] < n as f64 * 0.55);
        assert!(a[65] > n as f64 * 0.4 && b[65] > n as f64 * 0.4);
    }

    #[test]
    fn small_count_extinction_frequency_matches_agent() {
        // Subcritical SIS (ẋ = −0.3xy + 0.5y, ẏ = 0.3xy − 0.5y): R₀ = 0.6,
        // so the 10 initial infectives die out, and *when* the count hits the
        // absorbing zero is a pure small-count observable. The batched
        // runtime reproduces the agent runtime's extinction frequency only
        // because the binomial sampler walks the exact inverse CDF below the
        // normal-approximation cutoff — a clamped-normal draw at these means
        // would visibly distort P[X = 0] (regression for the
        // netsim::stochastic boundary audit).
        let sys = EquationSystemBuilder::new()
            .vars(["x", "y"])
            .term("x", -0.3, &[("x", 1), ("y", 1)])
            .term("x", 0.5, &[("y", 1)])
            .term("y", 0.3, &[("x", 1), ("y", 1)])
            .term("y", -0.5, &[("y", 1)])
            .build()
            .unwrap();
        // p = 0.2 keeps per-period probabilities small, so the synchronous-
        // update discretization bias of count batching stays below the
        // comparison tolerance (the same regime every equivalence test uses)
        // and the residual difference isolates the sampler boundary.
        let protocol = ProtocolCompiler::new("sis")
            .with_normalizing_constant(0.2)
            .compile(&sys)
            .unwrap();
        let n = 1_000u64;
        let periods = 55;
        let seeds = 300u64;
        fn extinction_frequency<R: crate::runtime::Runtime>(
            protocol: &Protocol,
            n: u64,
            periods: u64,
            seeds: u64,
        ) -> f64 {
            let mut extinct = 0u64;
            for seed in 0..seeds {
                let scenario = Scenario::new(n as usize, periods).unwrap().with_seed(seed);
                let run = Simulation::of(protocol.clone())
                    .scenario(scenario)
                    .initial(InitialStates::counts(&[n - 10, 10]))
                    .observe(CountsRecorder::new())
                    .run::<R>()
                    .unwrap();
                if run.final_counts().unwrap()[1] == 0.0 {
                    extinct += 1;
                }
            }
            extinct as f64 / seeds as f64
        }
        let agent = extinction_frequency::<AgentRuntime>(&protocol, n, periods, seeds);
        let batched = extinction_frequency::<BatchedRuntime>(&protocol, n, periods, seeds);
        // The frequency is intermediate (the comparison has teeth) and the
        // fidelities agree within sampling noise (σ_diff ≈ 0.04 at 300
        // seeds; 0.12 is a 3σ band).
        assert!(
            (0.05..=0.95).contains(&agent),
            "agent extinction frequency {agent}"
        );
        assert!(
            (agent - batched).abs() < 0.12,
            "extinction frequency: agent {agent} vs batched {batched}"
        );
    }

    #[test]
    fn push_and_token_actions_work_at_count_level() {
        // Push: state a converts members of b into c.
        let mut protocol = Protocol::new("push", vec!["a".into(), "b".into(), "c".into()]).unwrap();
        let a = protocol.require_state("a").unwrap();
        let b = protocol.require_state("b").unwrap();
        let c = protocol.require_state("c").unwrap();
        protocol
            .add_action(
                a,
                Action::PushSample {
                    target_state: b,
                    samples: 2,
                    prob: 1.0,
                    to: c,
                },
            )
            .unwrap();
        let scenario = Scenario::new(1_000, 30).unwrap().with_seed(3);
        let result = BatchedRuntime::new(protocol)
            .run(&scenario, &InitialStates::counts(&[500, 500, 0]))
            .unwrap();
        let last = result.final_counts().unwrap();
        assert_eq!(last.iter().sum::<f64>(), 1_000.0);
        assert_eq!(last[0], 500.0, "pushers never move");
        assert!(last[1] < 50.0, "b gets converted, got {}", last[1]);

        // Token: y' = 0.5y tokenizes x's into y.
        let sys = EquationSystemBuilder::new()
            .vars(["x", "y"])
            .term("x", -0.5, &[("y", 1)])
            .term("y", 0.5, &[("y", 1)])
            .build()
            .unwrap();
        let token = ProtocolCompiler::new("token").compile(&sys).unwrap();
        let scenario = Scenario::new(10_000, 200).unwrap().with_seed(11);
        let result = BatchedRuntime::new(token)
            .run(&scenario, &InitialStates::counts(&[5_000, 5_000]))
            .unwrap();
        let last = result.final_counts().unwrap();
        assert!(last[0] < 100.0);
        assert_eq!(last.iter().sum::<f64>(), 10_000.0);
    }

    #[test]
    fn oblivious_adversary_matches_scheduled_massive_failure_bit_for_bit() {
        // A CrashUniform injection consumes the run's main PRNG stream
        // exactly like a scheduled massive failure: same seed, same victims,
        // same trajectory — the equivalence the proptests pin across seeds.
        let protocol = epidemic_protocol();
        let initial = InitialStates::counts(&[99_990, 10]);
        let scheduled = Scenario::new(100_000, 30)
            .unwrap()
            .with_massive_failure(15, 0.5)
            .unwrap()
            .with_seed(7);
        let injected = Scenario::new(100_000, 30)
            .unwrap()
            .with_seed(7)
            .with_adversary(ObliviousSchedule::new().crash_uniform_at(15, 0.5).unwrap());
        let a = BatchedRuntime::new(protocol.clone())
            .run(&scheduled, &initial)
            .unwrap();
        let b = BatchedRuntime::new(protocol)
            .run(&injected, &initial)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn adaptive_adversary_strikes_the_leading_state() {
        // An inert protocol isolates the injection: TargetLargestState
        // spends 30% of the *total* alive population (3000 processes), all
        // drawn from the leader (x, 6000 strong).
        let protocol = Protocol::new("inert", vec!["x".into(), "y".into()]).unwrap();
        let scenario = Scenario::new(10_000, 20)
            .unwrap()
            .with_seed(3)
            .with_adversary(TargetLargestState::new(0.3, 10, 5, 1).unwrap());
        let result = Simulation::of(protocol)
            .scenario(scenario)
            .initial(InitialStates::counts(&[6_000, 4_000]))
            .observe(CountsRecorder::alive_only())
            .observe(ResilienceReport::new())
            .run::<BatchedRuntime>()
            .unwrap();
        let last = result.final_counts().unwrap();
        assert_eq!(last, &[3_000.0, 4_000.0]);
        // The injection surfaced to observers (applied during period 10, so
        // it rides on snapshot 11).
        assert_eq!(
            result.metrics.series("resilience:victims").unwrap(),
            &[(11, 3_000.0)]
        );
        assert_eq!(
            result
                .metrics
                .series("resilience:injections_total")
                .unwrap(),
            &[(0, 1.0)]
        );
    }

    #[test]
    fn recovery_injections_restore_crashed_processes() {
        let protocol = Protocol::new("inert", vec!["x".into(), "y".into()]).unwrap();
        let adversary = ObliviousSchedule::new()
            .crash_uniform_at(2, 0.5)
            .unwrap()
            .inject_at(5, netsim::Injection::RecoverUniform { fraction: 1.0 })
            .unwrap();
        let scenario = Scenario::new(10_000, 10)
            .unwrap()
            .with_seed(9)
            .with_adversary(adversary);
        let runtime = BatchedRuntime::new(protocol);
        let mut state = runtime
            .init(&scenario, &InitialStates::counts(&[5_000, 5_000]))
            .unwrap();
        for _ in 0..3 {
            runtime.step(&mut state).unwrap();
        }
        assert_eq!(state.alive_n, 5_000);
        for _ in 3..6 {
            runtime.step(&mut state).unwrap();
        }
        // Everyone recovered into their remembered state.
        assert_eq!(state.alive_n, 10_000);
        assert_eq!(state.counts_crashed.iter().sum::<u64>(), 0);
        assert_eq!(state.counts.iter().sum::<u64>(), 10_000);
    }

    #[test]
    fn alive_only_recording_reports_survivors() {
        let protocol = epidemic_protocol();
        let scenario = Scenario::new(10_000, 6)
            .unwrap()
            .with_massive_failure(3, 0.5)
            .unwrap()
            .with_seed(5);
        let result = Simulation::of(protocol)
            .scenario(scenario)
            .initial(InitialStates::counts(&[10_000, 0]))
            .observe(CountsRecorder::alive_only())
            .run::<BatchedRuntime>()
            .unwrap();
        assert_eq!(result.final_counts().unwrap().iter().sum::<f64>(), 5_000.0);
    }
}
