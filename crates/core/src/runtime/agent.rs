//! The per-process (agent-based) protocol runtime.

use super::{edge_name, InitialStates, RunConfig, RunResult};
use crate::action::Action;
use crate::state_machine::{Protocol, StateId};
use crate::Result;
use netsim::{Group, ProcessId, Rng, Scenario};

/// Executes a protocol with one explicit state per process.
///
/// Every protocol period the runtime
///
/// 1. applies the scenario's failure and churn events for that period,
/// 2. lets every alive process execute the actions of its current state (in
///    order, stopping after the first action that makes the process itself
///    transition), sampling contacts uniformly from the **maximal**
///    membership — a contact aimed at a crashed process is fruitless, exactly
///    as in the paper, and
/// 3. records per-state counts, transition counts and auxiliary metrics.
///
/// Processes are visited in id order within a period; the protocols are
/// symmetric and memoryless across periods, so the visiting order has no
/// statistically visible effect at the group sizes used in the experiments.
///
/// # Examples
///
/// ```
/// use dpde_core::{ProtocolCompiler, runtime::{AgentRuntime, InitialStates}};
/// use netsim::Scenario;
/// use odekit::EquationSystemBuilder;
///
/// // Epidemic: 1 initial infective in a group of 1000.
/// let sys = EquationSystemBuilder::new()
///     .vars(["x", "y"])
///     .term("x", -1.0, &[("x", 1), ("y", 1)])
///     .term("y", 1.0, &[("x", 1), ("y", 1)])
///     .build()?;
/// let protocol = ProtocolCompiler::new("epidemic").compile(&sys)?;
/// let scenario = Scenario::new(1000, 30)?.with_seed(7);
/// let result = AgentRuntime::new(protocol).run(&scenario, &InitialStates::counts(&[999, 1]))?;
/// let infected = result.final_counts()[1];
/// assert!(infected > 990.0, "epidemic should saturate, got {infected}");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct AgentRuntime {
    protocol: Protocol,
    config: RunConfig,
}

impl AgentRuntime {
    /// Creates a runtime for the given protocol with the default
    /// [`RunConfig`].
    pub fn new(protocol: Protocol) -> Self {
        AgentRuntime {
            protocol,
            config: RunConfig::default(),
        }
    }

    /// Replaces the run configuration.
    #[must_use]
    pub fn with_config(mut self, config: RunConfig) -> Self {
        self.config = config;
        self
    }

    /// The protocol being executed.
    pub fn protocol(&self) -> &Protocol {
        &self.protocol
    }

    /// Runs the protocol under the given scenario and initial state
    /// distribution.
    ///
    /// # Errors
    ///
    /// Returns configuration errors (mismatched initial distribution, invalid
    /// protocol) and propagates scenario errors.
    pub fn run(&self, scenario: &Scenario, initial: &InitialStates) -> Result<RunResult> {
        self.protocol.validate()?;
        let n = scenario.group_size();
        let num_states = self.protocol.num_states();
        let counts_spec = initial.resolve(num_states, n as u64)?;

        let mut rng = scenario.build_rng();
        let mut group = scenario.build_group();

        // Assign initial states: counts_spec[i] processes in state i, shuffled
        // so state assignment is independent of process id.
        let mut assignment: Vec<usize> = Vec::with_capacity(n);
        for (state, count) in counts_spec.iter().enumerate() {
            assignment.extend(std::iter::repeat(state).take(*count as usize));
        }
        rng.shuffle(&mut assignment);

        let mut members = Membership::new(num_states, &assignment);
        let mut result = RunResult::new(&self.protocol);

        // Record the initial configuration at period 0.
        self.record(&mut result, 0, &members, &group);

        let loss = *scenario.loss();
        for period in 0..scenario.periods() {
            // 1. Environment events.
            let (_down, up) = scenario.apply_period_events(period, &mut group, &mut rng)?;
            if let Some(rejoin) = self.config.rejoin_state {
                for id in up {
                    members.force_state(id.index(), rejoin.index());
                }
            }

            // 2. Protocol actions.
            let mut messages: u64 = 0;
            for p in 0..n {
                if !group.is_alive(ProcessId(p))? {
                    continue;
                }
                let state = members.state_of(p);
                // Copy the action list length to avoid borrowing issues; the
                // protocol is immutable during the run.
                let num_actions = self.protocol.actions(StateId::new(state)).len();
                for action_idx in 0..num_actions {
                    // Re-read the current state: a previous action may have
                    // moved us (moves_self actions break out, but push/token
                    // transitions performed by *other* processes only happen
                    // outside this inner loop, so `state` is still valid).
                    let action = &self.protocol.actions(StateId::new(state))[action_idx];
                    messages += u64::from(action.messages_per_period());
                    let moved = self.execute_action(
                        p,
                        state,
                        action,
                        &mut members,
                        &group,
                        &loss,
                        &mut rng,
                        &mut result,
                        period,
                    )?;
                    if moved {
                        break;
                    }
                }
            }

            // 3. Metrics.
            result.metrics.record("messages", period, messages as f64);
            self.record(&mut result, period + 1, &members, &group);
        }
        Ok(result)
    }

    /// Executes one action for process `p` (currently in `state`). Returns
    /// `true` if the process itself transitioned.
    #[allow(clippy::too_many_arguments)]
    fn execute_action(
        &self,
        p: usize,
        state: usize,
        action: &Action,
        members: &mut Membership,
        group: &Group,
        loss: &netsim::LossConfig,
        rng: &mut Rng,
        result: &mut RunResult,
        period: u64,
    ) -> Result<bool> {
        let n = group.size();
        match action {
            Action::Flip { prob, to } => {
                if rng.chance(*prob) {
                    self.transition(p, state, to.index(), members, result, period);
                    return Ok(true);
                }
            }
            Action::Sample { required, prob, to } => {
                let mut all_match = true;
                for req in required {
                    let target = rng.index(n);
                    let ok = group.is_alive(ProcessId(target))?
                        && loss.contact_succeeds(rng, 1)
                        && members.state_of(target) == req.index();
                    if !ok {
                        all_match = false;
                        // Keep sampling the remaining targets so the message
                        // count (already added) stays faithful, but the
                        // outcome is decided.
                    }
                }
                if all_match && rng.chance(*prob) {
                    self.transition(p, state, to.index(), members, result, period);
                    return Ok(true);
                }
            }
            Action::SampleAny {
                target_state,
                samples,
                prob,
                to,
            } => {
                let mut found = false;
                for _ in 0..*samples {
                    let target = rng.index(n);
                    if group.is_alive(ProcessId(target))?
                        && loss.contact_succeeds(rng, 1)
                        && members.state_of(target) == target_state.index()
                    {
                        found = true;
                    }
                }
                if found && rng.chance(*prob) {
                    self.transition(p, state, to.index(), members, result, period);
                    return Ok(true);
                }
            }
            Action::PushSample {
                target_state,
                samples,
                prob,
                to,
            } => {
                for _ in 0..*samples {
                    let target = rng.index(n);
                    if target != p
                        && group.is_alive(ProcessId(target))?
                        && loss.contact_succeeds(rng, 1)
                        && members.state_of(target) == target_state.index()
                        && rng.chance(*prob)
                    {
                        self.transition(
                            target,
                            target_state.index(),
                            to.index(),
                            members,
                            result,
                            period,
                        );
                    }
                }
            }
            Action::Tokenize {
                required,
                prob,
                token_state,
                to,
            } => {
                let mut all_match = true;
                for req in required {
                    let target = rng.index(n);
                    let ok = group.is_alive(ProcessId(target))?
                        && loss.contact_succeeds(rng, 1)
                        && members.state_of(target) == req.index();
                    if !ok {
                        all_match = false;
                    }
                }
                if all_match && rng.chance(*prob) {
                    // Forward the token to an alive process currently in
                    // `token_state`; if none can be found the token is dropped
                    // (Section 6's "if no processes are in state x").
                    if let Some(consumer) =
                        members.random_alive_in_state(token_state.index(), group, rng)
                    {
                        if loss.contact_succeeds(rng, 1) {
                            self.transition(
                                consumer,
                                token_state.index(),
                                to.index(),
                                members,
                                result,
                                period,
                            );
                        }
                    }
                }
            }
        }
        Ok(false)
    }

    fn transition(
        &self,
        p: usize,
        from: usize,
        to: usize,
        members: &mut Membership,
        result: &mut RunResult,
        period: u64,
    ) {
        if from == to {
            return;
        }
        members.force_state(p, to);
        let name = edge_name(&self.protocol, StateId::new(from), StateId::new(to));
        result.transitions.add(&name, period, 1.0);
    }

    fn record(&self, result: &mut RunResult, period: u64, members: &Membership, group: &Group) {
        let counts = if self.config.count_alive_only {
            members.counts_alive(group)
        } else {
            members.counts().to_vec()
        };
        result
            .counts
            .push(period as f64, counts.iter().map(|&c| c as f64).collect());
        result
            .metrics
            .record("alive", period, group.alive_count() as f64);
        if let Some(track) = self.config.track_members_of {
            let ids: Vec<ProcessId> = members
                .members_of(track.index())
                .iter()
                .map(|&p| ProcessId(p as usize))
                .filter(|id| group.is_alive(*id).unwrap_or(false))
                .collect();
            result.tracked_members.push((period, ids));
        }
    }

    /// Convenience wrapper: run and return only the final per-state counts.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    pub fn run_final_counts(
        &self,
        scenario: &Scenario,
        initial: &InitialStates,
    ) -> Result<Vec<f64>> {
        Ok(self.run(scenario, initial)?.final_counts().to_vec())
    }
}

/// Per-process state bookkeeping with O(1) transitions and per-state member
/// lists (needed for token consumers and member tracking).
#[derive(Debug, Clone)]
struct Membership {
    state: Vec<u32>,
    position: Vec<u32>,
    members: Vec<Vec<u32>>,
    counts: Vec<u64>,
}

impl Membership {
    fn new(num_states: usize, assignment: &[usize]) -> Self {
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); num_states];
        let mut state = Vec::with_capacity(assignment.len());
        let mut position = Vec::with_capacity(assignment.len());
        for (p, &s) in assignment.iter().enumerate() {
            state.push(s as u32);
            position.push(members[s].len() as u32);
            members[s].push(p as u32);
        }
        let counts = members.iter().map(|m| m.len() as u64).collect();
        Membership {
            state,
            position,
            members,
            counts,
        }
    }

    fn state_of(&self, p: usize) -> usize {
        self.state[p] as usize
    }

    fn counts(&self) -> &[u64] {
        &self.counts
    }

    fn counts_alive(&self, group: &Group) -> Vec<u64> {
        let mut counts = vec![0u64; self.members.len()];
        for (p, &s) in self.state.iter().enumerate() {
            if group.is_alive(ProcessId(p)).unwrap_or(false) {
                counts[s as usize] += 1;
            }
        }
        counts
    }

    fn members_of(&self, state: usize) -> &[u32] {
        &self.members[state]
    }

    fn force_state(&mut self, p: usize, to: usize) {
        let from = self.state[p] as usize;
        if from == to {
            return;
        }
        // Remove from the old member list via swap_remove, fixing the swapped
        // element's position.
        let pos = self.position[p] as usize;
        let list = &mut self.members[from];
        let last = *list.last().expect("member list cannot be empty");
        list.swap_remove(pos);
        if (last as usize) != p {
            self.position[last as usize] = pos as u32;
        }
        self.counts[from] -= 1;
        // Insert into the new list.
        self.position[p] = self.members[to].len() as u32;
        self.members[to].push(p as u32);
        self.counts[to] += 1;
        self.state[p] = to as u32;
    }

    /// Picks a uniformly random *alive* member of `state`, or `None` if the
    /// state is empty or only contains crashed processes (checked by a bounded
    /// number of retries followed by a linear scan).
    fn random_alive_in_state(&self, state: usize, group: &Group, rng: &mut Rng) -> Option<usize> {
        let list = &self.members[state];
        if list.is_empty() {
            return None;
        }
        for _ in 0..16 {
            let candidate = list[rng.index(list.len())] as usize;
            if group.is_alive(ProcessId(candidate)).unwrap_or(false) {
                return Some(candidate);
            }
        }
        list.iter()
            .map(|&p| p as usize)
            .find(|&p| group.is_alive(ProcessId(p)).unwrap_or(false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::CoreError;
    use crate::mapping::ProtocolCompiler;
    use odekit::system::EquationSystemBuilder;

    fn epidemic_protocol() -> Protocol {
        let sys = EquationSystemBuilder::new()
            .vars(["x", "y"])
            .term("x", -1.0, &[("x", 1), ("y", 1)])
            .term("y", 1.0, &[("x", 1), ("y", 1)])
            .build()
            .unwrap();
        ProtocolCompiler::new("epidemic").compile(&sys).unwrap()
    }

    #[test]
    fn epidemic_saturates_in_logarithmic_time() {
        let protocol = epidemic_protocol();
        let scenario = Scenario::new(4096, 40).unwrap().with_seed(11);
        let result = AgentRuntime::new(protocol)
            .run(&scenario, &InitialStates::counts(&[4095, 1]))
            .unwrap();
        // Conservation every period.
        for (_, s) in result.counts.iter() {
            assert_eq!(s[0] + s[1], 4096.0);
        }
        // Saturation.
        assert!(result.final_counts()[1] > 4000.0);
        // O(log N) spread: find the first period with > half infected; for
        // N = 4096 the pull epidemic needs roughly log2(N) ≈ 12 periods to
        // take off, comfortably under 30.
        let y = result.state_series("y").unwrap();
        let first_half = y.iter().position(|&v| v > 2048.0).unwrap();
        assert!(first_half < 30, "took {first_half} periods to infect half");
        // Transition counter adds up to the total number of infections.
        assert_eq!(
            result.total_transitions("x", "y"),
            result.final_counts()[1] - 1.0
        );
        // Messages were counted.
        assert!(result
            .metrics
            .series("messages")
            .unwrap()
            .iter()
            .any(|(_, v)| *v > 0.0));
    }

    #[test]
    fn initial_distribution_must_match_group() {
        let protocol = epidemic_protocol();
        let scenario = Scenario::new(100, 5).unwrap();
        let err = AgentRuntime::new(protocol)
            .run(&scenario, &InitialStates::counts(&[50, 49]))
            .unwrap_err();
        assert!(matches!(err, CoreError::InvalidConfig { .. }));
    }

    #[test]
    fn crashed_processes_do_not_participate() {
        // With every process crashed at period 0, nothing ever transitions.
        let protocol = epidemic_protocol();
        let scenario = Scenario::new(50, 10)
            .unwrap()
            .with_massive_failure(0, 1.0)
            .unwrap()
            .with_seed(3);
        let runtime = AgentRuntime::new(protocol).with_config(RunConfig {
            count_alive_only: false,
            ..Default::default()
        });
        let result = runtime
            .run(&scenario, &InitialStates::counts(&[49, 1]))
            .unwrap();
        assert_eq!(result.final_counts(), &[49.0, 1.0]);
        assert_eq!(result.total_transitions("x", "y"), 0.0);
    }

    #[test]
    fn count_alive_only_excludes_crashed_processes() {
        let protocol = epidemic_protocol();
        let scenario = Scenario::new(100, 3)
            .unwrap()
            .with_massive_failure(1, 0.5)
            .unwrap()
            .with_seed(5);
        let runtime = AgentRuntime::new(protocol).with_config(RunConfig {
            count_alive_only: true,
            ..Default::default()
        });
        let result = runtime
            .run(&scenario, &InitialStates::counts(&[100, 0]))
            .unwrap();
        // After the massive failure the alive-only counts sum to 50.
        let last = result.final_counts();
        assert_eq!(last.iter().sum::<f64>(), 50.0);
        assert_eq!(result.metrics.last("alive"), Some(50.0));
    }

    #[test]
    fn rejoin_state_is_applied_on_recovery() {
        // Crash a specific process and recover it later; with rejoin_state =
        // y it must come back in state y even though it started in x. An
        // action-free protocol isolates the rejoin mechanism.
        let protocol = Protocol::new("inert", vec!["x".into(), "y".into()]).unwrap();
        let y = protocol.require_state("y").unwrap();
        let mut schedule = netsim::FailureSchedule::new();
        schedule.add(0, netsim::FailureEvent::Crash(ProcessId(0)));
        schedule.add(2, netsim::FailureEvent::Recover(ProcessId(0)));
        let scenario = Scenario::new(10, 5)
            .unwrap()
            .with_failure_schedule(schedule)
            .with_seed(1);
        let runtime = AgentRuntime::new(protocol).with_config(RunConfig {
            rejoin_state: Some(y),
            count_alive_only: false,
            ..Default::default()
        });
        // The only way a y can appear is via the rejoin rule.
        let result = runtime
            .run(&scenario, &InitialStates::counts(&[10, 0]))
            .unwrap();
        assert_eq!(result.final_counts()[1], 1.0);
    }

    #[test]
    fn member_tracking_records_state_membership() {
        let protocol = epidemic_protocol();
        let y = protocol.require_state("y").unwrap();
        let scenario = Scenario::new(64, 15).unwrap().with_seed(2);
        let runtime = AgentRuntime::new(protocol).with_config(RunConfig {
            track_members_of: Some(y),
            ..Default::default()
        });
        let result = runtime
            .run(&scenario, &InitialStates::counts(&[63, 1]))
            .unwrap();
        // One snapshot per recorded period (periods + 1 including period 0).
        assert_eq!(result.tracked_members.len(), 16);
        // Snapshot sizes match the recorded y counts.
        let y_series = result.state_series("y").unwrap();
        for ((_, ids), count) in result.tracked_members.iter().zip(&y_series) {
            assert_eq!(ids.len() as f64, *count);
        }
    }

    #[test]
    fn membership_bookkeeping_is_consistent() {
        let mut m = Membership::new(3, &[0, 0, 1, 2, 1]);
        assert_eq!(m.counts(), &[2, 2, 1]);
        assert_eq!(m.state_of(3), 2);
        m.force_state(0, 2);
        m.force_state(0, 2); // no-op
        assert_eq!(m.counts(), &[1, 2, 2]);
        assert_eq!(m.state_of(0), 2);
        assert!(m.members_of(2).contains(&0));
        m.force_state(4, 0);
        assert_eq!(m.counts(), &[2, 1, 2]);
        // Every process appears exactly once across all member lists.
        let mut all: Vec<u32> = m.members.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn message_losses_slow_the_epidemic_down() {
        let protocol = epidemic_protocol();
        let reliable = Scenario::new(2000, 15).unwrap().with_seed(9);
        let lossy = Scenario::new(2000, 15)
            .unwrap()
            .with_seed(9)
            .with_loss(netsim::LossConfig::new(0.8, 0.0).unwrap());
        let runtime = AgentRuntime::new(protocol);
        let a = runtime
            .run(&reliable, &InitialStates::counts(&[1999, 1]))
            .unwrap();
        let b = runtime
            .run(&lossy, &InitialStates::counts(&[1999, 1]))
            .unwrap();
        assert!(
            a.final_counts()[1] > b.final_counts()[1],
            "losses should slow dissemination: {} vs {}",
            a.final_counts()[1],
            b.final_counts()[1]
        );
    }
}
