//! The per-process (agent-based) protocol runtime.

use super::inject::{self, InjectionPoint};
use super::observer::default_observers;
use super::simulation::drive;
use super::{InitialStates, PeriodEvents, RunConfig, RunResult, Runtime};
use crate::action::Action;
use crate::error::CoreError;
use crate::state_machine::{Protocol, StateId};
use crate::Result;
use netsim::adversary::{AdversaryView, Injection};
use netsim::{Group, ProcessId, Rng, Scenario};

/// Executes a protocol with one explicit state per process.
///
/// Every protocol period the runtime
///
/// 1. applies the scenario's failure and churn events for that period,
/// 2. lets every alive process execute the actions of its current state (in
///    order, stopping after the first action that makes the process itself
///    transition), sampling contacts uniformly from the **maximal**
///    membership — a contact aimed at a crashed process is fruitless, exactly
///    as in the paper, and
/// 3. exposes per-state counts, transition counts and membership through
///    [`PeriodEvents`] for the attached observers.
///
/// Processes are visited in id order within a period; the protocols are
/// symmetric and memoryless across periods, so the visiting order has no
/// statistically visible effect at the group sizes used in the experiments.
///
/// The per-period loop is allocation-free: the action lists are flattened
/// into a dispatch table when the runtime is built, alive-only counts are
/// maintained incrementally as transitions and failures happen (no O(N)
/// rescans), and while nobody has crashed the liveness probes are skipped
/// entirely.
///
/// # Examples
///
/// ```
/// use dpde_core::{ProtocolCompiler, runtime::{AgentRuntime, InitialStates}};
/// use netsim::Scenario;
/// use odekit::EquationSystemBuilder;
///
/// // Epidemic: 1 initial infective in a group of 1000.
/// let sys = EquationSystemBuilder::new()
///     .vars(["x", "y"])
///     .term("x", -1.0, &[("x", 1), ("y", 1)])
///     .term("y", 1.0, &[("x", 1), ("y", 1)])
///     .build()?;
/// let protocol = ProtocolCompiler::new("epidemic").compile(&sys)?;
/// let scenario = Scenario::new(1000, 30)?.with_seed(7);
/// let result = AgentRuntime::new(protocol).run(&scenario, &InitialStates::counts(&[999, 1]))?;
/// let infected = result.final_counts().expect("run recorded periods")[1];
/// assert!(infected > 990.0, "epidemic should saturate, got {infected}");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct AgentRuntime {
    protocol: Protocol,
    config: RunConfig,
    compiled: CompiledProtocol,
}

/// The protocol's action lists flattened into a dense dispatch table, built
/// once when the runtime is constructed so the per-period loop touches only
/// flat arrays (no nested `Vec<Vec<Action>>` walks, no per-action
/// recomputation of message counts).
#[derive(Debug, Clone)]
struct CompiledProtocol {
    /// All actions of all states, flattened; `meta[s]` delimits state `s`.
    actions: Vec<CompiledAction>,
    /// Per-state action range and full per-period message bill.
    meta: Vec<StateMeta>,
    /// `messages_tail[idx]` is the message bill of the actions *after* `idx`
    /// within its state — subtracted when a process moves on action `idx`
    /// (it never reaches the rest), so the hot loop pays one add per process
    /// instead of one per action.
    messages_tail: Vec<u64>,
    /// Flattened `required` state lists referenced by Sample/Tokenize.
    required: Vec<u32>,
    /// `true` if any action consults the per-state member lists at runtime
    /// (tokenize consumers pick a concrete member); drives the lazy list
    /// maintenance in [`Membership`].
    needs_member_lists: bool,
}

/// Per-state slice of the dispatch table.
#[derive(Debug, Clone, Copy)]
struct StateMeta {
    start: u32,
    end: u32,
    /// Σ messages_per_period over the state's actions.
    messages: u64,
}

/// One action with its fields unpacked to dense indices.
#[derive(Debug, Clone, Copy)]
enum CompiledAction {
    Flip {
        /// `1 / ln(1 − prob)`, precomputed for geometric-run sampling: a
        /// `Flip`'s heads probability is a compile-time constant (it never
        /// depends on counts), so its iid coin stream factorizes exactly into
        /// geometric runs of tails — the runtime keeps one "tails left"
        /// counter per flip action and pays one log-draw per (rare) heads
        /// instead of one RNG draw per encounter. `-0.0` encodes "always
        /// heads" (prob ≥ 1), `NEG_INFINITY` encodes "never" (prob ≤ 0).
        geo_scale: f64,
        to: u32,
    },
    Sample {
        req_start: u32,
        req_end: u32,
        prob: f64,
        to: u32,
    },
    SampleAny {
        target: u32,
        samples: u32,
        prob: f64,
        to: u32,
    },
    PushSample {
        target: u32,
        samples: u32,
        prob: f64,
        to: u32,
    },
    Tokenize {
        req_start: u32,
        req_end: u32,
        prob: f64,
        token_state: u32,
        to: u32,
    },
}

impl CompiledProtocol {
    fn compile(protocol: &Protocol) -> Self {
        let mut actions = Vec::new();
        let mut per_action_messages: Vec<u64> = Vec::new();
        let mut meta = Vec::with_capacity(protocol.num_states());
        let mut required = Vec::new();
        let flatten_required = |required: &mut Vec<u32>, list: &[StateId]| {
            let start = required.len() as u32;
            required.extend(list.iter().map(|s| s.index() as u32));
            (start, required.len() as u32)
        };
        for state in 0..protocol.num_states() {
            let start = actions.len() as u32;
            for action in protocol.actions(StateId::new(state)) {
                per_action_messages.push(u64::from(action.messages_per_period()));
                actions.push(match action {
                    Action::Flip { prob, to } => CompiledAction::Flip {
                        geo_scale: if *prob <= 0.0 {
                            // ln(u)·(−∞) = +∞ → the counter never reaches 0.
                            f64::NEG_INFINITY
                        } else {
                            // prob ≥ 1 gives 1/ln(0) = −0.0: every run of
                            // tails has length 0, i.e. always heads.
                            1.0 / (1.0 - prob).ln()
                        },
                        to: to.index() as u32,
                    },
                    Action::Sample {
                        required: req,
                        prob,
                        to,
                    } => {
                        let (req_start, req_end) = flatten_required(&mut required, req);
                        CompiledAction::Sample {
                            req_start,
                            req_end,
                            prob: *prob,
                            to: to.index() as u32,
                        }
                    }
                    Action::SampleAny {
                        target_state,
                        samples,
                        prob,
                        to,
                    } => CompiledAction::SampleAny {
                        target: target_state.index() as u32,
                        samples: *samples,
                        prob: *prob,
                        to: to.index() as u32,
                    },
                    Action::PushSample {
                        target_state,
                        samples,
                        prob,
                        to,
                    } => CompiledAction::PushSample {
                        target: target_state.index() as u32,
                        samples: *samples,
                        prob: *prob,
                        to: to.index() as u32,
                    },
                    Action::Tokenize {
                        required: req,
                        prob,
                        token_state,
                        to,
                    } => {
                        let (req_start, req_end) = flatten_required(&mut required, req);
                        CompiledAction::Tokenize {
                            req_start,
                            req_end,
                            prob: *prob,
                            token_state: token_state.index() as u32,
                            to: to.index() as u32,
                        }
                    }
                });
            }
            meta.push(StateMeta {
                start,
                end: actions.len() as u32,
                messages: per_action_messages[start as usize..].iter().sum(),
            });
        }
        // Suffix message bills within each state's range.
        let mut messages_tail = vec![0u64; actions.len()];
        for m in &meta {
            let mut tail = 0u64;
            for idx in (m.start as usize..m.end as usize).rev() {
                messages_tail[idx] = tail;
                tail += per_action_messages[idx];
            }
        }
        // Tokenize consumers and push victims pick concrete members through
        // the lists; protocols without those actions (epidemic, LV) skip the
        // whole positional bookkeeping.
        let needs_member_lists = actions.iter().any(|a| {
            matches!(
                a,
                CompiledAction::Tokenize { .. } | CompiledAction::PushSample { .. }
            )
        });
        CompiledProtocol {
            actions,
            meta,
            messages_tail,
            required,
            needs_member_lists,
        }
    }
}

/// The mutable execution state of an [`AgentRuntime`] run: the scenario
/// clock, the process group, per-process states and the current period's
/// event buffers.
#[derive(Debug, Clone)]
pub struct AgentState {
    scenario: Scenario,
    rng: Rng,
    group: Group,
    members: Membership,
    /// Per-flip-action "tails left before the next heads" counters (indexed
    /// like the compiled action table; non-flip slots stay 0 and unused).
    /// See [`CompiledAction::Flip`]: decrementing a counter per encounter is
    /// distribution-identical to drawing the coin per encounter.
    flip_skips: Vec<u64>,
    period: u64,
    /// Whether the scenario can ever change liveness; when `false` the
    /// per-period environment step and all liveness probes are skipped.
    has_liveness_events: bool,
    /// Dense `from * num_states + to` transition counts for the period that
    /// just executed, plus the sparse rendering handed to observers.
    transitions_dense: Vec<u64>,
    transitions: Vec<(StateId, StateId, u64)>,
    messages: u64,
    /// The scenario's adversary, forked for this run (absent for
    /// adversary-free scenarios).
    injector: Option<InjectionPoint>,
}

impl AgentState {
    /// The next period to execute (also the number of periods executed).
    pub fn period(&self) -> u64 {
        self.period
    }

    /// Per-state alive counts (incremental; used by the hybrid runtime's
    /// handoff decisions and the membership→counts projection).
    pub(super) fn alive_counts(&self) -> &[u64] {
        self.members.counts_alive()
    }

    /// Per-state total counts (alive + crashed; crashed processes remember
    /// their state).
    pub(super) fn total_counts(&self) -> &[u64] {
        self.members.counts()
    }

    /// Per-state crashed counts (total minus alive; crashed processes
    /// remember their state).
    pub(super) fn crashed_counts(&self) -> Vec<u64> {
        self.members
            .counts()
            .iter()
            .zip(self.members.counts_alive())
            .map(|(total, alive)| total - alive)
            .collect()
    }

    /// A copy of the PRNG at its current position, so a handoff continues
    /// the same stream.
    pub(super) fn rng_clone(&self) -> Rng {
        self.rng.clone()
    }

    /// Detaches the adversary injection point (hybrid handoff: the strategy
    /// state must survive the fidelity switch).
    pub(super) fn take_injector(&mut self) -> Option<InjectionPoint> {
        self.injector.take()
    }

    /// Re-attaches an adversary injection point after a handoff.
    pub(super) fn set_injector(&mut self, injector: Option<InjectionPoint>) {
        self.injector = injector;
    }
}

impl AgentRuntime {
    /// Creates a runtime for the given protocol with the default
    /// [`RunConfig`], pre-compiling the action dispatch table.
    pub fn new(protocol: Protocol) -> Self {
        let compiled = CompiledProtocol::compile(&protocol);
        AgentRuntime {
            protocol,
            config: RunConfig::default(),
            compiled,
        }
    }

    /// Replaces the run configuration.
    #[must_use]
    pub fn with_config(mut self, config: RunConfig) -> Self {
        self.config = config;
        self
    }

    /// The protocol being executed.
    pub fn protocol(&self) -> &Protocol {
        &self.protocol
    }

    /// Runs the protocol under the given scenario and initial state
    /// distribution with the standard recording set (counts, transitions,
    /// alive counts, messages).
    ///
    /// For opt-in recording or custom observers use
    /// [`Simulation`](super::Simulation).
    ///
    /// # Errors
    ///
    /// Returns configuration errors (mismatched initial distribution, invalid
    /// protocol) and propagates scenario errors.
    pub fn run(&self, scenario: &Scenario, initial: &InitialStates) -> Result<RunResult> {
        drive(self, scenario, initial, &mut default_observers())
    }

    /// Convenience wrapper: run and return only the final per-state counts.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    pub fn run_final_counts(
        &self,
        scenario: &Scenario,
        initial: &InitialStates,
    ) -> Result<Vec<f64>> {
        Ok(self
            .run(scenario, initial)?
            .final_counts()
            .expect("run records the initial configuration")
            .to_vec())
    }

    /// Seeds every flip action's geometric "tails left" counter from `rng`
    /// (shared by [`init`](Runtime::init) and the hybrid runtime's
    /// counts→membership handoff).
    fn seed_flip_skips(&self, rng: &mut Rng) -> Vec<u64> {
        self.compiled
            .actions
            .iter()
            .map(|a| match a {
                CompiledAction::Flip { geo_scale, .. } => draw_geometric(rng, *geo_scale),
                _ => 0,
            })
            .collect()
    }

    /// Builds a mid-run [`AgentState`] from per-state alive/crashed counts —
    /// the counts→membership direction of the hybrid runtime's handoff.
    ///
    /// The paper's protocols and every count-level-compatible environment
    /// treat processes exchangeably, so conditioned on the counts the joint
    /// per-process `(state, liveness)` assignment is uniform over all
    /// assignments realizing those counts: drawing one uniformly (shuffle
    /// the `(state, crashed)` labels jointly over ids) is a *lossless*
    /// refinement — the joint law of every count-level observable is
    /// unchanged. The shuffle must be joint: deriving the crashed set from
    /// id order after a state-only shuffle would bias it toward low ids,
    /// which the agent runtime's id-order sweep could feel.
    ///
    /// The caller guarantees `counts_alive` and `counts_crashed` sum to the
    /// scenario's group size and that the scenario is count-level compatible
    /// (per-id schedules and churn traces are meaningless for a freshly
    /// randomized id assignment).
    pub(super) fn state_from_counts(
        &self,
        scenario: &Scenario,
        counts_alive: &[u64],
        counts_crashed: &[u64],
        period: u64,
        mut rng: Rng,
    ) -> AgentState {
        let n = scenario.group_size();
        let num_states = self.protocol.num_states();
        debug_assert_eq!(
            counts_alive.iter().sum::<u64>() + counts_crashed.iter().sum::<u64>(),
            n as u64,
            "handoff counts must cover the whole group"
        );
        // Uniform random joint assignment of (state, liveness) labels to ids
        // (exchangeability).
        let mut labels: Vec<(usize, bool)> = Vec::with_capacity(n);
        for (state, (&alive, &crashed)) in counts_alive.iter().zip(counts_crashed).enumerate() {
            labels.extend(std::iter::repeat((state, false)).take(alive as usize));
            labels.extend(std::iter::repeat((state, true)).take(crashed as usize));
        }
        rng.shuffle(&mut labels);
        let mut group = Group::new(n);
        let mut assignment: Vec<usize> = Vec::with_capacity(n);
        for (p, &(state, crashed)) in labels.iter().enumerate() {
            assignment.push(state);
            if crashed {
                let changed = group.crash(ProcessId(p)).expect("id in range");
                debug_assert!(changed);
            }
        }
        let flip_skips = self.seed_flip_skips(&mut rng);
        AgentState {
            members: Membership::new(
                num_states,
                &assignment,
                &group,
                self.compiled.needs_member_lists,
            ),
            group,
            rng,
            flip_skips,
            has_liveness_events: scenario.has_liveness_events(),
            injector: InjectionPoint::from_scenario(scenario),
            scenario: scenario.clone(),
            period,
            transitions_dense: vec![0; num_states * num_states],
            transitions: Vec::new(),
            messages: 0,
        }
    }

    fn events<'s>(&self, state: &'s AgentState) -> PeriodEvents<'s> {
        PeriodEvents {
            period: state.period,
            counts: state.members.counts(),
            transitions: &state.transitions,
            messages: state.messages,
            alive: state.group.alive_count() as u64,
            counts_alive: Some(state.members.counts_alive()),
            membership: Some(MembershipView {
                members: &state.members,
                group: &state.group,
            }),
            shard_counts_alive: None,
            transport: None,
            injections: inject::records_of(&state.injector),
            virtual_time: None,
        }
    }

    /// Shows the adversary (if any) the live alive counts and applies the
    /// injections it emits with per-id victim selection: a `CrashUniform`
    /// consumes the run's main PRNG stream exactly like a scheduled massive
    /// failure of the same fraction, and targeted injections pick uniform
    /// victims among the alive members of the targeted state.
    fn apply_injections(&self, state: &mut AgentState) -> Result<()> {
        let Some(mut injector) = state.injector.take() else {
            return Ok(());
        };
        let view = AdversaryView {
            period: state.period,
            counts_alive: state.members.counts_alive(),
            alive: state.group.alive_count() as u64,
            shard_counts_alive: None,
            transport: None,
            segments_alive: None,
        };
        let planned = match injector.plan(&view) {
            Ok(planned) => planned,
            Err(e) => {
                state.injector = Some(injector);
                return Err(e);
            }
        };
        for injection in planned {
            match self.apply_one_injection(state, injection) {
                Ok(victims) => injector.record(state.period, injection, victims),
                Err(e) => {
                    state.injector = Some(injector);
                    return Err(e);
                }
            }
        }
        state.injector = Some(injector);
        Ok(())
    }

    /// Applies one validated injection to the per-id run state, returning the
    /// number of affected processes.
    fn apply_one_injection(&self, state: &mut AgentState, injection: Injection) -> Result<u64> {
        match injection {
            Injection::CrashUniform { fraction } => {
                // Bit-identical to the scheduled massive-failure path.
                let down = state
                    .group
                    .crash_random_fraction(&mut state.rng, fraction)?;
                for id in &down {
                    state.members.on_crash(id.index());
                }
                Ok(down.len() as u64)
            }
            Injection::CrashState { state: s, fraction } => {
                if s >= self.protocol.num_states() {
                    return Err(CoreError::InvalidConfig {
                        name: "adversary",
                        reason: format!(
                            "injection targets state {s}, but the protocol has only {} states",
                            self.protocol.num_states()
                        ),
                    });
                }
                let pool: Vec<usize> = (0..state.scenario.group_size())
                    .filter(|&p| {
                        state.members.state_of(p) == s && state.group.is_alive_unchecked(p)
                    })
                    .collect();
                let k = inject::victim_count(fraction, pool.len() as u64) as usize;
                let chosen =
                    netsim::stochastic::sample_without_replacement(&mut state.rng, pool.len(), k);
                for idx in chosen {
                    let p = pool[idx];
                    let changed = state.group.crash(ProcessId(p))?;
                    debug_assert!(changed);
                    state.members.on_crash(p);
                }
                Ok(k as u64)
            }
            Injection::RecoverUniform { fraction } => {
                let pool: Vec<usize> = (0..state.scenario.group_size())
                    .filter(|&p| !state.group.is_alive_unchecked(p))
                    .collect();
                let k = inject::victim_count(fraction, pool.len() as u64) as usize;
                let chosen =
                    netsim::stochastic::sample_without_replacement(&mut state.rng, pool.len(), k);
                for idx in chosen {
                    let p = pool[idx];
                    let changed = state.group.recover(ProcessId(p))?;
                    debug_assert!(changed);
                    state.members.on_recover(p);
                    if let Some(rejoin) = self.config.rejoin_state {
                        state.members.force_state_alive(p, rejoin.index());
                    }
                }
                Ok(k as u64)
            }
            // `Injection` is non_exhaustive: shard-targeted (and any future)
            // injections are rejected explicitly rather than silently skipped.
            unsupported => Err(inject::unsupported_injection("agent", &unsupported)),
        }
    }
}

/// Draws the length of the next run of tails for a flip with precomputed
/// `geo_scale = 1 / ln(1 − prob)`: `⌊ln(1 − u) · geo_scale⌋`, the geometric
/// inverse-CDF (one uniform, one log).
#[inline]
fn draw_geometric(rng: &mut Rng, geo_scale: f64) -> u64 {
    let ln1mu = (1.0 - rng.next_f64()).max(f64::MIN_POSITIVE).ln();
    (ln1mu * geo_scale) as u64
}

/// Applies the transition `p: from -> to` and counts it in the dense buffer.
/// Every transitioning process is alive (executors, push targets and token
/// consumers are all liveness-checked), so the alive counts move too.
#[inline]
fn transition(
    p: usize,
    from: usize,
    to: usize,
    members: &mut Membership,
    transitions: &mut [u64],
    num_states: usize,
) {
    if from == to {
        return;
    }
    members.force_state_alive(p, to);
    transitions[from * num_states + to] += 1;
}

impl Runtime for AgentRuntime {
    type State = AgentState;

    fn build(protocol: Protocol, config: &RunConfig) -> Self {
        AgentRuntime::new(protocol).with_config(config.clone())
    }

    fn protocol(&self) -> &Protocol {
        &self.protocol
    }

    fn init(&self, scenario: &Scenario, initial: &InitialStates) -> Result<AgentState> {
        self.protocol.validate()?;
        super::reject_sharded(scenario, "agent")?;
        super::reject_transport(scenario, "agent")?;
        let n = scenario.group_size();
        let num_states = self.protocol.num_states();
        let counts_spec = initial.resolve(num_states, n as u64)?;

        let mut rng = scenario.build_rng();
        let group = scenario.build_group();

        // Assign initial states: counts_spec[i] processes in state i, shuffled
        // so state assignment is independent of process id.
        let mut assignment: Vec<usize> = Vec::with_capacity(n);
        for (state, count) in counts_spec.iter().enumerate() {
            assignment.extend(std::iter::repeat(state).take(*count as usize));
        }
        rng.shuffle(&mut assignment);

        // Seed every flip action's geometric tails counter.
        let flip_skips = self.seed_flip_skips(&mut rng);

        Ok(AgentState {
            rng,
            flip_skips,
            members: Membership::new(
                num_states,
                &assignment,
                &group,
                self.compiled.needs_member_lists,
            ),
            group,
            has_liveness_events: scenario.has_liveness_events(),
            injector: InjectionPoint::from_scenario(scenario),
            scenario: scenario.clone(),
            period: 0,
            transitions_dense: vec![0; num_states * num_states],
            transitions: Vec::new(),
            messages: 0,
        })
    }

    fn step<'s>(&self, state: &'s mut AgentState) -> Result<PeriodEvents<'s>> {
        let period = state.period;
        let n = state.scenario.group_size();
        let inv_n = 1.0 / n as f64;
        let num_states = self.protocol.num_states();
        // Per-contact failure probability; `Rng::chance` consumes no
        // randomness when it is zero, so the reliable path stays draw-free.
        let contact_fail = state.scenario.loss().effective_contact_failure(1);
        let contact_ok = 1.0 - contact_fail;
        state.transitions_dense.fill(0);
        state.transitions.clear();
        state.messages = 0;

        // 1. Environment events (skipped outright for failure-free
        //    scenarios). `down`/`up` contain only genuine liveness changes,
        //    which keeps the incremental alive counts exact.
        if state.has_liveness_events {
            let (down, up) =
                state
                    .scenario
                    .apply_period_events(period, &mut state.group, &mut state.rng)?;
            for id in &down {
                state.members.on_crash(id.index());
            }
            for id in &up {
                state.members.on_recover(id.index());
            }
            if let Some(rejoin) = self.config.rejoin_state {
                for id in up {
                    state.members.force_state_alive(id.index(), rejoin.index());
                }
            }
        }
        // Adversary injections observe the post-event state.
        self.apply_injections(state)?;

        // 2. Protocol actions. Liveness is invariant during the action loop
        //    (environment events only happen at period boundaries), so one
        //    flag decides whether any probes are needed at all.
        let check_alive = !state.group.all_alive();
        let AgentState {
            ref mut rng,
            ref group,
            ref mut members,
            ref mut transitions_dense,
            ref mut messages,
            ref mut flip_skips,
            ..
        } = *state;
        for p in 0..n {
            let process_state = members.state_of(p);
            let meta = self.compiled.meta[process_state];
            if meta.start == meta.end || (check_alive && !group.is_alive_unchecked(p)) {
                continue;
            }
            // Bill the whole action list up front; a process that moves early
            // refunds the unreached tail below.
            *messages += meta.messages;
            // `idx` indexes three parallel tables (actions, flip_skips,
            // messages_tail), so a range loop is the clearest form.
            #[allow(clippy::needless_range_loop)]
            for idx in meta.start as usize..meta.end as usize {
                // Flip — the dominant action in the paper's protocols — is
                // handled inline so the sweep loop stays a handful of
                // instructions; everything else goes through the out-of-line
                // slow path, keeping the hot loop's code footprint tiny.
                let moved =
                    if let CompiledAction::Flip { geo_scale, to } = self.compiled.actions[idx] {
                        let skip = &mut flip_skips[idx];
                        if *skip == 0 {
                            *skip = draw_geometric(rng, geo_scale);
                            transition(
                                p,
                                process_state,
                                to as usize,
                                members,
                                transitions_dense,
                                num_states,
                            );
                            true
                        } else {
                            *skip -= 1;
                            false
                        }
                    } else {
                        self.execute_compiled(
                            idx,
                            p,
                            process_state,
                            inv_n,
                            num_states,
                            contact_ok,
                            contact_fail,
                            members,
                            group,
                            rng,
                            transitions_dense,
                        )
                    };
                if moved {
                    *messages -= self.compiled.messages_tail[idx];
                    break;
                }
            }
        }

        // 3. Render the dense transition counts sparsely for observers.
        super::render_sparse_transitions(
            &state.transitions_dense,
            self.protocol.num_states(),
            &mut state.transitions,
        );

        state.period = period + 1;
        Ok(self.events(state))
    }

    fn snapshot<'s>(&self, state: &'s AgentState) -> PeriodEvents<'s> {
        self.events(state)
    }
}

impl AgentRuntime {
    /// Executes one compiled action for process `p` (currently in `state`).
    /// Returns `true` if the process itself transitioned.
    ///
    /// Contacts use **count-assisted sampling**: drawing a uniform member of
    /// the maximal group and testing "alive, reachable and in state `w`" is a
    /// Bernoulli trial with success probability
    /// `counts_alive[w] / N · (1 − contact_fail)` — and since the sampled
    /// target's identity is never used by `Flip`/`Sample`/`SampleAny` (only
    /// its current state is), the whole firing condition collapses into a
    /// single coin against the incrementally-maintained alive counts. This is
    /// distribution-identical to per-contact simulation — the counts are read
    /// *at the process's turn*, so the within-period cascade of the
    /// sequential sweep is preserved exactly — while touching no per-process
    /// memory and burning one RNG draw per (process, action) instead of one
    /// per contact. Actions that do act on the sampled target (`PushSample`,
    /// `Tokenize` consumers) still pick a concrete uniform victim, but only
    /// on the rare successful draws.
    #[allow(clippy::too_many_arguments)]
    #[inline(never)]
    fn execute_compiled(
        &self,
        idx: usize,
        p: usize,
        state: usize,
        inv_n: f64,
        num_states: usize,
        contact_ok: f64,
        contact_fail: f64,
        members: &mut Membership,
        group: &Group,
        rng: &mut Rng,
        transitions: &mut [u64],
    ) -> bool {
        match self.compiled.actions[idx] {
            CompiledAction::Flip { .. } => {
                // The sweep loop in `step` handles Flip inline (its only
                // call site filters it out); one canonical implementation
                // lives there.
                unreachable!("Flip is handled inline in the sweep loop")
            }
            CompiledAction::Sample {
                req_start,
                req_end,
                prob,
                to,
            } => {
                let mut fire = prob;
                for &wanted in &self.compiled.required[req_start as usize..req_end as usize] {
                    fire *= members.counts_alive[wanted as usize] as f64 * inv_n * contact_ok;
                }
                if rng.chance(fire) {
                    transition(p, state, to as usize, members, transitions, num_states);
                    return true;
                }
            }
            CompiledAction::SampleAny {
                target,
                samples,
                prob,
                to,
            } => {
                let hit = members.counts_alive[target as usize] as f64 * inv_n * contact_ok;
                let fire = if samples == 1 {
                    prob * hit
                } else {
                    prob * (1.0 - (1.0 - hit).powi(samples as i32))
                };
                if rng.chance(fire) {
                    transition(p, state, to as usize, members, transitions, num_states);
                    return true;
                }
            }
            CompiledAction::PushSample {
                target,
                samples,
                prob,
                to,
            } => {
                let t = target as usize;
                let mut remaining = samples;
                while remaining > 0 {
                    // Valid victims: alive members of `t` other than the
                    // executor (recomputed after each hit — a push may have
                    // just converted someone).
                    let avail = members.counts_alive[t] - u64::from(state == t);
                    let per_draw = avail as f64 * inv_n * contact_ok * prob;
                    if per_draw <= 0.0 {
                        break;
                    }
                    // One uniform resolves all remaining samples at once:
                    // either none of them hits (the common case), or the
                    // first hit is at sample `j` — P(first hit at j) =
                    // (1-q)^(j-1)·q, recovered from the same draw. The
                    // leftover samples after a hit re-enter the loop with the
                    // updated victim pool, so the sequential per-sample
                    // semantics are reproduced exactly.
                    // "First j samples all missed" ⇔ u < miss^j, so "no hit
                    // at all" ⇔ u < miss^remaining, and "first hit at j" ⇔
                    // miss^j ≤ u < miss^(j−1) (probability miss^(j−1)·q).
                    let u = rng.next_f64();
                    let miss = 1.0 - per_draw;
                    if u < miss.powi(remaining as i32) {
                        break; // every remaining sample missed
                    }
                    let mut j = 1u32;
                    while u < miss.powi(j as i32) {
                        j += 1;
                    }
                    // Uniform among the valid victims via rejection on p.
                    while let Some(victim) = members.random_alive_in_state(t, group, rng) {
                        if victim != p {
                            transition(victim, t, to as usize, members, transitions, num_states);
                            break;
                        }
                    }
                    remaining -= j;
                }
            }
            CompiledAction::Tokenize {
                req_start,
                req_end,
                prob,
                token_state,
                to,
            } => {
                let mut fire = prob;
                for &wanted in &self.compiled.required[req_start as usize..req_end as usize] {
                    fire *= members.counts_alive[wanted as usize] as f64 * inv_n * contact_ok;
                }
                if rng.chance(fire) {
                    // Forward the token to an alive process currently in
                    // `token_state`; if none can be found the token is dropped
                    // (Section 6's "if no processes are in state x").
                    if let Some(consumer) =
                        members.random_alive_in_state(token_state as usize, group, rng)
                    {
                        if !rng.chance(contact_fail) {
                            transition(
                                consumer,
                                token_state as usize,
                                to as usize,
                                members,
                                transitions,
                                num_states,
                            );
                        }
                    }
                }
            }
        }
        false
    }
}

/// Read access to the per-process membership at a period boundary, handed to
/// observers through [`PeriodEvents::membership`].
#[derive(Debug, Clone, Copy)]
pub struct MembershipView<'a> {
    members: &'a Membership,
    group: &'a Group,
}

impl MembershipView<'_> {
    /// Ids of the alive processes currently in `state`.
    pub fn alive_members_of(&self, state: StateId) -> Vec<ProcessId> {
        match &self.members.lists {
            Some(lists) => lists.members[state.index()]
                .iter()
                .map(|&p| ProcessId(p as usize))
                .filter(|id| self.group.is_alive_unchecked(id.index()))
                .collect(),
            // Without maintained lists, one flat scan (only membership
            // observers pay it, once per period).
            None => self
                .members
                .state
                .iter()
                .enumerate()
                .filter(|&(p, &s)| s as usize == state.index() && self.group.is_alive_unchecked(p))
                .map(|(p, _)| ProcessId(p))
                .collect(),
        }
    }

    /// Per-state counts restricted to alive processes (maintained
    /// incrementally — O(states), not O(N)).
    pub fn alive_counts(&self) -> Vec<u64> {
        self.members.counts_alive().to_vec()
    }

    /// The state of one process.
    pub fn state_of(&self, id: ProcessId) -> StateId {
        StateId::new(self.members.state_of(id.index()))
    }
}

/// Per-process state bookkeeping with O(1) transitions and incrementally
/// maintained total and alive-only per-state counts.
///
/// Per-state member lists carry real bookkeeping weight on every transition
/// (positional swap-remove surgery), but only two consumers ever read them:
/// tokenize consumers and [`MembershipTracker`](super::MembershipTracker)
/// snapshots. They are therefore maintained only when the protocol contains
/// tokenize actions; everything else falls back to the flat state vector.
#[derive(Debug, Clone)]
struct Membership {
    state: Vec<u32>,
    counts: Vec<u64>,
    counts_alive: Vec<u64>,
    lists: Option<MemberLists>,
}

/// Per-state member lists with positional backpointers for O(1) moves.
#[derive(Debug, Clone)]
struct MemberLists {
    position: Vec<u32>,
    members: Vec<Vec<u32>>,
}

impl Membership {
    fn new(num_states: usize, assignment: &[usize], group: &Group, with_lists: bool) -> Self {
        let mut state = Vec::with_capacity(assignment.len());
        let mut counts = vec![0u64; num_states];
        let mut counts_alive = vec![0u64; num_states];
        for (p, &s) in assignment.iter().enumerate() {
            state.push(s as u32);
            counts[s] += 1;
            if group.is_alive_unchecked(p) {
                counts_alive[s] += 1;
            }
        }
        let lists = with_lists.then(|| {
            let mut members: Vec<Vec<u32>> = vec![Vec::new(); num_states];
            let mut position = Vec::with_capacity(assignment.len());
            for (p, &s) in assignment.iter().enumerate() {
                position.push(members[s].len() as u32);
                members[s].push(p as u32);
            }
            MemberLists { position, members }
        });
        Membership {
            state,
            counts,
            counts_alive,
            lists,
        }
    }

    fn state_of(&self, p: usize) -> usize {
        self.state[p] as usize
    }

    fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Per-state counts over alive processes only, maintained incrementally.
    fn counts_alive(&self) -> &[u64] {
        &self.counts_alive
    }

    /// Records that the (alive) process `p` crashed.
    fn on_crash(&mut self, p: usize) {
        self.counts_alive[self.state[p] as usize] -= 1;
    }

    /// Records that the (crashed) process `p` recovered.
    fn on_recover(&mut self, p: usize) {
        self.counts_alive[self.state[p] as usize] += 1;
    }

    /// Moves the **alive** process `p` to state `to` (the caller guarantees
    /// liveness; every runtime transition path does).
    fn force_state_alive(&mut self, p: usize, to: usize) {
        let from = self.state[p] as usize;
        if from == to {
            return;
        }
        self.counts[from] -= 1;
        self.counts_alive[from] -= 1;
        self.counts[to] += 1;
        self.counts_alive[to] += 1;
        self.state[p] = to as u32;
        if let Some(lists) = &mut self.lists {
            // Remove from the old member list via swap_remove, fixing the
            // swapped element's position.
            let pos = lists.position[p] as usize;
            let list = &mut lists.members[from];
            let last = *list.last().expect("member list cannot be empty");
            list.swap_remove(pos);
            if (last as usize) != p {
                lists.position[last as usize] = pos as u32;
            }
            // Insert into the new list.
            lists.position[p] = lists.members[to].len() as u32;
            lists.members[to].push(p as u32);
        }
    }

    /// Picks a uniformly random *alive* member of `state`, or `None` if the
    /// state is empty or only contains crashed processes.
    ///
    /// Rejection sampling handles the common case in O(1) expected time; the
    /// fallback counts the alive members and picks the k-th so the choice
    /// stays uniform even when almost everyone in the state has crashed
    /// (a first-alive scan would bias towards low process ids).
    fn random_alive_in_state(&self, state: usize, group: &Group, rng: &mut Rng) -> Option<usize> {
        let Some(lists) = &self.lists else {
            // Defensive fallback (init builds lists whenever the protocol can
            // reach this): pick the k-th alive member by scanning.
            let alive = self.counts_alive[state];
            if alive == 0 {
                return None;
            }
            let k = rng.index(alive as usize);
            return self
                .state
                .iter()
                .enumerate()
                .filter(|&(p, &s)| s as usize == state && group.is_alive_unchecked(p))
                .map(|(p, _)| p)
                .nth(k);
        };
        let list = &lists.members[state];
        if list.is_empty() {
            return None;
        }
        if group.all_alive() {
            return Some(list[rng.index(list.len())] as usize);
        }
        for _ in 0..16 {
            let candidate = list[rng.index(list.len())] as usize;
            if group.is_alive_unchecked(candidate) {
                return Some(candidate);
            }
        }
        // Uniform fallback: count, then index.
        let alive = list
            .iter()
            .filter(|&&p| group.is_alive_unchecked(p as usize))
            .count();
        if alive == 0 {
            return None;
        }
        let k = rng.index(alive);
        list.iter()
            .map(|&p| p as usize)
            .filter(|&p| group.is_alive_unchecked(p))
            .nth(k)
    }
}

#[cfg(test)]
mod tests {
    use super::super::{CountsRecorder, MembershipTracker, Simulation};
    use super::*;
    use crate::error::CoreError;
    use crate::mapping::ProtocolCompiler;
    use odekit::system::EquationSystemBuilder;

    fn epidemic_protocol() -> Protocol {
        let sys = EquationSystemBuilder::new()
            .vars(["x", "y"])
            .term("x", -1.0, &[("x", 1), ("y", 1)])
            .term("y", 1.0, &[("x", 1), ("y", 1)])
            .build()
            .unwrap();
        ProtocolCompiler::new("epidemic").compile(&sys).unwrap()
    }

    #[test]
    fn epidemic_saturates_in_logarithmic_time() {
        let protocol = epidemic_protocol();
        let scenario = Scenario::new(4096, 40).unwrap().with_seed(11);
        let result = AgentRuntime::new(protocol)
            .run(&scenario, &InitialStates::counts(&[4095, 1]))
            .unwrap();
        // Conservation every period.
        for (_, s) in result.counts.iter() {
            assert_eq!(s[0] + s[1], 4096.0);
        }
        // Saturation.
        let final_counts = result.final_counts().unwrap();
        assert!(final_counts[1] > 4000.0);
        // O(log N) spread: find the first period with > half infected; for
        // N = 4096 the pull epidemic needs roughly log2(N) ≈ 12 periods to
        // take off, comfortably under 30.
        let y = result.state_series("y").unwrap();
        let first_half = y.iter().position(|&v| v > 2048.0).unwrap();
        assert!(first_half < 30, "took {first_half} periods to infect half");
        // Transition counter adds up to the total number of infections.
        assert_eq!(result.total_transitions("x", "y"), final_counts[1] - 1.0);
        // Messages were counted.
        assert!(result
            .metrics
            .series("messages")
            .unwrap()
            .iter()
            .any(|(_, v)| *v > 0.0));
    }

    #[test]
    fn incremental_stepping_matches_the_one_shot_run() {
        let protocol = epidemic_protocol();
        let scenario = Scenario::new(512, 12).unwrap().with_seed(4);
        let initial = InitialStates::counts(&[511, 1]);
        let runtime = AgentRuntime::new(protocol);
        let batch = runtime.run(&scenario, &initial).unwrap();

        let mut state = runtime.init(&scenario, &initial).unwrap();
        assert_eq!(runtime.snapshot(&state).period, 0);
        let mut counts_by_period = vec![runtime.snapshot(&state).counts.to_vec()];
        for _ in 0..scenario.periods() {
            let ev = runtime.step(&mut state).unwrap();
            counts_by_period.push(ev.counts.to_vec());
        }
        assert_eq!(state.period(), scenario.periods());
        for (recorded, stepped) in batch.counts.states().iter().zip(&counts_by_period) {
            let stepped: Vec<f64> = stepped.iter().map(|&c| c as f64).collect();
            assert_eq!(recorded, &stepped);
        }
    }

    #[test]
    fn initial_distribution_must_match_group() {
        let protocol = epidemic_protocol();
        let scenario = Scenario::new(100, 5).unwrap();
        let err = AgentRuntime::new(protocol)
            .run(&scenario, &InitialStates::counts(&[50, 49]))
            .unwrap_err();
        assert!(matches!(err, CoreError::InvalidConfig { .. }));
    }

    #[test]
    fn crashed_processes_do_not_participate() {
        // With every process crashed at period 0, nothing ever transitions.
        let protocol = epidemic_protocol();
        let scenario = Scenario::new(50, 10)
            .unwrap()
            .with_massive_failure(0, 1.0)
            .unwrap()
            .with_seed(3);
        let result = AgentRuntime::new(protocol)
            .run(&scenario, &InitialStates::counts(&[49, 1]))
            .unwrap();
        assert_eq!(result.final_counts(), Some(&[49.0, 1.0][..]));
        assert_eq!(result.total_transitions("x", "y"), 0.0);
    }

    #[test]
    fn alive_only_counts_exclude_crashed_processes() {
        let protocol = epidemic_protocol();
        let scenario = Scenario::new(100, 3)
            .unwrap()
            .with_massive_failure(1, 0.5)
            .unwrap()
            .with_seed(5);
        let result = Simulation::of(protocol)
            .scenario(scenario)
            .initial(InitialStates::counts(&[100, 0]))
            .observe(CountsRecorder::alive_only())
            .run::<AgentRuntime>()
            .unwrap();
        // After the massive failure the alive-only counts sum to 50.
        let last = result.final_counts().unwrap();
        assert_eq!(last.iter().sum::<f64>(), 50.0);
    }

    #[test]
    fn incremental_alive_counts_track_failures_and_transitions() {
        // Crash 60% at period 2 and keep the epidemic running: the
        // incrementally maintained alive counts must match a from-scratch
        // recount at every period.
        let protocol = epidemic_protocol();
        let scenario = Scenario::new(300, 12)
            .unwrap()
            .with_massive_failure(2, 0.6)
            .unwrap()
            .with_failure_model(netsim::FailureModel::new(0.02, 0.1).unwrap())
            .with_seed(17);
        let runtime = AgentRuntime::new(epidemic_protocol());
        let initial = InitialStates::counts(&[299, 1]);
        let mut state = runtime.init(&scenario, &initial).unwrap();
        for _ in 0..scenario.periods() {
            runtime.step(&mut state).unwrap();
            let incremental = state.members.counts_alive().to_vec();
            let mut recount = vec![0u64; protocol.num_states()];
            for p in 0..scenario.group_size() {
                if state.group.is_alive_unchecked(p) {
                    recount[state.members.state_of(p)] += 1;
                }
            }
            assert_eq!(incremental, recount, "period {}", state.period());
        }
    }

    #[test]
    fn rejoin_state_is_applied_on_recovery() {
        // Crash a specific process and recover it later; with rejoin_state =
        // y it must come back in state y even though it started in x. An
        // action-free protocol isolates the rejoin mechanism.
        let protocol = Protocol::new("inert", vec!["x".into(), "y".into()]).unwrap();
        let y = protocol.require_state("y").unwrap();
        let mut schedule = netsim::FailureSchedule::new();
        schedule.add(0, netsim::FailureEvent::Crash(ProcessId(0)));
        schedule.add(2, netsim::FailureEvent::Recover(ProcessId(0)));
        let scenario = Scenario::new(10, 5)
            .unwrap()
            .with_failure_schedule(schedule)
            .unwrap()
            .with_seed(1);
        let runtime = AgentRuntime::new(protocol).with_config(RunConfig::rejoining_to(y));
        // The only way a y can appear is via the rejoin rule.
        let result = runtime
            .run(&scenario, &InitialStates::counts(&[10, 0]))
            .unwrap();
        assert_eq!(result.final_counts().unwrap()[1], 1.0);
    }

    #[test]
    fn handoff_assignment_is_jointly_uniform() {
        // Regression: deriving the crashed set from id order after a
        // state-only shuffle biased it toward low ids, skewing the alive
        // processes' id-order sweep. With counts {x: 1 alive + 1 crashed,
        // y: 1 alive}, the alive state sequence must be (x, y) and (y, x)
        // equally often.
        let protocol = Protocol::new("inert", vec!["x".into(), "y".into()]).unwrap();
        let runtime = AgentRuntime::new(protocol);
        let scenario = Scenario::new(3, 1).unwrap();
        let mut rng = Rng::seed_from(42);
        let draws = 4_000u32;
        let mut x_first = 0u32;
        for _ in 0..draws {
            let state = runtime.state_from_counts(&scenario, &[1, 1], &[1, 0], 0, rng.fork(0));
            let alive_states: Vec<usize> = (0..3)
                .filter(|&p| state.group.is_alive_unchecked(p))
                .map(|p| state.members.state_of(p))
                .collect();
            assert_eq!(alive_states.len(), 2);
            assert_eq!(state.members.counts(), &[2, 1]);
            if alive_states == [0, 1] {
                x_first += 1;
            }
        }
        // Expected 2000; 5σ ≈ 158. The biased construction put x first in
        // only ~1/3 of draws.
        assert!(
            (f64::from(x_first) - 2_000.0).abs() < 160.0,
            "x first in {x_first} of {draws} draws"
        );
    }

    #[test]
    fn member_tracking_records_state_membership() {
        let protocol = epidemic_protocol();
        let y = protocol.require_state("y").unwrap();
        let scenario = Scenario::new(64, 15).unwrap().with_seed(2);
        let result = Simulation::of(protocol)
            .scenario(scenario)
            .initial(InitialStates::counts(&[63, 1]))
            .observe(CountsRecorder::new())
            .observe(MembershipTracker::of(y))
            .run::<AgentRuntime>()
            .unwrap();
        // One snapshot per recorded period (periods + 1 including period 0).
        assert_eq!(result.tracked_members.len(), 16);
        // Snapshot sizes match the recorded y counts.
        let y_series = result.state_series("y").unwrap();
        for ((_, ids), count) in result.tracked_members.iter().zip(&y_series) {
            assert_eq!(ids.len() as f64, *count);
        }
    }

    #[test]
    fn membership_bookkeeping_is_consistent() {
        let group = Group::new(5);
        let mut m = Membership::new(3, &[0, 0, 1, 2, 1], &group, true);
        assert_eq!(m.counts(), &[2, 2, 1]);
        assert_eq!(m.counts_alive(), &[2, 2, 1]);
        assert_eq!(m.state_of(3), 2);
        m.force_state_alive(0, 2);
        m.force_state_alive(0, 2); // no-op
        assert_eq!(m.counts(), &[1, 2, 2]);
        assert_eq!(m.counts_alive(), &[1, 2, 2]);
        assert_eq!(m.state_of(0), 2);
        let lists = m.lists.as_ref().unwrap();
        assert!(lists.members[2].contains(&0));
        m.force_state_alive(4, 0);
        assert_eq!(m.counts(), &[2, 1, 2]);
        // Crash/recover hooks move only the alive counts.
        m.on_crash(4);
        assert_eq!(m.counts(), &[2, 1, 2]);
        assert_eq!(m.counts_alive(), &[1, 1, 2]);
        m.on_recover(4);
        assert_eq!(m.counts_alive(), &[2, 1, 2]);
        // Every process appears exactly once across all member lists.
        let lists = m.lists.as_ref().unwrap();
        let mut all: Vec<u32> = lists.members.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn token_consumers_are_uniform_under_heavy_failure() {
        // Regression test for the biased fallback: with only a handful of
        // alive members left in the token state, the rejection loop usually
        // misses and the fallback decides — it must not favour low ids.
        let mut group = Group::new(4_000);
        let assignment = vec![0usize; 4_000];
        // Alive members: a low-id one and three high-id ones. A first-alive
        // scan would return id 10 almost always.
        let alive = [10usize, 3_200, 3_600, 3_999];
        for p in 0..4_000 {
            if !alive.contains(&p) {
                group.crash(ProcessId(p)).unwrap();
            }
        }
        let m = Membership::new(1, &assignment, &group, true);
        let mut rng = Rng::seed_from(99);
        let mut hits = std::collections::HashMap::new();
        let draws = 4_000;
        for _ in 0..draws {
            let picked = m.random_alive_in_state(0, &group, &mut rng).unwrap();
            *hits.entry(picked).or_insert(0u32) += 1;
        }
        // Every alive member is reachable and roughly uniform (expected 1000
        // each; 5 sigma ≈ 150).
        for p in alive {
            let h = *hits.get(&p).unwrap_or(&0);
            assert!(
                (h as f64 - draws as f64 / 4.0).abs() < 150.0,
                "process {p} hit {h} times"
            );
        }
        // All-crashed state yields None.
        for p in alive {
            group.crash(ProcessId(p)).unwrap();
        }
        assert_eq!(m.random_alive_in_state(0, &group, &mut rng), None);
    }

    #[test]
    fn oblivious_adversary_matches_scheduled_massive_failure_bit_for_bit() {
        // The same failure budget delivered through the adversary hook must
        // reproduce the scheduled-event run exactly, per-id victim selection
        // and RNG stream included.
        let protocol = epidemic_protocol();
        let runtime = AgentRuntime::new(protocol);
        let initial = InitialStates::counts(&[1999, 1]);
        let scheduled = Scenario::new(2000, 25)
            .unwrap()
            .with_massive_failure(12, 0.5)
            .unwrap()
            .with_seed(7);
        let injected = Scenario::new(2000, 25)
            .unwrap()
            .with_seed(7)
            .with_adversary(
                netsim::adversary::ObliviousSchedule::new()
                    .crash_uniform_at(12, 0.5)
                    .unwrap(),
            );
        let a = runtime.run(&scheduled, &initial).unwrap();
        let b = runtime.run(&injected, &initial).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn adaptive_adversary_strikes_the_leading_state_per_id() {
        // An inert two-state protocol: the adversary sees [600, 400] alive,
        // strikes the leader with budget 0.3·1000 = 300 victims, all drawn
        // from state x.
        let protocol = Protocol::new("inert", vec!["x".into(), "y".into()]).unwrap();
        let scenario = Scenario::new(1000, 20)
            .unwrap()
            .with_seed(13)
            .with_adversary(netsim::adversary::TargetLargestState::new(0.3, 10, 5, 1).unwrap());
        let result = AgentRuntime::new(protocol)
            .run(&scenario, &InitialStates::counts(&[600, 400]))
            .unwrap();
        // Total counts are unchanged (crashed processes remember their
        // state); the strike is visible through the alive-only counts.
        assert_eq!(result.final_counts(), Some(&[600.0, 400.0][..]));
        let alive = result
            .metrics
            .series("alive")
            .expect("alive series recorded");
        assert_eq!(alive.last().unwrap().1, 700.0);
    }

    #[test]
    fn message_losses_slow_the_epidemic_down() {
        let protocol = epidemic_protocol();
        let reliable = Scenario::new(2000, 15).unwrap().with_seed(9);
        let lossy = Scenario::new(2000, 15)
            .unwrap()
            .with_seed(9)
            .with_loss(netsim::LossConfig::new(0.8, 0.0).unwrap());
        let runtime = AgentRuntime::new(protocol);
        let a = runtime
            .run(&reliable, &InitialStates::counts(&[1999, 1]))
            .unwrap();
        let b = runtime
            .run(&lossy, &InitialStates::counts(&[1999, 1]))
            .unwrap();
        let a_final = a.final_counts().unwrap()[1];
        let b_final = b.final_counts().unwrap()[1];
        assert!(
            a_final > b_final,
            "losses should slow dissemination: {a_final} vs {b_final}"
        );
    }
}
