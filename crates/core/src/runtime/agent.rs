//! The per-process (agent-based) protocol runtime.

use super::observer::default_observers;
use super::simulation::drive;
use super::{InitialStates, PeriodEvents, RunConfig, RunResult, Runtime};
use crate::action::Action;
use crate::state_machine::{Protocol, StateId};
use crate::Result;
use netsim::{Group, LossConfig, ProcessId, Rng, Scenario};

/// Executes a protocol with one explicit state per process.
///
/// Every protocol period the runtime
///
/// 1. applies the scenario's failure and churn events for that period,
/// 2. lets every alive process execute the actions of its current state (in
///    order, stopping after the first action that makes the process itself
///    transition), sampling contacts uniformly from the **maximal**
///    membership — a contact aimed at a crashed process is fruitless, exactly
///    as in the paper, and
/// 3. exposes per-state counts, transition counts and membership through
///    [`PeriodEvents`] for the attached observers.
///
/// Processes are visited in id order within a period; the protocols are
/// symmetric and memoryless across periods, so the visiting order has no
/// statistically visible effect at the group sizes used in the experiments.
///
/// # Examples
///
/// ```
/// use dpde_core::{ProtocolCompiler, runtime::{AgentRuntime, InitialStates}};
/// use netsim::Scenario;
/// use odekit::EquationSystemBuilder;
///
/// // Epidemic: 1 initial infective in a group of 1000.
/// let sys = EquationSystemBuilder::new()
///     .vars(["x", "y"])
///     .term("x", -1.0, &[("x", 1), ("y", 1)])
///     .term("y", 1.0, &[("x", 1), ("y", 1)])
///     .build()?;
/// let protocol = ProtocolCompiler::new("epidemic").compile(&sys)?;
/// let scenario = Scenario::new(1000, 30)?.with_seed(7);
/// let result = AgentRuntime::new(protocol).run(&scenario, &InitialStates::counts(&[999, 1]))?;
/// let infected = result.final_counts().expect("run recorded periods")[1];
/// assert!(infected > 990.0, "epidemic should saturate, got {infected}");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct AgentRuntime {
    protocol: Protocol,
    config: RunConfig,
}

/// The mutable execution state of an [`AgentRuntime`] run: the scenario
/// clock, the process group, per-process states and the current period's
/// event buffers.
#[derive(Debug, Clone)]
pub struct AgentState {
    scenario: Scenario,
    rng: Rng,
    group: Group,
    members: Membership,
    period: u64,
    /// Dense `from * num_states + to` transition counts for the period that
    /// just executed, plus the sparse rendering handed to observers.
    transitions_dense: Vec<u64>,
    transitions: Vec<(StateId, StateId, u64)>,
    messages: u64,
}

impl AgentState {
    /// The next period to execute (also the number of periods executed).
    pub fn period(&self) -> u64 {
        self.period
    }
}

impl AgentRuntime {
    /// Creates a runtime for the given protocol with the default
    /// [`RunConfig`].
    pub fn new(protocol: Protocol) -> Self {
        AgentRuntime {
            protocol,
            config: RunConfig::default(),
        }
    }

    /// Replaces the run configuration.
    #[must_use]
    pub fn with_config(mut self, config: RunConfig) -> Self {
        self.config = config;
        self
    }

    /// The protocol being executed.
    pub fn protocol(&self) -> &Protocol {
        &self.protocol
    }

    /// Runs the protocol under the given scenario and initial state
    /// distribution with the standard recording set (counts, transitions,
    /// alive counts, messages).
    ///
    /// For opt-in recording or custom observers use
    /// [`Simulation`](super::Simulation).
    ///
    /// # Errors
    ///
    /// Returns configuration errors (mismatched initial distribution, invalid
    /// protocol) and propagates scenario errors.
    pub fn run(&self, scenario: &Scenario, initial: &InitialStates) -> Result<RunResult> {
        drive(self, scenario, initial, &mut default_observers())
    }

    /// Convenience wrapper: run and return only the final per-state counts.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    pub fn run_final_counts(
        &self,
        scenario: &Scenario,
        initial: &InitialStates,
    ) -> Result<Vec<f64>> {
        Ok(self
            .run(scenario, initial)?
            .final_counts()
            .expect("run records the initial configuration")
            .to_vec())
    }

    fn events<'s>(&self, state: &'s AgentState) -> PeriodEvents<'s> {
        PeriodEvents {
            period: state.period,
            counts: state.members.counts(),
            transitions: &state.transitions,
            messages: state.messages,
            alive: state.group.alive_count() as u64,
            membership: Some(MembershipView {
                members: &state.members,
                group: &state.group,
            }),
        }
    }

    /// Executes one action for process `p` (currently in `state`). Returns
    /// `true` if the process itself transitioned.
    #[allow(clippy::too_many_arguments)]
    fn execute_action(
        &self,
        p: usize,
        state: usize,
        action: &Action,
        members: &mut Membership,
        group: &Group,
        loss: &LossConfig,
        rng: &mut Rng,
        transitions: &mut [u64],
    ) -> Result<bool> {
        let n = group.size();
        let num_states = self.protocol.num_states();
        match action {
            Action::Flip { prob, to } => {
                if rng.chance(*prob) {
                    transition(p, state, to.index(), members, transitions, num_states);
                    return Ok(true);
                }
            }
            Action::Sample { required, prob, to } => {
                let mut all_match = true;
                for req in required {
                    let target = rng.index(n);
                    let ok = group.is_alive(ProcessId(target))?
                        && loss.contact_succeeds(rng, 1)
                        && members.state_of(target) == req.index();
                    if !ok {
                        all_match = false;
                        // Keep sampling the remaining targets so the message
                        // count (already added) stays faithful, but the
                        // outcome is decided.
                    }
                }
                if all_match && rng.chance(*prob) {
                    transition(p, state, to.index(), members, transitions, num_states);
                    return Ok(true);
                }
            }
            Action::SampleAny {
                target_state,
                samples,
                prob,
                to,
            } => {
                let mut found = false;
                for _ in 0..*samples {
                    let target = rng.index(n);
                    if group.is_alive(ProcessId(target))?
                        && loss.contact_succeeds(rng, 1)
                        && members.state_of(target) == target_state.index()
                    {
                        found = true;
                    }
                }
                if found && rng.chance(*prob) {
                    transition(p, state, to.index(), members, transitions, num_states);
                    return Ok(true);
                }
            }
            Action::PushSample {
                target_state,
                samples,
                prob,
                to,
            } => {
                for _ in 0..*samples {
                    let target = rng.index(n);
                    if target != p
                        && group.is_alive(ProcessId(target))?
                        && loss.contact_succeeds(rng, 1)
                        && members.state_of(target) == target_state.index()
                        && rng.chance(*prob)
                    {
                        transition(
                            target,
                            target_state.index(),
                            to.index(),
                            members,
                            transitions,
                            num_states,
                        );
                    }
                }
            }
            Action::Tokenize {
                required,
                prob,
                token_state,
                to,
            } => {
                let mut all_match = true;
                for req in required {
                    let target = rng.index(n);
                    let ok = group.is_alive(ProcessId(target))?
                        && loss.contact_succeeds(rng, 1)
                        && members.state_of(target) == req.index();
                    if !ok {
                        all_match = false;
                    }
                }
                if all_match && rng.chance(*prob) {
                    // Forward the token to an alive process currently in
                    // `token_state`; if none can be found the token is dropped
                    // (Section 6's "if no processes are in state x").
                    if let Some(consumer) =
                        members.random_alive_in_state(token_state.index(), group, rng)
                    {
                        if loss.contact_succeeds(rng, 1) {
                            transition(
                                consumer,
                                token_state.index(),
                                to.index(),
                                members,
                                transitions,
                                num_states,
                            );
                        }
                    }
                }
            }
        }
        Ok(false)
    }
}

/// Applies the transition `p: from -> to` and counts it in the dense buffer.
fn transition(
    p: usize,
    from: usize,
    to: usize,
    members: &mut Membership,
    transitions: &mut [u64],
    num_states: usize,
) {
    if from == to {
        return;
    }
    members.force_state(p, to);
    transitions[from * num_states + to] += 1;
}

impl Runtime for AgentRuntime {
    type State = AgentState;

    fn build(protocol: Protocol, config: &RunConfig) -> Self {
        AgentRuntime::new(protocol).with_config(config.clone())
    }

    fn protocol(&self) -> &Protocol {
        &self.protocol
    }

    fn init(&self, scenario: &Scenario, initial: &InitialStates) -> Result<AgentState> {
        self.protocol.validate()?;
        let n = scenario.group_size();
        let num_states = self.protocol.num_states();
        let counts_spec = initial.resolve(num_states, n as u64)?;

        let mut rng = scenario.build_rng();
        let group = scenario.build_group();

        // Assign initial states: counts_spec[i] processes in state i, shuffled
        // so state assignment is independent of process id.
        let mut assignment: Vec<usize> = Vec::with_capacity(n);
        for (state, count) in counts_spec.iter().enumerate() {
            assignment.extend(std::iter::repeat(state).take(*count as usize));
        }
        rng.shuffle(&mut assignment);

        Ok(AgentState {
            scenario: scenario.clone(),
            rng,
            group,
            members: Membership::new(num_states, &assignment),
            period: 0,
            transitions_dense: vec![0; num_states * num_states],
            transitions: Vec::new(),
            messages: 0,
        })
    }

    fn step<'s>(&self, state: &'s mut AgentState) -> Result<PeriodEvents<'s>> {
        let period = state.period;
        let n = state.scenario.group_size();
        let loss = *state.scenario.loss();
        state.transitions_dense.fill(0);
        state.transitions.clear();
        state.messages = 0;

        // 1. Environment events.
        let (_down, up) =
            state
                .scenario
                .apply_period_events(period, &mut state.group, &mut state.rng)?;
        if let Some(rejoin) = self.config.rejoin_state {
            for id in up {
                state.members.force_state(id.index(), rejoin.index());
            }
        }

        // 2. Protocol actions.
        for p in 0..n {
            if !state.group.is_alive(ProcessId(p))? {
                continue;
            }
            let process_state = state.members.state_of(p);
            // Copy the action list length to avoid borrowing issues; the
            // protocol is immutable during the run.
            let num_actions = self.protocol.actions(StateId::new(process_state)).len();
            for action_idx in 0..num_actions {
                // Re-read the current state: a previous action may have moved
                // us (moves_self actions break out, but push/token transitions
                // performed by *other* processes only happen outside this
                // inner loop, so `process_state` is still valid).
                let action = &self.protocol.actions(StateId::new(process_state))[action_idx];
                state.messages += u64::from(action.messages_per_period());
                let moved = self.execute_action(
                    p,
                    process_state,
                    action,
                    &mut state.members,
                    &state.group,
                    &loss,
                    &mut state.rng,
                    &mut state.transitions_dense,
                )?;
                if moved {
                    break;
                }
            }
        }

        // 3. Render the dense transition counts sparsely for observers.
        super::render_sparse_transitions(
            &state.transitions_dense,
            self.protocol.num_states(),
            &mut state.transitions,
        );

        state.period = period + 1;
        Ok(self.events(state))
    }

    fn snapshot<'s>(&self, state: &'s AgentState) -> PeriodEvents<'s> {
        self.events(state)
    }
}

/// Read access to the per-process membership at a period boundary, handed to
/// observers through [`PeriodEvents::membership`].
#[derive(Debug, Clone, Copy)]
pub struct MembershipView<'a> {
    members: &'a Membership,
    group: &'a Group,
}

impl MembershipView<'_> {
    /// Ids of the alive processes currently in `state`.
    pub fn alive_members_of(&self, state: StateId) -> Vec<ProcessId> {
        self.members
            .members_of(state.index())
            .iter()
            .map(|&p| ProcessId(p as usize))
            .filter(|id| self.group.is_alive(*id).unwrap_or(false))
            .collect()
    }

    /// Per-state counts restricted to alive processes.
    pub fn alive_counts(&self) -> Vec<u64> {
        self.members.counts_alive(self.group)
    }

    /// The state of one process.
    pub fn state_of(&self, id: ProcessId) -> StateId {
        StateId::new(self.members.state_of(id.index()))
    }
}

/// Per-process state bookkeeping with O(1) transitions and per-state member
/// lists (needed for token consumers and member tracking).
#[derive(Debug, Clone)]
struct Membership {
    state: Vec<u32>,
    position: Vec<u32>,
    members: Vec<Vec<u32>>,
    counts: Vec<u64>,
}

impl Membership {
    fn new(num_states: usize, assignment: &[usize]) -> Self {
        let mut members: Vec<Vec<u32>> = vec![Vec::new(); num_states];
        let mut state = Vec::with_capacity(assignment.len());
        let mut position = Vec::with_capacity(assignment.len());
        for (p, &s) in assignment.iter().enumerate() {
            state.push(s as u32);
            position.push(members[s].len() as u32);
            members[s].push(p as u32);
        }
        let counts = members.iter().map(|m| m.len() as u64).collect();
        Membership {
            state,
            position,
            members,
            counts,
        }
    }

    fn state_of(&self, p: usize) -> usize {
        self.state[p] as usize
    }

    fn counts(&self) -> &[u64] {
        &self.counts
    }

    fn counts_alive(&self, group: &Group) -> Vec<u64> {
        let mut counts = vec![0u64; self.members.len()];
        for (p, &s) in self.state.iter().enumerate() {
            if group.is_alive(ProcessId(p)).unwrap_or(false) {
                counts[s as usize] += 1;
            }
        }
        counts
    }

    fn members_of(&self, state: usize) -> &[u32] {
        &self.members[state]
    }

    fn force_state(&mut self, p: usize, to: usize) {
        let from = self.state[p] as usize;
        if from == to {
            return;
        }
        // Remove from the old member list via swap_remove, fixing the swapped
        // element's position.
        let pos = self.position[p] as usize;
        let list = &mut self.members[from];
        let last = *list.last().expect("member list cannot be empty");
        list.swap_remove(pos);
        if (last as usize) != p {
            self.position[last as usize] = pos as u32;
        }
        self.counts[from] -= 1;
        // Insert into the new list.
        self.position[p] = self.members[to].len() as u32;
        self.members[to].push(p as u32);
        self.counts[to] += 1;
        self.state[p] = to as u32;
    }

    /// Picks a uniformly random *alive* member of `state`, or `None` if the
    /// state is empty or only contains crashed processes (checked by a bounded
    /// number of retries followed by a linear scan).
    fn random_alive_in_state(&self, state: usize, group: &Group, rng: &mut Rng) -> Option<usize> {
        let list = &self.members[state];
        if list.is_empty() {
            return None;
        }
        for _ in 0..16 {
            let candidate = list[rng.index(list.len())] as usize;
            if group.is_alive(ProcessId(candidate)).unwrap_or(false) {
                return Some(candidate);
            }
        }
        list.iter()
            .map(|&p| p as usize)
            .find(|&p| group.is_alive(ProcessId(p)).unwrap_or(false))
    }
}

#[cfg(test)]
mod tests {
    use super::super::{CountsRecorder, MembershipTracker, Simulation};
    use super::*;
    use crate::error::CoreError;
    use crate::mapping::ProtocolCompiler;
    use odekit::system::EquationSystemBuilder;

    fn epidemic_protocol() -> Protocol {
        let sys = EquationSystemBuilder::new()
            .vars(["x", "y"])
            .term("x", -1.0, &[("x", 1), ("y", 1)])
            .term("y", 1.0, &[("x", 1), ("y", 1)])
            .build()
            .unwrap();
        ProtocolCompiler::new("epidemic").compile(&sys).unwrap()
    }

    #[test]
    fn epidemic_saturates_in_logarithmic_time() {
        let protocol = epidemic_protocol();
        let scenario = Scenario::new(4096, 40).unwrap().with_seed(11);
        let result = AgentRuntime::new(protocol)
            .run(&scenario, &InitialStates::counts(&[4095, 1]))
            .unwrap();
        // Conservation every period.
        for (_, s) in result.counts.iter() {
            assert_eq!(s[0] + s[1], 4096.0);
        }
        // Saturation.
        let final_counts = result.final_counts().unwrap();
        assert!(final_counts[1] > 4000.0);
        // O(log N) spread: find the first period with > half infected; for
        // N = 4096 the pull epidemic needs roughly log2(N) ≈ 12 periods to
        // take off, comfortably under 30.
        let y = result.state_series("y").unwrap();
        let first_half = y.iter().position(|&v| v > 2048.0).unwrap();
        assert!(first_half < 30, "took {first_half} periods to infect half");
        // Transition counter adds up to the total number of infections.
        assert_eq!(result.total_transitions("x", "y"), final_counts[1] - 1.0);
        // Messages were counted.
        assert!(result
            .metrics
            .series("messages")
            .unwrap()
            .iter()
            .any(|(_, v)| *v > 0.0));
    }

    #[test]
    fn incremental_stepping_matches_the_one_shot_run() {
        let protocol = epidemic_protocol();
        let scenario = Scenario::new(512, 12).unwrap().with_seed(4);
        let initial = InitialStates::counts(&[511, 1]);
        let runtime = AgentRuntime::new(protocol);
        let batch = runtime.run(&scenario, &initial).unwrap();

        let mut state = runtime.init(&scenario, &initial).unwrap();
        assert_eq!(runtime.snapshot(&state).period, 0);
        let mut counts_by_period = vec![runtime.snapshot(&state).counts.to_vec()];
        for _ in 0..scenario.periods() {
            let ev = runtime.step(&mut state).unwrap();
            counts_by_period.push(ev.counts.to_vec());
        }
        assert_eq!(state.period(), scenario.periods());
        for (recorded, stepped) in batch.counts.states().iter().zip(&counts_by_period) {
            let stepped: Vec<f64> = stepped.iter().map(|&c| c as f64).collect();
            assert_eq!(recorded, &stepped);
        }
    }

    #[test]
    fn initial_distribution_must_match_group() {
        let protocol = epidemic_protocol();
        let scenario = Scenario::new(100, 5).unwrap();
        let err = AgentRuntime::new(protocol)
            .run(&scenario, &InitialStates::counts(&[50, 49]))
            .unwrap_err();
        assert!(matches!(err, CoreError::InvalidConfig { .. }));
    }

    #[test]
    fn crashed_processes_do_not_participate() {
        // With every process crashed at period 0, nothing ever transitions.
        let protocol = epidemic_protocol();
        let scenario = Scenario::new(50, 10)
            .unwrap()
            .with_massive_failure(0, 1.0)
            .unwrap()
            .with_seed(3);
        let result = AgentRuntime::new(protocol)
            .run(&scenario, &InitialStates::counts(&[49, 1]))
            .unwrap();
        assert_eq!(result.final_counts(), Some(&[49.0, 1.0][..]));
        assert_eq!(result.total_transitions("x", "y"), 0.0);
    }

    #[test]
    fn alive_only_counts_exclude_crashed_processes() {
        let protocol = epidemic_protocol();
        let scenario = Scenario::new(100, 3)
            .unwrap()
            .with_massive_failure(1, 0.5)
            .unwrap()
            .with_seed(5);
        let result = Simulation::of(protocol)
            .scenario(scenario)
            .initial(InitialStates::counts(&[100, 0]))
            .observe(CountsRecorder::alive_only())
            .run::<AgentRuntime>()
            .unwrap();
        // After the massive failure the alive-only counts sum to 50.
        let last = result.final_counts().unwrap();
        assert_eq!(last.iter().sum::<f64>(), 50.0);
    }

    #[test]
    fn rejoin_state_is_applied_on_recovery() {
        // Crash a specific process and recover it later; with rejoin_state =
        // y it must come back in state y even though it started in x. An
        // action-free protocol isolates the rejoin mechanism.
        let protocol = Protocol::new("inert", vec!["x".into(), "y".into()]).unwrap();
        let y = protocol.require_state("y").unwrap();
        let mut schedule = netsim::FailureSchedule::new();
        schedule.add(0, netsim::FailureEvent::Crash(ProcessId(0)));
        schedule.add(2, netsim::FailureEvent::Recover(ProcessId(0)));
        let scenario = Scenario::new(10, 5)
            .unwrap()
            .with_failure_schedule(schedule)
            .with_seed(1);
        let runtime = AgentRuntime::new(protocol).with_config(RunConfig::rejoining_to(y));
        // The only way a y can appear is via the rejoin rule.
        let result = runtime
            .run(&scenario, &InitialStates::counts(&[10, 0]))
            .unwrap();
        assert_eq!(result.final_counts().unwrap()[1], 1.0);
    }

    #[test]
    fn member_tracking_records_state_membership() {
        let protocol = epidemic_protocol();
        let y = protocol.require_state("y").unwrap();
        let scenario = Scenario::new(64, 15).unwrap().with_seed(2);
        let result = Simulation::of(protocol)
            .scenario(scenario)
            .initial(InitialStates::counts(&[63, 1]))
            .observe(CountsRecorder::new())
            .observe(MembershipTracker::of(y))
            .run::<AgentRuntime>()
            .unwrap();
        // One snapshot per recorded period (periods + 1 including period 0).
        assert_eq!(result.tracked_members.len(), 16);
        // Snapshot sizes match the recorded y counts.
        let y_series = result.state_series("y").unwrap();
        for ((_, ids), count) in result.tracked_members.iter().zip(&y_series) {
            assert_eq!(ids.len() as f64, *count);
        }
    }

    #[test]
    fn membership_bookkeeping_is_consistent() {
        let mut m = Membership::new(3, &[0, 0, 1, 2, 1]);
        assert_eq!(m.counts(), &[2, 2, 1]);
        assert_eq!(m.state_of(3), 2);
        m.force_state(0, 2);
        m.force_state(0, 2); // no-op
        assert_eq!(m.counts(), &[1, 2, 2]);
        assert_eq!(m.state_of(0), 2);
        assert!(m.members_of(2).contains(&0));
        m.force_state(4, 0);
        assert_eq!(m.counts(), &[2, 1, 2]);
        // Every process appears exactly once across all member lists.
        let mut all: Vec<u32> = m.members.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn message_losses_slow_the_epidemic_down() {
        let protocol = epidemic_protocol();
        let reliable = Scenario::new(2000, 15).unwrap().with_seed(9);
        let lossy = Scenario::new(2000, 15)
            .unwrap()
            .with_seed(9)
            .with_loss(netsim::LossConfig::new(0.8, 0.0).unwrap());
        let runtime = AgentRuntime::new(protocol);
        let a = runtime
            .run(&reliable, &InitialStates::counts(&[1999, 1]))
            .unwrap();
        let b = runtime
            .run(&lossy, &InitialStates::counts(&[1999, 1]))
            .unwrap();
        let a_final = a.final_counts().unwrap()[1];
        let b_final = b.final_counts().unwrap()[1];
        assert!(
            a_final > b_final,
            "losses should slow dissemination: {a_final} vs {b_final}"
        );
    }
}
