//! Composable run observers: opt-in recording of simulation output.
//!
//! A [`Runtime`](super::Runtime) produces a stream of [`PeriodEvents`]; an
//! [`Observer`] consumes that stream and folds whatever it recorded into the
//! final [`RunResult`]. Recording is therefore pay-for-what-you-use: a run
//! with no [`MembershipTracker`] never materializes membership snapshots, and
//! a run with no [`CountsRecorder`] never allocates a trajectory.
//!
//! The built-in observers reproduce everything the runtimes used to record
//! unconditionally:
//!
//! | Observer | Fills | Replaces |
//! |---|---|---|
//! | [`CountsRecorder`] | `RunResult::counts` | always-on counts (`count_alive_only` knob) |
//! | [`TransitionRecorder`] | `RunResult::transitions` | always-on transition series |
//! | [`MembershipTracker`] | `RunResult::tracked_members` | `RunConfig::track_members_of` |
//! | [`AliveTracker`] | `metrics["alive"]` | always-on alive series |
//! | [`MessageCounter`] | `metrics["messages"]` | always-on message counting |

use super::{edge_name, MembershipView, RunResult};
use crate::state_machine::{Protocol, StateId};
use netsim::MetricsRecorder;
use odekit::integrate::Trajectory;

/// Everything that happened in (or up to) one protocol period, borrowed from
/// the runtime's execution state.
///
/// `period` is the *snapshot index*: `0` is the initial configuration, and
/// the events returned by the `p`-th `step` carry `period == p + 1` — the
/// `counts` are the end-of-period populations, while `transitions` and
/// `messages` describe what happened *during* the period that just executed
/// (i.e. between snapshots `period - 1` and `period`).
#[derive(Debug, Clone, Copy)]
pub struct PeriodEvents<'a> {
    /// Snapshot index (0 = initial configuration, before any period ran).
    pub period: u64,
    /// Per-state process counts at this snapshot (every process, regardless
    /// of liveness; use [`membership`](Self::membership) for alive-only
    /// counts where host identity exists).
    pub counts: &'a [u64],
    /// `(from, to, count)` for every transition edge that fired during the
    /// period leading up to this snapshot (empty at period 0).
    pub transitions: &'a [(StateId, StateId, u64)],
    /// Sampling messages sent during the period leading up to this snapshot.
    pub messages: u64,
    /// Number of alive processes at this snapshot.
    pub alive: u64,
    /// Per-state counts restricted to alive processes, for runtimes that
    /// track them incrementally (the batched runtime; the agent runtime
    /// computes them through [`membership`](Self::membership) instead, and
    /// the aggregate runtime's [`counts`](Self::counts) are alive-only
    /// already).
    pub counts_alive: Option<&'a [u64]>,
    /// Per-process membership access (agent runtime only; `None` for
    /// count-level runtimes, whose `counts` contain alive processes only).
    pub membership: Option<MembershipView<'a>>,
    /// Per-shard alive counts (`shard_counts_alive[shard][state]`), filled
    /// only by the sharded runtime; every other runtime reports `None` (one
    /// well-mixed group). The aggregated views ([`counts`](Self::counts),
    /// [`counts_alive`](Self::counts_alive), [`alive`](Self::alive)) always
    /// sum over shards, so shard-agnostic observers work unchanged.
    pub shard_counts_alive: Option<&'a [Vec<u64>]>,
}

impl PeriodEvents<'_> {
    /// Per-state counts restricted to alive processes: uses the runtime's
    /// incremental alive counts when present, falls back to the membership
    /// view when host identity exists, and otherwise returns
    /// [`counts`](Self::counts) unchanged (count-level runtimes without
    /// failure modelling only track alive processes).
    pub fn alive_counts(&self) -> Vec<u64> {
        if let Some(alive) = self.counts_alive {
            return alive.to_vec();
        }
        match &self.membership {
            Some(view) => view.alive_counts(),
            None => self.counts.to_vec(),
        }
    }
}

/// An on-period callback attached to a [`Simulation`](super::Simulation).
///
/// Observers receive every [`PeriodEvents`] of a run (including the period-0
/// snapshot) and are asked to fold their recordings into the [`RunResult`]
/// once the run completes. Custom observers can stash arbitrary series in
/// [`RunResult::metrics`].
pub trait Observer: Send {
    /// Called after every period (and once for the initial configuration).
    fn on_period(&mut self, protocol: &Protocol, events: &PeriodEvents<'_>);

    /// Folds the recorded data into the run's result. Called exactly once,
    /// after the last period.
    fn finish(&mut self, result: &mut RunResult);

    /// `true` if this observer needs per-process identity
    /// ([`PeriodEvents::membership`]) to record anything — used by the
    /// automatic fidelity selection to decide whether a count-level runtime
    /// can serve the run. Defaults to `false`.
    fn needs_membership(&self) -> bool {
        false
    }
}

/// Records the per-period state counts into [`RunResult::counts`].
#[derive(Debug, Default)]
pub struct CountsRecorder {
    alive_only: bool,
    trajectory: Trajectory,
}

impl CountsRecorder {
    /// Records every process regardless of liveness.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records only alive processes (the paper's churn and massive-failure
    /// figures plot alive populations).
    pub fn alive_only() -> Self {
        CountsRecorder {
            alive_only: true,
            trajectory: Trajectory::new(),
        }
    }
}

impl Observer for CountsRecorder {
    fn on_period(&mut self, _protocol: &Protocol, events: &PeriodEvents<'_>) {
        let counts = if self.alive_only {
            events.alive_counts()
        } else {
            events.counts.to_vec()
        };
        self.trajectory.push(
            events.period as f64,
            counts.iter().map(|&c| c as f64).collect(),
        );
    }

    fn finish(&mut self, result: &mut RunResult) {
        result.counts = std::mem::take(&mut self.trajectory);
    }
}

/// Records one `from->to` series per transition edge into
/// [`RunResult::transitions`].
#[derive(Debug, Default)]
pub struct TransitionRecorder {
    recorder: MetricsRecorder,
}

impl TransitionRecorder {
    /// Creates the recorder.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Observer for TransitionRecorder {
    fn on_period(&mut self, protocol: &Protocol, events: &PeriodEvents<'_>) {
        // Transitions in the events of snapshot `p` fired during period
        // `p - 1` (the period that produced the snapshot).
        for &(from, to, count) in events.transitions {
            self.recorder.add(
                &edge_name(protocol, from, to),
                events.period.saturating_sub(1),
                count as f64,
            );
        }
    }

    fn finish(&mut self, result: &mut RunResult) {
        result.transitions.merge(&self.recorder);
    }
}

/// Records `(period, alive members of a state)` snapshots into
/// [`RunResult::tracked_members`] — the paper's untraceability /
/// load-balancing data (Figure 8). Requires a runtime with host identity
/// (silently records nothing under the aggregate runtime).
#[derive(Debug)]
pub struct MembershipTracker {
    state: StateId,
    snapshots: Vec<(u64, Vec<netsim::ProcessId>)>,
}

impl MembershipTracker {
    /// Tracks the members of `state`.
    pub fn of(state: StateId) -> Self {
        MembershipTracker {
            state,
            snapshots: Vec::new(),
        }
    }
}

impl Observer for MembershipTracker {
    fn on_period(&mut self, _protocol: &Protocol, events: &PeriodEvents<'_>) {
        if let Some(view) = &events.membership {
            self.snapshots
                .push((events.period, view.alive_members_of(self.state)));
        }
    }

    fn finish(&mut self, result: &mut RunResult) {
        result.tracked_members = std::mem::take(&mut self.snapshots);
    }

    fn needs_membership(&self) -> bool {
        true
    }
}

/// Records the alive process count per period into `metrics["alive"]`.
#[derive(Debug, Default)]
pub struct AliveTracker {
    recorder: MetricsRecorder,
}

impl AliveTracker {
    /// Creates the tracker.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Observer for AliveTracker {
    fn on_period(&mut self, _protocol: &Protocol, events: &PeriodEvents<'_>) {
        self.recorder
            .record("alive", events.period, events.alive as f64);
    }

    fn finish(&mut self, result: &mut RunResult) {
        result.metrics.merge(&self.recorder);
    }
}

/// Records the number of sampling messages sent per period into
/// `metrics["messages"]`.
#[derive(Debug, Default)]
pub struct MessageCounter {
    recorder: MetricsRecorder,
}

impl MessageCounter {
    /// Creates the counter.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Observer for MessageCounter {
    fn on_period(&mut self, _protocol: &Protocol, events: &PeriodEvents<'_>) {
        if events.period > 0 {
            self.recorder
                .record("messages", events.period - 1, events.messages as f64);
        }
    }

    fn finish(&mut self, result: &mut RunResult) {
        result.metrics.merge(&self.recorder);
    }
}

/// Records per-shard alive counts into `metrics["shard{j}:{state}"]` — one
/// series per (shard, state) pair, so experiments can plot an epidemic
/// front crossing shard boundaries.
///
/// Only the sharded runtime fills [`PeriodEvents::shard_counts_alive`];
/// under every other runtime this observer records nothing (one well-mixed
/// group has no per-shard decomposition worth duplicating).
#[derive(Debug, Default)]
pub struct ShardCountsRecorder {
    recorder: MetricsRecorder,
}

impl ShardCountsRecorder {
    /// Creates the recorder.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Observer for ShardCountsRecorder {
    fn on_period(&mut self, protocol: &Protocol, events: &PeriodEvents<'_>) {
        let Some(shards) = events.shard_counts_alive else {
            return;
        };
        for (j, shard) in shards.iter().enumerate() {
            for (s, &count) in shard.iter().enumerate() {
                self.recorder.record(
                    &format!("shard{j}:{}", protocol.state_name(StateId::new(s))),
                    events.period,
                    count as f64,
                );
            }
        }
    }

    fn finish(&mut self, result: &mut RunResult) {
        result.metrics.merge(&self.recorder);
    }
}

/// The observer set that reproduces the legacy always-on recording: counts
/// (all processes), transitions, alive counts and message counts.
pub(crate) fn default_observers() -> Vec<Box<dyn Observer>> {
    vec![
        Box::new(CountsRecorder::new()),
        Box::new(TransitionRecorder::new()),
        Box::new(AliveTracker::new()),
        Box::new(MessageCounter::new()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::ProtocolCompiler;
    use odekit::system::EquationSystemBuilder;

    fn protocol() -> Protocol {
        let sys = EquationSystemBuilder::new()
            .vars(["x", "y"])
            .term("x", -1.0, &[("x", 1), ("y", 1)])
            .term("y", 1.0, &[("x", 1), ("y", 1)])
            .build()
            .unwrap();
        ProtocolCompiler::new("epidemic").compile(&sys).unwrap()
    }

    fn events<'a>(
        period: u64,
        counts: &'a [u64],
        transitions: &'a [(StateId, StateId, u64)],
    ) -> PeriodEvents<'a> {
        PeriodEvents {
            period,
            counts,
            transitions,
            messages: 7,
            alive: counts.iter().sum(),
            counts_alive: None,
            membership: None,
            shard_counts_alive: None,
        }
    }

    #[test]
    fn counts_recorder_fills_trajectory() {
        let p = protocol();
        let mut obs = CountsRecorder::new();
        obs.on_period(&p, &events(0, &[90, 10], &[]));
        obs.on_period(&p, &events(1, &[50, 50], &[]));
        let mut result = RunResult::new(&p);
        obs.finish(&mut result);
        assert_eq!(result.counts.len(), 2);
        assert_eq!(result.final_counts(), Some(&[50.0, 50.0][..]));
        // Without a membership view, alive-only falls back to raw counts.
        let mut alive = CountsRecorder::alive_only();
        alive.on_period(&p, &events(0, &[90, 10], &[]));
        let mut result = RunResult::new(&p);
        alive.finish(&mut result);
        assert_eq!(result.final_counts(), Some(&[90.0, 10.0][..]));
    }

    #[test]
    fn transition_recorder_names_edges_and_shifts_periods() {
        let p = protocol();
        let x = p.require_state("x").unwrap();
        let y = p.require_state("y").unwrap();
        let mut obs = TransitionRecorder::new();
        obs.on_period(&p, &events(0, &[90, 10], &[]));
        obs.on_period(&p, &events(1, &[50, 50], &[(x, y, 40)]));
        let mut result = RunResult::new(&p);
        obs.finish(&mut result);
        // The transition fired during period 0 (between snapshots 0 and 1).
        assert_eq!(result.transitions.series("x->y").unwrap(), &[(0, 40.0)]);
        assert_eq!(result.total_transitions("x", "y"), 40.0);
    }

    #[test]
    fn alive_and_message_observers_record_series() {
        let p = protocol();
        let mut alive = AliveTracker::new();
        let mut msgs = MessageCounter::new();
        for period in 0..3 {
            let ev = events(period, &[90, 10], &[]);
            alive.on_period(&p, &ev);
            msgs.on_period(&p, &ev);
        }
        let mut result = RunResult::new(&p);
        alive.finish(&mut result);
        msgs.finish(&mut result);
        assert_eq!(result.metrics.series("alive").unwrap().len(), 3);
        // No messages at the period-0 snapshot.
        assert_eq!(
            result.metrics.series("messages").unwrap(),
            &[(0, 7.0), (1, 7.0)]
        );
    }

    #[test]
    fn incremental_alive_counts_take_precedence() {
        let p = protocol();
        let alive = [80u64, 5];
        let mut ev = events(0, &[90, 10], &[]);
        ev.counts_alive = Some(&alive);
        assert_eq!(ev.alive_counts(), vec![80, 5]);
        let mut obs = CountsRecorder::alive_only();
        obs.on_period(&p, &ev);
        let mut result = RunResult::new(&p);
        obs.finish(&mut result);
        assert_eq!(result.final_counts(), Some(&[80.0, 5.0][..]));
    }

    #[test]
    fn only_membership_trackers_need_membership() {
        let p = protocol();
        let y = p.require_state("y").unwrap();
        assert!(MembershipTracker::of(y).needs_membership());
        assert!(!CountsRecorder::new().needs_membership());
        assert!(!CountsRecorder::alive_only().needs_membership());
        assert!(!TransitionRecorder::new().needs_membership());
        assert!(!AliveTracker::new().needs_membership());
        assert!(!MessageCounter::new().needs_membership());
    }

    #[test]
    fn shard_counts_recorder_records_per_shard_series() {
        let p = protocol();
        let shards = vec![vec![90u64, 0], vec![0, 10]];
        let totals = [90u64, 10];
        let mut ev = events(0, &totals, &[]);
        ev.shard_counts_alive = Some(&shards);
        let mut obs = ShardCountsRecorder::new();
        obs.on_period(&p, &ev);
        let shards = vec![vec![80u64, 10], vec![3, 7]];
        let mut ev = events(1, &totals, &[]);
        ev.shard_counts_alive = Some(&shards);
        obs.on_period(&p, &ev);
        let mut result = RunResult::new(&p);
        obs.finish(&mut result);
        assert_eq!(
            result.metrics.series("shard0:x").unwrap(),
            &[(0, 90.0), (1, 80.0)]
        );
        assert_eq!(
            result.metrics.series("shard1:y").unwrap(),
            &[(0, 10.0), (1, 7.0)]
        );
        // Without shard data the recorder is inert.
        let mut inert = ShardCountsRecorder::new();
        inert.on_period(&p, &events(0, &totals, &[]));
        let mut result = RunResult::new(&p);
        inert.finish(&mut result);
        assert!(result.metrics.series("shard0:x").is_err());
        assert!(!ShardCountsRecorder::new().needs_membership());
    }

    #[test]
    fn membership_tracker_is_inert_without_host_identity() {
        let p = protocol();
        let y = p.require_state("y").unwrap();
        let mut obs = MembershipTracker::of(y);
        obs.on_period(&p, &events(0, &[90, 10], &[]));
        let mut result = RunResult::new(&p);
        obs.finish(&mut result);
        assert!(result.tracked_members.is_empty());
    }
}
