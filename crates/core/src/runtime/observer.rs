//! Composable run observers: opt-in recording of simulation output.
//!
//! A [`Runtime`](super::Runtime) produces a stream of [`PeriodEvents`]; an
//! [`Observer`] consumes that stream and folds whatever it recorded into the
//! final [`RunResult`]. Recording is therefore pay-for-what-you-use: a run
//! with no [`MembershipTracker`] never materializes membership snapshots, and
//! a run with no [`CountsRecorder`] never allocates a trajectory.
//!
//! The built-in observers reproduce everything the runtimes used to record
//! unconditionally:
//!
//! | Observer | Fills | Replaces |
//! |---|---|---|
//! | [`CountsRecorder`] | `RunResult::counts` | always-on counts (`count_alive_only` knob) |
//! | [`TransitionRecorder`] | `RunResult::transitions` | always-on transition series |
//! | [`MembershipTracker`] | `RunResult::tracked_members` | `RunConfig::track_members_of` |
//! | [`AliveTracker`] | `metrics["alive"]` | always-on alive series |
//! | [`MessageCounter`] | `metrics["messages"]` | always-on message counting |

use super::{edge_name, MembershipView, RunResult};
use crate::state_machine::{Protocol, StateId};
use netsim::adversary::{Injection, InjectionRecord};
use netsim::MetricsRecorder;
use odekit::integrate::Trajectory;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Everything that happened in (or up to) one protocol period, borrowed from
/// the runtime's execution state.
///
/// `period` is the *snapshot index*: `0` is the initial configuration, and
/// the events returned by the `p`-th `step` carry `period == p + 1` — the
/// `counts` are the end-of-period populations, while `transitions` and
/// `messages` describe what happened *during* the period that just executed
/// (i.e. between snapshots `period - 1` and `period`).
#[derive(Debug, Clone, Copy)]
pub struct PeriodEvents<'a> {
    /// Snapshot index (0 = initial configuration, before any period ran).
    pub period: u64,
    /// Per-state process counts at this snapshot (every process, regardless
    /// of liveness; use [`membership`](Self::membership) for alive-only
    /// counts where host identity exists).
    pub counts: &'a [u64],
    /// `(from, to, count)` for every transition edge that fired during the
    /// period leading up to this snapshot (empty at period 0).
    pub transitions: &'a [(StateId, StateId, u64)],
    /// Sampling messages sent during the period leading up to this snapshot.
    pub messages: u64,
    /// Number of alive processes at this snapshot.
    pub alive: u64,
    /// Per-state counts restricted to alive processes, for runtimes that
    /// track them incrementally (the batched runtime; the agent runtime
    /// computes them through [`membership`](Self::membership) instead, and
    /// the aggregate runtime's [`counts`](Self::counts) are alive-only
    /// already).
    pub counts_alive: Option<&'a [u64]>,
    /// Per-process membership access (agent runtime only; `None` for
    /// count-level runtimes, whose `counts` contain alive processes only).
    pub membership: Option<MembershipView<'a>>,
    /// Per-shard alive counts (`shard_counts_alive[shard][state]`), filled
    /// only by the sharded runtime; every other runtime reports `None` (one
    /// well-mixed group). The aggregated views ([`counts`](Self::counts),
    /// [`counts_alive`](Self::counts_alive), [`alive`](Self::alive)) always
    /// sum over shards, so shard-agnostic observers work unchanged.
    pub shard_counts_alive: Option<&'a [Vec<u64>]>,
    /// Transport-layer snapshot (queue depth, cumulative message fates,
    /// recent delivery latency), filled only by the asynchronous runtime;
    /// the period-synchronized runtimes report `None` (their messages are
    /// accounting fictions, not queued deliveries).
    pub transport: Option<TransportProbe>,
    /// Adversary injections applied during the period leading up to this
    /// snapshot (empty when no adversary is attached, at period 0, and in
    /// quiet periods). The `counts` above already reflect them.
    pub injections: &'a [InjectionRecord],
    /// Virtual time of this snapshot in seconds on the scenario's
    /// [`PeriodClock`](netsim::PeriodClock), filled only by the
    /// continuous-time runtimes (SSA and tau-leap), whose event clocks run
    /// between period boundaries. `None` for the period-synchronized tiers,
    /// where `period` alone is the time axis. The continuous-time runtimes
    /// report counts at period boundaries, so for them `virtual_time` is
    /// always `period * period_secs` — recorders binning by `period` see
    /// identical figure bins across all tiers.
    pub virtual_time: Option<f64>,
}

/// One snapshot of the asynchronous transport layer, taken at a period
/// boundary: how many messages are in flight right now, the cumulative
/// sent/delivered/dropped totals, and the mean delivery latency over the
/// recent streaming window (seconds of virtual time).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TransportProbe {
    /// Messages queued but not yet resolved at this snapshot.
    pub queue_depth: u64,
    /// Cumulative messages sent since the start of the run.
    pub sent: u64,
    /// Cumulative messages delivered.
    pub delivered: u64,
    /// Cumulative messages dropped (loss or partition).
    pub dropped: u64,
    /// Mean delivery latency over the recent window (seconds; 0 before the
    /// first delivery).
    pub recent_latency_mean: f64,
}

impl PeriodEvents<'_> {
    /// Per-state counts restricted to alive processes: uses the runtime's
    /// incremental alive counts when present, falls back to the membership
    /// view when host identity exists, and otherwise returns
    /// [`counts`](Self::counts) unchanged (count-level runtimes without
    /// failure modelling only track alive processes).
    pub fn alive_counts(&self) -> Vec<u64> {
        if let Some(alive) = self.counts_alive {
            return alive.to_vec();
        }
        match &self.membership {
            Some(view) => view.alive_counts(),
            None => self.counts.to_vec(),
        }
    }
}

/// An on-period callback attached to a [`Simulation`](super::Simulation).
///
/// Observers receive every [`PeriodEvents`] of a run (including the period-0
/// snapshot) and are asked to fold their recordings into the [`RunResult`]
/// once the run completes. Custom observers can stash arbitrary series in
/// [`RunResult::metrics`].
pub trait Observer: Send {
    /// Called after every period (and once for the initial configuration).
    fn on_period(&mut self, protocol: &Protocol, events: &PeriodEvents<'_>);

    /// Folds the recorded data into the run's result. Called exactly once,
    /// after the last period.
    fn finish(&mut self, result: &mut RunResult);

    /// `true` if this observer needs per-process identity
    /// ([`PeriodEvents::membership`]) to record anything — used by the
    /// automatic fidelity selection to decide whether a count-level runtime
    /// can serve the run. Defaults to `false`.
    fn needs_membership(&self) -> bool {
        false
    }
}

/// Records the per-period state counts into [`RunResult::counts`].
#[derive(Debug, Default)]
pub struct CountsRecorder {
    alive_only: bool,
    trajectory: Trajectory,
}

impl CountsRecorder {
    /// Records every process regardless of liveness.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records only alive processes (the paper's churn and massive-failure
    /// figures plot alive populations).
    pub fn alive_only() -> Self {
        CountsRecorder {
            alive_only: true,
            trajectory: Trajectory::new(),
        }
    }
}

impl Observer for CountsRecorder {
    fn on_period(&mut self, _protocol: &Protocol, events: &PeriodEvents<'_>) {
        let counts = if self.alive_only {
            events.alive_counts()
        } else {
            events.counts.to_vec()
        };
        self.trajectory.push(
            events.period as f64,
            counts.iter().map(|&c| c as f64).collect(),
        );
    }

    fn finish(&mut self, result: &mut RunResult) {
        result.counts = std::mem::take(&mut self.trajectory);
    }
}

/// Records one `from->to` series per transition edge into
/// [`RunResult::transitions`].
#[derive(Debug, Default)]
pub struct TransitionRecorder {
    recorder: MetricsRecorder,
}

impl TransitionRecorder {
    /// Creates the recorder.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Observer for TransitionRecorder {
    fn on_period(&mut self, protocol: &Protocol, events: &PeriodEvents<'_>) {
        // Transitions in the events of snapshot `p` fired during period
        // `p - 1` (the period that produced the snapshot).
        for &(from, to, count) in events.transitions {
            self.recorder.add(
                &edge_name(protocol, from, to),
                events.period.saturating_sub(1),
                count as f64,
            );
        }
    }

    fn finish(&mut self, result: &mut RunResult) {
        result.transitions.merge(&self.recorder);
    }
}

/// Records `(period, alive members of a state)` snapshots into
/// [`RunResult::tracked_members`] — the paper's untraceability /
/// load-balancing data (Figure 8). Requires a runtime with host identity
/// (silently records nothing under the aggregate runtime).
#[derive(Debug)]
pub struct MembershipTracker {
    state: StateId,
    snapshots: Vec<(u64, Vec<netsim::ProcessId>)>,
}

impl MembershipTracker {
    /// Tracks the members of `state`.
    pub fn of(state: StateId) -> Self {
        MembershipTracker {
            state,
            snapshots: Vec::new(),
        }
    }
}

impl Observer for MembershipTracker {
    fn on_period(&mut self, _protocol: &Protocol, events: &PeriodEvents<'_>) {
        if let Some(view) = &events.membership {
            self.snapshots
                .push((events.period, view.alive_members_of(self.state)));
        }
    }

    fn finish(&mut self, result: &mut RunResult) {
        result.tracked_members = std::mem::take(&mut self.snapshots);
    }

    fn needs_membership(&self) -> bool {
        true
    }
}

/// Records the alive process count per period into `metrics["alive"]`.
#[derive(Debug, Default)]
pub struct AliveTracker {
    recorder: MetricsRecorder,
}

impl AliveTracker {
    /// Creates the tracker.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Observer for AliveTracker {
    fn on_period(&mut self, _protocol: &Protocol, events: &PeriodEvents<'_>) {
        self.recorder
            .record("alive", events.period, events.alive as f64);
    }

    fn finish(&mut self, result: &mut RunResult) {
        result.metrics.merge(&self.recorder);
    }
}

/// Records the number of sampling messages sent per period into
/// `metrics["messages"]`.
#[derive(Debug, Default)]
pub struct MessageCounter {
    recorder: MetricsRecorder,
}

impl MessageCounter {
    /// Creates the counter.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Observer for MessageCounter {
    fn on_period(&mut self, _protocol: &Protocol, events: &PeriodEvents<'_>) {
        if events.period > 0 {
            self.recorder
                .record("messages", events.period - 1, events.messages as f64);
        }
    }

    fn finish(&mut self, result: &mut RunResult) {
        result.metrics.merge(&self.recorder);
    }
}

/// Records per-shard alive counts into `metrics["shard{j}:{state}"]` — one
/// series per (shard, state) pair, so experiments can plot an epidemic
/// front crossing shard boundaries.
///
/// Only the sharded runtime fills [`PeriodEvents::shard_counts_alive`];
/// under every other runtime this observer records nothing (one well-mixed
/// group has no per-shard decomposition worth duplicating).
#[derive(Debug, Default)]
pub struct ShardCountsRecorder {
    recorder: MetricsRecorder,
}

impl ShardCountsRecorder {
    /// Creates the recorder.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Observer for ShardCountsRecorder {
    fn on_period(&mut self, protocol: &Protocol, events: &PeriodEvents<'_>) {
        let Some(shards) = events.shard_counts_alive else {
            return;
        };
        for (j, shard) in shards.iter().enumerate() {
            for (s, &count) in shard.iter().enumerate() {
                self.recorder.record(
                    &format!("shard{j}:{}", protocol.state_name(StateId::new(s))),
                    events.period,
                    count as f64,
                );
            }
        }
    }

    fn finish(&mut self, result: &mut RunResult) {
        result.metrics.merge(&self.recorder);
    }
}

/// Streams the asynchronous transport's health while a run is still
/// executing, and records it as `metrics["transport:*"]` series afterwards.
///
/// The streaming half is the point: [`handle`](Self::handle) returns a
/// cloneable, thread-safe [`LiveMetricsHandle`] whose gauges (queue depth,
/// cumulative sent/delivered/dropped, recent mean latency) are updated at
/// every period boundary — a progress thread can poll it mid-run instead of
/// waiting for the [`RunResult`]. The recorded series are per-period:
/// `transport:queue_depth` and `transport:latency_mean` are instantaneous
/// snapshots, `transport:sent` / `transport:delivered` / `transport:dropped`
/// are the counts for the period that just executed.
///
/// Only the asynchronous runtime fills [`PeriodEvents::transport`]; under
/// every other runtime this observer is inert (like
/// [`ShardCountsRecorder`] without shard data).
#[derive(Debug, Default)]
pub struct LiveMetrics {
    recorder: MetricsRecorder,
    gauges: Arc<Gauges>,
    last: TransportProbe,
}

/// The shared gauge block behind [`LiveMetricsHandle`]. The latency gauge
/// stores an `f64` through its bit pattern, so every field fits one atomic.
#[derive(Debug, Default)]
struct Gauges {
    queue_depth: AtomicU64,
    sent: AtomicU64,
    delivered: AtomicU64,
    dropped: AtomicU64,
    latency_bits: AtomicU64,
    periods: AtomicU64,
}

/// A cloneable, thread-safe view of a [`LiveMetrics`] observer's gauges,
/// readable while the run is still executing.
#[derive(Debug, Clone, Default)]
pub struct LiveMetricsHandle {
    gauges: Arc<Gauges>,
}

impl LiveMetricsHandle {
    /// Messages in flight at the last period boundary.
    pub fn queue_depth(&self) -> u64 {
        self.gauges.queue_depth.load(Ordering::Relaxed)
    }

    /// Cumulative messages sent so far.
    pub fn sent(&self) -> u64 {
        self.gauges.sent.load(Ordering::Relaxed)
    }

    /// Cumulative messages delivered so far.
    pub fn delivered(&self) -> u64 {
        self.gauges.delivered.load(Ordering::Relaxed)
    }

    /// Cumulative messages dropped so far (loss or partition).
    pub fn dropped(&self) -> u64 {
        self.gauges.dropped.load(Ordering::Relaxed)
    }

    /// Mean delivery latency over the transport's recent window (seconds).
    pub fn recent_latency_mean(&self) -> f64 {
        f64::from_bits(self.gauges.latency_bits.load(Ordering::Relaxed))
    }

    /// Periods observed so far (including the period-0 snapshot).
    pub fn periods_observed(&self) -> u64 {
        self.gauges.periods.load(Ordering::Relaxed)
    }
}

impl LiveMetrics {
    /// Creates the observer.
    pub fn new() -> Self {
        Self::default()
    }

    /// A live handle onto the gauges, safe to read from another thread while
    /// the run executes.
    pub fn handle(&self) -> LiveMetricsHandle {
        LiveMetricsHandle {
            gauges: Arc::clone(&self.gauges),
        }
    }
}

impl Observer for LiveMetrics {
    fn on_period(&mut self, _protocol: &Protocol, events: &PeriodEvents<'_>) {
        let Some(probe) = events.transport else {
            return;
        };
        self.gauges
            .queue_depth
            .store(probe.queue_depth, Ordering::Relaxed);
        self.gauges.sent.store(probe.sent, Ordering::Relaxed);
        self.gauges
            .delivered
            .store(probe.delivered, Ordering::Relaxed);
        self.gauges.dropped.store(probe.dropped, Ordering::Relaxed);
        self.gauges
            .latency_bits
            .store(probe.recent_latency_mean.to_bits(), Ordering::Relaxed);
        self.gauges.periods.fetch_add(1, Ordering::Relaxed);

        self.recorder.record(
            "transport:queue_depth",
            events.period,
            probe.queue_depth as f64,
        );
        self.recorder.record(
            "transport:latency_mean",
            events.period,
            probe.recent_latency_mean,
        );
        if events.period > 0 {
            let p = events.period - 1;
            let delta = |now: u64, before: u64| now.saturating_sub(before) as f64;
            self.recorder
                .record("transport:sent", p, delta(probe.sent, self.last.sent));
            self.recorder.record(
                "transport:delivered",
                p,
                delta(probe.delivered, self.last.delivered),
            );
            self.recorder.record(
                "transport:dropped",
                p,
                delta(probe.dropped, self.last.dropped),
            );
        }
        self.last = probe;
    }

    fn finish(&mut self, result: &mut RunResult) {
        result.metrics.merge(&self.recorder);
    }
}

/// Summarizes a run's survival under fault injection into
/// `metrics["resilience:*"]` series — the robustness counterpart of
/// [`LiveMetrics`].
///
/// Metric definitions (all over *alive* per-state counts):
///
/// * `resilience:victims` — per attack snapshot, processes crashed by the
///   adversary during the period leading up to it (recoveries not counted).
/// * `resilience:time_to_recovery` — per recovered attack, recorded at the
///   attack snapshot: the number of periods until the leading state's
///   *share* of the alive population first returned to its pre-attack
///   level. An attack whose share never recovers within the run contributes
///   to `resilience:unrecovered` instead.
/// * `resilience:injections_total`, `resilience:recovered`,
///   `resilience:unrecovered` — run totals (single point at period 0).
/// * `resilience:ttr_mean` — mean time-to-recovery over recovered attacks
///   (absent when none recovered).
/// * `resilience:extinct_states` — protocol states with zero alive
///   processes at the end of the run (takeover/extinction indicator).
///
/// Inert when the run applies no injections (no adversary attached, or a
/// quiet one): nothing is recorded, like [`ShardCountsRecorder`] without
/// shard data.
#[derive(Debug, Default)]
pub struct ResilienceReport {
    recorder: MetricsRecorder,
    last_share: Option<f64>,
    /// `(attack snapshot, pre-attack leading share)` awaiting recovery.
    pending: Vec<(u64, f64)>,
    injections_seen: u64,
    recovery_times: Vec<u64>,
    final_alive: Vec<u64>,
}

impl ResilienceReport {
    /// Creates the observer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Observer for ResilienceReport {
    fn on_period(&mut self, _protocol: &Protocol, events: &PeriodEvents<'_>) {
        let alive = events.alive_counts();
        let total: u64 = alive.iter().sum();
        let share = if total > 0 {
            alive.iter().max().map(|&m| m as f64 / total as f64)
        } else {
            None
        };

        // Resolve attacks from earlier snapshots whose leading share is back
        // to its pre-attack level.
        if let Some(share) = share {
            self.pending.retain(|&(attacked_at, target)| {
                if events.period > attacked_at && share >= target {
                    self.recovery_times.push(events.period - attacked_at);
                    self.recorder.record(
                        "resilience:time_to_recovery",
                        attacked_at,
                        (events.period - attacked_at) as f64,
                    );
                    false
                } else {
                    true
                }
            });
        }

        if !events.injections.is_empty() {
            self.injections_seen += events.injections.len() as u64;
            let victims: u64 = events
                .injections
                .iter()
                .filter(|r| !matches!(r.injection, Injection::RecoverUniform { .. }))
                .map(|r| r.victims)
                .sum();
            self.recorder
                .record("resilience:victims", events.period, victims as f64);
            if victims > 0 {
                // Recovery target: the leading share *before* the attack.
                let target = self.last_share.or(share).unwrap_or(0.0);
                self.pending.push((events.period, target));
            }
        }

        self.last_share = share.or(self.last_share);
        self.final_alive = alive;
    }

    fn finish(&mut self, result: &mut RunResult) {
        if self.injections_seen == 0 {
            return;
        }
        result.metrics.merge(&self.recorder);
        result.metrics.record(
            "resilience:injections_total",
            0,
            self.injections_seen as f64,
        );
        result
            .metrics
            .record("resilience:recovered", 0, self.recovery_times.len() as f64);
        result
            .metrics
            .record("resilience:unrecovered", 0, self.pending.len() as f64);
        if !self.recovery_times.is_empty() {
            let mean =
                self.recovery_times.iter().sum::<u64>() as f64 / self.recovery_times.len() as f64;
            result.metrics.record("resilience:ttr_mean", 0, mean);
        }
        let extinct = self.final_alive.iter().filter(|&&c| c == 0).count();
        result
            .metrics
            .record("resilience:extinct_states", 0, extinct as f64);
    }
}

/// The observer set that reproduces the legacy always-on recording: counts
/// (all processes), transitions, alive counts and message counts.
pub(crate) fn default_observers() -> Vec<Box<dyn Observer>> {
    vec![
        Box::new(CountsRecorder::new()),
        Box::new(TransitionRecorder::new()),
        Box::new(AliveTracker::new()),
        Box::new(MessageCounter::new()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::ProtocolCompiler;
    use odekit::system::EquationSystemBuilder;

    fn protocol() -> Protocol {
        let sys = EquationSystemBuilder::new()
            .vars(["x", "y"])
            .term("x", -1.0, &[("x", 1), ("y", 1)])
            .term("y", 1.0, &[("x", 1), ("y", 1)])
            .build()
            .unwrap();
        ProtocolCompiler::new("epidemic").compile(&sys).unwrap()
    }

    fn events<'a>(
        period: u64,
        counts: &'a [u64],
        transitions: &'a [(StateId, StateId, u64)],
    ) -> PeriodEvents<'a> {
        PeriodEvents {
            period,
            counts,
            transitions,
            messages: 7,
            alive: counts.iter().sum(),
            counts_alive: None,
            membership: None,
            shard_counts_alive: None,
            transport: None,
            injections: &[],
            virtual_time: None,
        }
    }

    #[test]
    fn counts_recorder_fills_trajectory() {
        let p = protocol();
        let mut obs = CountsRecorder::new();
        obs.on_period(&p, &events(0, &[90, 10], &[]));
        obs.on_period(&p, &events(1, &[50, 50], &[]));
        let mut result = RunResult::new(&p);
        obs.finish(&mut result);
        assert_eq!(result.counts.len(), 2);
        assert_eq!(result.final_counts(), Some(&[50.0, 50.0][..]));
        // Without a membership view, alive-only falls back to raw counts.
        let mut alive = CountsRecorder::alive_only();
        alive.on_period(&p, &events(0, &[90, 10], &[]));
        let mut result = RunResult::new(&p);
        alive.finish(&mut result);
        assert_eq!(result.final_counts(), Some(&[90.0, 10.0][..]));
    }

    #[test]
    fn transition_recorder_names_edges_and_shifts_periods() {
        let p = protocol();
        let x = p.require_state("x").unwrap();
        let y = p.require_state("y").unwrap();
        let mut obs = TransitionRecorder::new();
        obs.on_period(&p, &events(0, &[90, 10], &[]));
        obs.on_period(&p, &events(1, &[50, 50], &[(x, y, 40)]));
        let mut result = RunResult::new(&p);
        obs.finish(&mut result);
        // The transition fired during period 0 (between snapshots 0 and 1).
        assert_eq!(result.transitions.series("x->y").unwrap(), &[(0, 40.0)]);
        assert_eq!(result.total_transitions("x", "y"), 40.0);
    }

    #[test]
    fn alive_and_message_observers_record_series() {
        let p = protocol();
        let mut alive = AliveTracker::new();
        let mut msgs = MessageCounter::new();
        for period in 0..3 {
            let ev = events(period, &[90, 10], &[]);
            alive.on_period(&p, &ev);
            msgs.on_period(&p, &ev);
        }
        let mut result = RunResult::new(&p);
        alive.finish(&mut result);
        msgs.finish(&mut result);
        assert_eq!(result.metrics.series("alive").unwrap().len(), 3);
        // No messages at the period-0 snapshot.
        assert_eq!(
            result.metrics.series("messages").unwrap(),
            &[(0, 7.0), (1, 7.0)]
        );
    }

    #[test]
    fn incremental_alive_counts_take_precedence() {
        let p = protocol();
        let alive = [80u64, 5];
        let mut ev = events(0, &[90, 10], &[]);
        ev.counts_alive = Some(&alive);
        assert_eq!(ev.alive_counts(), vec![80, 5]);
        let mut obs = CountsRecorder::alive_only();
        obs.on_period(&p, &ev);
        let mut result = RunResult::new(&p);
        obs.finish(&mut result);
        assert_eq!(result.final_counts(), Some(&[80.0, 5.0][..]));
    }

    #[test]
    fn only_membership_trackers_need_membership() {
        let p = protocol();
        let y = p.require_state("y").unwrap();
        assert!(MembershipTracker::of(y).needs_membership());
        assert!(!CountsRecorder::new().needs_membership());
        assert!(!CountsRecorder::alive_only().needs_membership());
        assert!(!TransitionRecorder::new().needs_membership());
        assert!(!AliveTracker::new().needs_membership());
        assert!(!MessageCounter::new().needs_membership());
    }

    #[test]
    fn shard_counts_recorder_records_per_shard_series() {
        let p = protocol();
        let shards = vec![vec![90u64, 0], vec![0, 10]];
        let totals = [90u64, 10];
        let mut ev = events(0, &totals, &[]);
        ev.shard_counts_alive = Some(&shards);
        let mut obs = ShardCountsRecorder::new();
        obs.on_period(&p, &ev);
        let shards = vec![vec![80u64, 10], vec![3, 7]];
        let mut ev = events(1, &totals, &[]);
        ev.shard_counts_alive = Some(&shards);
        obs.on_period(&p, &ev);
        let mut result = RunResult::new(&p);
        obs.finish(&mut result);
        assert_eq!(
            result.metrics.series("shard0:x").unwrap(),
            &[(0, 90.0), (1, 80.0)]
        );
        assert_eq!(
            result.metrics.series("shard1:y").unwrap(),
            &[(0, 10.0), (1, 7.0)]
        );
        // Without shard data the recorder is inert.
        let mut inert = ShardCountsRecorder::new();
        inert.on_period(&p, &events(0, &totals, &[]));
        let mut result = RunResult::new(&p);
        inert.finish(&mut result);
        assert!(result.metrics.series("shard0:x").is_err());
        assert!(!ShardCountsRecorder::new().needs_membership());
    }

    #[test]
    fn live_metrics_streams_gauges_and_records_series() {
        let p = protocol();
        let mut obs = LiveMetrics::new();
        let handle = obs.handle();
        let mut ev = events(0, &[90, 10], &[]);
        ev.transport = Some(TransportProbe {
            queue_depth: 5,
            sent: 10,
            delivered: 4,
            dropped: 1,
            recent_latency_mean: 2.5,
        });
        obs.on_period(&p, &ev);
        // Gauges are readable mid-run, from a clone, on another thread.
        let h2 = handle.clone();
        std::thread::spawn(move || {
            assert_eq!(h2.queue_depth(), 5);
            assert_eq!(h2.sent(), 10);
        })
        .join()
        .unwrap();
        assert_eq!(handle.queue_depth(), 5);
        assert_eq!(handle.delivered(), 4);
        assert_eq!(handle.dropped(), 1);
        assert_eq!(handle.recent_latency_mean(), 2.5);
        assert_eq!(handle.periods_observed(), 1);

        let mut ev = events(1, &[50, 50], &[]);
        ev.transport = Some(TransportProbe {
            queue_depth: 2,
            sent: 25,
            delivered: 20,
            dropped: 3,
            recent_latency_mean: 1.5,
        });
        obs.on_period(&p, &ev);
        assert_eq!(handle.sent(), 25);
        assert_eq!(handle.periods_observed(), 2);

        let mut result = RunResult::new(&p);
        obs.finish(&mut result);
        // Instantaneous series have one point per snapshot...
        assert_eq!(
            result.metrics.series("transport:queue_depth").unwrap(),
            &[(0, 5.0), (1, 2.0)]
        );
        // ...while the fate series are per-period deltas.
        assert_eq!(
            result.metrics.series("transport:sent").unwrap(),
            &[(0, 15.0)]
        );
        assert_eq!(
            result.metrics.series("transport:delivered").unwrap(),
            &[(0, 16.0)]
        );
        assert_eq!(
            result.metrics.series("transport:dropped").unwrap(),
            &[(0, 2.0)]
        );
        assert!(!LiveMetrics::new().needs_membership());
    }

    #[test]
    fn live_metrics_handle_polls_safely_while_a_run_executes() {
        use super::super::{AsyncRuntime, InitialStates, Simulation};
        use netsim::transport::{LatencyModel, LinkModel, TransportConfig};
        use netsim::Scenario;
        // A reader hammers the handle from this thread while the run
        // executes on another: every counter must be monotone and every
        // latency read a sane f64 (no torn reads through the bit-packed
        // gauge), poll after poll.
        let link = LinkModel::new(LatencyModel::Exponential { mean: 30.0 }, 0.05).unwrap();
        let scenario = Scenario::new(20_000, 40)
            .unwrap()
            .with_seed(8)
            .with_transport(TransportConfig::new(link))
            .unwrap();
        let obs = LiveMetrics::new();
        let handle = obs.handle();
        let worker = std::thread::spawn(move || {
            Simulation::of(protocol())
                .scenario(scenario)
                .initial(InitialStates::counts(&[19_990, 10]))
                .observe(obs)
                .run::<AsyncRuntime>()
                .unwrap()
        });
        let (mut sent, mut delivered, mut dropped, mut periods) = (0u64, 0u64, 0u64, 0u64);
        while !worker.is_finished() {
            let s = handle.sent();
            let d = handle.delivered();
            let dr = handle.dropped();
            let p = handle.periods_observed();
            assert!(s >= sent, "sent went backwards: {s} < {sent}");
            assert!(
                d >= delivered,
                "delivered went backwards: {d} < {delivered}"
            );
            assert!(dr >= dropped, "dropped went backwards: {dr} < {dropped}");
            assert!(p >= periods, "periods went backwards: {p} < {periods}");
            let latency = handle.recent_latency_mean();
            assert!(
                latency.is_finite() && latency >= 0.0,
                "torn latency read: {latency}"
            );
            (sent, delivered, dropped, periods) = (s, d, dr, p);
            std::thread::yield_now();
        }
        let result = worker.join().unwrap();
        assert!(handle.sent() > 0, "the run sent messages");
        assert_eq!(handle.periods_observed(), 41, "snapshot + 40 periods");
        assert!(result.metrics.series("transport:sent").is_ok());
    }

    #[test]
    fn live_metrics_is_inert_without_transport_data() {
        let p = protocol();
        let mut obs = LiveMetrics::new();
        let handle = obs.handle();
        obs.on_period(&p, &events(0, &[90, 10], &[]));
        assert_eq!(handle.periods_observed(), 0);
        let mut result = RunResult::new(&p);
        obs.finish(&mut result);
        assert!(result.metrics.series("transport:queue_depth").is_err());
    }

    #[test]
    fn resilience_report_tracks_recovery_and_totals() {
        let p = protocol();
        let mut obs = ResilienceReport::new();
        // Pre-attack: state x leads with share 0.9.
        obs.on_period(&p, &events(0, &[90, 10], &[]));
        // Attack at snapshot 1: 45 victims out of state x.
        let records = [InjectionRecord {
            period: 1,
            injection: Injection::CrashState {
                state: 0,
                fraction: 0.5,
            },
            victims: 45,
        }];
        let counts = [45u64, 10];
        let mut ev = events(1, &counts, &[]);
        ev.injections = &records;
        obs.on_period(&p, &ev);
        // Leading share dips (45/55 ≈ 0.82 < 0.9), then recovers at
        // snapshot 3 (55/60 ≈ 0.92 ≥ 0.9).
        obs.on_period(&p, &events(2, &[48, 8], &[]));
        obs.on_period(&p, &events(3, &[55, 5], &[]));
        let mut result = RunResult::new(&p);
        obs.finish(&mut result);
        assert_eq!(
            result.metrics.series("resilience:victims").unwrap(),
            &[(1, 45.0)]
        );
        assert_eq!(
            result
                .metrics
                .series("resilience:time_to_recovery")
                .unwrap(),
            &[(1, 2.0)]
        );
        assert_eq!(
            result
                .metrics
                .series("resilience:injections_total")
                .unwrap(),
            &[(0, 1.0)]
        );
        assert_eq!(
            result.metrics.series("resilience:recovered").unwrap(),
            &[(0, 1.0)]
        );
        assert_eq!(
            result.metrics.series("resilience:unrecovered").unwrap(),
            &[(0, 0.0)]
        );
        assert_eq!(
            result.metrics.series("resilience:ttr_mean").unwrap(),
            &[(0, 2.0)]
        );
        assert_eq!(
            result.metrics.series("resilience:extinct_states").unwrap(),
            &[(0, 0.0)]
        );
        assert!(!ResilienceReport::new().needs_membership());
    }

    #[test]
    fn resilience_report_counts_unrecovered_attacks_and_extinctions() {
        let p = protocol();
        let mut obs = ResilienceReport::new();
        obs.on_period(&p, &events(0, &[90, 10], &[]));
        let records = [InjectionRecord {
            period: 1,
            injection: Injection::CrashUniform { fraction: 0.9 },
            victims: 90,
        }];
        let counts = [5u64, 5];
        let mut ev = events(1, &counts, &[]);
        ev.injections = &records;
        obs.on_period(&p, &ev);
        // The leading share never returns to 0.9.
        obs.on_period(&p, &events(2, &[5, 4], &[]));
        let mut result = RunResult::new(&p);
        obs.finish(&mut result);
        assert_eq!(
            result.metrics.series("resilience:unrecovered").unwrap(),
            &[(0, 1.0)]
        );
        assert!(result.metrics.series("resilience:ttr_mean").is_err());
        assert_eq!(
            result.metrics.series("resilience:extinct_states").unwrap(),
            &[(0, 0.0)]
        );

        // A takeover after an attack: the surviving state's share hits 1.0
        // (counts as recovered) and the extinct state is reported.
        let mut obs = ResilienceReport::new();
        obs.on_period(&p, &events(0, &[60, 40], &[]));
        let records = [InjectionRecord {
            period: 1,
            injection: Injection::CrashState {
                state: 0,
                fraction: 1.0,
            },
            victims: 60,
        }];
        let counts = [0u64, 40];
        let mut ev = events(1, &counts, &[]);
        ev.injections = &records;
        obs.on_period(&p, &ev);
        obs.on_period(&p, &events(2, &[0, 40], &[]));
        let mut result = RunResult::new(&p);
        obs.finish(&mut result);
        assert_eq!(
            result.metrics.series("resilience:extinct_states").unwrap(),
            &[(0, 1.0)]
        );
        assert_eq!(
            result.metrics.series("resilience:recovered").unwrap(),
            &[(0, 1.0)]
        );
    }

    #[test]
    fn resilience_report_is_inert_without_injections() {
        let p = protocol();
        let mut obs = ResilienceReport::new();
        obs.on_period(&p, &events(0, &[90, 10], &[]));
        obs.on_period(&p, &events(1, &[50, 50], &[]));
        let mut result = RunResult::new(&p);
        obs.finish(&mut result);
        assert!(result.metrics.series("resilience:victims").is_err());
        assert!(result
            .metrics
            .series("resilience:injections_total")
            .is_err());
    }

    #[test]
    fn membership_tracker_is_inert_without_host_identity() {
        let p = protocol();
        let y = p.require_state("y").unwrap();
        let mut obs = MembershipTracker::of(y);
        obs.on_period(&p, &events(0, &[90, 10], &[]));
        let mut result = RunResult::new(&p);
        obs.finish(&mut result);
        assert!(result.tracked_members.is_empty());
    }
}
