//! The count-based (aggregate) protocol runtime.

use super::observer::default_observers;
use super::simulation::drive_periods;
use super::{InitialStates, PeriodEvents, RunConfig, RunResult, Runtime};
use crate::action::Action;
use crate::error::CoreError;
use crate::state_machine::{Protocol, StateId};
use crate::Result;
use netsim::stochastic::{binomial, multinomial};
use netsim::{LossConfig, Rng, Scenario};

/// Executes a protocol tracking only the number of processes in each state.
///
/// Each period, for every state and in action order, the runtime computes the
/// per-process probability of each transition from the **start-of-period
/// counts** and draws the number of movers from the corresponding
/// binomial/multinomial distribution; all transitions are applied at the end
/// of the period (a synchronous-update approximation of the asynchronous
/// agent runtime). The approximation error vanishes as the per-period
/// transition probabilities shrink, and tests verify that agent and aggregate
/// runs agree within sampling noise on the paper's parameter settings.
///
/// Because processes are exchangeable in the paper's protocols, this runtime
/// is distribution-equivalent to the agent runtime for everything that only
/// depends on counts — at a cost of O(states × actions) per period instead of
/// O(N), which is what makes the large parameter sweeps (N = 100 000, tens of
/// thousands of periods, many repetitions) cheap.
///
/// Failure and churn events are not modelled here (they need host identity);
/// use [`AgentRuntime`](super::AgentRuntime) for those scenarios. A constant
/// message-loss configuration *is* supported — when driven through the
/// [`Runtime`](super::Runtime) trait the scenario's loss configuration is
/// used unless [`with_loss`](Self::with_loss) overrides it — as is an alive
/// fraction below 1.0 (contacts aimed at the dead fraction are fruitless).
#[derive(Debug, Clone)]
pub struct AggregateRuntime {
    protocol: Protocol,
    loss: Option<LossConfig>,
    alive_fraction: f64,
}

/// The mutable execution state of an [`AggregateRuntime`] run: per-state
/// counts, the PRNG and the current period's event buffers.
#[derive(Debug, Clone)]
pub struct AggregateState {
    n_f: f64,
    alive_n: u64,
    counts: Vec<u64>,
    rng: Rng,
    loss: LossConfig,
    period: u64,
    transitions_dense: Vec<u64>,
    transitions: Vec<(StateId, StateId, u64)>,
    messages: u64,
}

impl AggregateState {
    /// The next period to execute (also the number of periods executed).
    pub fn period(&self) -> u64 {
        self.period
    }
}

impl AggregateRuntime {
    /// Creates an aggregate runtime with a fully alive group. The network is
    /// reliable unless a scenario drives the run and specifies losses.
    pub fn new(protocol: Protocol) -> Self {
        AggregateRuntime {
            protocol,
            loss: None,
            alive_fraction: 1.0,
        }
    }

    /// Sets the message/connection loss configuration (overriding the
    /// scenario's, if any).
    #[must_use]
    pub fn with_loss(mut self, loss: LossConfig) -> Self {
        self.loss = Some(loss);
        self
    }

    /// Sets the fraction of the maximal membership that is alive (contacts
    /// aimed at dead members fail). Counts are interpreted as alive processes.
    ///
    /// # Errors
    ///
    /// Returns an error unless `0 < alive_fraction ≤ 1`.
    pub fn with_alive_fraction(mut self, alive_fraction: f64) -> Result<Self> {
        if !(alive_fraction.is_finite() && alive_fraction > 0.0 && alive_fraction <= 1.0) {
            return Err(CoreError::InvalidConfig {
                name: "alive_fraction",
                reason: format!("must lie in (0, 1], got {alive_fraction}"),
            });
        }
        self.alive_fraction = alive_fraction;
        Ok(self)
    }

    /// The protocol being executed.
    pub fn protocol(&self) -> &Protocol {
        &self.protocol
    }

    /// Runs the protocol for `periods` periods on a maximal group of `n`
    /// processes with the given initial distribution and PRNG seed, recording
    /// the standard set (counts, transitions, alive counts, messages).
    ///
    /// For opt-in recording or scenario-driven runs use
    /// [`Simulation`](super::Simulation).
    ///
    /// # Errors
    ///
    /// Returns configuration errors (mismatched initial distribution, invalid
    /// protocol).
    pub fn run(
        &self,
        n: u64,
        periods: u64,
        initial: &InitialStates,
        seed: u64,
    ) -> Result<RunResult> {
        let loss = self.loss.unwrap_or_else(LossConfig::reliable);
        let mut state = self.init_raw(n, initial, seed, loss)?;
        drive_periods(self, &mut state, periods, &mut default_observers())
    }

    /// Builds the start-of-run state without a scenario.
    fn init_raw(
        &self,
        n: u64,
        initial: &InitialStates,
        seed: u64,
        loss: LossConfig,
    ) -> Result<AggregateState> {
        self.protocol.validate()?;
        let num_states = self.protocol.num_states();
        let alive_n = (n as f64 * self.alive_fraction).round() as u64;
        let counts = initial.resolve(num_states, alive_n)?;
        Ok(AggregateState {
            n_f: n as f64,
            alive_n,
            counts,
            rng: Rng::seed_from(seed),
            loss,
            period: 0,
            transitions_dense: vec![0; num_states * num_states],
            transitions: Vec::new(),
            messages: 0,
        })
    }

    fn events<'s>(&self, state: &'s AggregateState) -> PeriodEvents<'s> {
        PeriodEvents {
            period: state.period,
            counts: &state.counts,
            transitions: &state.transitions,
            messages: state.messages,
            alive: state.alive_n,
            counts_alive: None,
            membership: None,
            shard_counts_alive: None,
            transport: None,
            injections: &[],
            virtual_time: None,
        }
    }
}

impl Runtime for AggregateRuntime {
    type State = AggregateState;

    fn build(protocol: Protocol, _config: &RunConfig) -> Self {
        // The rejoin rule needs host identity and is a no-op here: the
        // aggregate runtime does not model failure events.
        AggregateRuntime::new(protocol)
    }

    fn protocol(&self) -> &Protocol {
        &self.protocol
    }

    fn init(&self, scenario: &Scenario, initial: &InitialStates) -> Result<AggregateState> {
        // Failure and churn need host identity; silently dropping them would
        // make a fidelity swap produce wrong results, so reject loudly.
        if !scenario.failure_schedule().is_empty()
            || !scenario.churn_events().is_empty()
            || scenario.failure_model().crash_prob() > 0.0
            || scenario.failure_model().recover_prob() > 0.0
            || scenario.adversary().is_some()
        {
            return Err(CoreError::InvalidConfig {
                name: "scenario",
                reason: "the aggregate runtime does not model failures, churn \
                         or adversaries; \
                         use AgentRuntime for this scenario (or with_alive_fraction \
                         for a constant dead fraction)"
                    .into(),
            });
        }
        super::reject_sharded(scenario, "aggregate")?;
        super::reject_transport(scenario, "aggregate")?;
        let loss = self.loss.unwrap_or(*scenario.loss());
        self.init_raw(scenario.group_size() as u64, initial, scenario.seed(), loss)
    }

    fn step<'s>(&self, state: &'s mut AggregateState) -> Result<PeriodEvents<'s>> {
        let num_states = self.protocol.num_states();
        let period = state.period;
        let n_f = state.n_f;
        state.transitions_dense.fill(0);
        state.transitions.clear();
        state.messages = 0;

        let start: Vec<u64> = state.counts.clone();
        let mut delta = vec![0i64; num_states];
        // Expected messages, matching the agent runtime's accounting: a
        // process pays for an action only if it has not already moved on an
        // earlier action this period (including the action that moves it).
        let mut messages_f = 0.0f64;

        for (s, &k_s) in start.iter().enumerate() {
            if k_s == 0 {
                continue;
            }
            let actions = self.protocol.actions(StateId::new(s));
            if actions.is_empty() {
                continue;
            }
            // Per-process probabilities of each *self-moving* outcome, in
            // action order; push/token actions affect other states and are
            // handled separately below.
            let mut outcome_probs: Vec<(usize, f64)> = Vec::new(); // (dest, prob)
            let mut survive = 1.0; // probability of not having moved yet
            for action in actions {
                messages_f += k_s as f64 * survive * f64::from(action.messages_per_period());
                let fire = super::fire_probability(action, &start, n_f, &state.loss);
                match action {
                    Action::Flip { to, .. }
                    | Action::Sample { to, .. }
                    | Action::SampleAny { to, .. } => {
                        outcome_probs.push((to.index(), survive * fire));
                        survive *= 1.0 - fire;
                    }
                    Action::PushSample {
                        target_state,
                        samples,
                        prob,
                        to,
                    } => {
                        // Executors do not move themselves, but only those no
                        // earlier self-moving action already moved reach this
                        // action — fold `survive` into the per-draw
                        // probability. Each surviving executor's samples
                        // convert alive members of target_state.
                        let per_draw = (start[target_state.index()] as f64 / n_f)
                            * prob
                            * (1.0 - state.loss.effective_contact_failure(1))
                            * survive;
                        let draws = k_s.saturating_mul(u64::from(*samples));
                        let converted = binomial(&mut state.rng, draws, per_draw)
                            .min(start[target_state.index()]);
                        if converted > 0 {
                            delta[target_state.index()] -= converted as i64;
                            delta[to.index()] += converted as i64;
                            state.transitions_dense
                                [target_state.index() * num_states + to.index()] += converted;
                        }
                    }
                    Action::Tokenize {
                        token_state, to, ..
                    } => {
                        // Only executors that have not moved on an earlier
                        // action reach this one (probability `survive`).
                        let fired = binomial(&mut state.rng, k_s, survive * fire);
                        let consumed = fired.min(start[token_state.index()]);
                        if consumed > 0 {
                            delta[token_state.index()] -= consumed as i64;
                            delta[to.index()] += consumed as i64;
                            state.transitions_dense
                                [token_state.index() * num_states + to.index()] += consumed;
                        }
                    }
                }
            }

            if !outcome_probs.is_empty() {
                // Multinomial draw over (outcome_1, ..., outcome_m, stay).
                let mut weights: Vec<f64> = outcome_probs.iter().map(|(_, p)| *p).collect();
                let stay = (1.0 - weights.iter().sum::<f64>()).max(0.0);
                weights.push(stay);
                let draws = multinomial(&mut state.rng, k_s, &weights);
                for ((dest, _), &moved) in outcome_probs.iter().zip(&draws) {
                    if moved > 0 {
                        delta[s] -= moved as i64;
                        delta[*dest] += moved as i64;
                        state.transitions_dense[s * num_states + dest] += moved;
                    }
                }
            }
        }

        // Apply the deltas with saturation (clamping can only be triggered
        // by the push/token approximations racing each other in the same
        // period, which is statistically negligible).
        for (c, d) in state.counts.iter_mut().zip(&delta) {
            let new = *c as i64 + d;
            *c = new.max(0) as u64;
        }

        super::render_sparse_transitions(
            &state.transitions_dense,
            num_states,
            &mut state.transitions,
        );

        state.messages = messages_f.round() as u64;
        state.period = period + 1;
        Ok(self.events(state))
    }

    fn snapshot<'s>(&self, state: &'s AggregateState) -> PeriodEvents<'s> {
        self.events(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::ProtocolCompiler;
    use crate::runtime::AgentRuntime;
    use netsim::Scenario;
    use odekit::system::EquationSystemBuilder;

    fn epidemic_protocol() -> Protocol {
        let sys = EquationSystemBuilder::new()
            .vars(["x", "y"])
            .term("x", -1.0, &[("x", 1), ("y", 1)])
            .term("y", 1.0, &[("x", 1), ("y", 1)])
            .build()
            .unwrap();
        ProtocolCompiler::new("epidemic").compile(&sys).unwrap()
    }

    // Endemic system with β=2, γ=0.1, α=0.01: a comfortable equilibrium
    // (y* ≈ 8.6 % of the group) far from the stochastic-extinction regime.
    const BETA: f64 = 2.0;
    const GAMMA: f64 = 0.1;
    const ALPHA: f64 = 0.01;

    fn endemic_protocol() -> Protocol {
        let sys = EquationSystemBuilder::new()
            .vars(["x", "y", "z"])
            .term("x", -BETA, &[("x", 1), ("y", 1)])
            .term("x", ALPHA, &[("z", 1)])
            .term("y", BETA, &[("x", 1), ("y", 1)])
            .term("y", -GAMMA, &[("y", 1)])
            .term("z", GAMMA, &[("y", 1)])
            .term("z", -ALPHA, &[("z", 1)])
            .build()
            .unwrap();
        ProtocolCompiler::new("endemic").compile(&sys).unwrap()
    }

    /// Endemic equilibrium counts for a group of `n` alive processes under an
    /// effective infection rate `beta_eff` (eq. 2 of the paper, in fractions).
    fn endemic_equilibrium_counts(n: u64, beta_eff: f64) -> Vec<u64> {
        let x = GAMMA / beta_eff;
        let y = (1.0 - x) / (1.0 + GAMMA / ALPHA);
        let xc = (x * n as f64).round() as u64;
        let yc = (y * n as f64).round() as u64;
        let zc = n - xc - yc;
        vec![xc, yc, zc]
    }

    #[test]
    fn counts_are_conserved_without_push_or_token_actions() {
        let runtime = AggregateRuntime::new(epidemic_protocol());
        let result = runtime
            .run(10_000, 50, &InitialStates::counts(&[9_999, 1]), 1)
            .unwrap();
        for (_, s) in result.counts.iter() {
            assert_eq!(s.iter().sum::<f64>(), 10_000.0);
        }
        assert!(
            result.final_counts().unwrap()[1] > 9_900.0,
            "epidemic saturates"
        );
        // The aggregate runtime now reports message counts too: one sampling
        // message per susceptible process per period.
        assert!(result
            .metrics
            .series("messages")
            .unwrap()
            .iter()
            .any(|(_, v)| *v > 0.0));
    }

    #[test]
    fn aggregate_and_agent_runtimes_agree_statistically() {
        // Same protocol, same horizon; the time-averaged receptive count over
        // a late window must agree within sampling noise (both runtimes
        // estimate the same ODE trajectory).
        let protocol = endemic_protocol();
        let n = 10_000u64;
        let periods = 800u64;
        // Start at the analytical equilibrium, as the paper's Figure 5 does.
        let initial = InitialStates::counts(&endemic_equilibrium_counts(n, BETA));

        let agg = AggregateRuntime::new(protocol.clone())
            .run(n, periods, &initial, 42)
            .unwrap();

        let scenario = Scenario::new(n as usize, periods).unwrap().with_seed(42);
        let agent = AgentRuntime::new(protocol)
            .run(&scenario, &initial)
            .unwrap();

        let window_mean = |result: &RunResult| {
            let xs = result.state_series("x").unwrap();
            let tail = &xs[400..];
            tail.iter().sum::<f64>() / tail.len() as f64
        };
        let agg_x = window_mean(&agg);
        let agent_x = window_mean(&agent);
        let rel = (agg_x - agent_x).abs() / agent_x.max(1.0);
        assert!(rel < 0.2, "aggregate {agg_x} vs agent {agent_x}");
    }

    #[test]
    fn alive_fraction_halves_effective_contact_rate() {
        // With only half the group alive, contacts succeed half as often, so
        // the receptive equilibrium *fraction* (γ/β_eff) doubles while the
        // receptive *count* stays put (the paper's explanation of Figure 5).
        // Both runs start at their respective analytical equilibria.
        let protocol = endemic_protocol();
        let full = AggregateRuntime::new(protocol.clone())
            .run(
                50_000,
                2_000,
                &InitialStates::counts(&endemic_equilibrium_counts(50_000, BETA)),
                7,
            )
            .unwrap();
        let half = AggregateRuntime::new(protocol)
            .with_alive_fraction(0.5)
            .unwrap()
            .run(
                50_000,
                2_000,
                &InitialStates::counts(&endemic_equilibrium_counts(25_000, BETA * 0.5)),
                7,
            )
            .unwrap();
        let mean_x = |r: &RunResult| {
            let xs = r.state_series("x").unwrap();
            xs[1_000..].iter().sum::<f64>() / (xs.len() - 1_000) as f64
        };
        let full_x = mean_x(&full);
        let half_x = mean_x(&half);
        let ratio = half_x / full_x;
        assert!(
            (0.8..1.2).contains(&ratio),
            "x_half/x_full = {ratio} (expected ≈ 1: same count, double fraction)"
        );
        assert!(AggregateRuntime::new(epidemic_protocol())
            .with_alive_fraction(0.0)
            .is_err());
    }

    #[test]
    fn push_actions_convert_targets() {
        // A protocol with only a push action: state a pushes members of b into c.
        let mut protocol = Protocol::new("push", vec!["a".into(), "b".into(), "c".into()]).unwrap();
        let a = protocol.require_state("a").unwrap();
        let b = protocol.require_state("b").unwrap();
        let c = protocol.require_state("c").unwrap();
        protocol
            .add_action(
                a,
                Action::PushSample {
                    target_state: b,
                    samples: 2,
                    prob: 1.0,
                    to: c,
                },
            )
            .unwrap();
        let result = AggregateRuntime::new(protocol)
            .run(1_000, 30, &InitialStates::counts(&[500, 500, 0]), 3)
            .unwrap();
        let last = result.final_counts().unwrap();
        assert_eq!(last.iter().sum::<f64>(), 1_000.0);
        assert_eq!(last[0], 500.0, "pushers never move");
        assert!(
            last[1] < 50.0,
            "almost all b processes get converted, got {}",
            last[1]
        );
        assert!(result.total_transitions("b", "c") > 400.0);
    }

    #[test]
    fn token_actions_move_third_parties() {
        // x' = -0.5y, y' = +0.5y compiles to a Tokenize hosted by y moving x's.
        let sys = EquationSystemBuilder::new()
            .vars(["x", "y"])
            .term("x", -0.5, &[("y", 1)])
            .term("y", 0.5, &[("y", 1)])
            .build()
            .unwrap();
        let protocol = ProtocolCompiler::new("token").compile(&sys).unwrap();
        let result = AggregateRuntime::new(protocol)
            .run(10_000, 200, &InitialStates::counts(&[5_000, 5_000]), 11)
            .unwrap();
        // All x processes eventually get tokenized into y.
        let last = result.final_counts().unwrap();
        assert!(last[0] < 100.0);
        assert_eq!(last.iter().sum::<f64>(), 10_000.0);
    }

    #[test]
    fn initial_distribution_validation() {
        let runtime = AggregateRuntime::new(epidemic_protocol());
        assert!(runtime
            .run(100, 5, &InitialStates::counts(&[50, 49]), 0)
            .is_err());
        assert!(runtime
            .run(100, 5, &InitialStates::counts(&[50, 50, 0]), 0)
            .is_err());
    }

    #[test]
    fn message_loss_slows_convergence() {
        let protocol = epidemic_protocol();
        let reliable = AggregateRuntime::new(protocol.clone())
            .run(100_000, 12, &InitialStates::counts(&[99_999, 1]), 5)
            .unwrap();
        let lossy = AggregateRuntime::new(protocol)
            .with_loss(LossConfig::new(0.5, 0.2).unwrap())
            .run(100_000, 12, &InitialStates::counts(&[99_999, 1]), 5)
            .unwrap();
        assert!(reliable.final_counts().unwrap()[1] > lossy.final_counts().unwrap()[1]);
    }

    #[test]
    fn failure_and_churn_scenarios_are_rejected() {
        // Silently ignoring failure events would make a fidelity swap
        // produce wrong results, so init refuses such scenarios.
        let runtime = AggregateRuntime::new(epidemic_protocol());
        let initial = InitialStates::counts(&[99, 1]);
        let with_failure = Scenario::new(100, 10)
            .unwrap()
            .with_massive_failure(5, 0.5)
            .unwrap();
        assert!(matches!(
            runtime.init(&with_failure, &initial),
            Err(CoreError::InvalidConfig {
                name: "scenario",
                ..
            })
        ));
        let with_model = Scenario::new(100, 10)
            .unwrap()
            .with_failure_model(netsim::FailureModel::new(0.01, 0.0).unwrap());
        assert!(runtime.init(&with_model, &initial).is_err());
        assert!(runtime
            .init(&Scenario::new(100, 10).unwrap(), &initial)
            .is_ok());
    }

    #[test]
    fn scenario_driven_runs_take_loss_from_the_scenario() {
        // Driving the aggregate runtime through the Runtime trait picks up
        // group size, seed and losses from the scenario.
        let protocol = epidemic_protocol();
        let runtime = AggregateRuntime::new(protocol);
        let initial = InitialStates::counts(&[99_999, 1]);
        let reliable = Scenario::new(100_000, 12).unwrap().with_seed(5);
        let lossy = Scenario::new(100_000, 12)
            .unwrap()
            .with_seed(5)
            .with_loss(LossConfig::new(0.5, 0.2).unwrap());

        let run = |scenario: &Scenario| {
            let mut state = runtime.init(scenario, &initial).unwrap();
            for _ in 0..scenario.periods() {
                runtime.step(&mut state).unwrap();
            }
            state.counts[1]
        };
        assert!(run(&reliable) > run(&lossy));
    }
}
