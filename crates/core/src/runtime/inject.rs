//! The shared adversary hook threaded through every runtime's step path.
//!
//! A [`Scenario`](netsim::Scenario) carrying an
//! [`Adversary`](netsim::Adversary) gets one [`InjectionPoint`] per run.
//! Each period — immediately after the scenario's own scheduled events —
//! the runtime builds an [`AdversaryView`] of its live state, asks the
//! injection point to [`plan`](InjectionPoint::plan), and applies the
//! returned [`Injection`]s with the same victim-selection semantics as the
//! scheduled-event path (exchangeable hypergeometric draws on count-level
//! tiers, uniform per-id sampling on membership tiers). Applied injections
//! are [`record`](InjectionPoint::record)ed and surfaced to observers via
//! `PeriodEvents::injections`.
//!
//! Adversary *decisions* draw from a dedicated PRNG derived from the
//! scenario seed (never the run's main stream), while injection
//! *application* draws from the run's main RNG exactly where a scheduled
//! event would — which is what lets property tests pin an oblivious
//! adversary bit-for-bit to the classic scenario-event path.

use crate::error::CoreError;
use netsim::adversary::{AdversaryState, AdversaryView, Injection, InjectionRecord};
use netsim::{Rng, Scenario};

/// Stream tweak XORed into the scenario seed for the adversary's private
/// decision PRNG, so decisions never perturb the run's main random stream.
const ADVERSARY_STREAM: u64 = 0x5EED_AD7E_CA5C_ADE5;

/// Per-run adversary state: the forked strategy, its private decision PRNG,
/// and the log of injections applied in the most recent period.
#[derive(Debug, Clone)]
pub(crate) struct InjectionPoint {
    strategy: Box<dyn AdversaryState>,
    rng: Rng,
    log: Vec<InjectionRecord>,
}

impl InjectionPoint {
    /// Forks the scenario's adversary into a per-run injection point, or
    /// `None` if the scenario carries no adversary.
    pub(crate) fn from_scenario(scenario: &Scenario) -> Option<Self> {
        scenario.adversary().map(|handle| InjectionPoint {
            strategy: handle.fork(),
            rng: Rng::seed_from(scenario.seed() ^ ADVERSARY_STREAM),
            log: Vec::new(),
        })
    }

    /// Clears the previous period's log and plans this period's injections
    /// from the live view. Every returned injection is validated.
    pub(crate) fn plan(&mut self, view: &AdversaryView<'_>) -> crate::Result<Vec<Injection>> {
        self.log.clear();
        let planned = self.strategy.plan(view, &mut self.rng);
        for injection in &planned {
            injection.validate().map_err(|e| CoreError::InvalidConfig {
                name: "adversary",
                reason: format!("strategy emitted an invalid injection: {e}"),
            })?;
        }
        Ok(planned)
    }

    /// Records one applied injection for this period's observer view.
    pub(crate) fn record(&mut self, period: u64, injection: Injection, victims: u64) {
        self.log.push(InjectionRecord {
            period,
            injection,
            victims,
        });
    }

    /// The injections applied in the most recent period.
    pub(crate) fn records(&self) -> &[InjectionRecord] {
        &self.log
    }
}

/// The observer-facing injection slice of an optional injection point.
pub(crate) fn records_of(injector: &Option<InjectionPoint>) -> &[InjectionRecord] {
    injector.as_ref().map_or(&[], InjectionPoint::records)
}

/// Exact victim count for a fractional injection: `floor(fraction · pop)`,
/// matching the scheduled massive-failure semantics.
pub(crate) fn victim_count(fraction: f64, population: u64) -> u64 {
    ((fraction * population as f64).floor() as u64).min(population)
}

/// The error a runtime raises for an injection it cannot represent (e.g. a
/// shard-targeted injection on a well-mixed runtime).
pub(crate) fn unsupported_injection(runtime_name: &str, injection: &Injection) -> CoreError {
    CoreError::InvalidConfig {
        name: "adversary",
        reason: format!(
            "the adversary emitted {injection:?}, which the {runtime_name} \
             runtime cannot represent"
        ),
    }
}
