//! The one-run simulation driver: protocol + scenario + initial distribution
//! + observers, generic over the [`Runtime`] fidelity.

use super::observer::default_observers;
use super::{
    auto_tier, ErrorBudget, FidelityTier, InitialStates, Observer, RunConfig, RunResult, RunStatus,
    Runtime,
};
use crate::error::CoreError;
use crate::state_machine::{Protocol, StateId};
use crate::Result;
use netsim::{Scenario, Topology};

/// An execution budget for a single run.
///
/// When the budget runs out before the scenario's horizon, the run stops
/// early and degrades to a *partial* [`RunResult`]: everything the observers
/// recorded up to that point is returned, with
/// [`RunStatus::Interrupted`] making the truncation explicit. Interrupted
/// results never masquerade as completed runs — check
/// [`RunResult::status`] (or [`RunStatus::is_completed`]) before comparing
/// trajectories across runs.
///
/// Two budget kinds compose (either alone, or both at once):
///
/// * **Period budgets** are deterministic: the budget is counted in protocol
///   periods, not wall-clock time, so a deadlined run is exactly a prefix of
///   the un-deadlined run with the same seed.
/// * **Wall-clock budgets** bound real elapsed time, checked at every period
///   boundary: however wedged the medium underneath gets (a dead socket, a
///   pathological observer), the run returns within roughly one period of
///   the limit instead of hanging a CI job. The completed-period count then
///   depends on machine speed, so wall-deadlined trajectories are *not*
///   replayable prefixes — check [`RunResult::status`] before comparing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunDeadline {
    period_budget: Option<u64>,
    wall: Option<std::time::Duration>,
}

impl RunDeadline {
    /// A deadline allowing at most `budget` protocol periods.
    pub fn periods(budget: u64) -> Self {
        RunDeadline {
            period_budget: Some(budget),
            wall: None,
        }
    }

    /// A deadline allowing at most `limit` of real elapsed time.
    pub fn wall_clock(limit: std::time::Duration) -> Self {
        RunDeadline {
            period_budget: None,
            wall: Some(limit),
        }
    }

    /// Adds a wall-clock limit on top of this deadline (whichever budget
    /// runs out first stops the run).
    #[must_use]
    pub fn and_wall_clock(mut self, limit: std::time::Duration) -> Self {
        self.wall = Some(limit);
        self
    }

    /// The number of periods the deadline allows, if period-bounded.
    pub fn period_budget(&self) -> Option<u64> {
        self.period_budget
    }

    /// The real-time limit, if wall-clock-bounded.
    pub fn wall_limit(&self) -> Option<std::time::Duration> {
        self.wall
    }
}

/// Builder for a single simulation run.
///
/// A `Simulation` bundles everything one run needs — the compiled protocol,
/// the [`Scenario`] (environment), the initial state distribution, the shared
/// [`RunConfig`] and the set of [`Observer`]s — and then executes it on any
/// [`Runtime`] implementation. Recording is opt-in: only the attached
/// observers do work, and a run with no observers attaches the standard set
/// (counts, transitions, alive counts, messages) so `run` always returns a
/// usable [`RunResult`].
///
/// # Examples
///
/// ```
/// use dpde_core::runtime::{AgentRuntime, CountsRecorder, InitialStates, Simulation};
/// use dpde_core::ProtocolCompiler;
/// use netsim::Scenario;
/// use odekit::parse::parse_system;
///
/// let sys = parse_system("x' = -x*y\ny' = x*y", &[])?;
/// let protocol = ProtocolCompiler::new("epidemic").compile(&sys)?;
/// let result = Simulation::of(protocol)
///     .scenario(Scenario::new(1_000, 30)?.with_seed(7))
///     .initial(InitialStates::counts(&[999, 1]))
///     .observe(CountsRecorder::new())
///     .run::<AgentRuntime>()?;
/// assert!(result.final_counts().expect("counts recorded")[1] > 990.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Simulation {
    protocol: Protocol,
    scenario: Option<Scenario>,
    topology: Option<Topology>,
    initial: Option<InitialStates>,
    config: RunConfig,
    budget: ErrorBudget,
    observers: Vec<Box<dyn Observer>>,
    deadline: Option<RunDeadline>,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("protocol", &self.protocol.name())
            .field("scenario", &self.scenario)
            .field("initial", &self.initial)
            .field("config", &self.config)
            .field("budget", &self.budget)
            .field("observers", &self.observers.len())
            .field("deadline", &self.deadline)
            .finish()
    }
}

impl Simulation {
    /// Starts a simulation of the given protocol.
    pub fn of(protocol: Protocol) -> Self {
        Simulation {
            protocol,
            scenario: None,
            topology: None,
            initial: None,
            config: RunConfig::default(),
            budget: ErrorBudget::default(),
            observers: Vec::new(),
            deadline: None,
        }
    }

    /// Sets the [`ErrorBudget`] arbitrating which fidelity
    /// [`run_auto`](Self::run_auto) selects among the count-level tiers:
    /// [`ErrorBudget::Exact`] runs exact continuous-time sampling,
    /// [`ErrorBudget::Bounded`] runs tau-leaping at the given per-leap
    /// bound, and the default [`ErrorBudget::Fast`] keeps the historical
    /// count-threshold policy bit-for-bit. Scenario features that require a
    /// specific runtime (transport, sharding, host identity) still dominate.
    #[must_use]
    pub fn error_budget(mut self, budget: ErrorBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the environment (group size, horizon, failures, churn, losses,
    /// seed).
    #[must_use]
    pub fn scenario(mut self, scenario: Scenario) -> Self {
        self.scenario = Some(scenario);
        self
    }

    /// Sets the population topology, overriding the scenario's own (whether
    /// the scenario is set before or after this call). A sharded topology
    /// makes [`run_auto`](Self::run_auto) select the
    /// [`ShardedRuntime`](super::ShardedRuntime) tier; an explicit
    /// [`Topology::WellMixed`] forces the single-group tiers even if the
    /// scenario was built sharded.
    #[must_use]
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Sets the initial state distribution.
    #[must_use]
    pub fn initial(mut self, initial: InitialStates) -> Self {
        self.initial = Some(initial);
        self
    }

    /// Sets the state recovering processes rejoin into (see
    /// [`RunConfig::rejoin_state`]).
    #[must_use]
    pub fn rejoin_state(mut self, state: StateId) -> Self {
        self.config.rejoin_state = Some(state);
        self
    }

    /// Replaces the whole run configuration.
    #[must_use]
    pub fn config(mut self, config: RunConfig) -> Self {
        self.config = config;
        self
    }

    /// Caps the run at a period budget (see [`RunDeadline`]). A run that
    /// exhausts the budget returns a partial [`RunResult`] with
    /// [`RunStatus::Interrupted`].
    #[must_use]
    pub fn deadline(mut self, deadline: RunDeadline) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attaches an observer. Observers run in attachment order on every
    /// period.
    #[must_use]
    pub fn observe(mut self, observer: impl Observer + 'static) -> Self {
        self.observers.push(Box::new(observer));
        self
    }

    /// Attaches the standard recording set (counts of every process,
    /// transitions, alive counts, messages) in addition to whatever is
    /// already attached.
    #[must_use]
    pub fn record_defaults(mut self) -> Self {
        self.observers.extend(default_observers());
        self
    }

    /// Builds a runtime of type `R` from the protocol and configuration, and
    /// executes the run.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if the scenario or initial
    /// distribution is missing, plus anything the runtime reports.
    pub fn run<R: Runtime>(self) -> Result<RunResult> {
        let runtime = R::build(self.protocol.clone(), &self.config);
        self.execute(&runtime)
    }

    /// The fidelity tier [`run_auto`](Self::run_auto) would execute this
    /// simulation on, given the current scenario, initial distribution and
    /// observers (see [`FidelityTier`] for the policy).
    pub fn selected_tier(&self) -> FidelityTier {
        let effective = self.effective_scenario();
        auto_tier(
            &self.protocol,
            effective.as_ref().or(self.scenario.as_ref()),
            self.initial.as_ref(),
            self.observers.iter().any(|o| o.needs_membership()),
            self.budget,
        )
    }

    /// The scenario with the builder-level topology override applied, if
    /// both are present (`None` means: use the scenario as-is).
    fn effective_scenario(&self) -> Option<Scenario> {
        match (&self.scenario, self.topology) {
            (Some(scenario), Some(topology)) => Some(scenario.clone().with_topology(topology)),
            _ => None,
        }
    }

    /// Executes the run on the fastest fidelity that can serve it
    /// ([`selected_tier`](Self::selected_tier)): the count-batched
    /// [`BatchedRuntime`](super::BatchedRuntime) — whose cost per period is
    /// independent of the group size — when no attached observer needs
    /// per-process identity ([`Observer::needs_membership`]) and the
    /// scenario's environment is exchangeable
    /// ([`Scenario::count_level_compatible`]); the
    /// [`HybridRuntime`](super::HybridRuntime) when the environment is
    /// exchangeable but the run starts (and may end) in the small-count
    /// regime where mean-field batching is untrustworthy; the per-process
    /// [`AgentRuntime`](super::AgentRuntime) otherwise. An
    /// [`error_budget`](Self::error_budget) of [`ErrorBudget::Exact`] or
    /// [`ErrorBudget::Bounded`] replaces the count-threshold arbitration
    /// with the continuous-time tiers ([`SsaRuntime`](super::SsaRuntime),
    /// [`TauLeapRuntime`](super::TauLeapRuntime)) — the bounded budget's
    /// `ε` is threaded into the tau-leap runtime automatically.
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run).
    pub fn run_auto(mut self) -> Result<RunResult> {
        match self.selected_tier() {
            FidelityTier::Batched => self.run::<super::BatchedRuntime>(),
            FidelityTier::Hybrid => self.run::<super::HybridRuntime>(),
            FidelityTier::Agent => self.run::<super::AgentRuntime>(),
            FidelityTier::Sharded => self.run::<super::ShardedRuntime>(),
            FidelityTier::Async => self.run::<super::AsyncRuntime>(),
            FidelityTier::Ssa => self.run::<super::SsaRuntime>(),
            FidelityTier::TauLeap => {
                if let ErrorBudget::Bounded(epsilon) = self.budget {
                    self.config.tau_epsilon = Some(epsilon);
                }
                self.run::<super::TauLeapRuntime>()
            }
        }
    }

    /// Executes the run on a pre-built runtime (for runtime-specific knobs
    /// such as [`AggregateRuntime::with_alive_fraction`]).
    ///
    /// The runtime's protocol and configuration are used for execution: the
    /// runtime's protocol should match the one the simulation was built
    /// with, and a [`RunConfig`] set through this builder would be silently
    /// ignored — so combining builder-level configuration (e.g.
    /// [`rejoin_state`](Self::rejoin_state)) with `run_on` is rejected;
    /// configure the runtime directly instead.
    ///
    /// [`AggregateRuntime::with_alive_fraction`]:
    /// super::AggregateRuntime::with_alive_fraction
    ///
    /// # Errors
    ///
    /// Same as [`run`](Self::run), plus [`CoreError::InvalidConfig`] if a
    /// non-default [`RunConfig`] was set on the builder.
    pub fn run_on<R: Runtime>(self, runtime: &R) -> Result<RunResult> {
        if self.config != RunConfig::default() {
            return Err(CoreError::InvalidConfig {
                name: "config",
                reason: "run_on uses the pre-built runtime's configuration; \
                         set RunConfig on the runtime itself (or use run::<R>())"
                    .into(),
            });
        }
        self.execute(runtime)
    }

    fn execute<R: Runtime>(mut self, runtime: &R) -> Result<RunResult> {
        let mut scenario = self.scenario.take().ok_or(CoreError::InvalidConfig {
            name: "scenario",
            reason: "Simulation::scenario was not set".into(),
        })?;
        if let Some(topology) = self.topology.take() {
            scenario = scenario.with_topology(topology);
        }
        let initial = self.initial.take().ok_or(CoreError::InvalidConfig {
            name: "initial",
            reason: "Simulation::initial was not set".into(),
        })?;
        if self.observers.is_empty() {
            self.observers = default_observers();
        }
        drive_deadlined(
            runtime,
            &scenario,
            &initial,
            &mut self.observers,
            self.deadline,
        )
    }
}

/// Drives a full run: init, one `step` per scenario period, observer
/// callbacks after each period, and result assembly.
pub(crate) fn drive<R: Runtime>(
    runtime: &R,
    scenario: &Scenario,
    initial: &InitialStates,
    observers: &mut [Box<dyn Observer>],
) -> Result<RunResult> {
    drive_deadlined(runtime, scenario, initial, observers, None)
}

/// [`drive`] with an optional [`RunDeadline`]: when either budget stops the
/// run short of the scenario's horizon, the result is marked
/// [`RunStatus::Interrupted`] with the periods actually completed.
pub(crate) fn drive_deadlined<R: Runtime>(
    runtime: &R,
    scenario: &Scenario,
    initial: &InitialStates,
    observers: &mut [Box<dyn Observer>],
    deadline: Option<RunDeadline>,
) -> Result<RunResult> {
    let mut state = runtime.init(scenario, initial)?;
    let scheduled = scenario.periods();
    let budget = deadline
        .and_then(|d| d.period_budget())
        .map_or(scheduled, |b| b.min(scheduled));
    let wall = deadline.and_then(|d| d.wall_limit());
    let (mut result, completed) =
        drive_periods_walled(runtime, &mut state, budget, wall, observers)?;
    if completed < scheduled {
        result.status = RunStatus::Interrupted {
            completed_periods: completed,
        };
    }
    Ok(result)
}

/// Drives `periods` steps of an already initialized state (also used by the
/// aggregate runtime's scenario-free legacy entry point).
pub(crate) fn drive_periods<R: Runtime>(
    runtime: &R,
    state: &mut R::State,
    periods: u64,
    observers: &mut [Box<dyn Observer>],
) -> Result<RunResult> {
    Ok(drive_periods_walled(runtime, state, periods, None, observers)?.0)
}

/// [`drive_periods`] with an optional wall-clock limit checked at every
/// period boundary; returns the periods actually completed alongside the
/// result.
pub(crate) fn drive_periods_walled<R: Runtime>(
    runtime: &R,
    state: &mut R::State,
    periods: u64,
    wall: Option<std::time::Duration>,
    observers: &mut [Box<dyn Observer>],
) -> Result<(RunResult, u64)> {
    let started = std::time::Instant::now();
    let protocol = runtime.protocol();
    {
        let events = runtime.snapshot(state);
        for obs in observers.iter_mut() {
            obs.on_period(protocol, &events);
        }
    }
    let mut completed = 0;
    for _ in 0..periods {
        if wall.is_some_and(|limit| started.elapsed() >= limit) {
            break;
        }
        let events = runtime.step(state)?;
        for obs in observers.iter_mut() {
            obs.on_period(protocol, &events);
        }
        completed += 1;
    }
    let mut result = RunResult::new(protocol);
    for obs in observers.iter_mut() {
        obs.finish(&mut result);
    }
    Ok((result, completed))
}

#[cfg(test)]
mod tests {
    use super::super::{
        AgentRuntime, AggregateRuntime, CountsRecorder, PeriodEvents, TransitionRecorder,
    };
    use super::*;
    use crate::mapping::ProtocolCompiler;
    use odekit::system::EquationSystemBuilder;

    fn epidemic_protocol() -> Protocol {
        let sys = EquationSystemBuilder::new()
            .vars(["x", "y"])
            .term("x", -1.0, &[("x", 1), ("y", 1)])
            .term("y", 1.0, &[("x", 1), ("y", 1)])
            .build()
            .unwrap();
        ProtocolCompiler::new("epidemic").compile(&sys).unwrap()
    }

    #[test]
    fn missing_scenario_or_initial_is_an_error() {
        let err = Simulation::of(epidemic_protocol())
            .initial(InitialStates::counts(&[99, 1]))
            .run::<AgentRuntime>()
            .unwrap_err();
        assert!(matches!(
            err,
            CoreError::InvalidConfig {
                name: "scenario",
                ..
            }
        ));
        let err = Simulation::of(epidemic_protocol())
            .scenario(Scenario::new(100, 5).unwrap())
            .run::<AgentRuntime>()
            .unwrap_err();
        assert!(matches!(
            err,
            CoreError::InvalidConfig {
                name: "initial",
                ..
            }
        ));
    }

    #[test]
    fn run_on_rejects_builder_config_and_honors_runtime_knobs() {
        let protocol = epidemic_protocol();
        let y = protocol.require_state("y").unwrap();
        // A builder-level RunConfig would be silently ignored by run_on, so
        // the combination is rejected.
        let err = Simulation::of(protocol.clone())
            .scenario(Scenario::new(100, 5).unwrap())
            .initial(InitialStates::counts(&[99, 1]))
            .rejoin_state(y)
            .run_on(&AgentRuntime::new(protocol.clone()))
            .unwrap_err();
        assert!(matches!(
            err,
            CoreError::InvalidConfig { name: "config", .. }
        ));
        // Without builder config, run_on drives the pre-built runtime.
        let runtime = AggregateRuntime::new(protocol.clone())
            .with_alive_fraction(0.5)
            .unwrap();
        let result = Simulation::of(protocol)
            .scenario(Scenario::new(1_000, 5).unwrap())
            .initial(InitialStates::counts(&[499, 1]))
            .observe(CountsRecorder::new())
            .run_on(&runtime)
            .unwrap();
        assert_eq!(
            result.final_counts().unwrap().iter().sum::<f64>(),
            500.0,
            "alive fraction applied"
        );
    }

    #[test]
    fn default_observers_reproduce_the_legacy_recording() {
        let scenario = Scenario::new(256, 10).unwrap().with_seed(3);
        let initial = InitialStates::counts(&[255, 1]);
        let via_runtime = AgentRuntime::new(epidemic_protocol())
            .run(&scenario, &initial)
            .unwrap();
        let via_simulation = Simulation::of(epidemic_protocol())
            .scenario(scenario)
            .initial(initial)
            .run::<AgentRuntime>()
            .unwrap();
        assert_eq!(via_runtime, via_simulation);
    }

    #[test]
    fn opt_in_recording_skips_everything_else() {
        let result = Simulation::of(epidemic_protocol())
            .scenario(Scenario::new(128, 8).unwrap().with_seed(1))
            .initial(InitialStates::counts(&[127, 1]))
            .observe(TransitionRecorder::new())
            .run::<AgentRuntime>()
            .unwrap();
        // Only transitions were recorded: no counts, no metrics.
        assert!(result.counts.is_empty());
        assert_eq!(result.final_counts(), None);
        assert!(result.metrics.series_names().is_empty());
        assert!(result.total_transitions("x", "y") > 0.0);
    }

    #[test]
    fn the_same_simulation_runs_on_both_fidelities() {
        let build = || {
            Simulation::of(epidemic_protocol())
                .scenario(Scenario::new(20_000, 30).unwrap().with_seed(9))
                .initial(InitialStates::counts(&[19_990, 10]))
                .observe(CountsRecorder::new())
        };
        let agent = build().run::<AgentRuntime>().unwrap();
        let aggregate = build().run::<AggregateRuntime>().unwrap();
        let a = agent.final_counts().unwrap()[1];
        let b = aggregate.final_counts().unwrap()[1];
        assert!(a > 19_000.0 && b > 19_000.0, "both saturate: {a} vs {b}");
    }

    #[test]
    fn auto_tier_selection_policy() {
        use super::super::MembershipTracker;
        let protocol = epidemic_protocol();
        let y = protocol.require_state("y").unwrap();
        let scenario = || Scenario::new(10_000, 10).unwrap();

        // Regression: a *missing* scenario is trivially exchangeable (a
        // failure-free run) and must select the batched tier — it used to be
        // treated as incompatible and silently fell back to the slow agent
        // runtime.
        let no_scenario =
            Simulation::of(protocol.clone()).initial(InitialStates::counts(&[5_000, 5_000]));
        assert_eq!(no_scenario.selected_tier(), FidelityTier::Batched);

        // Exchangeable scenario, large balanced populations → batched.
        let large = Simulation::of(protocol.clone())
            .scenario(scenario())
            .initial(InitialStates::counts(&[5_000, 5_000]));
        assert_eq!(large.selected_tier(), FidelityTier::Batched);

        // A small initial population → the hybrid tier serves the
        // small-count regime without paying per-process cost throughout.
        let small = Simulation::of(protocol.clone())
            .scenario(scenario())
            .initial(InitialStates::counts(&[9_999, 1]));
        assert_eq!(small.selected_tier(), FidelityTier::Hybrid);

        // Fractions resolve against the group size: 0.1 % of 10 000 is 10,
        // below the threshold → hybrid.
        let fractions = Simulation::of(protocol.clone())
            .scenario(scenario())
            .initial(InitialStates::fractions(&[0.999, 0.001]));
        assert_eq!(fractions.selected_tier(), FidelityTier::Hybrid);

        // A missing initial distribution skips the small-count refinement.
        let no_initial = Simulation::of(protocol.clone()).scenario(scenario());
        assert_eq!(no_initial.selected_tier(), FidelityTier::Batched);

        // Membership-needing observers force the agent tier regardless.
        let tracked = Simulation::of(protocol.clone())
            .scenario(scenario())
            .initial(InitialStates::counts(&[9_999, 1]))
            .observe(MembershipTracker::of(y));
        assert_eq!(tracked.selected_tier(), FidelityTier::Agent);

        // Per-id failure schedules need host identity → agent.
        let mut schedule = netsim::FailureSchedule::new();
        schedule.add(1, netsim::FailureEvent::Crash(netsim::ProcessId(0)));
        let per_id = Simulation::of(protocol.clone())
            .scenario(scenario().with_failure_schedule(schedule).unwrap())
            .initial(InitialStates::counts(&[5_000, 5_000]));
        assert_eq!(per_id.selected_tier(), FidelityTier::Agent);

        // A sharded topology — whether baked into the scenario or set on the
        // builder — selects the sharded tier, even in the small-count regime.
        let baked = Simulation::of(protocol.clone())
            .scenario(scenario().with_topology(netsim::Topology::sharded(8, 0.01).unwrap()))
            .initial(InitialStates::counts(&[9_999, 1]));
        assert_eq!(baked.selected_tier(), FidelityTier::Sharded);
        let via_builder = Simulation::of(protocol.clone())
            .scenario(scenario())
            .initial(InitialStates::counts(&[5_000, 5_000]))
            .topology(netsim::Topology::sharded(4, 0.0).unwrap());
        assert_eq!(via_builder.selected_tier(), FidelityTier::Sharded);
        // ... and an explicit well-mixed builder topology overrides a sharded
        // scenario back onto the single-group tiers.
        let overridden = Simulation::of(protocol.clone())
            .scenario(scenario().with_topology(netsim::Topology::sharded(8, 0.01).unwrap()))
            .initial(InitialStates::counts(&[5_000, 5_000]))
            .topology(netsim::Topology::WellMixed);
        assert_eq!(overridden.selected_tier(), FidelityTier::Batched);

        // A transport model (link latency / drops / partitions) dominates
        // every other criterion: only the async runtime delivers messages,
        // so even the small-count and membership-tracking regimes yield.
        let transported = || {
            scenario()
                .with_transport(netsim::TransportConfig::default())
                .unwrap()
        };
        let asynchronous = Simulation::of(protocol.clone())
            .scenario(transported())
            .initial(InitialStates::counts(&[5_000, 5_000]));
        assert_eq!(asynchronous.selected_tier(), FidelityTier::Async);
        let small_async = Simulation::of(protocol.clone())
            .scenario(transported())
            .initial(InitialStates::counts(&[9_999, 1]));
        assert_eq!(small_async.selected_tier(), FidelityTier::Async);
        let tracked_async = Simulation::of(protocol)
            .scenario(transported())
            .initial(InitialStates::counts(&[9_999, 1]))
            .observe(MembershipTracker::of(y));
        assert_eq!(tracked_async.selected_tier(), FidelityTier::Async);
    }

    #[test]
    fn error_budget_tier_selection() {
        use super::super::{SsaRuntime, TauLeapRuntime};
        let protocol = epidemic_protocol();
        let build = |budget| {
            Simulation::of(protocol.clone())
                .scenario(Scenario::new(10_000, 10).unwrap())
                .initial(InitialStates::counts(&[5_000, 5_000]))
                .error_budget(budget)
        };
        // The default budget reproduces today's count-threshold policy.
        assert_eq!(
            build(ErrorBudget::Fast).selected_tier(),
            FidelityTier::Batched
        );
        assert_eq!(
            build(ErrorBudget::Fast)
                .initial(InitialStates::counts(&[9_999, 1]))
                .selected_tier(),
            FidelityTier::Hybrid
        );
        // Exact / bounded budgets select the continuous-time tiers,
        // regardless of population sizes.
        assert_eq!(build(ErrorBudget::Exact).selected_tier(), FidelityTier::Ssa);
        assert_eq!(
            build(ErrorBudget::Exact)
                .initial(InitialStates::counts(&[9_999, 1]))
                .selected_tier(),
            FidelityTier::Ssa
        );
        assert_eq!(
            build(ErrorBudget::Bounded(0.05)).selected_tier(),
            FidelityTier::TauLeap
        );
        // Feature-requiring scenarios dominate the budget: only their tier
        // can serve them.
        let transported = Simulation::of(protocol.clone())
            .scenario(
                Scenario::new(10_000, 10)
                    .unwrap()
                    .with_transport(netsim::TransportConfig::default())
                    .unwrap(),
            )
            .initial(InitialStates::counts(&[5_000, 5_000]))
            .error_budget(ErrorBudget::Exact);
        assert_eq!(transported.selected_tier(), FidelityTier::Async);
        let sharded = Simulation::of(protocol.clone())
            .scenario(
                Scenario::new(10_000, 10)
                    .unwrap()
                    .with_topology(netsim::Topology::sharded(4, 0.01).unwrap()),
            )
            .initial(InitialStates::counts(&[5_000, 5_000]))
            .error_budget(ErrorBudget::Bounded(0.05));
        assert_eq!(sharded.selected_tier(), FidelityTier::Sharded);

        // And the losers reject those scenarios cleanly rather than
        // silently simulating a different network.
        let transported_scenario = Scenario::new(100, 5)
            .unwrap()
            .with_transport(netsim::TransportConfig::default())
            .unwrap();
        let err = Simulation::of(protocol.clone())
            .scenario(transported_scenario)
            .initial(InitialStates::counts(&[99, 1]))
            .run::<SsaRuntime>()
            .unwrap_err();
        assert!(matches!(
            err,
            CoreError::InvalidConfig {
                name: "scenario",
                ..
            }
        ));
        let sharded_scenario = Scenario::new(100, 5)
            .unwrap()
            .with_topology(netsim::Topology::sharded(4, 0.01).unwrap());
        let err = Simulation::of(protocol)
            .scenario(sharded_scenario)
            .initial(InitialStates::counts(&[99, 1]))
            .run::<TauLeapRuntime>()
            .unwrap_err();
        assert!(matches!(
            err,
            CoreError::InvalidConfig {
                name: "scenario",
                ..
            }
        ));
    }

    #[test]
    fn combined_features_pick_one_winner_and_losers_reject() {
        use super::super::{AsyncRuntime, BatchedRuntime, ShardedRuntime};
        let protocol = epidemic_protocol();
        let initial = || InitialStates::counts(&[990, 10]);
        let adversary = || netsim::adversary::ObliviousSchedule::new();

        // Transport + adversary → async wins; the period-synchronized tiers
        // reject the transport model.
        let transport_adversary = || {
            Scenario::new(1_000, 10)
                .unwrap()
                .with_transport(netsim::TransportConfig::default())
                .unwrap()
                .with_adversary(adversary())
        };
        let sim = Simulation::of(protocol.clone())
            .scenario(transport_adversary())
            .initial(initial());
        assert_eq!(sim.selected_tier(), FidelityTier::Async);
        sim.run::<AsyncRuntime>().unwrap();
        assert!(Simulation::of(protocol.clone())
            .scenario(transport_adversary())
            .initial(initial())
            .run::<BatchedRuntime>()
            .is_err());
        assert!(Simulation::of(protocol.clone())
            .scenario(transport_adversary())
            .initial(initial())
            .run::<ShardedRuntime>()
            .is_err());

        // Sharded + adversary → sharded wins; single-group tiers reject the
        // topology.
        let sharded_adversary = || {
            Scenario::new(1_000, 10)
                .unwrap()
                .with_topology(netsim::Topology::sharded(4, 0.05).unwrap())
                .with_adversary(adversary())
        };
        let sim = Simulation::of(protocol.clone())
            .scenario(sharded_adversary())
            .initial(initial());
        assert_eq!(sim.selected_tier(), FidelityTier::Sharded);
        sim.run::<ShardedRuntime>().unwrap();
        assert!(Simulation::of(protocol.clone())
            .scenario(sharded_adversary())
            .initial(initial())
            .run::<BatchedRuntime>()
            .is_err());

        // Transport + sharded topology: transport dominates (checked first),
        // and the sharded runtime rejects the transport model it cannot
        // honour (the async runtime in turn rejects sharded topologies, so
        // the combination is not silently servable by either alone — the
        // winner reports the conflict loudly at run time).
        let transport_sharded = || {
            Scenario::new(1_000, 10)
                .unwrap()
                .with_topology(netsim::Topology::sharded(4, 0.05).unwrap())
                .with_transport(netsim::TransportConfig::default())
                .unwrap()
        };
        let sim = Simulation::of(protocol.clone())
            .scenario(transport_sharded())
            .initial(initial());
        assert_eq!(sim.selected_tier(), FidelityTier::Async);
        assert!(Simulation::of(protocol)
            .scenario(transport_sharded())
            .initial(initial())
            .run::<ShardedRuntime>()
            .is_err());
    }

    #[test]
    fn run_auto_threads_the_bounded_epsilon_and_default_is_bit_for_bit() {
        // Bounded budget: run_auto executes on the tau-leap tier (smoke: the
        // run completes and conserves counts).
        let bounded = Simulation::of(epidemic_protocol())
            .scenario(Scenario::new(5_000, 15).unwrap().with_seed(8))
            .initial(InitialStates::counts(&[4_000, 1_000]))
            .error_budget(ErrorBudget::Bounded(0.05))
            .observe(CountsRecorder::new())
            .run_auto()
            .unwrap();
        assert_eq!(bounded.final_counts().unwrap().iter().sum::<f64>(), 5_000.0);
        // The default budget reproduces the historical selection exactly:
        // same seeds, same tier, same draws — bit-for-bit equal results.
        let build = || {
            Simulation::of(epidemic_protocol())
                .scenario(Scenario::new(5_000, 15).unwrap().with_seed(8))
                .initial(InitialStates::counts(&[4_000, 1_000]))
                .observe(CountsRecorder::new())
        };
        let auto = build().run_auto().unwrap();
        let batched = build().run::<super::super::BatchedRuntime>().unwrap();
        assert_eq!(auto, batched);
    }

    #[test]
    fn run_auto_without_scenario_reports_the_missing_scenario() {
        // The batched tier is selected (see above), and the run itself still
        // fails loudly on the absent scenario rather than panicking.
        let err = Simulation::of(epidemic_protocol())
            .initial(InitialStates::counts(&[99, 1]))
            .run_auto()
            .unwrap_err();
        assert!(matches!(
            err,
            CoreError::InvalidConfig {
                name: "scenario",
                ..
            }
        ));
    }

    #[test]
    fn run_auto_picks_a_fidelity_that_serves_the_observers() {
        use super::super::MembershipTracker;
        let protocol = epidemic_protocol();
        let y = protocol.require_state("y").unwrap();
        // Exchangeable scenario + counts only → batched (no membership view,
        // so a MembershipTracker-free run records everything it asked for).
        let counts_only = Simulation::of(protocol.clone())
            .scenario(Scenario::new(50_000, 25).unwrap().with_seed(1))
            .initial(InitialStates::counts(&[49_990, 10]))
            .observe(CountsRecorder::new())
            .run_auto()
            .unwrap();
        assert!(counts_only.final_counts().unwrap()[1] > 49_000.0);

        // A membership-needing observer forces the agent fidelity: snapshots
        // are recorded, which the batched runtime could never produce.
        let tracked = Simulation::of(protocol.clone())
            .scenario(Scenario::new(500, 10).unwrap().with_seed(2))
            .initial(InitialStates::counts(&[499, 1]))
            .observe(CountsRecorder::new())
            .observe(MembershipTracker::of(y))
            .run_auto()
            .unwrap();
        assert_eq!(tracked.tracked_members.len(), 11);

        // A per-id failure schedule forces the agent fidelity too.
        let mut schedule = netsim::FailureSchedule::new();
        schedule.add(1, netsim::FailureEvent::Crash(netsim::ProcessId(0)));
        let per_id = Simulation::of(protocol)
            .scenario(
                Scenario::new(500, 10)
                    .unwrap()
                    .with_failure_schedule(schedule)
                    .unwrap()
                    .with_seed(3),
            )
            .initial(InitialStates::counts(&[499, 1]))
            .observe(CountsRecorder::alive_only())
            .run_auto()
            .unwrap();
        assert_eq!(
            per_id.final_counts().unwrap().iter().sum::<f64>(),
            499.0,
            "the scheduled per-id crash was applied"
        );
    }

    #[test]
    fn a_deadline_degrades_to_a_partial_result_with_explicit_status() {
        use super::super::RunStatus;
        let build = |periods| {
            Simulation::of(epidemic_protocol())
                .scenario(Scenario::new(512, periods).unwrap().with_seed(4))
                .initial(InitialStates::counts(&[511, 1]))
                .observe(CountsRecorder::new())
        };
        // Budget below the horizon: the run stops early, keeps what was
        // recorded, and says so.
        let partial = build(30)
            .deadline(RunDeadline::periods(12))
            .run::<AgentRuntime>()
            .unwrap();
        assert_eq!(
            partial.status,
            RunStatus::Interrupted {
                completed_periods: 12
            }
        );
        assert!(!partial.status.is_completed());
        assert_eq!(partial.counts.len(), 13, "snapshot + 12 periods");
        // A deadlined run is exactly a prefix of the full run.
        let full = build(30).run::<AgentRuntime>().unwrap();
        assert_eq!(full.status, RunStatus::Completed);
        assert_eq!(partial.counts.states(), &full.counts.states()[..13]);
        // A budget at (or above) the horizon changes nothing.
        let covered = build(30)
            .deadline(RunDeadline::periods(64))
            .run::<AgentRuntime>()
            .unwrap();
        assert_eq!(covered, full);
    }

    #[test]
    fn a_wall_clock_deadline_stops_a_slow_run_at_a_period_boundary() {
        use super::super::RunStatus;
        // The observer makes every period take ≥ 20 ms, so a 50 ms wall
        // budget must stop the 100-period run after a handful of them —
        // with everything recorded so far kept and the truncation explicit.
        struct Molasses;
        impl Observer for Molasses {
            fn on_period(&mut self, _protocol: &Protocol, _events: &PeriodEvents<'_>) {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            fn finish(&mut self, _result: &mut RunResult) {}
        }
        let result = Simulation::of(epidemic_protocol())
            .scenario(Scenario::new(128, 100).unwrap().with_seed(6))
            .initial(InitialStates::counts(&[127, 1]))
            .observe(CountsRecorder::new())
            .observe(Molasses)
            .deadline(RunDeadline::wall_clock(std::time::Duration::from_millis(
                50,
            )))
            .run::<AgentRuntime>()
            .unwrap();
        let RunStatus::Interrupted { completed_periods } = result.status else {
            panic!("a 2-second run must blow a 50 ms wall budget");
        };
        assert!(
            completed_periods < 100,
            "interrupted well short of the horizon"
        );
        assert_eq!(
            result.counts.len() as u64,
            completed_periods + 1,
            "snapshot plus every completed period was recorded"
        );
        // A generous wall budget composed onto a period budget leaves the
        // deterministic period semantics untouched.
        let both = Simulation::of(epidemic_protocol())
            .scenario(Scenario::new(128, 30).unwrap().with_seed(6))
            .initial(InitialStates::counts(&[127, 1]))
            .observe(CountsRecorder::new())
            .deadline(RunDeadline::periods(12).and_wall_clock(std::time::Duration::from_secs(3600)))
            .run::<AgentRuntime>()
            .unwrap();
        assert_eq!(
            both.status,
            RunStatus::Interrupted {
                completed_periods: 12
            }
        );
    }

    #[test]
    fn custom_observers_can_record_into_metrics() {
        struct PeakInfected(f64);
        impl Observer for PeakInfected {
            fn on_period(&mut self, _protocol: &Protocol, events: &PeriodEvents<'_>) {
                self.0 = self.0.max(events.counts[1] as f64);
            }
            fn finish(&mut self, result: &mut RunResult) {
                result.metrics.record("peak_infected", 0, self.0);
            }
        }
        let result = Simulation::of(epidemic_protocol())
            .scenario(Scenario::new(512, 20).unwrap().with_seed(2))
            .initial(InitialStates::counts(&[511, 1]))
            .observe(PeakInfected(0.0))
            .run::<AgentRuntime>()
            .unwrap();
        assert!(result.metrics.last("peak_infected").unwrap() > 500.0);
    }

    #[test]
    fn debug_formats() {
        let sim = Simulation::of(epidemic_protocol()).record_defaults();
        let dbg = format!("{sim:?}");
        assert!(dbg.contains("Simulation") && dbg.contains("observers"));
    }
}
