//! The hybrid fidelity runtime: count-batched while counts are large, exact
//! per-process when any state runs small.

use super::observer::default_observers;
use super::simulation::drive;
use super::{
    AgentRuntime, AgentState, BatchedRuntime, BatchedState, InitialStates, PeriodEvents, RunConfig,
    RunResult, Runtime,
};
use crate::action::Action;
use crate::state_machine::{Protocol, StateId};
use crate::Result;
use netsim::Scenario;

/// Default per-state alive-count threshold below which the hybrid runtime
/// runs at membership fidelity.
///
/// Tied to [`netsim::stochastic::NORMAL_APPROX_CUTOFF`]: above this count the
/// batched runtime's binomial/normal machinery operates in its
/// large-population regime (the N→∞ limit in which mean-field batching is
/// exact up to O(1/N) corrections), below it small-count effects — extinction,
/// tie-breaking, takeover — need per-process trials.
pub const SMALL_COUNT_THRESHOLD: u64 = netsim::stochastic::NORMAL_APPROX_CUTOFF as u64;

/// Executes a protocol at the fastest fidelity that is trustworthy for the
/// *current* population: periods advance on the count-batched
/// [`BatchedRuntime`] while every per-state alive count is at or above a
/// configurable threshold (default [`SMALL_COUNT_THRESHOLD`] = 30, the
/// normal-approximation cutoff of `netsim`'s samplers), and hand off
/// losslessly to the per-process [`AgentRuntime`] whenever any count falls
/// below it — switching back once every count recovers.
///
/// # Why
///
/// The batched runtime's binomial/normal draws are mean-field machinery:
/// they are only trustworthy while per-state counts are large — exactly the
/// N→∞ regime in which population-protocol dynamics converge to their ODE
/// limit. The phenomena that make small counts interesting (LV majority
/// tie-breaking, post-massive-failure recovery, endemic extinction) live
/// where some state's count is *small*, so a run that starts or ends in the
/// small-count regime previously had to pay per-process cost for its whole
/// horizon. The hybrid runtime pays it only for the periods that need it.
///
/// # The handoff is lossless (exchangeability)
///
/// * **counts → membership.** Every count-level-compatible environment and
///   every compiled protocol treats processes exchangeably, so conditioned
///   on the per-state (alive, crashed) counts, the process-level
///   configuration is uniform over all assignments realizing those counts.
///   The handoff draws one such assignment uniformly at random (a joint
///   shuffle of the `(state, crashed)` labels over ids), which is a
///   refinement, not an approximation: the joint law of every count-level
///   observable — and hence of the rest of the run — is exactly the law the
///   batched runtime would have continued under, now computed at per-process
///   fidelity.
/// * **membership → counts.** The reverse direction is a projection: the
///   batched state *is* the per-state count vector, which the agent state
///   maintains incrementally anyway. Nothing is sampled; determinism per
///   seed is preserved across both directions.
///
/// Fidelity decisions are made at period boundaries on start-of-period
/// counts, so a failure event that empties a state is executed by the active
/// fidelity and triggers the handoff on the next period. Upgrades back to
/// count level use a hysteresis band (every count must reach **twice** the
/// threshold) so a count hovering at the boundary does not ping-pong the
/// run between fidelities every period.
///
/// **Permanently empty states are exempt.** The thresholds apply only to
/// states that can ever hold processes again, computed as a fixpoint over
/// the protocol's action graph: a state is *live* if it currently holds any
/// process (alive or crashed), is the rejoin target while anyone is
/// crashed, or is the destination of an action whose executor state and
/// sampled prerequisites are all live. A state outside the fixpoint — the
/// susceptible pool after an epidemic absorbs, the loser after an LV race
/// resolves — is pinned at an exact zero that count-level arithmetic
/// represents perfectly, so the long post-absorption tail upgrades back to
/// the batched engine instead of sweeping N processes forever.
///
/// # Observer stream
///
/// Observers see one coherent [`PeriodEvents`] stream across switches:
/// `period` keeps counting, `counts` are total per-state populations and
/// `counts_alive` the alive-only ones in both modes, and transition tallies
/// carry the same semantics. Two fields are fidelity-dependent:
/// [`PeriodEvents::membership`] is `Some` only during membership segments
/// (which is why [`Simulation::run_auto`](super::Simulation::run_auto) never
/// picks the hybrid tier for membership-needing observers), and `messages`
/// switches between the agent runtime's exact tally and the batched
/// runtime's expectation.
///
/// Scenarios that name specific processes (per-id failure schedules, churn
/// traces) force membership fidelity for the whole run — the hybrid runtime
/// accepts them but never batches, exactly like running [`AgentRuntime`]
/// directly.
///
/// # Examples
///
/// ```
/// use dpde_core::{ProtocolCompiler, runtime::{HybridRuntime, InitialStates}};
/// use netsim::Scenario;
/// use odekit::parse::parse_system;
///
/// let sys = parse_system("x' = -x*y\ny' = x*y", &[])?;
/// let protocol = ProtocolCompiler::new("epidemic").compile(&sys)?;
/// // One initial infective at N = 100 000: the run starts at membership
/// // fidelity (y = 1 is far below the threshold), upgrades to count level
/// // once the epidemic takes off, downgrades for the susceptibles'
/// // extinction window, and batches the absorbed tail.
/// let scenario = Scenario::new(100_000, 40)?.with_seed(7);
/// let result = HybridRuntime::new(protocol)
///     .run(&scenario, &InitialStates::counts(&[99_999, 1]))?;
/// assert!(result.final_counts().expect("counts recorded")[1] > 99_000.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct HybridRuntime {
    agent: AgentRuntime,
    batched: BatchedRuntime,
    config: RunConfig,
    threshold: u64,
}

/// Which fidelity a [`HybridState`] is currently executing at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HybridFidelity {
    /// Count-batched: per-state count vectors, cost independent of N.
    CountLevel,
    /// Per-process: explicit membership, exact small-count dynamics.
    Membership,
}

/// The mutable execution state of a [`HybridRuntime`] run: the active
/// fidelity's state plus handoff bookkeeping.
#[derive(Debug, Clone)]
pub struct HybridState {
    scenario: Scenario,
    mode: Mode,
    /// `true` when the scenario needs host identity throughout (per-id
    /// schedules, churn traces): the run never upgrades to count level.
    locked_membership: bool,
    /// Scratch for the per-period liveness fixpoint (states that can ever
    /// hold processes again).
    live: Vec<bool>,
    to_membership: u64,
    to_count_level: u64,
}

#[derive(Debug, Clone)]
enum Mode {
    // Both states are large (scratch buffers, scenario clones); boxing keeps
    // the enum small and handoffs are rare.
    Batched(Box<BatchedState>),
    Agent(Box<AgentState>),
}

impl HybridState {
    /// The next period to execute (also the number of periods executed).
    pub fn period(&self) -> u64 {
        match &self.mode {
            Mode::Batched(b) => b.period(),
            Mode::Agent(a) => a.period(),
        }
    }

    /// The fidelity the next period will start from.
    pub fn fidelity(&self) -> HybridFidelity {
        match &self.mode {
            Mode::Batched(_) => HybridFidelity::CountLevel,
            Mode::Agent(_) => HybridFidelity::Membership,
        }
    }

    /// Handoffs performed so far, as `(to_membership, to_count_level)` —
    /// both are non-zero in runs that cross the boundary in both directions.
    pub fn handoffs(&self) -> (u64, u64) {
        (self.to_membership, self.to_count_level)
    }
}

impl HybridRuntime {
    /// Creates a hybrid runtime with the default [`RunConfig`] and the
    /// default fidelity threshold ([`SMALL_COUNT_THRESHOLD`]).
    pub fn new(protocol: Protocol) -> Self {
        HybridRuntime {
            agent: AgentRuntime::new(protocol.clone()),
            batched: BatchedRuntime::new(protocol),
            config: RunConfig::default(),
            threshold: SMALL_COUNT_THRESHOLD,
        }
    }

    /// Replaces the run configuration ([`RunConfig::rejoin_state`] steers
    /// where recovering processes land, at both fidelities).
    #[must_use]
    pub fn with_config(mut self, config: RunConfig) -> Self {
        self.agent = self.agent.with_config(config.clone());
        self.batched = self.batched.with_config(config.clone());
        self.config = config;
        self
    }

    /// Replaces the fidelity threshold: membership fidelity whenever any
    /// per-state alive count is below `threshold`, count level once every
    /// count reaches `2 × threshold`. `0` never leaves count level; a
    /// threshold above the group size never leaves membership.
    #[must_use]
    pub fn with_threshold(mut self, threshold: u64) -> Self {
        self.threshold = threshold;
        self
    }

    /// The fidelity threshold in use.
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// The protocol being executed.
    pub fn protocol(&self) -> &Protocol {
        self.agent.protocol()
    }

    /// Runs the protocol under the given scenario and initial state
    /// distribution with the standard recording set (counts, transitions,
    /// alive counts, messages).
    ///
    /// For opt-in recording or custom observers use
    /// [`Simulation`](super::Simulation).
    ///
    /// # Errors
    ///
    /// Returns configuration errors (mismatched initial distribution, invalid
    /// protocol) and propagates scenario errors.
    pub fn run(&self, scenario: &Scenario, initial: &InitialStates) -> Result<RunResult> {
        drive(self, scenario, initial, &mut default_observers())
    }

    /// Marks which states can ever hold processes again given the current
    /// occupancy: the fixpoint of "currently occupied (alive or crashed), or
    /// the rejoin target while anyone is crashed, or the destination of an
    /// action whose executor state and sampled prerequisites are all
    /// marked". States outside the fixpoint are permanently empty — their
    /// zero count is exact at count level, so [`needs_membership`] and
    /// [`can_batch`] ignore them (an absorbed epidemic must not pin the rest
    /// of the run at membership fidelity).
    ///
    /// [`needs_membership`]: Self::needs_membership
    /// [`can_batch`]: Self::can_batch
    fn mark_live(&self, counts_alive: &[u64], counts_total: &[u64], live: &mut [bool]) {
        for (mark, &total) in live.iter_mut().zip(counts_total) {
            *mark = total > 0;
        }
        if let Some(rejoin) = self.config.rejoin_state {
            let crashed_exist = counts_total.iter().sum::<u64>() > counts_alive.iter().sum::<u64>();
            if crashed_exist {
                live[rejoin.index()] = true;
            }
        }
        let protocol = self.protocol();
        loop {
            let mut changed = false;
            for s in 0..live.len() {
                if !live[s] {
                    continue;
                }
                for action in protocol.actions(StateId::new(s)) {
                    let (possible, dest) = match action {
                        Action::Flip { to, .. } => (true, *to),
                        Action::Sample { required, to, .. } => {
                            (required.iter().all(|r| live[r.index()]), *to)
                        }
                        Action::SampleAny {
                            target_state, to, ..
                        }
                        | Action::PushSample {
                            target_state, to, ..
                        } => (live[target_state.index()], *to),
                        Action::Tokenize {
                            required,
                            token_state,
                            to,
                            ..
                        } => (
                            required.iter().all(|r| live[r.index()]) && live[token_state.index()],
                            *to,
                        ),
                    };
                    if possible && !live[dest.index()] {
                        live[dest.index()] = true;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// `true` if any live state's alive count is below the threshold —
    /// membership fidelity is required.
    fn needs_membership(&self, counts_alive: &[u64], live: &[bool]) -> bool {
        counts_alive
            .iter()
            .zip(live)
            .any(|(&k, &l)| l && k < self.threshold)
    }

    /// `true` if every live state's alive count allows an upgrade back to
    /// count level (hysteresis: twice the threshold).
    fn can_batch(&self, counts_alive: &[u64], live: &[bool]) -> bool {
        let floor = self.threshold.saturating_mul(2);
        counts_alive
            .iter()
            .zip(live)
            .all(|(&k, &l)| !l || k >= floor)
    }

    /// Performs a handoff if the start-of-period counts demand one.
    fn rebalance(&self, state: &mut HybridState) {
        if state.locked_membership {
            return;
        }
        let HybridState {
            ref scenario,
            ref mode,
            ref mut live,
            ..
        } = *state;
        let switched = match mode {
            Mode::Batched(b) => {
                self.mark_live(b.alive_counts(), b.total_counts(), live);
                self.needs_membership(b.alive_counts(), live).then(|| {
                    Mode::Agent(Box::new(self.agent.state_from_counts(
                        scenario,
                        b.alive_counts(),
                        b.crashed_counts(),
                        b.period(),
                        b.rng_clone(),
                    )))
                })
            }
            Mode::Agent(a) => {
                self.mark_live(a.alive_counts(), a.total_counts(), live);
                self.can_batch(a.alive_counts(), live).then(|| {
                    Mode::Batched(Box::new(self.batched.state_from_counts(
                        scenario,
                        a.alive_counts().to_vec(),
                        a.crashed_counts(),
                        a.period(),
                        a.rng_clone(),
                    )))
                })
            }
        };
        if let Some(mut mode) = switched {
            // The adversary's strategy state (cascading hazard, strike
            // counters, decision PRNG position) must survive the fidelity
            // switch: hand the live injection point over instead of keeping
            // the fresh fork `state_from_counts` installs.
            let injector = match &mut state.mode {
                Mode::Batched(b) => b.take_injector(),
                Mode::Agent(a) => a.take_injector(),
            };
            match &mut mode {
                Mode::Agent(a) => {
                    a.set_injector(injector);
                    state.to_membership += 1;
                }
                Mode::Batched(b) => {
                    b.set_injector(injector);
                    state.to_count_level += 1;
                }
            }
            state.mode = mode;
        }
    }
}

impl Runtime for HybridRuntime {
    type State = HybridState;

    fn build(protocol: Protocol, config: &RunConfig) -> Self {
        HybridRuntime::new(protocol).with_config(config.clone())
    }

    fn protocol(&self) -> &Protocol {
        self.agent.protocol()
    }

    fn init(&self, scenario: &Scenario, initial: &InitialStates) -> Result<HybridState> {
        super::reject_sharded(scenario, "hybrid")?;
        super::reject_transport(scenario, "hybrid")?;
        let locked_membership = !scenario.count_level_compatible();
        let counts = initial.resolve(self.protocol().num_states(), scenario.group_size() as u64)?;
        let mut live = vec![false; counts.len()];
        self.mark_live(&counts, &counts, &mut live);
        let mode = if locked_membership || self.needs_membership(&counts, &live) {
            Mode::Agent(Box::new(self.agent.init(scenario, initial)?))
        } else {
            Mode::Batched(Box::new(self.batched.init(scenario, initial)?))
        };
        Ok(HybridState {
            scenario: scenario.clone(),
            mode,
            locked_membership,
            live,
            to_membership: 0,
            to_count_level: 0,
        })
    }

    fn step<'s>(&self, state: &'s mut HybridState) -> Result<PeriodEvents<'s>> {
        self.rebalance(state);
        match &mut state.mode {
            Mode::Batched(b) => self.batched.step(b),
            Mode::Agent(a) => self.agent.step(a),
        }
    }

    fn snapshot<'s>(&self, state: &'s HybridState) -> PeriodEvents<'s> {
        match &state.mode {
            Mode::Batched(b) => self.batched.snapshot(b),
            Mode::Agent(a) => self.agent.snapshot(a),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::ProtocolCompiler;
    use crate::runtime::{CountsRecorder, Ensemble, Simulation};
    use odekit::system::EquationSystemBuilder;

    fn epidemic_protocol() -> Protocol {
        let sys = EquationSystemBuilder::new()
            .vars(["x", "y"])
            .term("x", -1.0, &[("x", 1), ("y", 1)])
            .term("y", 1.0, &[("x", 1), ("y", 1)])
            .build()
            .unwrap();
        ProtocolCompiler::new("epidemic").compile(&sys).unwrap()
    }

    #[test]
    fn crosses_the_handoff_in_both_directions() {
        // One infective at N = 50 000: membership (y = 1) → count level
        // (both populations large) → membership again (x goes extinct).
        let protocol = epidemic_protocol();
        let scenario = Scenario::new(50_000, 40).unwrap().with_seed(5);
        let runtime = HybridRuntime::new(protocol);
        let mut state = runtime
            .init(&scenario, &InitialStates::counts(&[49_999, 1]))
            .unwrap();
        assert_eq!(state.fidelity(), HybridFidelity::Membership);
        let mut fidelities = Vec::new();
        for _ in 0..scenario.periods() {
            runtime.step(&mut state).unwrap();
            fidelities.push(state.fidelity());
        }
        let (to_membership, to_count_level) = state.handoffs();
        assert!(
            to_count_level >= 1 && to_membership >= 1,
            "expected both handoff directions, got {to_membership} to membership, \
             {to_count_level} to count level (fidelities {fidelities:?})"
        );
        // The epidemic still saturates across the switches.
        let events = runtime.snapshot(&state);
        assert!(events.counts[1] > 49_000);
        assert_eq!(events.counts[0] + events.counts[1], 50_000);
    }

    #[test]
    fn fixed_seed_is_deterministic_across_handoffs() {
        let protocol = epidemic_protocol();
        // Crosses the boundary in both directions (see above), so the
        // determinism claim covers the handoff machinery itself.
        let scenario = Scenario::new(20_000, 60).unwrap().with_seed(11);
        let initial = InitialStates::counts(&[19_999, 1]);
        let build = || {
            Simulation::of(protocol.clone())
                .scenario(scenario.clone())
                .initial(initial.clone())
                .record_defaults()
                .run::<HybridRuntime>()
                .unwrap()
        };
        let a = build();
        let b = build();
        assert_eq!(a, b);
        // A different seed produces a different trajectory.
        let c = Simulation::of(protocol)
            .scenario(scenario.with_seed(12))
            .initial(initial)
            .record_defaults()
            .run::<HybridRuntime>()
            .unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn large_counts_stay_at_count_level() {
        // An inert protocol keeps both populations fixed and large: the run
        // must never leave count level.
        let protocol = Protocol::new("inert", vec!["x".into(), "y".into()]).unwrap();
        let scenario = Scenario::new(100_000, 30).unwrap().with_seed(3);
        let runtime = HybridRuntime::new(protocol);
        let mut state = runtime
            .init(&scenario, &InitialStates::counts(&[50_000, 50_000]))
            .unwrap();
        assert_eq!(state.fidelity(), HybridFidelity::CountLevel);
        for _ in 0..30 {
            runtime.step(&mut state).unwrap();
            assert_eq!(state.fidelity(), HybridFidelity::CountLevel);
        }
        assert_eq!(state.handoffs(), (0, 0));
    }

    #[test]
    fn absorbed_states_release_the_run_back_to_count_level() {
        // After the epidemic absorbs (susceptibles extinct), x can never
        // refill — the only edge into x is the identity and the only edge
        // out of y does not exist. Its pinned zero is exact at count level,
        // so the tail upgrades back to the batched engine instead of
        // sweeping all N processes every remaining period.
        let protocol = epidemic_protocol();
        let scenario = Scenario::new(50_000, 80).unwrap().with_seed(5);
        let runtime = HybridRuntime::new(protocol);
        let mut state = runtime
            .init(&scenario, &InitialStates::counts(&[49_999, 1]))
            .unwrap();
        for _ in 0..80 {
            runtime.step(&mut state).unwrap();
        }
        let events = runtime.snapshot(&state);
        assert_eq!(events.counts[0], 0, "epidemic absorbed");
        assert_eq!(state.fidelity(), HybridFidelity::CountLevel);
        let (to_membership, to_count_level) = state.handoffs();
        assert!(
            to_membership >= 1 && to_count_level >= 2,
            "expected membership start, batched middle, membership extinction \
             window, batched tail; got {to_membership} to membership, \
             {to_count_level} to count level"
        );
    }

    #[test]
    fn structurally_dead_states_never_force_membership() {
        // y starts empty and the only infection route samples y itself, so
        // y can never fire: its zero is exact and the run stays batched.
        let protocol = epidemic_protocol();
        let scenario = Scenario::new(10_000, 20).unwrap().with_seed(6);
        let runtime = HybridRuntime::new(protocol);
        let mut state = runtime
            .init(&scenario, &InitialStates::counts(&[10_000, 0]))
            .unwrap();
        for _ in 0..20 {
            runtime.step(&mut state).unwrap();
            assert_eq!(state.fidelity(), HybridFidelity::CountLevel);
        }
        assert_eq!(runtime.snapshot(&state).counts, &[10_000, 0]);
    }

    #[test]
    fn threshold_knobs_pin_the_fidelity() {
        let protocol = epidemic_protocol();
        let scenario = Scenario::new(1_000, 10).unwrap().with_seed(1);
        let initial = InitialStates::counts(&[999, 1]);
        // Threshold 0: never needs membership.
        let always_batched = HybridRuntime::new(protocol.clone()).with_threshold(0);
        assert_eq!(always_batched.threshold(), 0);
        let mut state = always_batched.init(&scenario, &initial).unwrap();
        for _ in 0..10 {
            always_batched.step(&mut state).unwrap();
            assert_eq!(state.fidelity(), HybridFidelity::CountLevel);
        }
        // Threshold above N: never upgrades.
        let always_agent = HybridRuntime::new(protocol).with_threshold(10_000);
        let mut state = always_agent.init(&scenario, &initial).unwrap();
        for _ in 0..10 {
            always_agent.step(&mut state).unwrap();
            assert_eq!(state.fidelity(), HybridFidelity::Membership);
        }
        assert_eq!(state.handoffs(), (0, 0));
    }

    #[test]
    fn identity_scenarios_lock_membership_fidelity() {
        let protocol = epidemic_protocol();
        let mut schedule = netsim::FailureSchedule::new();
        schedule.add(2, netsim::FailureEvent::Crash(netsim::ProcessId(0)));
        let scenario = Scenario::new(5_000, 10)
            .unwrap()
            .with_failure_schedule(schedule)
            .unwrap()
            .with_seed(2);
        let runtime = HybridRuntime::new(epidemic_protocol());
        // Counts are large, but the per-id schedule forces membership.
        let mut state = runtime
            .init(&scenario, &InitialStates::counts(&[2_500, 2_500]))
            .unwrap();
        assert_eq!(state.fidelity(), HybridFidelity::Membership);
        for _ in 0..10 {
            runtime.step(&mut state).unwrap();
            assert_eq!(state.fidelity(), HybridFidelity::Membership);
        }
        let events = runtime.snapshot(&state);
        assert_eq!(events.alive, 4_999, "the scheduled crash was applied");
        assert_eq!(protocol.num_states(), runtime.protocol().num_states());
    }

    #[test]
    fn massive_failure_can_trigger_the_downgrade() {
        // A 99.9 % massive failure drops every state below the threshold:
        // the next period must run at membership fidelity.
        let protocol = epidemic_protocol();
        let scenario = Scenario::new(20_000, 10)
            .unwrap()
            .with_massive_failure(4, 0.999)
            .unwrap()
            .with_seed(9);
        let runtime = HybridRuntime::new(protocol);
        let mut state = runtime
            .init(&scenario, &InitialStates::counts(&[10_000, 10_000]))
            .unwrap();
        for _ in 0..6 {
            runtime.step(&mut state).unwrap();
        }
        // The failure executed during period 4; period 5's rebalance saw the
        // depleted alive counts and dropped to membership fidelity.
        assert_eq!(state.fidelity(), HybridFidelity::Membership);
        let events = runtime.snapshot(&state);
        assert_eq!(events.alive, 20);
        // Totals (alive + crashed, remembering their states) still conserve.
        assert_eq!(events.counts.iter().sum::<u64>(), 20_000);
    }

    #[test]
    fn ensemble_mean_matches_agent_under_massive_failure() {
        // Same regime as the batched-vs-agent test: ensemble means of hybrid
        // and agent track each other through a 50 % massive failure, with the
        // hybrid run crossing fidelities around it.
        let sys = EquationSystemBuilder::new()
            .vars(["x", "y"])
            .term("x", -1.0, &[("x", 1), ("y", 1)])
            .term("y", 1.0, &[("x", 1), ("y", 1)])
            .build()
            .unwrap();
        let protocol = ProtocolCompiler::new("epidemic")
            .with_normalizing_constant(0.2)
            .compile(&sys)
            .unwrap();
        let n = 20_000usize;
        let scenario = Scenario::new(n, 100)
            .unwrap()
            .with_massive_failure(60, 0.5)
            .unwrap();
        let ensemble = Ensemble::of(protocol)
            .scenario(scenario)
            .initial(InitialStates::counts(&[n as u64 - 200, 200]))
            .seed_range(300..308)
            .count_alive_only();
        let agent = ensemble.run::<AgentRuntime>().unwrap();
        let hybrid = ensemble.run::<HybridRuntime>().unwrap();
        let a = agent.mean_series("y").unwrap();
        let h = hybrid.mean_series("y").unwrap();
        for (period, (ya, yh)) in a.iter().zip(&h).enumerate() {
            assert!(
                (ya - yh).abs() < n as f64 * 0.15,
                "period {period}: agent {ya} vs hybrid {yh}"
            );
        }
        assert!(a[59] > n as f64 * 0.95 && h[59] > n as f64 * 0.95);
        assert!(a[65] < n as f64 * 0.55 && h[65] < n as f64 * 0.55);
    }

    #[test]
    fn rejoin_config_applies_at_both_fidelities() {
        // Inert protocol, crash/recovery model, rejoin into y: recoveries
        // convert x's to y's regardless of which fidelity executes them.
        let protocol = Protocol::new("inert", vec!["x".into(), "y".into()]).unwrap();
        let y = protocol.require_state("y").unwrap();
        let scenario = Scenario::new(10_000, 200)
            .unwrap()
            .with_failure_model(netsim::FailureModel::new(0.05, 0.2).unwrap())
            .with_seed(4);
        let runtime = HybridRuntime::new(protocol).with_config(RunConfig::rejoining_to(y));
        let mut state = runtime
            .init(&scenario, &InitialStates::counts(&[10_000, 0]))
            .unwrap();
        for _ in 0..200 {
            runtime.step(&mut state).unwrap();
        }
        let events = runtime.snapshot(&state);
        assert_eq!(events.counts.iter().sum::<u64>(), 10_000);
        assert!(events.counts[1] > 9_000, "y = {}", events.counts[1]);
    }

    #[test]
    fn adversary_strategy_state_survives_the_handoff() {
        // A single-strike adversary fires at count level and knocks the
        // leading state below the fidelity threshold, forcing a downgrade to
        // membership. If the handoff installed a fresh strategy fork instead
        // of transferring the live injection point, the "spent" strike
        // counter would reset and the adversary would strike again.
        let protocol = Protocol::new("inert", vec!["x".into(), "y".into()]).unwrap();
        let scenario = Scenario::new(10_000, 10)
            .unwrap()
            .with_seed(21)
            .with_adversary(netsim::adversary::TargetLargestState::new(0.59375, 2, 1, 1).unwrap());
        let runtime = HybridRuntime::new(protocol).with_threshold(100);
        let mut state = runtime
            .init(&scenario, &InitialStates::counts(&[6_000, 4_000]))
            .unwrap();
        assert_eq!(state.fidelity(), HybridFidelity::CountLevel);
        for _ in 0..10 {
            runtime.step(&mut state).unwrap();
        }
        // The strike (~5937 of x's 6000) dropped x below the threshold.
        assert_eq!(state.fidelity(), HybridFidelity::Membership);
        assert_eq!(state.handoffs(), (1, 0));
        let events = runtime.snapshot(&state);
        // y was never struck: one strike total, budget spent on x. A reset
        // strike counter would have taken ~2400 more victims from y.
        assert_eq!(events.counts_alive.unwrap()[1], 4_000);
        assert!(
            events.alive > 4_000 && events.alive < 4_100,
            "alive = {}",
            events.alive
        );
    }

    #[test]
    fn simulation_drives_the_hybrid_runtime_via_the_trait() {
        let result = Simulation::of(epidemic_protocol())
            .scenario(Scenario::new(30_000, 40).unwrap().with_seed(8))
            .initial(InitialStates::counts(&[29_999, 1]))
            .observe(CountsRecorder::new())
            .run::<HybridRuntime>()
            .unwrap();
        // One count snapshot per period including period 0, conserved counts.
        assert_eq!(result.counts.len(), 41);
        for (_, s) in result.counts.iter() {
            assert_eq!(s.iter().sum::<f64>(), 30_000.0);
        }
        assert!(result.final_counts().unwrap()[1] > 29_000.0);
    }
}
