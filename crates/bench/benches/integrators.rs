//! Criterion benchmarks of the numerical integrators and the analysis toolbox.

use criterion::{criterion_group, criterion_main, Criterion};
use dpde_protocols::endemic::EndemicParams;
use odekit::analysis::{analyze_equilibrium, EquilibriumFinder, Matrix};
use odekit::integrate::{Euler, Integrator, Rk4, Rkf45};
use std::hint::black_box;

fn bench_integrators(c: &mut Criterion) {
    let params = EndemicParams::new(4.0, 1.0, 0.01).unwrap();
    let sys = params.equations();
    let y0 = [0.999, 0.001, 0.0];
    let mut group = c.benchmark_group("integrators");
    group.bench_function("euler_endemic_100tu_h1e-2", |b| {
        b.iter(|| {
            Euler::new(1e-2)
                .integrate(black_box(&sys), 0.0, &y0, 100.0)
                .unwrap()
        })
    });
    group.bench_function("rk4_endemic_100tu_h1e-2", |b| {
        b.iter(|| {
            Rk4::new(1e-2)
                .integrate(black_box(&sys), 0.0, &y0, 100.0)
                .unwrap()
        })
    });
    group.bench_function("rkf45_endemic_100tu_tol1e-8", |b| {
        b.iter(|| {
            Rkf45::new(1e-8, 1e-8)
                .with_max_step(5.0)
                .integrate(black_box(&sys), 0.0, &y0, 100.0)
                .unwrap()
        })
    });
    group.finish();
}

fn bench_analysis(c: &mut Criterion) {
    let params = EndemicParams::new(4.0, 1.0, 0.01).unwrap();
    let sys = params.equations();
    let eq = params.equilibria(1.0).endemic;
    let mut group = c.benchmark_group("analysis");
    group.bench_function("analyze_equilibrium_endemic", |b| {
        b.iter(|| analyze_equilibrium(black_box(&sys), black_box(&eq)).unwrap())
    });
    group.bench_function("equilibrium_search_simplex_res6", |b| {
        b.iter(|| EquilibriumFinder::new().search_simplex(black_box(&sys), 6))
    });
    let m = Matrix::from_rows(&[
        vec![-0.5, 1.0, 0.0, 2.0],
        vec![0.3, -1.2, 0.7, 0.0],
        vec![0.0, 0.4, -0.9, 0.1],
        vec![1.0, 0.0, 0.2, -0.3],
    ])
    .unwrap();
    group.bench_function("eigenvalues_4x4", |b| b.iter(|| m.eigenvalues().unwrap()));
    group.finish();
}

criterion_group!(benches, bench_integrators, bench_analysis);
criterion_main!(benches);
