//! Ablation benchmarks for the design choices called out in DESIGN.md:
//!
//! * the endemic push optimization (action (iv)) on vs. off,
//! * failure compensation on vs. off under message loss,
//! * the LV normalizing constant p (convergence speed vs. per-period work).
//!
//! Criterion measures wall-clock cost; each iteration also returns the
//! domain metric (equilibrium error, convergence periods) so the relationship
//! between the knob and the protocol behaviour can be read from the bench
//! output with `--verbose`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dpde_core::runtime::{AggregateRuntime, InitialStates};
use dpde_core::ProtocolCompiler;
use dpde_protocols::endemic::EndemicParams;
use dpde_protocols::lv::LvParams;
use netsim::{LossConfig, Scenario};
use std::hint::black_box;

fn bench_push_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_push_action");
    for (label, params) in [
        (
            "with_push_b2",
            EndemicParams::from_contact_count(2, 0.1, 0.01).unwrap(),
        ),
        (
            "without_push_b4",
            EndemicParams::from_contact_count(2, 0.1, 0.01)
                .unwrap()
                .without_push(),
        ),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let scenario = Scenario::new(5_000, 300).unwrap().with_seed(3);
                let run = dpde_bench::run_endemic(black_box(params), &scenario, false);
                run.run.final_counts().expect("counts recorded").to_vec()
            })
        });
    }
    group.finish();
}

fn bench_failure_compensation_ablation(c: &mut Criterion) {
    let params = EndemicParams::new(0.8, 0.1, 0.02).unwrap();
    let sys = params.equations();
    let loss = LossConfig::new(0.3, 0.0).unwrap();
    let f = loss.effective_contact_failure(1);
    let mut group = c.benchmark_group("ablation_failure_compensation");
    for (label, compensation) in [("uncompensated", 0.0), ("compensated", f)] {
        let protocol = ProtocolCompiler::new(label)
            .with_failure_compensation(compensation)
            .compile(&sys)
            .unwrap();
        group.bench_function(label, |b| {
            b.iter(|| {
                let run = AggregateRuntime::new(protocol.clone())
                    .with_loss(loss)
                    .run(
                        50_000,
                        2_000,
                        &InitialStates::fractions(&[0.125, 0.15, 0.725]),
                        9,
                    )
                    .unwrap();
                // Domain metric: receptive count error vs. the lossless target.
                let target = 0.125 * 50_000.0;
                (run.final_counts().expect("counts recorded")[0] - target).abs()
            })
        });
    }
    group.finish();
}

fn bench_lv_normalizing_constant(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_lv_normalizing_constant");
    for &p in &[0.005, 0.01, 0.05] {
        let params = LvParams::new().with_normalizing_constant(p).unwrap();
        group.bench_with_input(BenchmarkId::new("convergence", p), &p, |b, _| {
            b.iter(|| {
                let scenario = Scenario::new(5_000, 1_200).unwrap().with_seed(4);
                let run = dpde_bench::run_lv(black_box(params), &scenario, &[3_000, 2_000, 0]);
                dpde_bench::lv_convergence_period(&run, 5.0)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_push_ablation, bench_failure_compensation_ablation, bench_lv_normalizing_constant
}
criterion_main!(benches);
