//! Criterion benchmarks of the agent and aggregate runtimes: cost per
//! protocol period as a function of group size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dpde_core::runtime::{AgentRuntime, AggregateRuntime, InitialStates};
use dpde_protocols::endemic::EndemicParams;
use netsim::Scenario;
use std::hint::black_box;

fn bench_agent_runtime(c: &mut Criterion) {
    let params = EndemicParams::from_contact_count(2, 0.1, 0.01).unwrap();
    let protocol = params.figure1_protocol().unwrap();
    let mut group = c.benchmark_group("agent_runtime");
    let periods = 50u64;
    for &n in &[1_000usize, 10_000, 100_000] {
        group.throughput(Throughput::Elements(n as u64 * periods));
        let eq = params.equilibria(n as f64).endemic;
        let counts = [
            eq[0].round() as u64,
            eq[1].round() as u64,
            n as u64 - eq[0].round() as u64 - eq[1].round() as u64,
        ];
        group.bench_with_input(BenchmarkId::new("endemic_50_periods", n), &n, |b, &n| {
            b.iter(|| {
                let scenario = Scenario::new(n, periods).unwrap().with_seed(1);
                AgentRuntime::new(protocol.clone())
                    .run(black_box(&scenario), &InitialStates::counts(&counts))
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_aggregate_runtime(c: &mut Criterion) {
    let params = EndemicParams::from_contact_count(2, 0.1, 0.01).unwrap();
    let protocol = params.canonical_protocol().unwrap();
    let mut group = c.benchmark_group("aggregate_runtime");
    let periods = 1_000u64;
    for &n in &[10_000u64, 100_000, 1_000_000] {
        group.throughput(Throughput::Elements(periods));
        let eq = params.equilibria(n as f64).endemic;
        let counts = [
            eq[0].round() as u64,
            eq[1].round() as u64,
            n - eq[0].round() as u64 - eq[1].round() as u64,
        ];
        group.bench_with_input(BenchmarkId::new("endemic_1000_periods", n), &n, |b, &n| {
            b.iter(|| {
                AggregateRuntime::new(protocol.clone())
                    .run(black_box(n), periods, &InitialStates::counts(&counts), 1)
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_agent_runtime, bench_aggregate_runtime
}
criterion_main!(benches);
