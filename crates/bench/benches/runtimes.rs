//! Criterion benchmarks of the runtime fidelities: cost per protocol period
//! as a function of group size, plus an agent/batched/aggregate head-to-head
//! on the epidemic and LV-majority protocols.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dpde_core::runtime::{
    AgentRuntime, AggregateRuntime, BatchedRuntime, HybridRuntime, InitialStates, Runtime,
};
use dpde_core::{Protocol, ProtocolCompiler};
use dpde_protocols::endemic::EndemicParams;
use dpde_protocols::lv::LvParams;
use netsim::Scenario;
use odekit::EquationSystemBuilder;
use std::hint::black_box;

fn epidemic_protocol() -> Protocol {
    let sys = EquationSystemBuilder::new()
        .vars(["x", "y"])
        .term("x", -1.0, &[("x", 1), ("y", 1)])
        .term("y", 1.0, &[("x", 1), ("y", 1)])
        .build()
        .unwrap();
    ProtocolCompiler::new("epidemic").compile(&sys).unwrap()
}

/// Init + 30 steps through the `Runtime` trait (no observer overhead).
fn run_steps<R: Runtime>(runtime: &R, scenario: &Scenario, initial: &InitialStates) {
    let mut state = runtime.init(scenario, initial).unwrap();
    for _ in 0..scenario.periods() {
        runtime.step(&mut state).unwrap();
    }
}

/// Head-to-head: the same 30-period workload on every fidelity (agent,
/// batched, hybrid, aggregate), N ∈ {10³, 10⁴, 10⁵}, for the epidemic and
/// LV-majority protocols. Both workloads start in the small-count regime
/// (one infective / an empty undecided state), so the hybrid rows include
/// genuine fidelity handoffs.
type InitialOf = fn(u64) -> InitialStates;

fn bench_head_to_head(c: &mut Criterion) {
    let workloads: [(&str, Protocol, InitialOf); 2] = [
        ("epidemic", epidemic_protocol(), |n| {
            InitialStates::counts(&[n - 1, 1])
        }),
        ("lv_majority", LvParams::new().protocol().unwrap(), |n| {
            InitialStates::counts(&[n * 6 / 10, n - n * 6 / 10, 0])
        }),
    ];
    let periods = 30u64;
    for (name, protocol, initial_of) in workloads {
        let mut group = c.benchmark_group(format!("head_to_head_{name}"));
        for &n in &[1_000u64, 10_000, 100_000] {
            group.throughput(Throughput::Elements(n * periods));
            let scenario = Scenario::new(n as usize, periods).unwrap().with_seed(3);
            let initial = initial_of(n);
            let agent = AgentRuntime::new(protocol.clone());
            group.bench_with_input(BenchmarkId::new("agent", n), &n, |b, _| {
                b.iter(|| run_steps(black_box(&agent), &scenario, &initial))
            });
            let batched = BatchedRuntime::new(protocol.clone());
            group.bench_with_input(BenchmarkId::new("batched", n), &n, |b, _| {
                b.iter(|| run_steps(black_box(&batched), &scenario, &initial))
            });
            let hybrid = HybridRuntime::new(protocol.clone());
            group.bench_with_input(BenchmarkId::new("hybrid", n), &n, |b, _| {
                b.iter(|| run_steps(black_box(&hybrid), &scenario, &initial))
            });
            let aggregate = AggregateRuntime::new(protocol.clone());
            group.bench_with_input(BenchmarkId::new("aggregate", n), &n, |b, _| {
                b.iter(|| run_steps(black_box(&aggregate), &scenario, &initial))
            });
        }
        group.finish();
    }
}

fn bench_agent_runtime(c: &mut Criterion) {
    let params = EndemicParams::from_contact_count(2, 0.1, 0.01).unwrap();
    let protocol = params.figure1_protocol().unwrap();
    let mut group = c.benchmark_group("agent_runtime");
    let periods = 50u64;
    for &n in &[1_000usize, 10_000, 100_000] {
        group.throughput(Throughput::Elements(n as u64 * periods));
        let eq = params.equilibria(n as f64).endemic;
        let counts = [
            eq[0].round() as u64,
            eq[1].round() as u64,
            n as u64 - eq[0].round() as u64 - eq[1].round() as u64,
        ];
        group.bench_with_input(BenchmarkId::new("endemic_50_periods", n), &n, |b, &n| {
            b.iter(|| {
                let scenario = Scenario::new(n, periods).unwrap().with_seed(1);
                AgentRuntime::new(protocol.clone())
                    .run(black_box(&scenario), &InitialStates::counts(&counts))
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_aggregate_runtime(c: &mut Criterion) {
    let params = EndemicParams::from_contact_count(2, 0.1, 0.01).unwrap();
    let protocol = params.canonical_protocol().unwrap();
    let mut group = c.benchmark_group("aggregate_runtime");
    let periods = 1_000u64;
    for &n in &[10_000u64, 100_000, 1_000_000] {
        group.throughput(Throughput::Elements(periods));
        let eq = params.equilibria(n as f64).endemic;
        let counts = [
            eq[0].round() as u64,
            eq[1].round() as u64,
            n - eq[0].round() as u64 - eq[1].round() as u64,
        ];
        group.bench_with_input(BenchmarkId::new("endemic_1000_periods", n), &n, |b, &n| {
            b.iter(|| {
                AggregateRuntime::new(protocol.clone())
                    .run(black_box(n), periods, &InitialStates::counts(&counts), 1)
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_agent_runtime, bench_aggregate_runtime, bench_head_to_head
}
criterion_main!(benches);
