//! Criterion benchmarks that regenerate scaled-down versions of the paper's
//! headline figures, timing the full experiment pipeline (scenario set-up,
//! agent simulation, metric extraction).

use criterion::{criterion_group, criterion_main, Criterion};
use dpde_bench::{lv_convergence_period, run_endemic, run_lv};
use dpde_protocols::endemic::EndemicParams;
use dpde_protocols::lv::LvParams;
use netsim::Scenario;
use std::hint::black_box;

fn bench_figure5_scaled(c: &mut Criterion) {
    // Figure 5 at 1/50 scale: 2000 hosts, 600 periods, 50% failure halfway.
    let params = EndemicParams::from_contact_count(2, 0.05, 0.002).unwrap();
    c.bench_function("fig05_endemic_massive_failure_n2000", |b| {
        b.iter(|| {
            let scenario = Scenario::new(2_000, 600)
                .unwrap()
                .with_massive_failure(300, 0.5)
                .unwrap()
                .with_seed(5);
            let run = run_endemic(black_box(params), &scenario, false);
            run.run.final_counts().expect("counts recorded").to_vec()
        })
    });
}

fn bench_figure8_scaled(c: &mut Criterion) {
    // Figure 8 at full size (it is already small): N = 1000 with tracking.
    let params = EndemicParams::from_contact_count(2, 0.1, 0.01).unwrap();
    c.bench_function("fig08_endemic_untraceability_n1000", |b| {
        b.iter(|| {
            let scenario = Scenario::new(1_000, 400).unwrap().with_seed(8);
            let run = run_endemic(black_box(params), &scenario, true);
            run.run.tracked_members.len()
        })
    });
}

fn bench_figure11_scaled(c: &mut Criterion) {
    // Figure 11 at 1/20 scale: 5000 processes, 60/40 split.
    let params = LvParams::new();
    c.bench_function("fig11_lv_convergence_n5000", |b| {
        b.iter(|| {
            let scenario = Scenario::new(5_000, 600).unwrap().with_seed(11);
            let run = run_lv(black_box(params), &scenario, &[3_000, 2_000, 0]);
            lv_convergence_period(&run, 5.0)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_figure5_scaled, bench_figure8_scaled, bench_figure11_scaled
}
criterion_main!(benches);
