//! Criterion benchmarks of the ODE→protocol compiler and the taxonomy checks.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dpde_core::ProtocolCompiler;
use dpde_protocols::endemic::EndemicParams;
use dpde_protocols::lv::LvParams;
use odekit::{taxonomy, EquationSystem, EquationSystemBuilder};
use std::hint::black_box;

/// A synthetic completely-partitionable system with `dim` variables and
/// `dim · terms_per_var` cancelling term pairs.
fn synthetic_system(dim: usize, terms_per_var: usize) -> EquationSystem {
    let names: Vec<String> = (0..dim).map(|i| format!("v{i}")).collect();
    let mut builder = EquationSystemBuilder::new().vars(names.clone());
    for src in 0..dim {
        for k in 0..terms_per_var {
            let dst = (src + 1 + k) % dim;
            if dst == src {
                continue;
            }
            let other = (src + 2 + k) % dim;
            let c = 0.1 + 0.05 * k as f64;
            builder = builder
                .term(&names[src], -c, &[(&names[src], 1), (&names[other], 1)])
                .term(&names[dst], c, &[(&names[src], 1), (&names[other], 1)]);
        }
    }
    builder.build().expect("synthetic system is well-formed")
}

fn bench_compiler(c: &mut Criterion) {
    let mut group = c.benchmark_group("compiler");

    let endemic = EndemicParams::new(4.0, 1.0, 0.01).unwrap().equations();
    group.bench_function("compile_endemic", |b| {
        b.iter(|| {
            ProtocolCompiler::new("endemic")
                .compile(black_box(&endemic))
                .unwrap()
        })
    });

    let lv = LvParams::new().rewritten_equations();
    group.bench_function("compile_lv", |b| {
        b.iter(|| {
            ProtocolCompiler::new("lv")
                .with_normalizing_constant(0.01)
                .compile(black_box(&lv))
                .unwrap()
        })
    });

    for (dim, terms) in [(5usize, 4usize), (10, 8), (20, 16)] {
        let sys = synthetic_system(dim, terms);
        group.bench_function(format!("compile_synthetic_{dim}v_{terms}t"), |b| {
            b.iter_batched(
                || sys.clone(),
                |s| {
                    ProtocolCompiler::new("synthetic")
                        .compile(black_box(&s))
                        .unwrap()
                },
                BatchSize::SmallInput,
            )
        });
        group.bench_function(format!("classify_synthetic_{dim}v_{terms}t"), |b| {
            b.iter(|| taxonomy::classify(black_box(&sys)))
        });
        group.bench_function(format!("partition_synthetic_{dim}v_{terms}t"), |b| {
            b.iter(|| taxonomy::partition(black_box(&sys)))
        });
    }

    group.finish();
}

fn bench_parser(c: &mut Criterion) {
    let text = "x' = -beta*x*y + alpha*z\ny' = beta*x*y - gamma*y\nz' = gamma*y - alpha*z";
    c.bench_function("parse_endemic_text", |b| {
        b.iter(|| {
            odekit::parse::parse_system(
                black_box(text),
                &[("beta", 4.0), ("gamma", 1.0), ("alpha", 0.01)],
            )
            .unwrap()
        })
    });
}

criterion_group!(benches, bench_compiler, bench_parser);
criterion_main!(benches);
