//! Shared machinery for the experiment harness.
//!
//! Every figure of the paper's evaluation (Figures 2, 4–12) and every in-text
//! numerical claim has a binary in `src/bin/` that regenerates the
//! corresponding series or table on stdout (CSV-ish, ready for plotting), plus
//! a `== summary ==` section comparing the paper's reported values with the
//! measured ones. The Criterion benches in `benches/` time the framework's
//! components and scaled-down figure regenerations.
//!
//! All binaries accept `--scale <f>` (or the `DPDE_SCALE` environment
//! variable) to shrink the group sizes and horizons by a factor, so the full
//! suite can be smoke-tested quickly; the default `--scale 1` reproduces the
//! paper's dimensions.

use dpde_core::runtime::{AgentRuntime, InitialStates, RunConfig, RunResult};
use dpde_core::Protocol;
use dpde_protocols::endemic::{EndemicParams, AVERSE, RECEPTIVE, STASH};
use dpde_protocols::lv::{LvParams, STATE_X, STATE_Y, STATE_Z};
use netsim::{Rng, Scenario, SyntheticChurnConfig};

/// Parses the `--scale` argument / `DPDE_SCALE` environment variable.
///
/// The scale multiplies group sizes and horizons (clamped to sensible minima
/// by the callers). `1.0` reproduces the paper's dimensions.
pub fn scale_from_args() -> f64 {
    let mut scale = std::env::var("DPDE_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok());
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len() {
        if args[i] == "--scale" {
            if let Some(v) = args.get(i + 1).and_then(|v| v.parse::<f64>().ok()) {
                scale = Some(v);
            }
        }
    }
    let s = scale.unwrap_or(1.0);
    if s.is_finite() && s > 0.0 {
        s.min(1.0)
    } else {
        1.0
    }
}

/// Applies a scale factor to a paper-sized quantity, keeping a minimum.
pub fn scaled(value: u64, scale: f64, min: u64) -> u64 {
    ((value as f64 * scale).round() as u64).max(min)
}

/// Prints a CSV header followed by rows.
pub fn print_csv<R: AsRef<[String]>>(header: &[&str], rows: impl IntoIterator<Item = R>) {
    println!("{}", header.join(","));
    for row in rows {
        println!("{}", row.as_ref().join(","));
    }
}

/// Prints one paper-vs-measured comparison line.
pub fn compare_line(label: &str, paper: &str, measured: &str) {
    println!("{label:<58} paper: {paper:<18} measured: {measured}");
}

/// Standard experiment header.
pub fn banner(figure: &str, description: &str, scale: f64) {
    println!("# {figure} — {description}");
    if (scale - 1.0).abs() > f64::EPSILON {
        println!("# running at scale {scale} of the paper's dimensions");
    }
    println!();
}

/// Result of one endemic-protocol experiment plus the settings it ran with.
#[derive(Debug)]
pub struct EndemicRun {
    /// The protocol parameters used.
    pub params: EndemicParams,
    /// Group size.
    pub n: usize,
    /// The raw run output.
    pub run: RunResult,
}

/// Runs the Figure 1 endemic protocol from its analytical equilibrium under
/// the given scenario.
pub fn run_endemic(params: EndemicParams, scenario: &Scenario, track_stashers: bool) -> EndemicRun {
    let protocol = params.figure1_protocol().expect("valid endemic parameters");
    let n = scenario.group_size();
    let eq = params.equilibria(n as f64).endemic;
    let mut counts = [eq[0].round() as u64, eq[1].round().max(1.0) as u64, 0];
    counts[2] = n as u64 - counts[0] - counts[1];
    let receptive = protocol.require_state(RECEPTIVE).expect("state exists");
    let stash = protocol.require_state(STASH).expect("state exists");
    let config = RunConfig {
        rejoin_state: Some(receptive),
        track_members_of: if track_stashers { Some(stash) } else { None },
        count_alive_only: true,
    };
    let run = AgentRuntime::new(protocol)
        .with_config(config)
        .run(scenario, &InitialStates::counts(&counts))
        .expect("endemic run");
    EndemicRun { params, n, run }
}

/// Runs the endemic protocol from an arbitrary `[receptive, stash, averse]`
/// distribution.
pub fn run_endemic_from(
    params: EndemicParams,
    scenario: &Scenario,
    counts: &[u64; 3],
) -> EndemicRun {
    let protocol = params.figure1_protocol().expect("valid endemic parameters");
    let receptive = protocol.require_state(RECEPTIVE).expect("state exists");
    let config = RunConfig {
        rejoin_state: Some(receptive),
        track_members_of: None,
        count_alive_only: true,
    };
    let run = AgentRuntime::new(protocol)
        .with_config(config)
        .run(scenario, &InitialStates::counts(counts))
        .expect("endemic run");
    EndemicRun {
        params,
        n: scenario.group_size(),
        run,
    }
}

/// Runs the LV protocol from a given `(x, y, z)` split. Counts report alive
/// processes only, so runs with massive failures (Figure 12) show the
/// surviving population converging.
pub fn run_lv(params: LvParams, scenario: &Scenario, counts: &[u64; 3]) -> RunResult {
    let protocol: Protocol = params.protocol().expect("valid LV parameters");
    let config = RunConfig {
        count_alive_only: true,
        ..Default::default()
    };
    AgentRuntime::new(protocol)
        .with_config(config)
        .run(scenario, &InitialStates::counts(counts))
        .expect("LV run")
}

/// The series names used when printing endemic runs.
pub const ENDEMIC_SERIES: [&str; 3] = [RECEPTIVE, STASH, AVERSE];
/// The series names used when printing LV runs.
pub const LV_SERIES: [&str; 3] = [STATE_X, STATE_Y, STATE_Z];

/// Builds the synthetic Overnet-like churn scenario used by Figures 9 and 10:
/// `n` hosts, `hours` hours of trace at 10–25 % hourly churn, 6-minute
/// protocol periods.
pub fn churn_scenario(n: usize, hours: usize, seed: u64) -> Scenario {
    let cfg = SyntheticChurnConfig {
        hosts: n,
        hours,
        mean_availability: 0.7,
        churn_min: 0.10,
        churn_max: 0.25,
    };
    let mut rng = Rng::seed_from(seed);
    let trace = cfg.generate(&mut rng).expect("valid churn configuration");
    let clock = netsim::PeriodClock::six_minutes();
    let periods = clock.periods_per_hour() * hours as u64;
    Scenario::new(n, periods)
        .expect("valid scenario")
        .with_clock(clock)
        .with_churn_trace(&trace, &mut rng)
        .expect("matching trace")
        .with_seed(seed + 1)
}

/// First period at which `minority` (the smaller of the x/y series) drops to
/// at most `threshold` — the LV convergence time.
pub fn lv_convergence_period(result: &RunResult, threshold: f64) -> Option<u64> {
    let xs = result.state_series(STATE_X).ok()?;
    let ys = result.state_series(STATE_Y).ok()?;
    xs.iter()
        .zip(ys)
        .position(|(x, y)| x.min(y) <= threshold)
        .map(|p| p as u64)
}

/// Downsamples a run into printable rows `period, series...` every `stride`
/// periods.
pub fn downsampled_rows(result: &RunResult, series: &[&str], stride: usize) -> Vec<Vec<String>> {
    let columns: Vec<Vec<f64>> = series
        .iter()
        .map(|name| result.state_series(name).unwrap_or_default())
        .collect();
    let len = columns.first().map_or(0, Vec::len);
    let mut rows = Vec::new();
    for i in (0..len).step_by(stride.max(1)) {
        let mut row = vec![i.to_string()];
        for col in &columns {
            row.push(format!("{}", col[i]));
        }
        rows.push(row);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_helpers() {
        assert_eq!(scaled(100_000, 0.01, 500), 1_000);
        assert_eq!(scaled(100, 0.001, 50), 50);
        assert!(scale_from_args() > 0.0);
    }

    #[test]
    fn endemic_and_lv_helpers_run() {
        let params = EndemicParams::from_contact_count(2, 0.1, 0.01).unwrap();
        let scenario = Scenario::new(400, 50).unwrap().with_seed(1);
        let run = run_endemic(params, &scenario, true);
        assert_eq!(run.n, 400);
        assert_eq!(run.run.counts.len(), 51);
        let rows = downsampled_rows(&run.run, &ENDEMIC_SERIES, 10);
        assert_eq!(rows.len(), 6);

        let scenario = Scenario::new(400, 100).unwrap().with_seed(2);
        let lv = run_lv(LvParams::new(), &scenario, &[240, 160, 0]);
        assert_eq!(lv.counts.len(), 101);
        // Convergence threshold of N is trivially met at period 0.
        assert_eq!(lv_convergence_period(&lv, 400.0), Some(0));
    }

    #[test]
    fn churn_scenario_builds() {
        let s = churn_scenario(200, 3, 9);
        assert_eq!(s.group_size(), 200);
        assert_eq!(s.periods(), 30);
        assert!(!s.churn_events().is_empty());
    }
}
