//! Shared machinery for the experiment harness.
//!
//! Every figure of the paper's evaluation (Figures 2, 4–12) and every in-text
//! numerical claim has a binary in `src/bin/` that regenerates the
//! corresponding series or table on stdout (CSV-ish, ready for plotting), plus
//! a `== summary ==` section comparing the paper's reported values with the
//! measured ones. The Criterion benches in `benches/` time the framework's
//! components and scaled-down figure regenerations.
//!
//! All binaries accept `--scale <f>` (or the `DPDE_SCALE` environment
//! variable) to rescale the group sizes and horizons by a factor: `< 1`
//! shrinks everything so the full suite can be smoke-tested quickly, `> 1`
//! upscales beyond the paper's dimensions for stress runs, and the default
//! `--scale 1` reproduces the paper's dimensions. Malformed values abort the
//! run with an error instead of being silently ignored.

use dpde_core::runtime::{
    AgentRuntime, AliveTracker, CountsRecorder, InitialStates, MembershipTracker, MessageCounter,
    RunResult, Simulation, TransitionRecorder,
};
use dpde_core::Protocol;
use dpde_protocols::endemic::{EndemicParams, AVERSE, RECEPTIVE, STASH};
use dpde_protocols::lv::{LvParams, STATE_X, STATE_Y, STATE_Z};
use netsim::{Rng, Scenario, SyntheticChurnConfig};

/// Parses a scale factor from command-line arguments and an optional
/// `DPDE_SCALE` environment value (the `--scale` flag wins when both are
/// given).
///
/// # Errors
///
/// Returns a human-readable message when a value is missing, unparseable,
/// non-finite or not strictly positive — the harness treats a typoed scale
/// as fatal rather than silently running at the paper's full dimensions.
pub fn parse_scale<I>(args: I, env: Option<&str>) -> Result<f64, String>
where
    I: IntoIterator<Item = String>,
{
    let mut scale: Option<f64> = None;
    let args: Vec<String> = args.into_iter().collect();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--scale" {
            let value = args
                .get(i + 1)
                .ok_or_else(|| "--scale expects a value".to_string())?;
            scale = Some(
                value
                    .parse::<f64>()
                    .map_err(|_| format!("invalid --scale value `{value}`"))?,
            );
            i += 1;
        }
        i += 1;
    }
    // The flag wins outright: the environment is only consulted (and hence
    // only validated) when no --scale flag was given.
    if scale.is_none() {
        if let Some(v) = env {
            scale = Some(
                v.trim()
                    .parse::<f64>()
                    .map_err(|_| format!("invalid DPDE_SCALE value `{v}`"))?,
            );
        }
    }
    let s = scale.unwrap_or(1.0);
    if s.is_finite() && s > 0.0 {
        Ok(s)
    } else {
        Err(format!("scale must be positive and finite, got {s}"))
    }
}

/// Parses the `--scale` argument / `DPDE_SCALE` environment variable of the
/// current process, exiting with a diagnostic on malformed input.
///
/// The scale multiplies group sizes and horizons (clamped to sensible minima
/// by the callers). `1.0` reproduces the paper's dimensions; values above 1
/// upscale for stress runs.
pub fn scale_from_args() -> f64 {
    let env = std::env::var("DPDE_SCALE").ok();
    match parse_scale(std::env::args().skip(1), env.as_deref()) {
        Ok(scale) => scale,
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    }
}

/// Applies a scale factor to a paper-sized quantity, keeping a minimum.
pub fn scaled(value: u64, scale: f64, min: u64) -> u64 {
    ((value as f64 * scale).round() as u64).max(min)
}

/// Prints a CSV header followed by rows.
pub fn print_csv<R: AsRef<[String]>>(header: &[&str], rows: impl IntoIterator<Item = R>) {
    println!("{}", header.join(","));
    for row in rows {
        println!("{}", row.as_ref().join(","));
    }
}

/// Prints one paper-vs-measured comparison line.
pub fn compare_line(label: &str, paper: &str, measured: &str) {
    println!("{label:<58} paper: {paper:<18} measured: {measured}");
}

/// Standard experiment header.
pub fn banner(figure: &str, description: &str, scale: f64) {
    println!("# {figure} — {description}");
    if (scale - 1.0).abs() > f64::EPSILON {
        println!("# running at scale {scale} of the paper's dimensions");
    }
    println!();
}

/// Result of one endemic-protocol experiment plus the settings it ran with.
#[derive(Debug)]
pub struct EndemicRun {
    /// The protocol parameters used.
    pub params: EndemicParams,
    /// Group size.
    pub n: usize,
    /// The raw run output.
    pub run: RunResult,
}

/// The observer set the endemic figures need: alive-only populations,
/// transition series, alive counts and message counts, plus (optionally)
/// stasher-set snapshots.
fn endemic_simulation(protocol: Protocol, scenario: &Scenario, track_stashers: bool) -> Simulation {
    let receptive = protocol.require_state(RECEPTIVE).expect("state exists");
    let stash = protocol.require_state(STASH).expect("state exists");
    let mut sim = Simulation::of(protocol)
        .scenario(scenario.clone())
        .rejoin_state(receptive)
        .observe(CountsRecorder::alive_only())
        .observe(TransitionRecorder::new())
        .observe(AliveTracker::new())
        .observe(MessageCounter::new());
    if track_stashers {
        sim = sim.observe(MembershipTracker::of(stash));
    }
    sim
}

/// Runs the Figure 1 endemic protocol from its analytical equilibrium under
/// the given scenario.
pub fn run_endemic(params: EndemicParams, scenario: &Scenario, track_stashers: bool) -> EndemicRun {
    let protocol = params.figure1_protocol().expect("valid endemic parameters");
    let n = scenario.group_size();
    let eq = params.equilibria(n as f64).endemic;
    let mut counts = [eq[0].round() as u64, eq[1].round().max(1.0) as u64, 0];
    counts[2] = n as u64 - counts[0] - counts[1];
    let run = endemic_simulation(protocol, scenario, track_stashers)
        .initial(InitialStates::counts(&counts))
        .run::<AgentRuntime>()
        .expect("endemic run");
    EndemicRun { params, n, run }
}

/// Runs the endemic protocol from an arbitrary `[receptive, stash, averse]`
/// distribution.
pub fn run_endemic_from(
    params: EndemicParams,
    scenario: &Scenario,
    counts: &[u64; 3],
) -> EndemicRun {
    let protocol = params.figure1_protocol().expect("valid endemic parameters");
    let run = endemic_simulation(protocol, scenario, false)
        .initial(InitialStates::counts(counts))
        .run::<AgentRuntime>()
        .expect("endemic run");
    EndemicRun {
        params,
        n: scenario.group_size(),
        run,
    }
}

/// Runs the LV protocol from a given `(x, y, z)` split. Counts report alive
/// processes only, so runs with massive failures (Figure 12) show the
/// surviving population converging.
pub fn run_lv(params: LvParams, scenario: &Scenario, counts: &[u64; 3]) -> RunResult {
    let protocol: Protocol = params.protocol().expect("valid LV parameters");
    Simulation::of(protocol)
        .scenario(scenario.clone())
        .initial(InitialStates::counts(counts))
        .observe(CountsRecorder::alive_only())
        .observe(TransitionRecorder::new())
        .observe(AliveTracker::new())
        .run::<AgentRuntime>()
        .expect("LV run")
}

/// The series names used when printing endemic runs.
pub const ENDEMIC_SERIES: [&str; 3] = [RECEPTIVE, STASH, AVERSE];
/// The series names used when printing LV runs.
pub const LV_SERIES: [&str; 3] = [STATE_X, STATE_Y, STATE_Z];

/// Builds the synthetic Overnet-like churn scenario used by Figures 9 and 10:
/// `n` hosts, `hours` hours of trace at 10–25 % hourly churn, 6-minute
/// protocol periods.
pub fn churn_scenario(n: usize, hours: usize, seed: u64) -> Scenario {
    let cfg = SyntheticChurnConfig {
        hosts: n,
        hours,
        mean_availability: 0.7,
        churn_min: 0.10,
        churn_max: 0.25,
    };
    let mut rng = Rng::seed_from(seed);
    let trace = cfg.generate(&mut rng).expect("valid churn configuration");
    let clock = netsim::PeriodClock::six_minutes();
    let periods = clock.periods_per_hour() * hours as u64;
    Scenario::new(n, periods)
        .expect("valid scenario")
        .with_clock(clock)
        .with_churn_trace(&trace, &mut rng)
        .expect("matching trace")
        .with_seed(seed + 1)
}

/// First period at which `minority` (the smaller of the x/y series) drops to
/// at most `threshold` — the LV convergence time.
pub fn lv_convergence_period(result: &RunResult, threshold: f64) -> Option<u64> {
    let xs = result.state_series(STATE_X).ok()?;
    let ys = result.state_series(STATE_Y).ok()?;
    first_below(&xs, &ys, threshold)
}

/// [`lv_convergence_period`] over two raw series (also usable on ensemble
/// mean envelopes).
pub fn first_below(xs: &[f64], ys: &[f64], threshold: f64) -> Option<u64> {
    xs.iter()
        .zip(ys)
        .position(|(x, y)| x.min(*y) <= threshold)
        .map(|p| p as u64)
}

/// Downsamples a run into printable rows `period, series...` every `stride`
/// periods.
pub fn downsampled_rows(result: &RunResult, series: &[&str], stride: usize) -> Vec<Vec<String>> {
    let columns: Vec<Vec<f64>> = series
        .iter()
        .map(|name| result.state_series(name).unwrap_or_default())
        .collect();
    downsampled_columns(&columns, stride)
}

/// Downsamples raw per-period columns into printable rows.
pub fn downsampled_columns(columns: &[Vec<f64>], stride: usize) -> Vec<Vec<String>> {
    let len = columns.first().map_or(0, Vec::len);
    let mut rows = Vec::new();
    for i in (0..len).step_by(stride.max(1)) {
        let mut row = vec![i.to_string()];
        for col in columns {
            row.push(format!("{}", col[i]));
        }
        rows.push(row);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_scale_accepts_defaults_flags_and_env() {
        assert_eq!(parse_scale(strings(&[]), None), Ok(1.0));
        assert_eq!(parse_scale(strings(&["--scale", "0.25"]), None), Ok(0.25));
        // The flag overrides the environment, and later flags win.
        assert_eq!(
            parse_scale(strings(&["--scale", "0.5"]), Some("0.1")),
            Ok(0.5)
        );
        // A valid flag even shadows a malformed environment value.
        assert_eq!(
            parse_scale(strings(&["--scale", "0.5"]), Some("banana")),
            Ok(0.5)
        );
        assert_eq!(
            parse_scale(strings(&["--scale", "0.5", "--scale", "2"]), None),
            Ok(2.0)
        );
        assert_eq!(parse_scale(strings(&[]), Some(" 0.01 ")), Ok(0.01));
    }

    #[test]
    fn parse_scale_allows_upscaling() {
        assert_eq!(parse_scale(strings(&["--scale", "4"]), None), Ok(4.0));
        assert_eq!(parse_scale(strings(&[]), Some("2.5")), Ok(2.5));
    }

    #[test]
    fn parse_scale_rejects_malformed_input_loudly() {
        assert!(parse_scale(strings(&["--scale"]), None)
            .unwrap_err()
            .contains("expects a value"));
        assert!(parse_scale(strings(&["--scale", "huge"]), None)
            .unwrap_err()
            .contains("huge"));
        assert!(parse_scale(strings(&[]), Some("banana"))
            .unwrap_err()
            .contains("banana"));
        assert!(parse_scale(strings(&["--scale", "0"]), None).is_err());
        assert!(parse_scale(strings(&["--scale", "-1"]), None).is_err());
        assert!(parse_scale(strings(&["--scale", "inf"]), None).is_err());
        assert!(parse_scale(strings(&["--scale", "NaN"]), None).is_err());
    }

    #[test]
    fn scale_helpers() {
        assert_eq!(scaled(100_000, 0.01, 500), 1_000);
        assert_eq!(scaled(100, 0.001, 50), 50);
        assert_eq!(scaled(1_000, 2.0, 50), 2_000);
    }

    #[test]
    fn endemic_and_lv_helpers_run() {
        let params = EndemicParams::from_contact_count(2, 0.1, 0.01).unwrap();
        let scenario = Scenario::new(400, 50).unwrap().with_seed(1);
        let run = run_endemic(params, &scenario, true);
        assert_eq!(run.n, 400);
        assert_eq!(run.run.counts.len(), 51);
        assert!(!run.run.tracked_members.is_empty());
        let rows = downsampled_rows(&run.run, &ENDEMIC_SERIES, 10);
        assert_eq!(rows.len(), 6);

        let scenario = Scenario::new(400, 100).unwrap().with_seed(2);
        let lv = run_lv(LvParams::new(), &scenario, &[240, 160, 0]);
        assert_eq!(lv.counts.len(), 101);
        // Convergence threshold of N is trivially met at period 0.
        assert_eq!(lv_convergence_period(&lv, 400.0), Some(0));
        assert_eq!(first_below(&[3.0, 1.0], &[2.0, 2.0], 1.5), Some(1));
    }

    #[test]
    fn churn_scenario_builds() {
        let s = churn_scenario(200, 3, 9);
        assert_eq!(s.group_size(), 200);
        assert_eq!(s.periods(), 30);
        assert!(!s.churn_events().is_empty());
    }
}
