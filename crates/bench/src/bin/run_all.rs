//! Runs every experiment binary in sequence (at the current scale), so
//! `cargo run --release -p dpde-bench --bin run_all -- --scale 0.05` gives a
//! quick end-to-end smoke test of the whole harness and
//! `cargo run --release -p dpde-bench --bin run_all` regenerates every figure
//! at the paper's dimensions.

use std::process::Command;

const BINS: &[&str] = &[
    "exp_endemic_equilibria",
    "exp_lv_equilibria",
    "exp_longevity_table",
    "exp_reality_check",
    "exp_epidemic_logn",
    "exp_shard_epidemic",
    "exp_async_epidemic",
    "exp_near_tie_takeover",
    "exp_adversary",
    "exp_ssa_burst",
    "exp_socket_epidemic",
    "fig02_endemic_phase_portrait",
    "fig04_lv_phase_portrait",
    "fig05_endemic_massive_failure",
    "fig06_endemic_file_flux",
    "fig07_endemic_analysis_vs_measured",
    "fig08_endemic_untraceability",
    "fig09_endemic_churn_counts",
    "fig10_endemic_churn_transitions",
    "fig11_lv_convergence",
    "fig12_lv_massive_failure",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let exe_dir = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(std::path::Path::to_path_buf))
        .expect("executable directory");
    let mut failures = Vec::new();
    for bin in BINS {
        println!("\n=========================== {bin} ===========================");
        let path = exe_dir.join(bin);
        let status = Command::new(&path).args(&args).status();
        match status {
            Ok(s) if s.success() => {}
            other => {
                println!("!! {bin} failed: {other:?}");
                failures.push(*bin);
            }
        }
    }
    println!("\n=========================== done ===========================");
    if failures.is_empty() {
        println!("all {} experiments completed", BINS.len());
    } else {
        println!("{} experiment(s) failed: {failures:?}", failures.len());
        std::process::exit(1);
    }
}
