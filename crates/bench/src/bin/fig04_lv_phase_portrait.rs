//! Figure 4: phase portrait of the LV protocol.
//!
//! N = 1000 processes started from the paper's seven initial points; every
//! initial point with x > y converges to (1000, 0), every point with x < y to
//! (0, 1000), and the symmetric point drifts towards (333, 333, 333) before
//! randomization breaks the tie.

use dpde_bench::{banner, compare_line, run_lv, scale_from_args, scaled, LV_SERIES};
use dpde_protocols::lv::LvParams;
use netsim::Scenario;

fn main() {
    let scale = scale_from_args();
    banner("Figure 4", "phase portrait of the LV protocol", scale);

    let n = scaled(1000, scale, 200) as u64;
    let periods = scaled(1500, scale.max(0.3), 400);
    let params = LvParams::new();

    let paper_points: [(f64, f64, f64); 7] = [
        (100.0, 200.0, 700.0),
        (200.0, 100.0, 700.0),
        (300.0, 500.0, 200.0),
        (500.0, 300.0, 200.0),
        (100.0, 800.0, 100.0),
        (800.0, 100.0, 100.0),
        (100.0, 100.0, 800.0),
    ];

    println!("label,period,X,Y");
    let mut outcomes = Vec::new();
    for (seed, (px, py, _)) in paper_points.iter().enumerate() {
        let f = n as f64 / 1000.0;
        let x0 = (px * f).round() as u64;
        let y0 = (py * f).round() as u64;
        let counts = [x0, y0, n - x0 - y0];
        let label = format!("({},{},{})", counts[0], counts[1], counts[2]);
        let scenario = Scenario::new(n as usize, periods)
            .unwrap()
            .with_seed(40 + seed as u64);
        let run = run_lv(params, &scenario, &counts);
        let xs = run.state_series(LV_SERIES[0]).unwrap();
        let ys = run.state_series(LV_SERIES[1]).unwrap();
        for (i, (x, y)) in xs.iter().zip(&ys).enumerate().step_by(5) {
            println!("{label},{i},{x},{y}");
        }
        let final_x = *xs.last().unwrap();
        let final_y = *ys.last().unwrap();
        outcomes.push((counts, final_x, final_y));
    }

    println!("\n== summary ==");
    for (counts, fx, fy) in outcomes {
        let expectation = if counts[0] > counts[1] {
            "converges toward (N, 0)"
        } else if counts[0] < counts[1] {
            "converges toward (0, N)"
        } else {
            "tie: moves toward (N/3, N/3) then picks a side"
        };
        let measured = format!("final (X, Y) = ({fx:.0}, {fy:.0})");
        compare_line(
            &format!("start ({}, {}, {})", counts[0], counts[1], counts[2]),
            expectation,
            &measured,
        );
    }
}
