//! Sharded populations: an epidemic crossing shard boundaries under low
//! migration.
//!
//! The paper's dissemination analysis assumes one well-mixed group. Here the
//! population is split into 8 shards with only a small per-period migration
//! probability connecting them, and the multicast is seeded entirely inside
//! one shard. The experiment reports the per-shard infected series — the
//! epidemic saturates its home shard in O(log n) periods, then crosses into
//! the others with a lag set by the migration rate — and contrasts a
//! partitioned shard, which migration cannot reach at all.

use dpde_bench::{banner, compare_line, scale_from_args, scaled};
use dpde_core::runtime::{CountsRecorder, InitialStates, ShardCountsRecorder, Simulation};
use dpde_protocols::epidemic::Epidemic;
use netsim::{Scenario, Topology};

const SHARDS: usize = 8;
const MIGRATION: f64 = 0.02;

fn infected_series(result: &dpde_core::runtime::RunResult, shard: usize) -> Vec<f64> {
    result
        .metrics
        .series(&format!("shard{shard}:y"))
        .map(|points| points.iter().map(|&(_, v)| v).collect())
        .unwrap_or_default()
}

/// First period at which a series reaches `threshold`.
fn takeoff(series: &[f64], threshold: f64) -> Option<usize> {
    series.iter().position(|&v| v >= threshold)
}

fn main() {
    let scale = scale_from_args();
    banner(
        "Sharded epidemic",
        "a multicast crossing shard boundaries under low migration",
        scale,
    );

    let n = scaled(1_000_000, scale, 4_000) as usize;
    let periods = 90;
    let protocol = Epidemic::new().protocol();

    // Blocks placement concentrates the 10 seeds in the last shard, so the
    // epidemic has to travel the full topology.
    let scenario = Scenario::new(n, periods)
        .expect("valid scenario")
        .with_seed(600)
        .with_topology(Topology::sharded(SHARDS, MIGRATION).expect("valid topology"));
    let run = Simulation::of(protocol.clone())
        .scenario(scenario)
        .initial(InitialStates::counts(&[n as u64 - 10, 10]))
        .observe(CountsRecorder::new())
        .observe(ShardCountsRecorder::new())
        .run_auto()
        .expect("sharded epidemic run");

    let shard_series: Vec<Vec<f64>> = (0..SHARDS).map(|j| infected_series(&run, j)).collect();
    let mut header = vec!["period".to_string()];
    header.extend((0..SHARDS).map(|j| format!("shard{j}_infected")));
    println!("{}", header.join(","));
    for p in (0..=periods as usize).step_by(5) {
        let mut row = vec![p.to_string()];
        for series in &shard_series {
            row.push(format!("{:.0}", series.get(p).copied().unwrap_or(0.0)));
        }
        println!("{}", row.join(","));
    }

    // Per-shard takeoff: period at which half the shard is infected.
    let half_shard = (n / SHARDS) as f64 / 2.0;
    let takeoffs: Vec<Option<usize>> = shard_series
        .iter()
        .map(|s| takeoff(s, half_shard))
        .collect();
    let seed_takeoff = takeoffs[SHARDS - 1];
    let farthest_takeoff = takeoffs[0];

    // The same run with shard 0 partitioned for the whole horizon: migration
    // cannot reach it, so it must stay uninfected.
    let partitioned_scenario = Scenario::new(n, periods)
        .expect("valid scenario")
        .with_seed(600)
        .with_topology(Topology::sharded(SHARDS, MIGRATION).expect("valid topology"))
        .with_shard_partition(0, 0, periods)
        .expect("valid partition window");
    let partitioned = Simulation::of(protocol)
        .scenario(partitioned_scenario)
        .initial(InitialStates::counts(&[n as u64 - 10, 10]))
        .observe(CountsRecorder::new())
        .observe(ShardCountsRecorder::new())
        .run_auto()
        .expect("partitioned sharded run");
    let isolated = infected_series(&partitioned, 0);
    let isolated_final = isolated.last().copied().unwrap_or(f64::NAN);

    println!("\n== summary ==");
    let fmt = |t: Option<usize>| t.map_or("-".to_string(), |p| p.to_string());
    compare_line(
        "epidemic saturates its seed shard first",
        "O(log n) periods",
        &format!("half-infected at period {}", fmt(seed_takeoff)),
    );
    compare_line(
        "low migration delays the farthest shard",
        "takeoff lag grows as migration shrinks",
        &format!(
            "farthest shard half-infected at period {} (lag {})",
            fmt(farthest_takeoff),
            match (seed_takeoff, farthest_takeoff) {
                (Some(a), Some(b)) => (b.saturating_sub(a)).to_string(),
                _ => "-".to_string(),
            }
        ),
    );
    compare_line(
        "a partitioned shard is unreachable",
        "0 infected",
        &format!("{isolated_final:.0} infected in the partitioned shard"),
    );

    let reached_everywhere = takeoffs.iter().all(Option::is_some);
    if !reached_everywhere || isolated_final != 0.0 {
        eprintln!("error: sharded epidemic did not behave as expected");
        std::process::exit(1);
    }
}
