//! Figure 7: accuracy of the continuous-time analysis.
//!
//! For N ∈ {12 500, 25 000, 50 000, 100 000} with b = 2, γ = 0.1, α = 0.001,
//! the measured median (and min/max) numbers of receptives and stashers over a
//! 2000-period window are compared with the analytically expected equilibrium
//! values (eq. 2). The two match closely, verifying that the considered group
//! sizes are large enough for the infinite-group analysis to apply.

use dpde_bench::{banner, run_endemic, scale_from_args, scaled};
use dpde_protocols::endemic::{EndemicParams, RECEPTIVE, STASH};
use netsim::{Scenario, SummaryStats};

fn main() {
    let scale = scale_from_args();
    banner(
        "Figure 7",
        "endemic protocol, analysis vs. measured equilibrium counts",
        scale,
    );

    let params = EndemicParams::from_contact_count(2, 0.1, 0.001).expect("valid parameters");
    let window = scaled(2_000, scale.max(0.2), 400);
    let warmup = scaled(1_000, scale.max(0.2), 200);
    let horizon = warmup + window;

    println!("N,series,analysis,measured_median,measured_min,measured_max");
    let mut rows_summary = Vec::new();
    for &paper_n in &[12_500u64, 25_000, 50_000, 100_000] {
        let n = scaled(paper_n, scale, 1_000) as usize;
        let scenario = Scenario::new(n, horizon).unwrap().with_seed(7 + n as u64);
        let result = run_endemic(params, &scenario, false);
        let eq = params.equilibria(n as f64).endemic;
        for (series, expected) in [(RECEPTIVE, eq[0]), (STASH, eq[1])] {
            let values = result.run.state_series(series).unwrap();
            let stats = SummaryStats::of(&values[warmup as usize..]).unwrap();
            println!(
                "{n},{series},{expected:.1},{:.1},{:.0},{:.0}",
                stats.median, stats.min, stats.max
            );
            rows_summary.push((n, series, expected, stats.median));
        }
    }

    println!("\n== summary ==");
    println!("relative error of the measured median w.r.t. the analysis:");
    for (n, series, expected, median) in rows_summary {
        let rel = (median - expected).abs() / expected.max(1.0);
        println!(
            "  N = {n:>7}, {series:<9}: {:.1} vs {expected:.1}  ({:.1}% off)",
            median,
            rel * 100.0
        );
    }
    println!("(the paper reports the two tallying 'very closely')");
}
