//! Section 1 (motivating example): the pull epidemic disseminates a multicast
//! in O(log N) protocol periods.
//!
//! Sweeps the group size and reports the number of periods until only O(1)
//! susceptible processes remain, next to the O(log N) prediction.

use dpde_bench::{banner, compare_line, scale_from_args, scaled};
use dpde_protocols::epidemic::{Epidemic, EpidemicStyle};
use netsim::Scenario;

fn main() {
    let scale = scale_from_args();
    banner(
        "Epidemic O(log N)",
        "periods to deliver a multicast to (almost) everyone",
        scale,
    );

    println!("N,pull,push_pull,log2(N)+ln(N)");
    let mut last_ratio = None;
    for &paper_n in &[1_000u64, 10_000, 100_000] {
        let n = scaled(paper_n, scale, 500);
        let mut measured = Vec::new();
        for style in [EpidemicStyle::Pull, EpidemicStyle::PushPull] {
            let scenario = Scenario::new(n as usize, 100).unwrap().with_seed(1 + n);
            let run = Epidemic::new()
                .with_style(style)
                .disseminate(&scenario, 1)
                .unwrap();
            measured.push(Epidemic::rounds_to_reach(&run, 5.0));
        }
        let expected = Epidemic::expected_rounds(n);
        println!(
            "{n},{},{},{expected:.1}",
            measured[0]
                .map(|r| r.to_string())
                .unwrap_or_else(|| "-".into()),
            measured[1]
                .map(|r| r.to_string())
                .unwrap_or_else(|| "-".into()),
        );
        if let Some(r) = measured[0] {
            last_ratio = Some(r as f64 / expected);
        }
    }

    println!("\n== summary ==");
    compare_line(
        "dissemination completes in O(log N) periods",
        "x ≈ O(1) after O(log N) rounds",
        &format!(
            "measured/predicted ratio at the largest N: {:.2}",
            last_ratio.unwrap_or(f64::NAN)
        ),
    );
}
