//! Figure 10: effect of host churn (B) — state transitions per protocol
//! period.
//!
//! Same experiment as Figure 9 (N = 2000, b = 32, γ = 0.1, α = 0.005, hourly
//! churn 10–25 %); this binary prints the number of receptive→stash,
//! stash→averse and averse→receptive transitions per protocol period over the
//! final window, which stay bounded (low file-flux rate despite churn).

use dpde_bench::{banner, churn_scenario, compare_line, run_endemic, scale_from_args, scaled};
use dpde_protocols::endemic::{EndemicParams, AVERSE, RECEPTIVE, STASH};

fn main() {
    let scale = scale_from_args();
    banner(
        "Figure 10",
        "endemic protocol under host churn: transitions per period",
        scale,
    );

    let n = scaled(2_000, scale, 500) as usize;
    let hours = scaled(170, scale.max(0.2), 40) as usize;
    let window_hours = 20.min(hours / 2);
    let params = EndemicParams::from_contact_count(32, 0.1, 0.005).expect("valid parameters");

    let scenario = churn_scenario(n, hours, 99);
    let periods_per_hour = scenario.clock().periods_per_hour();
    let result = run_endemic(params, &scenario, false);

    let edges = [
        format!("{RECEPTIVE}->{STASH}"),
        format!("{STASH}->{AVERSE}"),
        format!("{AVERSE}->{RECEPTIVE}"),
    ];
    let start_period = (hours - window_hours) as u64 * periods_per_hour;

    // Collect per-period transition counts for each edge.
    let mut series: Vec<Vec<f64>> = Vec::new();
    for edge in &edges {
        let mut by_period = vec![0.0f64; scenario.periods() as usize + 1];
        if let Ok(samples) = result.run.transitions.series(edge) {
            for (p, v) in samples {
                by_period[*p as usize] += v;
            }
        }
        series.push(by_period);
    }

    println!("hour,Rcptv->Stash,Stash->Avers,Avers->Rcptv");
    for p in start_period..scenario.periods() {
        let hour = p as f64 / periods_per_hour as f64;
        println!(
            "{hour:.1},{},{},{}",
            series[0][p as usize], series[1][p as usize], series[2][p as usize]
        );
    }

    let mean_tail = |s: &[f64]| {
        let tail = &s[start_period as usize..];
        tail.iter().sum::<f64>() / tail.len() as f64
    };
    println!("\n== summary ==");
    compare_line(
        "file flux (receptive->stash) per period stays low under churn",
        "bounded, no blow-up (paper plots < ~200/period at N = 2000)",
        &format!("mean {:.1} per period", mean_tail(&series[0])),
    );
    compare_line(
        "stash->averse and averse->receptive rates stay stable",
        "stable",
        &format!(
            "means {:.1} and {:.1} per period",
            mean_tail(&series[1]),
            mean_tail(&series[2])
        ),
    );
}
