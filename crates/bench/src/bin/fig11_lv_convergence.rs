//! Figure 11: LV protocol — variation of populations.
//!
//! A 100 000-process group starts with 60 000 processes in state x and 40 000
//! in state y (p = 0.01). Everyone converges to the initial majority state x
//! within 500 protocol periods.

use dpde_bench::{
    banner, compare_line, downsampled_rows, lv_convergence_period, run_lv, scale_from_args, scaled,
    LV_SERIES,
};
use dpde_protocols::lv::LvParams;
use netsim::Scenario;

fn main() {
    let scale = scale_from_args();
    banner(
        "Figure 11",
        "LV protocol, 60/40 split converges to the majority",
        scale,
    );

    let n = scaled(100_000, scale, 2_000);
    let horizon = scaled(1_000, scale.max(0.5), 600);
    let params = LvParams::new();
    let zeros = n * 6 / 10;
    let ones = n - zeros;

    let scenario = Scenario::new(n as usize, horizon).unwrap().with_seed(11);
    let result = run_lv(params, &scenario, &[zeros, ones, 0]);

    println!("period,State X,State Y,State Z");
    for row in downsampled_rows(&result, &LV_SERIES, (horizon / 100) as usize) {
        println!("{}", row.join(","));
    }

    let convergence = lv_convergence_period(&result, (n / 1000).max(1) as f64);
    let final_x = result
        .state_series(LV_SERIES[0])
        .unwrap()
        .last()
        .copied()
        .unwrap_or(0.0);

    println!("\n== summary ==");
    compare_line(
        "group converges to the initial majority (state x)",
        "yes",
        if final_x > 0.99 * n as f64 {
            "yes"
        } else {
            "no"
        },
    );
    compare_line(
        "convergence time (minority below 0.1% of N)",
        "< 500 periods",
        &convergence
            .map(|p| format!("{p} periods"))
            .unwrap_or_else(|| "not reached".into()),
    );
    compare_line(
        "predicted O(log N / (3p)) convergence",
        "≈ 384 periods at N = 100 000",
        &format!("{:.0} periods", params.expected_convergence_periods(n)),
    );
}
